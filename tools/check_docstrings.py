#!/usr/bin/env python3
"""Public-API docstring checker (stdlib only; runs in CI).

The equivalent of ``pydocstyle --select=D1`` (missing docstrings),
without the dependency: walks the given packages with :mod:`ast` and
reports every *public* module, class, function, and method that has no
docstring.  Public means the name (and every enclosing scope) does not
start with ``_``; ``__init__`` counts as public when its class is.

Deliberate exemptions, so the check enforces documentation and not
boilerplate:

* nested functions and lambdas (implementation detail of their parent);
* ``@overload`` / ``@typing.overload`` stubs;
* trivial delegating ``__init__`` bodies are *not* exempt -- a class's
  constructor arguments are exactly what a reader needs documented;
* test files are out of scope (the checker targets ``src/``).

Usage::

    python tools/check_docstrings.py [--root PATH] [PACKAGE_DIR ...]

With no package dirs, checks the packages listed in ``DEFAULT_SCOPE``
(currently ``src/repro/localmodel`` -- the surface grown by the fault
injection work; widen the scope as other packages are brought up to
standard).  Exit status 0 when fully documented, 1 with one
``file:line: name`` line per missing docstring otherwise.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: package directories (relative to the repo root) checked by default
DEFAULT_SCOPE = ("src/repro/localmodel",)


def _is_overload(node: ast.AST) -> bool:
    for decorator in getattr(node, "decorator_list", []):
        name = None
        if isinstance(decorator, ast.Name):
            name = decorator.id
        elif isinstance(decorator, ast.Attribute):
            name = decorator.attr
        if name == "overload":
            return True
    return False


def missing_docstrings(path: Path) -> Iterator[Tuple[int, str]]:
    """Yield ``(lineno, dotted name)`` for each undocumented public def."""
    tree = ast.parse(path.read_text(), filename=str(path))
    if ast.get_docstring(tree) is None:
        yield 1, "(module)"

    def walk(node: ast.AST, prefix: str, top_level: bool) -> Iterator[Tuple[int, str]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                if child.name.startswith("_"):
                    continue
                qualified = f"{prefix}{child.name}"
                if ast.get_docstring(child) is None:
                    yield child.lineno, qualified
                yield from walk(child, f"{qualified}.", top_level=False)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                public = not child.name.startswith("_") or child.name == "__init__"
                if not public or _is_overload(child):
                    continue
                if ast.get_docstring(child) is None:
                    yield child.lineno, f"{prefix}{child.name}"
                # nested defs are implementation detail: do not recurse

    yield from walk(tree, "", top_level=True)


def check(root: Path, scope: List[str]) -> List[str]:
    """One problem line per undocumented public definition under ``scope``."""
    problems = []
    for package in scope:
        base = root / package
        if not base.is_dir():
            problems.append(f"{package}: not a directory")
            continue
        for path in sorted(base.rglob("*.py")):
            rel = path.relative_to(root)
            for lineno, name in missing_docstrings(path):
                problems.append(f"{rel}:{lineno}: missing docstring on {name}")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("packages", nargs="*", default=None,
                        help=f"package dirs to check (default: {DEFAULT_SCOPE})")
    parser.add_argument("--root", default=str(REPO_ROOT),
                        help="repository root (default: the checkout)")
    args = parser.parse_args(argv)

    scope = args.packages or list(DEFAULT_SCOPE)
    problems = check(Path(args.root), scope)
    if problems:
        for problem in problems:
            print(f"docstring-check: {problem}", file=sys.stderr)
        print(f"docstring-check: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print(f"docstring-check: {', '.join(scope)} fully documented")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
