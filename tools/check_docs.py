#!/usr/bin/env python3
"""Docs-consistency checker (stdlib only; runs in CI).

Cross-validates the prose against the code so the reproduction
instructions can never silently rot:

* every experiment id referenced by ``EXPERIMENTS.md`` (section
  headings) and ``DESIGN.md`` (the per-experiment index table) must
  resolve in the ``repro.runner`` registry;
* every CLI subcommand exposed by ``repro.cli.build_parser()`` must be
  documented in ``README.md`` (as ``repro <cmd>`` or
  ``python -m repro <cmd>``) and at least named in ``docs/index.md``;
* every ``docs/*.md`` page must be linked from both ``README.md`` and
  the ``docs/index.md`` subsystem map (the index itself only needs the
  README link), so no page can exist unreachable from the front door;
* ``docs/architecture.md`` must inventory every top-level ``repro``
  subpackage, and ``docs/runner.md`` must exist and name every
  registered experiment id;
* ``docs/tracing.md`` must exist and document the trace-sink surface
  (``TraceSink``, ``on_round``, the stock sinks, ``repro trace``);
* ``docs/lint.md`` must exist, carry a ``### Lx — ...`` section (with a
  minimal triggering example) for every registered lint rule, and name
  the bandwidth/sanitizer surface (``--congest``, ``--sanitize``, the
  baseline file, ``MessageMeter``, ``shadow_check``);
* ``docs/kernels.md`` must exist and document the kernel substrate
  (``GraphIndex``, the ``graph_index`` version-keyed cache, the bitset
  cutoff, ``bench_kernels`` / ``BENCH_kernels.json``);
* ``docs/faults.md`` must exist and document the fault-injection and
  resilience surface (``FaultPlan``, the plan grammar including
  ``corrupt=``, the three classifications, ``ReliableProgram``,
  ``resilience_check``, ``repro faults``, the ``--recovery`` /
  ``--checkpoint-every`` knobs, ``BENCH_faults.json``);
* ``docs/stabilize.md`` must exist and document the self-stabilization
  surface (``RepairableProgram``, the repair policies,
  ``stabilization_run``, ``CorruptSpec``, the chaos soak and its
  minimize/reproduce gate, ``repro chaos``, the recovery modes,
  ``BENCH_chaos.json``);
* ``docs/gather.md`` must exist and document the ball-gathering surface
  (``KnownBall``, the delta/reference program pair, the counting
  contract's status sets, ``bench_network`` / ``BENCH_network.json``);
* ``docs/executor.md`` must exist and document the whole-round batch
  executor (``BatchExecutor``, ``BatchKernel``, ``KernelIneligible``,
  the three stock kernels, the mode set, the eligibility blockers, the
  ``--executor`` CLI knob).

Usage::

    PYTHONPATH=src python tools/check_docs.py [--root PATH]

Exit status 0 when consistent, 1 with one line per problem otherwise.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import List

REPO_ROOT = Path(__file__).resolve().parent.parent


def _normalize(raw: str) -> str:
    """Map typographic dashes to ASCII so F1–F6 matches the registry."""
    return raw.replace("–", "-").replace("—", "-")


def experiment_ids_in_experiments_md(text: str) -> List[str]:
    """Ids from section headings: ``## T4 — Theorem 4: ...``."""
    found = []
    for match in re.finditer(
        r"^## +([A-Z]\d+(?:[/–-][A-Z]?\d+)*) +[—-] ", text, flags=re.MULTILINE
    ):
        raw = _normalize(match.group(1))
        if raw not in BENCH_ONLY_IDS:
            found.append(raw)
    return found


#: ids whose reproduction is a pytest-benchmark target only (DESIGN.md's
#: substrate microbenchmarks) — they have no table to regenerate, so they
#: are legitimately absent from the runner registry.
BENCH_ONLY_IDS = {"S0"}


def experiment_ids_in_design_md(text: str) -> List[str]:
    """Ids from the per-experiment index table: ``| T4 | Theorem 4 | ...``.

    An experiment id is letter(s)+digits, optionally ranged or slashed
    (``F3/F4``, ``A1-A3``) — which is what keeps the subsystem table's
    prose cells out.
    """
    found = []
    for match in re.finditer(
        r"^\| +([A-Z]\d+(?:[/–-][A-Z]?\d+)*) +\|", text, flags=re.MULTILINE
    ):
        raw = _normalize(match.group(1))
        if raw not in BENCH_ONLY_IDS:
            found.append(raw)
    return found


def cli_subcommands() -> List[str]:
    from repro.cli import build_parser

    parser = build_parser()
    for action in parser._subparsers._group_actions:  # argparse internals, but stable
        return sorted(action.choices)
    return []


def package_inventory(src_root: Path) -> List[str]:
    return sorted(
        p.parent.name
        for p in (src_root / "repro").glob("*/__init__.py")
        if p.parent.name != "__pycache__"
    )


def check(root: Path) -> List[str]:
    problems: List[str] = []

    sys.path.insert(0, str(root / "src"))
    from repro.runner import UnknownExperimentError, experiment_ids, resolve_ids

    registered = experiment_ids()

    # 1. experiment ids referenced in the docs resolve in the registry
    for name, extractor in [
        ("EXPERIMENTS.md", experiment_ids_in_experiments_md),
        ("DESIGN.md", experiment_ids_in_design_md),
    ]:
        path = root / name
        if not path.is_file():
            problems.append(f"{name}: file missing")
            continue
        referenced = extractor(path.read_text())
        if not referenced:
            problems.append(f"{name}: found no experiment ids to check")
        for experiment_id in referenced:
            try:
                resolve_ids([experiment_id])
            except UnknownExperimentError:
                problems.append(
                    f"{name}: experiment id {experiment_id!r} is not in the "
                    f"repro.runner registry (known: {', '.join(registered)})"
                )

    # 2. every CLI subcommand is documented in the README
    readme_path = root / "README.md"
    if not readme_path.is_file():
        problems.append("README.md: file missing")
    else:
        readme = readme_path.read_text()
        for command in cli_subcommands():
            pattern = rf"(python -m repro|\brepro) +{re.escape(command)}\b"
            if not re.search(pattern, readme):
                problems.append(
                    f"README.md: CLI subcommand {command!r} is undocumented "
                    f"(expected 'repro {command}' or 'python -m repro {command}')"
                )

    # 3. docs/ inventory stays complete
    architecture = root / "docs" / "architecture.md"
    if not architecture.is_file():
        problems.append("docs/architecture.md: file missing")
    else:
        text = architecture.read_text()
        for package in package_inventory(root / "src"):
            if f"repro.{package}" not in text:
                problems.append(
                    f"docs/architecture.md: package 'repro.{package}' missing "
                    "from the layer map"
                )

    runner_doc = root / "docs" / "runner.md"
    if not runner_doc.is_file():
        problems.append("docs/runner.md: file missing")
    else:
        text = _normalize(runner_doc.read_text())
        for experiment_id in registered:
            if experiment_id not in text:
                problems.append(
                    f"docs/runner.md: registered experiment {experiment_id!r} "
                    "is never mentioned"
                )

    tracing_doc = root / "docs" / "tracing.md"
    if not tracing_doc.is_file():
        problems.append("docs/tracing.md: file missing")
    else:
        text = tracing_doc.read_text()
        for term in (
            "TraceSink",
            "on_round",
            "RecordingSink",
            "MetricsSink",
            "JSONLTraceSink",
            "repro trace",
        ):
            if term not in text:
                problems.append(
                    f"docs/tracing.md: {term!r} is never mentioned (the "
                    "trace-sink surface must stay documented)"
                )

    lint_doc = root / "docs" / "lint.md"
    if not lint_doc.is_file():
        problems.append("docs/lint.md: file missing")
    else:
        text = lint_doc.read_text()
        from repro.lint import ALL_RULE_CODES

        for code in sorted(ALL_RULE_CODES):
            if f"### {code} " not in text:
                problems.append(
                    f"docs/lint.md: rule {code!r} has no '### {code} — ...' "
                    "section (every rule needs a minimal triggering example)"
                )
        for term in (
            "--congest",
            "--sanitize",
            "--baseline",
            "--write-baseline",
            "lint_baseline.json",
            "MessageMeter",
            "shadow_check",
            "inbox_order",
            "suppressed_count",
        ):
            if term not in text:
                problems.append(
                    f"docs/lint.md: {term!r} is never mentioned (the "
                    "conformance surface must stay documented)"
                )

    faults_doc = root / "docs" / "faults.md"
    if not faults_doc.is_file():
        problems.append("docs/faults.md: file missing")
    else:
        text = faults_doc.read_text()
        for term in (
            "FaultPlan",
            "drop=",
            "crash=",
            "self-healing",
            "degraded-but-valid",
            "unsafe",
            "ReliableProgram",
            "resilience_check",
            "ValidityMonitor",
            "repro faults",
            "--faults",
            "corrupt=",
            "--recovery",
            "--checkpoint-every",
            "--stock",
            "BENCH_faults.json",
        ):
            if term not in text:
                problems.append(
                    f"docs/faults.md: {term!r} is never mentioned (the "
                    "fault/resilience surface must stay documented)"
                )

    stabilize_doc = root / "docs" / "stabilize.md"
    if not stabilize_doc.is_file():
        problems.append("docs/stabilize.md: file missing")
    else:
        text = stabilize_doc.read_text()
        for term in (
            "RepairableProgram",
            "ColoringRepair",
            "MISRepair",
            "stabilization_run",
            "CorruptSpec",
            "CORRUPT_KINDS",
            "detection_latency",
            "recovery_rounds",
            "chaos_soak",
            "minimize_plan",
            "repro chaos",
            "--check",
            "RECOVERY_MODES",
            "checkpoint_every",
            "rollback",
            "BENCH_chaos.json",
        ):
            if term not in text:
                problems.append(
                    f"docs/stabilize.md: {term!r} is never mentioned (the "
                    "self-stabilization surface must stay documented)"
                )

    gather_doc = root / "docs" / "gather.md"
    if not gather_doc.is_file():
        problems.append("docs/gather.md: file missing")
    else:
        text = gather_doc.read_text()
        for term in (
            "KnownBall",
            "gather_balls",
            "BallGatherProgram",
            "DeltaGatherProgram",
            "as_graph",
            "local_view_from_ball",
            "DELIVERY_STATUSES",
            "WIRE_STATUSES",
            "radius + 1",
            "bench_network",
            "BENCH_network.json",
        ):
            if term not in text:
                problems.append(
                    f"docs/gather.md: {term!r} is never mentioned (the "
                    "ball-gathering contract must stay documented)"
                )

    # 4. every docs page is reachable: linked from the README and from
    # the docs/index.md subsystem map (the index needs only the README)
    index_doc = root / "docs" / "index.md"
    index_text = index_doc.read_text() if index_doc.is_file() else ""
    if not index_doc.is_file():
        problems.append("docs/index.md: file missing")
    readme_text = readme_path.read_text() if readme_path.is_file() else ""
    for page in sorted((root / "docs").glob("*.md")):
        name = page.name
        if f"docs/{name}" not in readme_text:
            problems.append(
                f"README.md: docs page 'docs/{name}' is never linked"
            )
        if name != "index.md" and index_text and f"({name})" not in index_text:
            problems.append(
                f"docs/index.md: docs page {name!r} is missing from the "
                "subsystem map"
            )
    if index_text:
        for command in cli_subcommands():
            if not re.search(rf"\b{re.escape(command)}\b", index_text):
                problems.append(
                    f"docs/index.md: CLI subcommand {command!r} is never "
                    "mentioned"
                )

    executor_doc = root / "docs" / "executor.md"
    if not executor_doc.is_file():
        problems.append("docs/executor.md: file missing")
    else:
        text = executor_doc.read_text()
        for term in (
            "BatchExecutor",
            "BatchKernel",
            "KernelIneligible",
            "DeltaGatherKernel",
            "BFSLayerKernel",
            "LinialPathKernel",
            "batch_kernel",
            "EXECUTORS",
            "FaultPlan",
            "--executor",
            "--profile",
            "RunStats",
            "bench_network",
            "BENCH_network.json",
        ):
            if term not in text:
                problems.append(
                    f"docs/executor.md: {term!r} is never mentioned (the "
                    "batch-executor contract must stay documented)"
                )

    kernels_doc = root / "docs" / "kernels.md"
    if not kernels_doc.is_file():
        problems.append("docs/kernels.md: file missing")
    else:
        text = kernels_doc.read_text()
        for term in (
            "GraphIndex",
            "graph_index",
            "Graph.version",
            "neighbors_view",
            "_BITSET_N_LIMIT",
            "bench_kernels",
            "BENCH_kernels.json",
        ):
            if term not in text:
                problems.append(
                    f"docs/kernels.md: {term!r} is never mentioned (the "
                    "kernel-substrate contract must stay documented)"
                )

    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=str(REPO_ROOT),
                        help="repository root (default: the checkout)")
    args = parser.parse_args(argv)

    problems = check(Path(args.root))
    if problems:
        for problem in problems:
            print(f"docs-check: {problem}", file=sys.stderr)
        print(f"docs-check: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print("docs-check: EXPERIMENTS.md, DESIGN.md, README.md, and docs/ are "
          "consistent with the code")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
