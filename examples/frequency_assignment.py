#!/usr/bin/env python3
"""Frequency assignment on a highway sensor chain (interval graph MVC).

A classic motivation for distributed interval coloring: roadside units
along a highway each cover a stretch of road; overlapping units interfere
and need distinct frequencies.  Coverage stretches are intervals, the
conflict graph is an interval graph, and the number of frequencies should
stay close to the clique number chi (the worst local congestion).

This example builds a long, uneven highway deployment, runs ColIntGraph
(the paper's [21] subroutine, Section 2) at several eps values, and
compares against the (Delta + 1) bound a naive assignment would need.

    python examples/frequency_assignment.py
"""

import random

from repro.analysis import format_table
from repro.cliquetree import clique_paths_of_interval_graph
from repro.coloring import PathBags, col_int_graph
from repro.graphs import (
    assert_proper_coloring,
    interval_graph_from_intervals,
)


def build_highway(n_units=400, seed=2026):
    """Roadside units with bursty density: dense near 'interchanges'."""
    rng = random.Random(seed)
    intervals = {}
    position = 0.0
    for unit in range(n_units):
        if rng.random() < 0.08:
            position += rng.uniform(2.0, 6.0)  # gap between clusters
        coverage = rng.uniform(0.8, 3.5)
        intervals[unit] = (position, position + coverage)
        position += rng.uniform(0.05, 0.8)
    return interval_graph_from_intervals(intervals)


def main():
    graph = build_highway()
    paths = clique_paths_of_interval_graph(graph)
    chi = max(PathBags(p).max_bag_size() for p in paths)
    delta = graph.max_degree()

    print(f"highway deployment: {len(graph)} units, "
          f"{graph.num_edges()} interference pairs")
    print(f"worst local congestion chi = {chi}, "
          f"max degree Delta = {delta} (naive bound {delta + 1})\n")

    rows = []
    for k in (1, 2, 4, 8):
        result = col_int_graph(graph, k)
        assert_proper_coloring(graph, result.coloring)
        bound = chi + chi // k + 1
        rows.append(
            (f"1/{k}", result.num_colors(), bound, result.rounds)
        )
    print(format_table(
        ["eps'=1/k", "frequencies", "guarantee", "LOCAL rounds"], rows
    ))
    print("\nEvery assignment verified interference-free.")
    print("Takeaway: frequencies track chi, not Delta, and the round cost")
    print("grows only with 1/eps (plus a log* term), as Theorem 6 of the")
    print("cited subroutine promises.")


if __name__ == "__main__":
    main()
