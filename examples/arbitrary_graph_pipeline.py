#!/usr/bin/env python3
"""From an arbitrary graph to verified (1 + eps) solutions via triangulation.

The paper's algorithms need chordal inputs.  Real conflict graphs rarely
are -- but any graph embeds in a chordal completion, and a proper coloring
of the completion is proper for the original (the completion only *adds*
constraints).  This example:

1. builds a sparse random graph (a noisy overlay network),
2. triangulates it with the min-fill heuristic (reporting fill-in and the
   treewidth bound),
3. runs Algorithm 1 on the completion and reuses the coloring,
4. runs Algorithm 6 on the completion; its independent set is independent
   in the original too (fewer edges there), though the (1 + eps) guarantee
   now refers to the completion's alpha,
5. verifies everything with repro.verify.

    python examples/arbitrary_graph_pipeline.py
"""

import random

from repro.analysis import format_table
from repro.coloring import color_chordal_graph
from repro.graphs import (
    Graph,
    assert_independent_set,
    assert_proper_coloring,
    clique_number,
    treewidth_chordal,
    triangulate,
)
from repro.mis import chordal_mis
from repro.verify import verify_coloring_run, verify_mis_run


def noisy_overlay(n=120, extra_edges=35, seed=9):
    """A random tree backbone plus random long-range links (not chordal)."""
    rng = random.Random(seed)
    g = Graph(vertices=range(n))
    for v in range(1, n):
        g.add_edge(v, rng.randrange(v))
    added = 0
    while added < extra_edges:
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v)
            added += 1
    return g


def main():
    g = noisy_overlay()
    tri = triangulate(g, "min_fill")
    h = tri.chordal_graph
    print(
        f"input: {len(g)} nodes, {g.num_edges()} edges (non-chordal overlay)"
    )
    print(
        f"min-fill triangulation: +{len(tri.fill_edges)} fill edges, "
        f"treewidth <= {tri.treewidth_bound} "
        f"(exact on completion: {treewidth_chordal(h)})\n"
    )

    coloring = color_chordal_graph(h, epsilon=0.5)
    assert_proper_coloring(g, coloring.coloring)  # valid for the original
    report_c = verify_coloring_run(h, coloring)
    report_c.raise_if_failed()

    mis = chordal_mis(h, 0.4)
    assert_independent_set(g, mis.independent_set)
    report_m = verify_mis_run(h, mis)
    report_m.raise_if_failed()

    rows = [
        ("coloring (Algorithm 1, eps=0.5)", coloring.num_colors(),
         f"chi(completion) = {clique_number(h)}"),
        ("independent set (Algorithm 6, eps=0.4)", mis.size(),
         f"guarantee vs completion's alpha"),
    ]
    print(format_table(["pipeline stage", "value", "reference"], rows))
    print("\nverification (coloring):")
    print(report_c.summary())
    print("\nverification (independent set):")
    print(report_m.summary())


if __name__ == "__main__":
    main()
