#!/usr/bin/env python3
"""Walk through the paper's worked example (Figures 1-6).

Reconstructs, from the 23-node chordal graph of Figure 1:

* the weighted clique intersection graph and the canonical clique forest
  (Figure 2),
* the local view of node 10 at radius 3 (Figures 3-4),
* the peeling of the internal path P = C6..C10 and the clique forest of
  the reduced graph (Figures 5-6, Lemma 3),
* the full layer partition of the pruning phase.

    python examples/paper_walkthrough.py
"""

from repro.analysis import format_table
from repro.cliquetree import (
    build_clique_forest,
    compute_local_view,
    maximal_binary_paths,
    nodes_with_subtree_in,
    path_diameter,
)
from repro.coloring import diameter_rule, peel_chordal_graph
from repro.graphs import (
    FIGURE3_CENTER,
    FIGURE5_PATH,
    PAPER_CLIQUES,
    paper_example_graph,
)

LABEL = {clique: name for name, clique in PAPER_CLIQUES.items()}


def show_figure_2(graph, forest):
    print("== Figure 2: weighted clique intersection graph and clique forest ==")
    rows = []
    for c1, c2 in forest.edges():
        rows.append((LABEL[c1], LABEL[c2], len(c1 & c2)))
    rows.sort()
    print(format_table(["clique", "clique", "weight"], rows))
    print(f"forest is a valid tree decomposition: "
          f"{forest.is_valid_decomposition(graph)}\n")


def show_figures_3_4(graph, forest):
    print(f"== Figures 3-4: local view of node {FIGURE3_CENTER}, radius 3 ==")
    view = compute_local_view(graph, FIGURE3_CENTER, radius=3)
    visible = sorted(LABEL[c] for c in view.forest.cliques())
    print(f"visible cliques: {', '.join(visible)}")
    local_edges = {frozenset(e) for e in view.forest.edges()}
    global_edges = {frozenset(e) for e in forest.edges()}
    print(f"all {len(local_edges)} reconstructed edges agree with the "
          f"global forest: {local_edges <= global_edges}\n")


def show_figures_5_6(graph, forest):
    print("== Figures 5-6: peeling the internal path C6..C10 ==")
    path = [PAPER_CLIQUES[name] for name in FIGURE5_PATH]
    u = nodes_with_subtree_in(forest, path)
    print(f"removed node set U = {sorted(u)}")
    print(f"diam(P) = {path_diameter(graph, path)}")
    reduced = graph.subgraph_without(u)
    new_forest = forest.without_cliques(path)
    rebuilt = build_clique_forest(reduced)
    print(f"T - P equals the clique forest of G[V - U] (Lemma 3): "
          f"{new_forest == rebuilt}\n")


def show_peeling(graph):
    print("== Pruning phase: the layer partition ==")
    peeling = peel_chordal_graph(graph, internal_rule=diameter_rule(4))
    rows = []
    for i in range(1, peeling.num_layers() + 1):
        paths = peeling.layers[i - 1]
        rows.append(
            (
                i,
                len(paths),
                ", ".join(
                    "+".join(LABEL[c] for c in p.cliques) for p in paths
                ),
                sorted(peeling.nodes_of_layer(i)),
            )
        )
    print(format_table(["layer", "paths", "cliques", "nodes"], rows))


def main():
    graph = paper_example_graph()
    forest = build_clique_forest(graph)
    show_figure_2(graph, forest)
    show_figures_3_4(graph, forest)
    show_figures_5_6(graph, forest)
    show_peeling(graph)


if __name__ == "__main__":
    main()
