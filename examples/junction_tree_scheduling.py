#!/usr/bin/env python3
"""Parallel update scheduling on a junction tree (chordal MVC + MIS).

The paper motivates chordal graphs through belief propagation: inference
engines triangulate a Bayesian network into a chordal graph whose maximal
cliques form a junction tree.  Two scheduling problems appear naturally:

* **Round-robin schedules** -- group the moralized variables so that no
  two interacting variables update simultaneously: a vertex coloring,
  where the number of groups is the schedule length (Algorithm 1).
* **One-shot parallel batches** -- the largest set of variables updatable
  at once: a maximum independent set (Algorithm 6).

This example builds a synthetic triangulated network (a random subtree
intersection graph, the general chordal model), runs both distributed
algorithms, and compares against Luby's maximal-IS baseline, which gets
stuck well below the optimum.

    python examples/junction_tree_scheduling.py
"""

from repro.analysis import format_table
from repro.baselines import luby_mis, sequential_greedy_coloring
from repro.coloring import distributed_color_chordal
from repro.graphs import (
    assert_independent_set,
    assert_proper_coloring,
    clique_number,
    num_colors,
    random_chordal_graph,
)
from repro.mis import chordal_mis, independence_number_chordal


def main():
    graph = random_chordal_graph(300, seed=11, tree_size=260, subtree_radius=2)
    chi = clique_number(graph)
    alpha = independence_number_chordal(graph)
    print(f"triangulated network: {len(graph)} variables, "
          f"{graph.num_edges()} interactions, chi = {chi}, alpha = {alpha}\n")

    # Schedule length: ours vs naive greedy.
    report = distributed_color_chordal(graph, epsilon=0.5)
    assert_proper_coloring(graph, report.coloring)
    greedy = sequential_greedy_coloring(graph)
    rows = [
        ("Algorithm 1 (eps=0.5)", report.num_colors(),
         f"<= {1.5 * chi:.0f}", report.total_rounds),
        ("sequential greedy", num_colors(greedy), f"<= {graph.max_degree() + 1}", "-"),
    ]
    print("Round-robin schedule length (colors):")
    print(format_table(["method", "groups", "bound", "LOCAL rounds"], rows))

    # One-shot batch size: ours vs Luby.
    ours = chordal_mis(graph, 0.4)
    assert_independent_set(graph, ours.independent_set)
    luby_sets = [luby_mis(graph, seed=s) for s in range(3)]
    best_luby = max(len(s) for s, _ in luby_sets)
    rows = [
        ("Algorithm 6 (eps=0.4)", ours.size(), f">= {alpha / 1.4:.0f}", ours.rounds),
        ("Luby maximal IS (best of 3)", best_luby, "maximal only",
         max(r for _, r in luby_sets)),
        ("optimum (Gavril, sequential)", alpha, "-", "-"),
    ]
    print("\nOne-shot parallel batch size (independent set):")
    print(format_table(["method", "batch", "guarantee", "rounds"], rows))

    gain = (ours.size() - best_luby) / max(1, best_luby) * 100.0
    print(f"\nAlgorithm 6 schedules {gain:.0f}% more simultaneous updates "
          f"than the maximal-IS baseline.")


if __name__ == "__main__":
    main()
