#!/usr/bin/env python3
"""Quickstart: color a chordal graph and extract a large independent set.

Runs both of the paper's algorithms on a random chordal graph and on the
paper's own 23-node example, printing the guarantees next to the measured
numbers.

    python examples/quickstart.py
"""

from repro.analysis import format_table
from repro.coloring import color_chordal_graph, distributed_color_chordal
from repro.graphs import (
    assert_independent_set,
    assert_proper_coloring,
    clique_number,
    paper_example_graph,
    random_chordal_graph,
)
from repro.mis import chordal_mis, independence_number_chordal


def demo(name, graph, epsilon_color=0.5, epsilon_mis=0.4):
    chi = clique_number(graph)
    alpha = independence_number_chordal(graph)

    coloring = color_chordal_graph(graph, epsilon=epsilon_color)
    assert_proper_coloring(graph, coloring.coloring)

    mis = chordal_mis(graph, epsilon_mis)
    assert_independent_set(graph, mis.independent_set)

    report = distributed_color_chordal(graph, epsilon=epsilon_color)

    return (
        name,
        len(graph),
        chi,
        coloring.num_colors(),
        f"<= {(1 + epsilon_color) * chi:.1f}",
        alpha,
        mis.size(),
        f">= {alpha / (1 + epsilon_mis):.1f}",
        report.total_rounds,
    )


def main():
    rows = [
        demo("paper Fig.1", paper_example_graph()),
        demo("random chordal n=120", random_chordal_graph(120, seed=7, tree_size=120)),
        demo("random chordal n=400", random_chordal_graph(400, seed=3, tree_size=400)),
    ]
    print("Distributed (1+eps)-approximation on chordal graphs")
    print("(coloring at eps = 0.5, independent set at eps = 0.4)\n")
    print(
        format_table(
            [
                "graph",
                "n",
                "chi",
                "colors",
                "bound",
                "alpha",
                "|I|",
                "bound",
                "rounds",
            ],
            rows,
        )
    )
    print("\nAll outputs validated: colorings proper, sets independent.")


if __name__ == "__main__":
    main()
