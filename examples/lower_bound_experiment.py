#!/usr/bin/env python3
"""The Theorem 9 experiment: how round budget limits MIS quality on paths.

Theorem 9 (Section 8): every randomized r-round LOCAL algorithm for MIS on
the path leaves an Omega(1/r) fraction of the optimum on the table, so a
(1 + eps)-approximation needs Omega(1/eps) rounds.  This script runs the
matching upper-bound construction (the anchor-parity rule, see
repro.lowerbounds) and shows the measured per-node loss decaying like
~1/r, sandwiching the theorem.

    python examples/lower_bound_experiment.py
"""

from repro.analysis import format_table
from repro.lowerbounds import measure_r_round_mis


def main():
    n, trials = 6000, 10
    print(f"r-round MIS on the labeled path P_{n} "
          f"({trials} random labelings per r)\n")
    rows = []
    for r in (4, 8, 16, 32, 64, 128):
        sample = measure_r_round_mis(n, r, trials=trials, seed=42)
        rows.append(
            (
                r,
                f"{sample.mean_size:.0f}",
                sample.optimum,
                f"{sample.density_gap:.4f}",
                f"{sample.density_gap * r:.2f}",
                f"{sample.approximation_ratio:.4f}",
            )
        )
    print(format_table(
        ["rounds r", "E|I|", "opt", "loss/node", "r x loss", "ratio"], rows
    ))
    print("\nThe per-node loss decays like ~0.8/r (the 'r x loss' column")
    print("stays within a narrow band).  Theorem 9 proves no algorithm can")
    print("beat Omega(1/r) loss, so eps-accuracy inherently costs")
    print("Omega(1/eps) rounds -- the two bounds sandwich the truth.")


if __name__ == "__main__":
    main()
