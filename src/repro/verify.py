"""End-to-end verification of algorithm runs.

Downstream users (and this repository's integration tests) want one call
that checks *everything* a run promises: legality of the output, the
approximation bound, and the structural invariants of the paper's
analysis.  :func:`verify_coloring_run` and :func:`verify_mis_run` return a
:class:`VerificationReport` listing every check with a pass/fail verdict
and a human-readable detail; ``raise_if_failed`` converts failures into
exceptions for assert-style use.

All checks are polynomial: exact chi and alpha come from the chordal
certificates (omega via maximal cliques, Gavril's greedy), never from
brute force.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .cliquetree.cliquepath import is_interval_graph
from .coloring.chordal_mvc import ChordalColoringResult
from .graphs.adjacency import Graph
from .graphs.chordal import clique_number, is_chordal
from .graphs.validation import coloring_violation, independent_set_violation
from .mis.chordal_mis import ChordalMISResult
from .mis.exact import independence_number_chordal

__all__ = ["Check", "VerificationReport", "verify_coloring_run", "verify_mis_run"]


@dataclass
class Check:
    name: str
    passed: bool
    detail: str = ""


@dataclass
class VerificationReport:
    checks: List[Check] = field(default_factory=list)

    def add(self, name: str, passed: bool, detail: str = "") -> None:
        self.checks.append(Check(name, passed, detail))

    @property
    def ok(self) -> bool:
        return all(c.passed for c in self.checks)

    def failures(self) -> List[Check]:
        return [c for c in self.checks if not c.passed]

    def raise_if_failed(self) -> None:
        bad = self.failures()
        if bad:
            summary = "; ".join(f"{c.name}: {c.detail}" for c in bad)
            raise AssertionError(f"verification failed: {summary}")

    def summary(self) -> str:
        lines = []
        for c in self.checks:
            mark = "ok " if c.passed else "FAIL"
            detail = f" -- {c.detail}" if c.detail else ""
            lines.append(f"[{mark}] {c.name}{detail}")
        return "\n".join(lines)


def verify_coloring_run(graph: Graph, result: ChordalColoringResult) -> VerificationReport:
    """Check a :func:`repro.coloring.color_chordal_graph` run end to end."""
    report = VerificationReport()

    chordal = is_chordal(graph)
    report.add("input is chordal", chordal)
    if not chordal:
        return report

    violation = coloring_violation(graph, result.coloring)
    report.add(
        "coloring is proper and total",
        violation is None,
        "" if violation is None else f"violation at {violation}",
    )

    chi = clique_number(graph)
    report.add(
        "chi recorded correctly", result.chi == chi, f"{result.chi} vs {chi}"
    )

    k = result.parameters.k
    bound = chi + chi // k + 1
    used = result.num_colors()
    report.add(
        "colors within floor((1+1/k)chi)+1",
        used <= bound,
        f"{used} <= {bound}",
    )
    eps = result.parameters.epsilon
    if chi and eps > 2.0 / chi:
        report.add(
            "colors within (1+eps)chi (Theorem 3)",
            used <= (1 + eps) * chi,
            f"{used} <= {(1 + eps) * chi:.2f}",
        )

    peeling = result.peeling
    if len(graph) > 0:
        log_bound = math.ceil(math.log2(max(2, len(graph)))) + 1
        report.add(
            "layers within ceil(log2 n)+1 (Lemma 6)",
            peeling.num_layers() <= log_bound,
            f"{peeling.num_layers()} <= {log_bound}",
        )
        report.add(
            "every node assigned a layer (Corollary 1)",
            set(peeling.layer_of) == set(graph.vertices()),
        )
        interval_layers = all(
            is_interval_graph(graph.induced_subgraph(peeling.nodes_of_layer(i)))
            for i in range(1, peeling.num_layers() + 1)
        )
        report.add("layers induce interval graphs (Lemma 7)", interval_layers)
    return report


def verify_mis_run(graph: Graph, result: ChordalMISResult) -> VerificationReport:
    """Check a :func:`repro.mis.chordal_mis` run end to end."""
    report = VerificationReport()

    chordal = is_chordal(graph)
    report.add("input is chordal", chordal)
    if not chordal:
        return report

    violation = independent_set_violation(graph, result.independent_set)
    report.add(
        "output is an independent set",
        violation is None,
        "" if violation is None else f"violation at {violation}",
    )

    alpha = independence_number_chordal(graph)
    eps = result.epsilon
    report.add(
        "size within (1+eps) of alpha (Theorem 7)",
        result.size() * (1 + eps) >= alpha,
        f"{result.size()} vs alpha={alpha} at eps={eps}",
    )
    report.add(
        "peeling stopped within kappa iterations",
        result.peeling.num_layers() <= result.kappa,
        f"{result.peeling.num_layers()} <= {result.kappa}",
    )
    return report
