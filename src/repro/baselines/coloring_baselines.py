"""Coloring baselines the paper's introduction positions itself against.

* :func:`sequential_greedy_coloring` -- the textbook sequential greedy
  ((Delta + 1)-coloring in arbitrary order); on chordal graphs with a bad
  order it can be far from chi, which is the gap Algorithm 1 closes.
* :class:`RandomizedColoringProgram` / :func:`distributed_delta_plus_one`
  -- the classic randomized distributed (Delta + 1)-coloring: every
  undecided node proposes a random color not used by decided neighbors
  and keeps it if no undecided neighbor proposed the same; O(log n)
  rounds with high probability.  Note the palette is Delta + 1, not
  (1 + eps) chi: on chordal graphs Delta can exceed chi by an
  Omega(n) factor (stars), which is the point of comparison.
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..graphs.adjacency import Graph, Vertex
from ..localmodel.network import NodeContext, NodeProgram, SyncNetwork

Color = int

__all__ = [
    "sequential_greedy_coloring",
    "RandomizedColoringProgram",
    "distributed_delta_plus_one",
]


def sequential_greedy_coloring(
    graph: Graph, order: Optional[Sequence[Vertex]] = None
) -> Dict[Vertex, Color]:
    """Greedy smallest-available coloring along ``order`` (default: by id).

    Uses at most Delta + 1 colors; the order determines how far above chi
    it lands.
    """
    coloring: Dict[Vertex, Color] = {}
    for v in order if order is not None else graph.vertices():
        used = {coloring[u] for u in graph.neighbors_view(v) if u in coloring}
        c = 1
        while c in used:
            c += 1
        coloring[v] = c
    return coloring


class RandomizedColoringProgram(NodeProgram):
    """Randomized (Delta + 1)-coloring, one node.

    Protocol per phase (two rounds): broadcast ('try', c) with a random
    candidate from the free palette; if no conflicting proposal arrives
    and no decided neighbor owns c, broadcast ('final', c) and stop.

    Acts on silence: an undecided node must re-propose each phase even
    when every neighbor already finished (their 'final' messages were in
    earlier rounds), and an isolated vertex colors itself unprompted.
    """

    always_active = True

    def __init__(
        self, node: Vertex, neighbors: List[Vertex], palette_size: int, rng: random.Random
    ):
        super().__init__(node, neighbors)
        self.palette_size = palette_size
        self.rng = rng
        self.taken: Dict[Vertex, Color] = {}
        self.proposal: Optional[Color] = None
        self.state = "propose"

    def step(self, ctx: NodeContext) -> Mapping[Vertex, object]:
        proposals: Dict[Vertex, Color] = {}
        for u, message in ctx.inbox.items():
            kind, color = message
            if kind == "final":
                self.taken[u] = color
            else:
                proposals[u] = color

        if self.state == "announce":
            self.done = True
            return {}
        if self.state == "check":
            conflict = any(c == self.proposal for c in proposals.values())
            owned = self.proposal in self.taken.values()
            if not conflict and not owned:
                self.output = self.proposal
                self.state = "announce"
                return self.broadcast(("final", self.proposal))
            self.state = "propose"

        free = [
            c for c in range(1, self.palette_size + 1) if c not in self.taken.values()
        ]
        self.proposal = self.rng.choice(free)
        self.state = "check"
        return self.broadcast(("try", self.proposal))


def distributed_delta_plus_one(
    graph: Graph, seed: int = 0, sealed: bool = False, scheduler: str = "active"
) -> Tuple[Dict[Vertex, Color], int]:
    """Randomized distributed (Delta + 1)-coloring; returns (coloring, rounds)."""
    palette_size = graph.max_degree() + 1
    master = random.Random(seed)
    seeds = {v: master.randrange(2**62) for v in graph.vertices()}
    net = SyncNetwork(
        graph,
        lambda v, nbrs: RandomizedColoringProgram(
            v, nbrs, palette_size, random.Random(seeds[v])
        ),
        sealed=sealed,
        scheduler=scheduler,
    )
    outputs = net.run(max_rounds=80 * (len(graph).bit_length() + 2) + 30)
    return outputs, net.stats.rounds
