"""Baseline algorithms the paper compares against conceptually.

Luby's randomized maximal independent set [27] and (Delta + 1)-coloring
(sequential greedy and its randomized distributed counterpart): fast but
far from optimal on chordal graphs, which is the approximation gap the
paper's (1 + eps)-algorithms close.
"""

from .coloring_baselines import (
    RandomizedColoringProgram,
    distributed_delta_plus_one,
    sequential_greedy_coloring,
)
from .luby import LubyMISProgram, luby_mis

__all__ = [
    "RandomizedColoringProgram",
    "distributed_delta_plus_one",
    "sequential_greedy_coloring",
    "LubyMISProgram",
    "luby_mis",
]
