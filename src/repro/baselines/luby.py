"""Luby's randomized maximal independent set [27], on the message simulator.

The classic O(log n)-round algorithm the paper cites as the 30-year-old
baseline: in every phase each undecided node draws a random value and
joins the MIS when its value beats all undecided neighbors; neighbors of
joiners drop out.  Runs as a genuine :class:`NodeProgram`, so the round
and message statistics of :class:`SyncNetwork` apply.

Note the output is a *maximal* independent set -- on a path it converges
to ~2/3 of the maximum in expectation, which is exactly the gap the
paper's (1 + eps)-approximation algorithms close.
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Optional, Set, Tuple

from ..graphs.adjacency import Graph, Vertex
from ..localmodel.network import NodeContext, NodeProgram, SyncNetwork

__all__ = ["LubyMISProgram", "luby_mis"]


class LubyMISProgram(NodeProgram):
    """One node of Luby's algorithm.

    Message protocol per phase (two rounds):
      round A: broadcast ('value', x) with fresh random x;
      round B: broadcast ('in',) upon joining, ('out',) upon being
               dominated; silence means still undecided.

    Acts on silence: an undecided node whose neighbors all stayed quiet
    (nobody joined nearby) must still re-draw next phase, and an isolated
    vertex joins without ever receiving a message.
    """

    always_active = True

    def __init__(self, node: Vertex, neighbors: List[Vertex], rng: random.Random):
        super().__init__(node, neighbors)
        self.rng = rng
        self.undecided: Set[Vertex] = set(neighbors)
        self.state = "draw"
        self.value: Optional[float] = None

    def step(self, ctx: NodeContext) -> Mapping[Vertex, object]:
        # Absorb neighbor decisions first.
        joined_neighbor = False
        for u, message in ctx.inbox.items():
            if message == ("in",):
                joined_neighbor = True
                self.undecided.discard(u)
            elif message == ("out",):
                self.undecided.discard(u)

        if self.state == "announce":
            # We announced last round; now stop.
            self.done = True
            return {}
        if joined_neighbor:
            self.output = False
            self.state = "announce"
            return {u: ("out",) for u in self.undecided}

        if self.state == "draw":
            self.value = self.rng.random()
            self.state = "compare"
            return {u: ("value", self.value) for u in self.undecided}

        # state == "compare": all undecided neighbors sent values this round.
        values = {
            u: message[1]
            for u, message in ctx.inbox.items()
            if isinstance(message, tuple) and message[0] == "value"
        }
        if all(
            self.value < val or (self.value == val and self.node < u)
            for u, val in values.items()
        ):
            self.output = True
            self.state = "announce"
            return {u: ("in",) for u in self.undecided}
        self.state = "draw"
        return {}


def luby_mis(
    graph: Graph, seed: int = 0, sealed: bool = False, scheduler: str = "active"
) -> Tuple[Set[Vertex], int]:
    """Run Luby's MIS; returns (independent set, communication rounds)."""
    master = random.Random(seed)
    seeds = {v: master.randrange(2**62) for v in graph.vertices()}
    net = SyncNetwork(
        graph,
        lambda v, nbrs: LubyMISProgram(v, nbrs, random.Random(seeds[v])),
        sealed=sealed,
        scheduler=scheduler,
    )
    outputs = net.run(max_rounds=50 * (len(graph).bit_length() + 2) + 20)
    chosen = {v for v, joined in outputs.items() if joined}
    return chosen, net.stats.rounds
