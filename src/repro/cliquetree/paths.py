"""Binary, pendant, and internal paths of a clique forest.

Section 2 of the paper: a path C_1, ..., C_k in T is *binary* if every C_i
has degree at most 2 in T; *pendant* if additionally some end has degree at
most 1 (an isolated clique counts as a pendant path); *internal* if every
C_i has degree exactly 2.  A binary path is *maximal* if no clique outside
it can extend it.  The peeling process of Algorithms 1 and 6 removes, at
each iteration, all maximal pendant paths plus the maximal internal paths
that are "long enough" (diameter at least 3k for coloring; diameter at
least 2d + 3, or independence number at least d, for MIS).

The *diameter* of a path P is measured in G: the largest distance between
nodes lying in its cliques.  The *independence number* of P is
alpha(G[C_1 + ... + C_k]); by Lemma 7 that subgraph is an interval graph
whose clique path is P itself, so a right-endpoint greedy along P computes
it exactly (:func:`path_independence_number`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..graphs.adjacency import Graph, Vertex
from .forest import CliqueForest
from .wcig import Clique

__all__ = [
    "ForestPath",
    "maximal_binary_paths",
    "path_vertices",
    "nodes_with_subtree_in",
    "path_diameter",
    "path_diameter_at_least",
    "path_independence_number",
    "greedy_path_mis",
]


@dataclass(frozen=True)
class ForestPath:
    """A maximal binary path of a clique forest.

    ``cliques`` are ordered end to end.  ``left_attachment`` and
    ``right_attachment`` are the outside cliques (degree >= 3 in T)
    adjacent to ``cliques[0]`` and ``cliques[-1]`` respectively -- the
    C_s and C_e of Lemma 3 -- or ``None`` at a free end.  Both are None
    for a whole-component path; exactly one is set for a pendant path
    attached at one end; both are set for an internal path.
    """

    cliques: Tuple[Clique, ...]
    left_attachment: Optional[Clique]
    right_attachment: Optional[Clique]

    @property
    def attachments(self) -> Tuple[Clique, ...]:
        """The attachment cliques that exist (0, 1 or 2 of them)."""
        return tuple(
            c for c in (self.left_attachment, self.right_attachment) if c is not None
        )

    @property
    def is_pendant(self) -> bool:
        """Pendant: some end has no outside attachment (degree <= 1 in T)."""
        return self.left_attachment is None or self.right_attachment is None

    @property
    def is_internal(self) -> bool:
        """Internal: both ends attach to the rest of the forest."""
        return self.left_attachment is not None and self.right_attachment is not None

    def oriented(self) -> "ForestPath":
        """The same path with a free end (if any) on the right.

        Convenient for code that treats the left attachment as "the"
        boundary of a pendant path.
        """
        if self.left_attachment is None and self.right_attachment is not None:
            return ForestPath(
                cliques=tuple(reversed(self.cliques)),
                left_attachment=self.right_attachment,
                right_attachment=None,
            )
        return self

    def clique_set(self) -> Set[Clique]:
        return set(self.cliques)

    def __len__(self) -> int:
        return len(self.cliques)


def maximal_binary_paths(forest: CliqueForest) -> List[ForestPath]:
    """All maximal binary paths of the forest.

    These are exactly the connected components of the subforest induced by
    the cliques of degree <= 2 (inside a forest such components are always
    paths).  Every maximal binary path is pendant or internal, never both.
    The result is sorted by the first clique of each path for determinism.
    """
    low = [c for c in forest.cliques() if forest.degree(c) <= 2]
    low_set = set(low)
    seen: Set[Clique] = set()
    paths: List[ForestPath] = []
    for c in low:
        if c in seen:
            continue
        comp = {c}
        stack = [c]
        while stack:
            x = stack.pop()
            for y in forest.neighbors(x):
                if y in low_set and y not in comp:
                    comp.add(y)
                    stack.append(y)
        seen |= comp
        paths.append(_orient(forest, comp))
    paths.sort(key=lambda p: tuple(sorted(p.cliques[0])))
    return paths


def _orient(forest: CliqueForest, comp: Set[Clique]) -> ForestPath:
    """Order a binary component end-to-end and record its attachments.

    A path clique has degree <= 2 in T, so each end has at most one
    outside neighbor.
    """
    if len(comp) == 1:
        (c,) = comp
        outside = sorted(forest.neighbors(c) - comp, key=lambda d: tuple(sorted(d)))
        left = outside[0] if outside else None
        right = outside[1] if len(outside) > 1 else None
        return ForestPath(cliques=(c,), left_attachment=left, right_attachment=right)
    inner_deg = {c: len(forest.neighbors(c) & comp) for c in comp}
    ends = sorted(
        (c for c in comp if inner_deg[c] == 1), key=lambda c: tuple(sorted(c))
    )
    if len(ends) != 2:
        raise AssertionError("binary component of a forest must be a path")
    start = ends[0]
    ordered = [start]
    prev: Optional[Clique] = None
    cur = start
    while len(ordered) < len(comp):
        nxt = [d for d in forest.neighbors(cur) if d in comp and d != prev]
        prev, cur = cur, nxt[0]
        ordered.append(cur)

    def outside_of(end: Clique) -> Optional[Clique]:
        out = forest.neighbors(end) - comp
        if len(out) > 1:
            raise AssertionError("path end has degree > 2 in the forest")
        return next(iter(out), None)

    return ForestPath(
        cliques=tuple(ordered),
        left_attachment=outside_of(ordered[0]),
        right_attachment=outside_of(ordered[-1]),
    )


def path_vertices(path: Sequence[Clique]) -> Set[Vertex]:
    """V_P = C_1 + ... + C_k: every node intersecting the path (Lemma 7)."""
    out: Set[Vertex] = set()
    for c in path:
        out |= c
    return out


def nodes_with_subtree_in(
    forest: CliqueForest, path: Sequence[Clique]
) -> Set[Vertex]:
    """Nodes v whose whole subtree T(v) lies on the path (phi(v) inside it).

    These are the nodes the peeling step removes for this path (the sets
    V_i of Algorithm 1 / W_P of Algorithm 6).  Since T(v) is connected, the
    containment phi(v) subset-of path already makes T(v) a subpath.
    """
    members = set(path)
    out: Set[Vertex] = set()
    for v in path_vertices(path):
        if forest.phi(v) <= members:
            out.add(v)
    return out


def path_diameter(graph: Graph, path: Sequence[Clique]) -> int:
    """diam(P) = max over u, v in the path's cliques of dist_G(u, v).

    Distances are measured in ``graph`` (the current graph G[U_i] during
    peeling).  Nodes of the path's cliques are always mutually reachable
    there because consecutive cliques intersect.
    """
    verts = path_vertices(path)
    best = 0
    for s in verts:
        dist = graph.bfs_distances(s)
        for t in verts:
            if t not in dist:
                raise ValueError("path cliques are not mutually reachable in graph")
            best = max(best, dist[t])
    return best


def path_diameter_at_least(
    graph: Graph, path: Sequence[Clique], threshold: int
) -> bool:
    """Whether ``path_diameter(graph, path) >= threshold``, decided early.

    One BFS bounds the diameter within [ecc, 2 * ecc] (triangle
    inequality), so a single source already settles the decision unless
    the threshold falls in the gray zone — only then does the all-sources
    scan run, and it stops at the first distance reaching the threshold.
    Every BFS is depth-capped at ``threshold``: the decision never needs
    distances beyond it, so each search explores only the radius-t ball
    of its source rather than the whole component.  A vertex not reached
    within the cap has distance > threshold and settles the decision as
    ``True`` — this covers disconnection too (distance infinity), where
    :func:`path_diameter` would raise; during real peeling that case
    cannot arise because consecutive path cliques intersect.  This is
    what :func:`repro.coloring.prune.diameter_rule` calls: the peeling
    process only ever needs the comparison, never the exact diameter.
    """
    verts = sorted(path_vertices(path))
    if not verts:
        return 0 >= threshold
    dist = graph.bfs_distances(verts[0], cutoff=threshold)
    ecc = 0
    for t in verts:
        if t not in dist:
            return True
        ecc = max(ecc, dist[t])
    if ecc >= threshold:
        return True
    if 2 * ecc < threshold:
        return False
    for s in verts[1:]:
        dist = graph.bfs_distances(s, cutoff=threshold)
        for t in verts:
            if t not in dist or dist[t] >= threshold:
                return True
    return False


def greedy_path_mis(path: Sequence[Clique]) -> Set[Vertex]:
    """A maximum independent set of G[V_P] straight from the clique path.

    By Lemma 7, G[V_P] is an interval graph whose clique path is P; a
    vertex v occupies the consecutive clique positions where it appears.
    The classic right-endpoint greedy is exact: scan positions left to
    right, and whenever a vertex's interval ends, take it if none of its
    cliques contains an already-taken vertex.  Vertices ending at the same
    position are tried in increasing identifier order.
    """
    first: Dict[Vertex, int] = {}
    last: Dict[Vertex, int] = {}
    for i, c in enumerate(path):
        for v in c:
            first.setdefault(v, i)
            last[v] = i
    blocked = [False] * len(path)
    chosen: Set[Vertex] = set()
    by_end: Dict[int, List[Vertex]] = {}
    for v, end in last.items():
        by_end.setdefault(end, []).append(v)
    for i in range(len(path)):
        for v in sorted(by_end.get(i, ())):
            if not any(blocked[j] for j in range(first[v], last[v] + 1)):
                chosen.add(v)
                for j in range(first[v], last[v] + 1):
                    blocked[j] = True
    return chosen


def path_independence_number(path: Sequence[Clique]) -> int:
    """alpha(G[C_1 + ... + C_k]) (Section 2's independence number of P)."""
    return len(greedy_path_mis(path))
