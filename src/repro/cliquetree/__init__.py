"""Clique forests of chordal graphs (Section 3 of the paper).

Provides the weighted clique intersection graph W_G, the canonical maximum
weight spanning forest under the paper's deterministic edge order ``<``
(Theorem 2), the resulting :class:`~repro.cliquetree.forest.CliqueForest`
with subtree queries, binary/pendant/internal path machinery for the
peeling process (Section 2, Lemmas 3-6), and the local-view construction
that lets simulated network nodes reconstruct coherent fragments of the
global forest (Lemma 2, Figures 3-4).
"""

from .cliquepath import (
    NotIntervalError,
    clique_paths_of_interval_graph,
    consecutive_clique_arrangement,
    is_interval_graph,
)
from .forest import CliqueForest, build_clique_forest
from .local_view import (
    LocalView,
    compute_local_view,
    local_cliques_of,
    local_view_from_ball,
)
from .paths import (
    ForestPath,
    greedy_path_mis,
    maximal_binary_paths,
    nodes_with_subtree_in,
    path_diameter,
    path_independence_number,
    path_vertices,
)
from .spanning import UnionFind, maximum_weight_spanning_forest
from .wcig import (
    Clique,
    WeightedEdge,
    edge_key,
    sigma,
    wcig_edges_among,
    weighted_clique_intersection_edges,
)

__all__ = [
    "CliqueForest",
    "build_clique_forest",
    "NotIntervalError",
    "clique_paths_of_interval_graph",
    "consecutive_clique_arrangement",
    "is_interval_graph",
    "LocalView",
    "compute_local_view",
    "local_cliques_of",
    "local_view_from_ball",
    "ForestPath",
    "greedy_path_mis",
    "maximal_binary_paths",
    "nodes_with_subtree_in",
    "path_diameter",
    "path_independence_number",
    "path_vertices",
    "UnionFind",
    "maximum_weight_spanning_forest",
    "Clique",
    "WeightedEdge",
    "edge_key",
    "sigma",
    "wcig_edges_among",
    "weighted_clique_intersection_edges",
]
