"""Maximum weight spanning forests of W_G under the canonical order.

Kruskal's algorithm run over the edges in *decreasing* ``<`` order yields
the unique maximum weight spanning forest the paper's order prefers
(Lemma 1 gives its local-optimality property, which the local-view
construction of Section 3 relies on).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, List, Sequence, Set, Tuple

from .wcig import Clique, WeightedEdge, edge_key

__all__ = ["UnionFind", "maximum_weight_spanning_forest"]


class UnionFind:
    """Disjoint sets with path compression and union by size."""

    def __init__(self, items: Iterable[Hashable] = ()):
        self._parent: Dict[Hashable, Hashable] = {}
        self._size: Dict[Hashable, int] = {}
        for item in items:
            self.add(item)

    def add(self, item: Hashable) -> None:
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1

    def find(self, item: Hashable) -> Hashable:
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: Hashable, b: Hashable) -> bool:
        """Merge the sets of a and b; returns False if already merged."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return True


def maximum_weight_spanning_forest(
    cliques: Sequence[Clique], edges: Sequence[WeightedEdge]
) -> List[Tuple[Clique, Clique]]:
    """The unique maximum weight spanning forest preferred by ``<``.

    Edges are processed in decreasing order of their (w, l, h) key; ties
    cannot occur because (l, h) identifies the edge.  Returns the selected
    edges as (smaller-sigma, larger-sigma) clique pairs.
    """
    uf = UnionFind(cliques)
    ordered = sorted(edges, key=lambda e: edge_key(e[0], e[1]), reverse=True)
    chosen: List[Tuple[Clique, Clique]] = []
    for c1, c2, _w in ordered:
        if uf.union(c1, c2):
            chosen.append((c1, c2))
    return chosen
