"""The weighted clique intersection graph W_G and the edge order ``<``.

Section 3 of the paper: with a chordal graph G we associate W_G, whose
vertices are the maximal cliques of G and where cliques with a nonempty
intersection are joined by an edge of weight |C1 cap C2|.  By Theorem 2
[Bernstein & Goodman], the clique forests of G are exactly the maximum
weight spanning forests of W_G.

Because W_G may have many maximum weight spanning forests, the paper fixes a
canonical one by linearly ordering the edges: every clique C gets the word
sigma(C) = its members in increasing order, every edge e = C_i C_j gets the
triple (w_e, l_e, h_e) with w_e = |C_i cap C_j|,
l_e = lexmin(sigma(C_i), sigma(C_j)), h_e = lexmax(...), and e < f iff the
triples compare lexicographically.  Edges larger under ``<`` are preferred,
making the maximum weight spanning forest unique.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

from ..graphs.adjacency import Graph, Vertex
from ..graphs.chordal import maximal_cliques

Clique = FrozenSet[Vertex]
#: An edge of W_G: the two cliques plus its weight.
WeightedEdge = Tuple[Clique, Clique, int]

__all__ = ["Clique", "WeightedEdge", "sigma", "edge_key", "weighted_clique_intersection_edges", "wcig_edges_among"]


def sigma(clique: Clique) -> Tuple[Vertex, ...]:
    """The word sigma(C): members of C in increasing identifier order."""
    return tuple(sorted(clique))


def edge_key(c1: Clique, c2: Clique) -> Tuple[int, Tuple[Vertex, ...], Tuple[Vertex, ...]]:
    """The triple (w_e, l_e, h_e) that positions edge C1C2 in the order ``<``.

    Python's tuple comparison is exactly the lexicographic order the paper
    uses, so two keys compare as the paper's ``<`` does.
    """
    w = len(c1 & c2)
    s1, s2 = sigma(c1), sigma(c2)
    if s1 <= s2:
        lo, hi = s1, s2
    else:
        lo, hi = s2, s1
    return (w, lo, hi)


def wcig_edges_among(cliques: Sequence[Clique]) -> List[WeightedEdge]:
    """All W_G edges among the given cliques (pairs with nonempty intersection).

    Output-sensitive: walks each vertex's clique-incidence list and counts
    shared members per clique pair, so the cost is the total intersection
    weight rather than the O(q^2) all-pairs scan (retained as
    :func:`_reference_wcig_edges_among`).  The result lists pairs in
    ascending index order — exactly the reference's enumeration order.
    """
    incidence: Dict[Vertex, List[int]] = {}
    weights: Dict[Tuple[int, int], int] = {}
    for ci, c in enumerate(cliques):
        for v in c:
            lst = incidence.get(v)
            if lst is None:
                incidence[v] = [ci]
            else:
                for cj in lst:
                    key = (cj, ci)
                    weights[key] = weights.get(key, 0) + 1
                lst.append(ci)
    return [(cliques[i], cliques[j], w) for (i, j), w in sorted(weights.items())]


def _reference_wcig_edges_among(cliques: Sequence[Clique]) -> List[WeightedEdge]:
    """Label-space all-pairs reference for :func:`wcig_edges_among`."""
    edges: List[WeightedEdge] = []
    for i, c1 in enumerate(cliques):
        for c2 in cliques[i + 1:]:
            inter = c1 & c2
            if inter:
                edges.append((c1, c2, len(inter)))
    return edges


def weighted_clique_intersection_edges(graph: Graph) -> Tuple[List[Clique], List[WeightedEdge]]:
    """Maximal cliques of a chordal graph and the edges of its W_G."""
    cliques = maximal_cliques(graph)
    return cliques, wcig_edges_among(cliques)
