"""Local views of the clique forest (Section 3, Figures 3-4).

A network node v that knows its distance-d neighborhood can reconstruct the
part of the *global* clique forest around itself:

1. For every u in Gamma^{d-1}[v], node v knows all of Gamma[u], so it can
   compute phi(u) -- the maximal cliques of G containing u -- locally (a
   maximal clique containing u lies inside Gamma[u]).
2. By Lemma 2, the unique maximum weight spanning forest of W_G[phi(u)]
   equals the subtree T(u) of the global clique forest, because phi(u)
   induces a tree in T and the order ``<`` is defined by globally
   consistent data (clique members and intersection sizes).
3. The union of these subtrees over u in Gamma^{d-1}[v] is a coherent
   fragment T' of T.

:class:`LocalView` packages the fragment together with what the node can
*certify* about it: a clique C's degree in T is fully visible only when all
of C lies within Gamma^{d-1}[v] (every T-edge at C is witnessed by a shared
node, which then computes it in step 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Set, Tuple

from ..graphs.adjacency import Graph, Vertex
from ..graphs.chordal import maximal_cliques
from .forest import CliqueForest
from .spanning import maximum_weight_spanning_forest
from .wcig import Clique, wcig_edges_among

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..localmodel.gather import KnownBall

__all__ = [
    "LocalView",
    "local_cliques_of",
    "compute_local_view",
    "local_view_from_ball",
]


def local_cliques_of(ball: Graph, u: Vertex) -> List[Clique]:
    """phi(u) computed from a ball that contains all of Gamma[u].

    The maximal cliques of G containing u are exactly the maximal cliques
    of G[Gamma[u]] containing u, and Gamma_G[u] is fully inside the ball by
    the caller's contract, so this is computable locally.
    """
    closed = ball.closed_neighborhood(u)
    sub = ball.induced_subgraph(closed)
    return [c for c in maximal_cliques(sub) if u in c]


@dataclass
class LocalView:
    """What node ``center`` sees of the global clique forest.

    ``forest`` is the reconstructed fragment T'.  ``confirmed`` holds the
    cliques whose T-degree is fully visible in the fragment; the degree of
    an unconfirmed clique in ``forest`` is only a lower bound on its true
    degree.  ``interior`` holds the nodes u whose complete subtree T(u) is
    part of the fragment (those in Gamma^{d-1}[center]).
    """

    center: Vertex
    radius: int
    forest: CliqueForest
    confirmed: Set[Clique]
    interior: Set[Vertex]

    def degree_is_exact(self, clique: Clique) -> bool:
        return frozenset(clique) in self.confirmed


def compute_local_view(graph: Graph, center: Vertex, radius: int) -> LocalView:
    """Simulate node ``center`` building its local view from Gamma^radius.

    ``graph`` plays the role of the current graph (G, or G[U_i] during
    peeling); the function only ever inspects the induced ball, mirroring
    what the LOCAL model makes available after ``radius`` rounds.
    """
    if radius < 1:
        raise ValueError("a local view needs radius >= 1")
    dist = graph.bfs_distances(center, cutoff=radius)
    ball = graph.induced_subgraph(set(dist))
    interior = {u for u, d in dist.items() if d <= radius - 1}
    return _view_from_ball_graph(center, radius, ball, interior)


def local_view_from_ball(ball: "KnownBall") -> LocalView:
    """Build the local view from a gathered :class:`KnownBall`.

    ``ball.as_graph()`` is exactly ``G[Gamma^radius[center]]`` (the
    gather contract), and a shortest path of length ``<= radius`` from
    the center stays inside that ball, so BFS distances computed inside
    the ball agree with distances in G up to the radius.  The result is
    therefore identical to ``compute_local_view(G, center, radius)`` --
    this is the message-level entry point used after a real
    :func:`~repro.localmodel.gather.gather_balls` run, where the global
    graph is no longer available.
    """
    if ball.radius < 1:
        raise ValueError("a local view needs radius >= 1")
    ball_graph = ball.as_graph()
    dist = ball_graph.bfs_distances(ball.center, cutoff=ball.radius)
    interior = {u for u, d in dist.items() if d <= ball.radius - 1}
    return _view_from_ball_graph(ball.center, ball.radius, ball_graph, interior)


def _view_from_ball_graph(
    center: Vertex, radius: int, ball: Graph, interior: Set[Vertex]
) -> LocalView:
    """Shared reconstruction: phi(u) subtrees over the interior, merged."""
    cliques: Set[Clique] = set()
    edges: Set[Tuple[Clique, Clique]] = set()
    for u in sorted(interior):
        phi_u = local_cliques_of(ball, u)
        cliques.update(phi_u)
        forest_edges = maximum_weight_spanning_forest(
            sorted(phi_u, key=lambda c: tuple(sorted(c))), wcig_edges_among(phi_u)
        )
        for c1, c2 in forest_edges:
            key = tuple(sorted((tuple(sorted(c1)), tuple(sorted(c2)))))
            edges.add((frozenset(key[0]), frozenset(key[1])))

    forest = CliqueForest(cliques, edges)
    confirmed = {c for c in cliques if c <= interior}
    return LocalView(
        center=center,
        radius=radius,
        forest=forest,
        confirmed=confirmed,
        interior=interior,
    )
