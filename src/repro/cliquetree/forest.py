"""The clique forest of a chordal graph.

A *clique forest* (Section 2) is a tree decomposition whose bags are exactly
the maximal cliques; G coincides with the intersection graph of the subtrees
T(v) = T[phi(v)], where phi(v) is the family of maximal cliques containing
v.  :func:`build_clique_forest` produces the canonical forest specified by
the paper's order ``<`` (Theorem 2 + the tie-breaking of Section 3), so
every caller -- including every simulated network node -- agrees on the same
forest.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..graphs.adjacency import Graph, Vertex
from .spanning import maximum_weight_spanning_forest
from .wcig import Clique, wcig_edges_among, weighted_clique_intersection_edges

__all__ = ["CliqueForest", "build_clique_forest"]


class CliqueForest:
    """A forest on a family of cliques, with subtree queries.

    Instances are immutable once constructed; the peeling process of the
    paper produces *new* forests (:meth:`without_cliques`) rather than
    mutating, which keeps the layer-by-layer reasoning of Lemmas 3-5 easy
    to mirror in code.
    """

    def __init__(self, cliques: Iterable[Clique], edges: Iterable[Tuple[Clique, Clique]]):
        self._cliques: List[Clique] = sorted(
            {frozenset(c) for c in cliques}, key=lambda c: tuple(sorted(c))
        )
        clique_set = set(self._cliques)
        self._adj: Dict[Clique, Set[Clique]] = {c: set() for c in self._cliques}
        for c1, c2 in edges:
            c1, c2 = frozenset(c1), frozenset(c2)
            if c1 not in clique_set or c2 not in clique_set:
                raise ValueError("forest edge references an unknown clique")
            if c1 == c2:
                raise ValueError("forest edges must join distinct cliques")
            self._adj[c1].add(c2)
            self._adj[c2].add(c1)
        self._phi: Dict[Vertex, Set[Clique]] = {}
        for c in self._cliques:
            for v in c:
                self._phi.setdefault(v, set()).add(c)
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        n_edges = sum(len(nbrs) for nbrs in self._adj.values()) // 2
        n_comps = len(self.components())
        if n_edges != len(self._cliques) - n_comps:
            raise ValueError("clique forest contains a cycle")

    # ------------------------------------------------------------------
    # basic structure
    # ------------------------------------------------------------------
    def cliques(self) -> List[Clique]:
        return list(self._cliques)

    def num_cliques(self) -> int:
        return len(self._cliques)

    def __len__(self) -> int:
        return len(self._cliques)

    def __contains__(self, clique: Clique) -> bool:
        return frozenset(clique) in self._adj

    def edges(self) -> List[Tuple[Clique, Clique]]:
        out = []
        for c, nbrs in self._adj.items():
            for d in nbrs:
                if tuple(sorted(c)) < tuple(sorted(d)):
                    out.append((c, d))
        return sorted(out, key=lambda e: (tuple(sorted(e[0])), tuple(sorted(e[1]))))

    def neighbors(self, clique: Clique) -> Set[Clique]:
        return set(self._adj[frozenset(clique)])

    def degree(self, clique: Clique) -> int:
        return len(self._adj[frozenset(clique)])

    def leaves(self) -> List[Clique]:
        """Cliques of degree <= 1 (isolated cliques included)."""
        return [c for c in self._cliques if len(self._adj[c]) <= 1]

    def vertices(self) -> List[Vertex]:
        """All graph vertices covered by the bags."""
        return sorted(self._phi)

    # ------------------------------------------------------------------
    # subtree queries (phi and T(v))
    # ------------------------------------------------------------------
    def phi(self, v: Vertex) -> Set[Clique]:
        """phi(T, v): the family of maximal cliques containing v."""
        if v not in self._phi:
            raise KeyError(f"vertex {v!r} appears in no bag")
        return set(self._phi[v])

    def subtree_is_connected(self, v: Vertex) -> bool:
        """Whether T[phi(v)] is a tree (required of a tree decomposition)."""
        bags = self._phi[v]
        start = next(iter(bags))
        seen = {start}
        stack = [start]
        while stack:
            c = stack.pop()
            for d in self._adj[c]:
                if d in bags and d not in seen:
                    seen.add(d)
                    stack.append(d)
        return seen == bags

    def is_valid_decomposition(self, graph: Graph) -> bool:
        """Full tree-decomposition check against ``graph`` (used by tests).

        Conditions of Section 2: every vertex in some bag, every edge in
        some bag, every phi(v) induces a subtree.
        """
        if set(self._phi) != set(graph.vertices()):
            return False
        for u, w in graph.edges():
            if not any(u in c and w in c for c in self._phi[u]):
                return False
        return all(self.subtree_is_connected(v) for v in self._phi)

    # ------------------------------------------------------------------
    # components / linearity
    # ------------------------------------------------------------------
    def components(self) -> List[List[Clique]]:
        """Connected components, each as a sorted clique list."""
        seen: Set[Clique] = set()
        comps: List[List[Clique]] = []
        for c in self._cliques:
            if c in seen:
                continue
            comp = {c}
            stack = [c]
            while stack:
                x = stack.pop()
                for y in self._adj[x]:
                    if y not in comp:
                        comp.add(y)
                        stack.append(y)
            seen |= comp
            comps.append(sorted(comp, key=lambda cl: tuple(sorted(cl))))
        return comps

    def is_linear_forest(self) -> bool:
        """Whether every component is a path (Theorem 1: iff G is interval)."""
        return all(len(self._adj[c]) <= 2 for c in self._cliques)

    def component_as_path(self, component: Sequence[Clique]) -> List[Clique]:
        """Order a path component end-to-end; raises if it is not a path."""
        comp = list(component)
        if len(comp) == 1:
            return comp
        degrees = {c: len(self._adj[c] & set(comp)) for c in comp}
        ends = [c for c in comp if degrees[c] == 1]
        if any(d > 2 for d in degrees.values()) or len(ends) != 2:
            raise ValueError("component is not a path")
        start = min(ends, key=lambda c: tuple(sorted(c)))
        path = [start]
        prev: Optional[Clique] = None
        cur = start
        while len(path) < len(comp):
            nxt = [d for d in self._adj[cur] if d != prev and d in set(comp)]
            if len(nxt) != 1:
                raise ValueError("component is not a path")
            prev, cur = cur, nxt[0]
            path.append(cur)
        return path

    # ------------------------------------------------------------------
    # removal (the peeling step)
    # ------------------------------------------------------------------
    def without_cliques(self, removed: Iterable[Clique]) -> "CliqueForest":
        """The forest T - R: drop the given cliques and incident edges.

        Lemmas 3-5 prove that when R is a union of maximal pendant paths
        and internal paths of large diameter, the result is again the
        clique forest of the reduced graph.
        """
        gone = {frozenset(c) for c in removed}
        unknown = gone - set(self._adj)
        if unknown:
            raise KeyError("removing cliques that are not in the forest")
        keep = [c for c in self._cliques if c not in gone]
        edges = [
            (c, d) for c, d in self.edges() if c not in gone and d not in gone
        ]
        return CliqueForest(keep, edges)

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CliqueForest):
            return NotImplemented
        return self._cliques == other._cliques and self.edges() == other.edges()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CliqueForest(cliques={len(self._cliques)}, edges={len(self.edges())})"


def build_clique_forest(graph: Graph) -> CliqueForest:
    """The canonical clique forest of a chordal graph (Theorem 2 + order <)."""
    cliques, edges = weighted_clique_intersection_edges(graph)
    chosen = maximum_weight_spanning_forest(cliques, edges)
    return CliqueForest(cliques, chosen)
