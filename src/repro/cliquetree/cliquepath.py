"""Clique paths of interval graphs (consecutive clique arrangements).

By the Gilmore--Hoffman characterization, a graph is interval iff its
maximal cliques admit a *consecutive arrangement*: a linear order in which
the cliques containing any fixed vertex are consecutive.  Theorem 1 of the
paper is the clique-forest view of the same fact.

Note that the *canonical* clique forest of Section 3 need not be linear for
an interval graph (the order ``<`` may prefer a star, e.g. on K_{1,m}), so
interval recognition cannot simply check linearity of the canonical forest.
This module finds a consecutive arrangement directly:

* cliques are placed left to right; at every step the *open* vertices
  (vertices shared between placed and unplaced cliques) must all be in the
  next clique, which prunes the search hard;
* candidate cliques with identical non-private content are interchangeable
  and only one is tried (this collapses the factorial symmetry of graphs
  like K_{1,m});
* failed suffix states are memoized -- the set of open vertices is a
  function of the remaining clique set, so the remaining set alone is a
  sound memo key.

On interval graphs the search runs in near-linear practice time; on
adversarial non-interval chordal inputs it terminates (memoization bounds
states by distinct remaining-sets encountered) and reports failure.

The peeling layers of Algorithms 1 and 6 never need this module: their
clique paths come directly from the clique forest (Lemma 7).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..graphs.adjacency import Graph, Vertex
from ..graphs.chordal import is_chordal, maximal_cliques
from .wcig import Clique

__all__ = [
    "NotIntervalError",
    "consecutive_clique_arrangement",
    "clique_paths_of_interval_graph",
    "is_interval_graph",
]


class NotIntervalError(ValueError):
    """Raised when an interval-graph-only routine receives a non-interval graph."""


def consecutive_clique_arrangement(
    cliques: Sequence[Clique],
) -> Optional[List[Clique]]:
    """A consecutive arrangement of one component's maximal cliques.

    Returns the ordered clique path, or ``None`` when no arrangement exists
    (the cliques do not come from an interval graph).  The cliques must
    belong to a single connected graph component; otherwise interleavings
    of the components would also have to be explored.
    """
    cliques = sorted({frozenset(c) for c in cliques}, key=lambda c: tuple(sorted(c)))
    if len(cliques) <= 1:
        return list(cliques)

    where: Dict[Vertex, Set[Clique]] = {}
    for c in cliques:
        for v in c:
            where.setdefault(v, set()).add(c)

    failed: Set[FrozenSet[Clique]] = set()

    def open_vertices(remaining: FrozenSet[Clique]) -> Set[Vertex]:
        """Vertices of remaining cliques that also appear in placed ones."""
        out = set()
        for c in remaining:
            for v in c:
                if not where[v] <= remaining:
                    out.add(v)
        return out

    def candidates(remaining: FrozenSet[Clique]) -> List[Clique]:
        need = open_vertices(remaining)
        cands = [c for c in remaining if need <= c]
        # Interchangeability pruning: candidates with the same non-private
        # content intersect every other clique identically, so trying one
        # of each signature class suffices.
        seen_sigs: Set[FrozenSet[Vertex]] = set()
        pruned: List[Clique] = []
        for c in sorted(cands, key=lambda c: tuple(sorted(c))):
            others: Set[Vertex] = set(need)
            for d in remaining:
                if d != c:
                    others |= d
            sig = frozenset(c & others)
            if sig not in seen_sigs:
                seen_sigs.add(sig)
                pruned.append(c)
        return pruned

    order: List[Clique] = []

    def place(remaining: FrozenSet[Clique]) -> bool:
        if not remaining:
            return True
        if remaining in failed:
            return False
        for c in candidates(remaining):
            order.append(c)
            if place(remaining - {c}):
                return True
            order.pop()
        failed.add(remaining)
        return False

    if place(frozenset(cliques)):
        return order
    return None


def clique_paths_of_interval_graph(graph: Graph) -> List[List[Clique]]:
    """One clique path per connected component of an interval graph.

    Raises :class:`NotIntervalError` when the graph is not interval (not
    chordal, or its cliques admit no consecutive arrangement).
    """
    if not is_chordal(graph):
        raise NotIntervalError("graph is not chordal, hence not interval")
    paths: List[List[Clique]] = []
    for comp in graph.connected_components():
        sub = graph.induced_subgraph(comp)
        arrangement = consecutive_clique_arrangement(maximal_cliques(sub))
        if arrangement is None:
            raise NotIntervalError(
                "maximal cliques admit no consecutive arrangement; "
                "graph is chordal but not interval"
            )
        paths.append(arrangement)
    return paths


def is_interval_graph(graph: Graph) -> bool:
    """Whether ``graph`` is an interval graph (Gilmore--Hoffman test)."""
    try:
        clique_paths_of_interval_graph(graph)
        return True
    except NotIntervalError:
        return False
