"""Source hashing for the experiment cache keys.

A cached cell result is only valid while the code that produced it is
unchanged.  Rather than hashing the whole package (which would invalidate
every cache entry on any edit), each experiment declares the *root*
modules it depends on and the cache key incorporates a hash of the
transitive intra-package import closure of those roots: editing
``repro.lowerbounds`` invalidates T9 but leaves T3's cached cells alive.

The closure is computed statically — ``ast``-parsing ``import`` statements
— so building a cache key never imports (or executes) the modules it
hashes.  Only imports that resolve inside the ``repro`` package are
followed; stdlib imports do not affect the key.
"""

from __future__ import annotations

import ast
import hashlib
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

__all__ = ["module_file", "module_closure", "source_hash"]

PACKAGE = "repro"

#: package root directory (src/repro); overridable for tests.
_PACKAGE_ROOT = Path(__file__).resolve().parent.parent


def module_file(name: str, root: Optional[Path] = None) -> Optional[Path]:
    """Resolve a dotted module name inside the package to its source file.

    ``repro.graphs.adjacency`` -> ``<root>/graphs/adjacency.py``;
    packages resolve to their ``__init__.py``.  Names that do not live
    under the package (stdlib, third-party) return ``None``.  Resolution
    is purely lexical — nothing is imported.
    """
    root = root or _PACKAGE_ROOT
    if name != PACKAGE and not name.startswith(PACKAGE + "."):
        return None
    parts = name.split(".")[1:]
    base = root.joinpath(*parts) if parts else root
    candidate = base.with_suffix(".py") if parts else None
    if candidate is not None and candidate.is_file():
        return candidate
    init = base / "__init__.py"
    if init.is_file():
        return init
    return None


def _absolute_name(node: ast.ImportFrom, module_name: str) -> Optional[str]:
    """The absolute dotted module an ``ImportFrom`` refers to."""
    if node.level == 0:
        return node.module
    # relative import: resolve against the importing module's package
    parts = module_name.split(".")
    # a module's package drops the last component; each extra level drops one more
    anchor = parts[: len(parts) - node.level]
    if not anchor:
        return None
    if node.module:
        anchor = anchor + node.module.split(".")
    return ".".join(anchor)


def _imports_of(path: Path, module_name: str) -> Set[str]:
    """Dotted names (possibly module-or-symbol) imported by a source file."""
    try:
        tree = ast.parse(path.read_text())
    except SyntaxError:
        return set()
    found: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                found.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            base = _absolute_name(node, module_name)
            if base is None:
                continue
            found.add(base)
            # ``from repro.graphs import adjacency`` names a submodule;
            # ``... import Graph`` names a symbol.  Record both candidates —
            # non-modules simply fail to resolve later.
            for alias in node.names:
                found.add(f"{base}.{alias.name}")
    return found


def _is_package_init(path: Path, root: Path) -> bool:
    return path.name == "__init__.py"


def module_closure(
    roots: Sequence[str], root: Optional[Path] = None
) -> Dict[str, Path]:
    """Transitive intra-package import closure of ``roots``.

    Returns ``{module name: source file}`` for every ``repro.*`` module
    reachable from the roots by following ``import`` statements.
    """
    root_dir = root or _PACKAGE_ROOT
    resolved: Dict[str, Path] = {}
    queue: List[str] = list(roots)
    seen: Set[str] = set()
    while queue:
        name = queue.pop()
        if name in seen:
            continue
        seen.add(name)
        path = module_file(name, root_dir)
        if path is None:
            continue
        resolved[name] = path
        # the full package name of the module, for resolving its relative imports
        pkg_relative = path.relative_to(root_dir)
        if path.name == "__init__.py":
            module_name = ".".join([PACKAGE, *pkg_relative.parent.parts])
        else:
            module_name = ".".join([PACKAGE, *pkg_relative.parent.parts, path.stem])
        module_name = module_name.rstrip(".") or PACKAGE
        for dep in _imports_of(path, module_name):
            if dep not in seen:
                queue.append(dep)
    return resolved


def source_hash(roots: Sequence[str], root: Optional[Path] = None) -> str:
    """Hex digest over the sources of the import closure of ``roots``.

    Stable across runs and machines; changes iff a file in the closure
    changes (or joins/leaves the closure).
    """
    closure = module_closure(roots, root)
    digest = hashlib.sha256()
    for name in sorted(closure):
        digest.update(name.encode())
        digest.update(b"\x00")
        digest.update(closure[name].read_bytes())
        digest.update(b"\x01")
    return digest.hexdigest()
