"""The cell functions the experiment engine fans out.

A *cell* is the atomic unit of work: one (experiment, family, n, seed,
ε, …) point of a sweep.  Every function here is

* **top-level** — so a ``ProcessPoolExecutor`` worker can address it by
  name without pickling code objects;
* **pure and deterministic** — output depends only on the keyword
  arguments (all generators are seeded), which is what makes the
  content-addressed cache sound;
* **JSON-valued** — payloads survive the disk cache round-trip exactly
  (binary64 floats round-trip through ``json`` bit-for-bit).

The one sanctioned exception to purity is the diagnostics family: the
``graph_cache_hit`` flag (the large-instance cells share a per-worker
graph cache, :func:`_cached_graph`, and each payload records whether
its instance was rebuilt or reused) and the executor ``fallback_reason``
(why a D1/K2 run left the batch path, verbatim from
:class:`~repro.localmodel.executor.BatchExecutor`).  Both reach the
per-cell JSONL log only — no render consumes them — so reports stay
byte-identical across ``--jobs`` counts and cache states.

The reduction from cell payloads back to EXPERIMENTS.md rows lives in
:mod:`repro.runner.registry`; it replicates the fold order of
:mod:`repro.analysis.experiments` so tables are byte-identical to the
serial path.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Tuple

from ..analysis.experiments import GRAPH_FAMILIES
from ..baselines import luby_mis, sequential_greedy_coloring
from ..coloring import (
    color_chordal_graph,
    diameter_rule,
    distributed_color_chordal,
    peel_chordal_graph,
    peeling_layers,
)
from ..coloring.greedy import peo_greedy_coloring
from ..graphs import (
    clique_number,
    maximal_cliques,
    num_colors,
    path_graph,
    random_chordal_graph,
    random_k_tree,
    simplicial_vertices,
    unit_interval_chain,
)
from ..lowerbounds import measure_r_round_mis
from ..mis import chordal_mis, independence_number_chordal, interval_mis

__all__ = [
    "a1_cell",
    "a2_cell",
    "a3_cell",
    "t3_cell",
    "t4_rounds_cell",
    "t4_epsilon_cell",
    "t56_cell",
    "t78_cell",
    "t9_cell",
    "l6_cell",
    "b1_cell",
    "figure_cell",
    "x1_cell",
    "k1_cell",
    "k2_cell",
    "c1_cell",
    "d1_cell",
    "f7_cell",
    "s1_cell",
    "s1_chaos_cell",
]


def _family_graph(family: str, n: int, seed: int):
    return GRAPH_FAMILIES[family](n, seed)


#: builders for the per-worker graph cache; every family here is fully
#: determined by ``(n, seed)``, which is what makes the cache sound
_CACHE_BUILDERS: Dict[str, Callable[[int, int], Any]] = {
    "path": lambda n, seed: path_graph(n),
    "interval": lambda n, seed: unit_interval_chain(n, seed=seed),
    "chordal": lambda n, seed: random_chordal_graph(n, seed=seed),
    "ktree3": lambda n, seed: random_k_tree(n, 3, seed=seed),
}

#: per-worker instance cache: (family, n, seed) -> Graph.  Pool workers
#: are reused across cells, so sweeps that revisit an instance (the D1
#: pipelines, K2's executor comparison) skip the generator — and the
#: CSR/bitset :class:`~repro.graphs.index.GraphIndex` cached on the
#: graph object (keyed by ``Graph.version``) comes along for free.
_GRAPH_CACHE: Dict[Tuple[str, int, int], Any] = {}

#: large instances are worth whole seconds to rebuild but also megabytes
#: to keep; a small FIFO bound keeps long sweeps from accreting every
#: graph they ever touched
_GRAPH_CACHE_CAP = 8


def _cached_graph(family: str, n: int, seed: int) -> Tuple[Any, bool]:
    """``(graph, cache_hit)`` for one named instance.

    Cells must treat the returned graph as read-only: it is shared with
    every later cell of the same worker that asks for the same key.
    """
    key = (family, n, seed)
    graph = _GRAPH_CACHE.get(key)
    if graph is not None:
        return graph, True
    builder = _CACHE_BUILDERS.get(family)
    if builder is None:
        raise ValueError(f"unknown cached graph family {family!r}")
    graph = builder(n, seed)
    while len(_GRAPH_CACHE) >= _GRAPH_CACHE_CAP:
        _GRAPH_CACHE.pop(next(iter(_GRAPH_CACHE)))
    _GRAPH_CACHE[key] = graph
    return graph, False


def _sleep_cell(seconds: float) -> Dict[str, Any]:
    """Test hook: a cell that only burns wall clock.

    The engine's timeout tests address it by name; it is never planned
    by the registry.
    """
    import time

    time.sleep(seconds)
    return {"slept": seconds}


def _exit_cell(code: int) -> Dict[str, Any]:
    """Test hook: a cell that hard-kills its process (``os._exit``).

    Simulates a segfault-style crash that no in-worker exception handler
    can catch; the engine's crash-isolation tests address it by name.  It
    is never planned by the registry.
    """
    import os

    os._exit(code)


def t3_cell(family: str, eps: float, n: int, seed: int) -> Dict[str, Any]:
    """T3: one Algorithm 1 run; ratio/chi/colors for the worst-seed fold."""
    g = _family_graph(family, n, seed)
    result = color_chordal_graph(g, epsilon=eps)
    return {
        "ratio": result.approximation_ratio(),
        "chi": result.chi,
        "colors": result.num_colors(),
    }


def t4_rounds_cell(n: int, epsilon: float, family: str, seed: int) -> Dict[str, Any]:
    """T4 (rounds vs n): one distributed MVC run at fixed ε."""
    g = _family_graph(family, n, seed)
    report = distributed_color_chordal(g, epsilon=epsilon)
    return {
        "n": n,
        "layers": report.result.peeling.num_layers(),
        "pruning_rounds": report.pruning_rounds,
        "total_rounds": report.total_rounds,
    }


def t4_epsilon_cell(eps: float, n: int, family: str, seed: int) -> Dict[str, Any]:
    """T4 (rounds vs ε): one distributed MVC run at fixed n."""
    g = _family_graph(family, n, seed)
    report = distributed_color_chordal(g, epsilon=eps)
    return {
        "eps": eps,
        "k": report.result.parameters.k,
        "total_rounds": report.total_rounds,
        "colors": report.num_colors(),
    }


def t56_cell(eps: float, n: int, seed: int) -> Dict[str, Any]:
    """T5/T6: one Algorithm 5 run on a unit-interval chain."""
    g = unit_interval_chain(n, seed=seed)
    result = interval_mis(g, eps)
    alpha = independence_number_chordal(g)
    return {"ratio": alpha / max(1, result.size()), "rounds": result.rounds}


def t78_cell(family: str, eps: float, n: int, seed: int) -> Dict[str, Any]:
    """T7/T8: one Algorithm 6 run."""
    g = _family_graph(family, n, seed)
    result = chordal_mis(g, eps)
    alpha = independence_number_chordal(g)
    return {"ratio": alpha / max(1, result.size()), "rounds": result.rounds}


def t9_cell(r: int, n: int, trials: int, seed: int) -> Dict[str, Any]:
    """T9: the r-round MIS experiment on the labeled path."""
    sample = measure_r_round_mis(n, r, trials=trials, seed=seed)
    return {
        "mean_size": sample.mean_size,
        "optimum": sample.optimum,
        "density_gap": sample.density_gap,
    }


def l6_cell(n: int, family: str, seed: int) -> Dict[str, Any]:
    """L6: peeling layer count vs the ⌈log₂ n⌉ + 1 bound."""
    g = _family_graph(family, n, seed)
    peeling = peel_chordal_graph(g, internal_rule=diameter_rule(4))
    return {
        "layers": peeling.num_layers(),
        "bound": math.ceil(math.log2(max(2, len(g)))) + 1,
    }


#: the K1/K2 graph families that scale to n = 10^5 (cache-builder keys)
_K1_FAMILIES = ("ktree3", "interval", "path")

#: families whose weighted clique-intersection graph stays sparse at
#: large n; random k-trees have hub vertices in Theta(n) maximal
#: cliques, so their WCIG is superlinearly dense and the peeling
#: column is skipped for them
_K1_PEEL_FAMILIES = ("interval", "path")


def k1_cell(family: str, n: int, seed: int, threshold: int) -> Dict[str, Any]:
    """K1: the whole chordal pipeline on one large-n instance.

    Runs the kernel-dispatched public API end to end — PEO via LexBFS,
    maximal cliques, greedy coloring, simplicial vertices, and (on the
    sparse-WCIG families) the Lemma 6 peeling — and reports structural
    invariants.  The speedup shows as feasibility: these cells sat far
    beyond the per-cell timeout on the pre-kernel substrate; wall-clock
    comparisons live in ``BENCH_kernels.json``.
    """
    if family not in _K1_FAMILIES:
        raise ValueError(f"unknown K1 family {family!r}")
    g, cache_hit = _cached_graph(family, n, seed)
    cliques = maximal_cliques(g)
    coloring = peo_greedy_coloring(g)
    payload: Dict[str, Any] = {
        "n": len(g),
        "m": g.num_edges(),
        "omega": max((len(c) for c in cliques), default=0),
        "colors": num_colors(coloring),
        "cliques": len(cliques),
        "simplicial": len(simplicial_vertices(g)),
        "layers": None,
        "exhausted": None,
        "graph_cache_hit": cache_hit,
    }
    if family in _K1_PEEL_FAMILIES:
        peel = peeling_layers(g, threshold)
        payload["layers"] = peel.num_layers()
        payload["exhausted"] = peel.exhausted
    return payload


def k2_cell(
    family: str, n: int, radius: int, executor: str, seed: int, sample: int
) -> Dict[str, Any]:
    """K2: one whole-round batch-executor gather at large n.

    Runs the delta gather under the requested executor mode and reports
    the dispatch the :class:`~repro.localmodel.executor.BatchExecutor`
    actually took plus the full message accounting — node-vs-batch rows
    of the same cell must agree on rounds and messages, which is the
    table-level witness of the executor equivalence contract.  ``sample``
    evenly spaced balls are checked against the BFS ground truth.
    Wall-clock comparisons live in ``BENCH_network.json``.
    """
    from ..graphs.index import graph_index
    from ..localmodel import BatchExecutor, DeltaGatherProgram

    g, cache_hit = _cached_graph(family, n, seed)
    index = graph_index(g)
    net = BatchExecutor(
        g,
        lambda v, nbrs: DeltaGatherProgram(v, nbrs, radius, None, index),
        mode=executor,
    )
    balls = net.run(max_rounds=radius + 1)
    stats = net.stats
    verts = sorted(g.vertices())
    step = max(1, len(verts) // sample)
    sampled = verts[::step][:sample]
    agree = sum(
        1
        for v in sampled
        if set(balls[v].states) == set(g.bfs_distances(v, cutoff=radius))
    )
    return {
        "family": family,
        "n": len(g),
        "m": g.num_edges(),
        "radius": radius,
        "executor": executor,
        "path": net.executed,
        "rounds": stats.rounds,
        "messages": stats.messages_sent,
        "max_messages_per_round": stats.max_messages_per_round,
        "sampled": len(sampled),
        "agree": agree,
        "graph_cache_hit": cache_hit,
        "fallback_reason": net.fallback_reason,
    }


def b1_cell(family: str, n: int, seed: int) -> Dict[str, Any]:
    """B1: our pipelines vs greedy coloring and Luby on one instance."""
    g = _family_graph(family, n, seed)
    luby_set, luby_rounds = luby_mis(g, seed=seed)
    return {
        "chi": clique_number(g),
        "greedy": num_colors(sequential_greedy_coloring(g)),
        "ours_colors": color_chordal_graph(g, epsilon=0.5).num_colors(),
        "alpha": independence_number_chordal(g),
        "luby": len(luby_set),
        "luby_rounds": luby_rounds,
        "ours_mis": chordal_mis(g, 0.45).size(),
    }


def a1_cell(multiplier: float, n: int, k: int, seed: int) -> Dict[str, Any]:
    """A1: peeling layers/rounds at one internal-threshold multiplier."""
    from ..coloring.parameters import ColoringParameters

    params = ColoringParameters.from_k(k)
    from ..graphs import random_chordal_graph

    g = random_chordal_graph(n, seed=seed, tree_size=n)
    threshold = max(4, int(params.internal_threshold * multiplier))
    peeling = peel_chordal_graph(g, internal_rule=diameter_rule(threshold))
    return {
        "threshold": threshold,
        "layers": peeling.num_layers(),
        "rounds": peeling.num_layers() * params.collect_radius,
    }


def a2_cell(chi: int, k: int) -> Dict[str, Any]:
    """A2: morph relay-cut budget at one (chi, k) point."""
    from ..coloring.parameters import ColoringParameters, morph_cut_budget

    params = ColoringParameters.from_k(k)
    spares = params.minimum_spares(chi)
    return {
        "palette": params.palette_size(chi),
        "spares": spares,
        "cuts": morph_cut_budget(chi, spares),
    }


def a3_cell(family: str, n: int, seed: int) -> Dict[str, Any]:
    """A3: what Algorithm 5's domination removal dissolves per family."""
    from ..graphs import (
        random_connected_interval_graph,
        remove_dominated_vertices,
    )

    families = {
        "random lengths": lambda s: random_connected_interval_graph(n, seed=s),
        "unit chain": lambda s: unit_interval_chain(n, seed=s),
    }
    g = families[family](seed)
    h = remove_dominated_vertices(g)
    comps = h.connected_components()
    max_diam = max((h.induced_subgraph(c).diameter() for c in comps), default=0)
    return {
        "n": len(g),
        "survivors": len(h),
        "components": len(comps),
        "max_diameter": max_diam,
    }


def figure_cell(figure: str) -> List[Dict[str, Any]]:
    """F1-F6: verify one figure of the worked 23-node example.

    Returns ``[{check, measured, expected}, ...]`` rows; ``measured`` and
    ``expected`` are stringified so the payload stays JSON-plain.
    """
    from ..cliquetree import (
        build_clique_forest,
        compute_local_view,
        nodes_with_subtree_in,
    )
    from ..graphs import (
        FIGURE3_CENTER,
        FIGURE5_PATH,
        PAPER_CLIQUES,
        paper_example_cliques,
        paper_example_graph,
    )

    g = paper_example_graph()
    checks: List[Dict[str, Any]] = []

    def add(check: str, measured: Any, expected: Any) -> None:
        checks.append(
            {"check": check, "measured": str(measured), "expected": str(expected)}
        )

    if figure == "F1":
        add("nodes", len(g), 23)
        add("edges", g.num_edges(), 35)
    elif figure == "F2":
        forest = build_clique_forest(g)
        add("maximal cliques", forest.num_cliques(), 15)
        add(
            "cliques match Figure 2",
            set(forest.cliques()) == set(paper_example_cliques()),
            True,
        )
        add("forest edges", len(forest.edges()), 14)
        add("valid tree decomposition", forest.is_valid_decomposition(g), True)
    elif figure == "F3/F4":
        forest = build_clique_forest(g)
        view = compute_local_view(g, FIGURE3_CENTER, 3)
        names = {"C1", "C2", "C3", "C5", "C6", "C7", "C8", "C9"}
        add(
            "radius-3 view of node 10",
            set(view.forest.cliques()) == {PAPER_CLIQUES[n] for n in names},
            True,
        )
        global_edges = {frozenset(e) for e in forest.edges()}
        add(
            "view edges are global forest edges",
            {frozenset(e) for e in view.forest.edges()} <= global_edges,
            True,
        )
    elif figure == "F5/F6":
        forest = build_clique_forest(g)
        path = [PAPER_CLIQUES[name] for name in FIGURE5_PATH]
        u = nodes_with_subtree_in(forest, path)
        add("removed nodes U", sorted(u), sorted({9, 10, 11, 12, 13, 14}))
        add(
            "T - P equals forest of G[V - U] (Lemma 3)",
            forest.without_cliques(path) == build_clique_forest(g.subgraph_without(u)),
            True,
        )
    else:  # pragma: no cover - registry only plans known figures
        raise ValueError(f"unknown figure {figure!r}")
    return checks


def _c1_instance(program: str, n: int, seed: int):
    """(class, graph, factory) for one named stock program at size n.

    The graph family per program matches the ``--sanitize`` suite of
    :mod:`repro.lint.cli`: the ball-structured programs run on chordal
    instances, the path/cycle specialists on their native topology.
    """
    import random

    from ..baselines.coloring_baselines import RandomizedColoringProgram
    from ..baselines.luby import LubyMISProgram
    from ..graphs import cycle_graph, path_graph, random_chordal_graph
    from ..localmodel import (
        BallGatherProgram,
        BFSLayerProgram,
        EchoCountProgram,
        LeaderElectionProgram,
        LinialPathProgram,
        vertex_key,
    )

    if program in ("bfs", "leader", "luby", "coloring"):
        g = random_chordal_graph(n, seed=seed, tree_size=n)
    elif program == "gather":
        g = cycle_graph(n)
    else:
        g = path_graph(n)

    def seeded(cls, *extra):
        master = random.Random(seed * 1_000_003 + 13)
        seeds = {v: master.randrange(2**62) for v in g.vertices()}
        return lambda v, nbrs: cls(v, nbrs, *extra, random.Random(seeds[v]))

    if program == "bfs":
        # a max-degree root: the generator may leave low-id vertices
        # isolated, and a silent BFS measures nothing
        root = min(
            g.vertices(),
            key=lambda v: (-len(list(g.neighbors_view(v))), vertex_key(v)),
        )
        return BFSLayerProgram, g, (
            lambda v, nbrs: BFSLayerProgram(v, nbrs, root, n + 1)
        )
    if program == "leader":
        return LeaderElectionProgram, g, (
            lambda v, nbrs: LeaderElectionProgram(v, nbrs, n + 1)
        )
    if program == "echo":
        return EchoCountProgram, g, (lambda v, nbrs: EchoCountProgram(v, nbrs, 0))
    if program == "gather":
        # radius scales with n so the `ball` class visibly grows while
        # every `const` program stays flat
        radius = max(2, n // 8)
        return BallGatherProgram, g, (
            lambda v, nbrs: BallGatherProgram(v, nbrs, radius, ("s", v))
        )
    if program == "linial":
        return LinialPathProgram, g, (
            lambda v, nbrs: LinialPathProgram(v, nbrs, id_bound=n)
        )
    if program == "luby":
        return LubyMISProgram, g, seeded(LubyMISProgram)
    if program == "coloring":
        return RandomizedColoringProgram, g, seeded(
            RandomizedColoringProgram, g.max_degree() + 1
        )
    raise ValueError(f"unknown C1 program {program!r}")


def c1_cell(program: str, n: int, seed: int) -> Dict[str, Any]:
    """C1: one metered run of a stock program vs its static certificate.

    Runs the program with a :class:`~repro.localmodel.meter.MessageMeter`
    sink and re-derives the static bandwidth certificate from the class's
    defining module, so the payload pairs the *measured* per-round words
    with the *certified* message-size class.  The render (and
    ``tests/lint/test_bandwidth.py``) check the one-sided contract:
    a ``const`` certificate must measure flat ``max_words`` as n grows.
    """
    import inspect
    from pathlib import Path

    from ..lint import certificates_for_modules, load_modules
    from ..localmodel import MessageMeter, SyncNetwork

    cls, g, factory = _c1_instance(program, n, seed)
    meter = MessageMeter()
    net = SyncNetwork(g, factory, sinks=[meter])
    net.run(max_rounds=4 * n + 8)

    source = Path(inspect.getsourcefile(cls) or "")
    cert = next(
        c
        for c in certificates_for_modules(load_modules([source]))
        if c.program == cls.__name__
    )
    return {
        "program": program,
        "n": len(g),
        "rounds": len(meter.per_round),
        "max_words": meter.max_payload_words,
        "total_words": meter.total_payload_words,
        "static_class": cert.message_class,
        "horizon": cert.horizon,
    }


#: the D1 pipelines and their decision parameters (built lazily per cell)
_D1_PIPELINES = ("mvc", "mis")


def _d1_params(pipeline: str):
    from ..coloring.parameters import ColoringParameters
    from ..mis import mis_local_parameters

    if pipeline == "mvc":
        # the literal Algorithm 3 constants at k=1: threshold 3, radius 10
        return ColoringParameters.paper_constants(1)
    if pipeline == "mis":
        # the MIS peeling rule at a scaled-down d=1: threshold 5, radius 15
        return mis_local_parameters(1)
    raise ValueError(f"unknown D1 pipeline {pipeline!r}")


def d1_cell(
    pipeline: str,
    family: str,
    n: int,
    seed: int,
    sample: int,
    executor: str = "auto",
) -> Dict[str, Any]:
    """D1: message-level layer decisions at scale via delta gathering.

    Runs the real delta-gather program over the whole instance, then has
    ``sample`` evenly spaced nodes decide layer membership from their
    gathered balls alone, each validated against the centralized decision
    rule on the global graph.  Feasibility is the point — these sizes
    were unreachable under the full flood — and the wall-clock /
    message-volume comparison against the flood lives in
    ``BENCH_network.json``.  ``executor`` passes through to
    :func:`~repro.localmodel.gather.gather_balls` (default ``"auto"``:
    the whole-round batch kernel when eligible, identical outputs).
    """
    from ..coloring import local_layer_decision, local_layer_decision_from_ball
    from ..localmodel import gather_balls

    if family not in ("path", "interval", "chordal"):
        raise ValueError(f"unknown D1 family {family!r}")
    g, cache_hit = _cached_graph(family, n, seed)
    params = _d1_params(pipeline)
    info: Dict[str, Any] = {}
    balls, rounds = gather_balls(
        g, params.collect_radius, executor=executor, info=info
    )
    verts = sorted(g.vertices())
    step = max(1, len(verts) // sample)
    sampled = verts[::step][:sample]
    agree = 0
    joined = 0
    for v in sampled:
        from_ball = local_layer_decision_from_ball(balls[v], params)
        joined += 1 if from_ball else 0
        if from_ball == local_layer_decision(g, v, params):
            agree += 1
    return {
        "pipeline": pipeline,
        "family": family,
        "n": len(g),
        "radius": params.collect_radius,
        "rounds": rounds,
        "sampled": len(sampled),
        "agree": agree,
        "joined": joined,
        "executor": executor,
        "path": info.get("executed"),
        "graph_cache_hit": cache_hit,
        "fallback_reason": info.get("fallback_reason"),
    }


def x1_cell(
    length: int,
    n: int,
    handles: int,
    seed: int,
    epsilon: float,
    exact_chi_guard: int,
) -> Dict[str, Any]:
    """X1: one triangulate-then-color detour on an l-chordal instance."""
    from ..extensions.k_chordal import (
        chordal_with_handles,
        longest_induced_cycle,
        triangulate_and_color,
    )

    g = chordal_with_handles(n, handles, length, seed=seed)
    outcome = triangulate_and_color(g, epsilon=epsilon, exact_chi_guard=exact_chi_guard)
    return {
        "cycle": longest_induced_cycle(g, cap=length + 6),
        "fill": outcome.fill_edges,
        "ratio": outcome.detour_ratio,
    }


def f7_cell(program: str, drop: float, retry: bool, n: int, seed: int) -> Dict[str, Any]:
    """F7: resilience of one stock program at one Bernoulli drop rate.

    Runs :func:`~repro.localmodel.resilience.resilience_check` on the
    same program/graph pairing as C1 (``_c1_instance``) against three
    seeded fault plans at ``drop``, optionally wrapping the program in
    the :class:`~repro.localmodel.resilience.ReliableProgram` retry/ack
    envelope.  Returns the classification plus the validity/recovery
    accounting the F7 table pins.
    """
    from ..localmodel import (
        fault_grid,
        resilience_check,
        stock_validator,
        vertex_key,
        with_retries,
    )

    _cls, g, factory = _c1_instance(program, n, seed)
    kind = {
        "bfs": "bfs", "leader": "leader", "echo": "echo", "gather": "gather",
        "luby": "mis", "coloring": "coloring", "linial": "coloring",
    }[program]
    root = None
    if kind == "bfs":
        # must match the root _c1_instance wired into the program
        root = min(
            g.vertices(),
            key=lambda v: (-len(list(g.neighbors_view(v))), vertex_key(v)),
        )
    validator = stock_validator(kind, g, root=root)
    if retry:
        factory = with_retries(factory)
    report = resilience_check(
        g,
        factory,
        validator,
        grid=fault_grid(drop_rates=(drop,), seeds=(1, 2, 3), burst=None),
        max_rounds=4_000,
    )
    recover = report.rounds_to_recover
    return {
        "program": program,
        "n": len(g),
        "drop": drop,
        "retry": retry,
        "classification": report.classification,
        "baseline_rounds": report.baseline_rounds,
        "recover": recover,
        "runs": len(report.outcomes),
        "completed": sum(1 for o in report.outcomes if o.complete),
        "valid": sum(1 for o in report.outcomes if o.valid),
    }


def _s1_instance(program: str, n: int, seed: int, repaired: bool):
    """(graph, factory, validator, flip kind) for one S1 stabilization cell.

    ``program`` is ``coloring`` (randomized Delta+1) or ``mis`` (Luby).
    The repaired variants wrap the same seeded inner factory in the
    :class:`~repro.localmodel.stabilize.RepairableProgram` envelope with
    the matching policy; MIS is validated against the *maximality*-aware
    invariant, since a member flipped out of the set is invisible to the
    independence-only check.
    """
    from ..localmodel import (
        ColoringRepair,
        MISRepair,
        maximal_independent_set_validator,
        proper_coloring_validator,
        repairable,
    )

    inner_name = "coloring" if program == "coloring" else "luby"
    _cls, g, inner = _c1_instance(inner_name, n, seed)
    if program == "coloring":
        validator = proper_coloring_validator
        palette = g.max_degree() + 1
        policy = lambda: ColoringRepair(palette, first_color=1)  # noqa: E731
        flip = "color"
    elif program == "mis":
        validator = maximal_independent_set_validator
        policy = MISRepair
        flip = "mis"
    else:
        raise ValueError(f"unknown S1 program {program!r}")
    factory = repairable(inner, policy) if repaired else inner
    return g, factory, validator, flip


def _s1_violating_flip(g, outputs, flip: str, corrupt_round: int):
    """A (victim, corrupt seed) whose flip provably violates the invariant.

    The corruption kinds are seeded value shifts, so a color flip can
    land on a free color and change nothing the invariant sees; the
    pinned stabilization table wants the adversarial case, so this scans
    victims (largest key first) and seeds for a flip that collides with
    a neighbor.  The probe must use the real ``corrupt_round`` -- the
    corruption stream is keyed on it.  The MIS flip is a deterministic
    negation -- flipping the largest-key member out always breaks
    maximality.
    """
    from ..localmodel import CorruptSpec, corrupt_program, vertex_key

    if flip == "mis":
        members = sorted(
            (v for v, joined in outputs.items() if joined is True),
            key=vertex_key,
        )
        return members[-1], 1

    class _Probe:
        pass

    for v in sorted(g.vertices(), key=vertex_key, reverse=True):
        neighbor_colors = {outputs[u] for u in g.neighbors_view(v)}
        for cseed in range(1, 65):
            probe = _Probe()
            probe.output = outputs[v]
            corrupt_program(probe, CorruptSpec(v, corrupt_round, "color"), cseed)
            if probe.output in neighbor_colors:
                return v, cseed
    raise RuntimeError("no conflicting color flip found in 64 seeds")


def s1_cell(program: str, repaired: bool, kind: str, n: int, seed: int) -> Dict[str, Any]:
    """S1: one single-node corruption against one (un)repaired program.

    Runs the fault-free baseline, schedules one
    :class:`~repro.localmodel.faults.CorruptSpec` two rounds past
    quiescence (the hardest case: every node already halted), and
    returns the :func:`~repro.localmodel.stabilize.stabilization_run`
    profile.  ``kind`` is ``flip`` (an output flip chosen to provably
    violate the invariant, see ``_s1_violating_flip``) or ``scramble``
    (a seeded arbitrary field scramble, reported as measured).
    """
    from ..localmodel import (
        CorruptSpec,
        FaultPlan,
        SyncNetwork,
        stabilization_run,
        vertex_key,
    )

    g, factory, validator, flip = _s1_instance(program, n, seed, repaired)
    net = SyncNetwork(g, factory)
    outputs = net.run(max_rounds=4_000)
    corrupt_round = net.stats.rounds + 2
    if kind == "flip":
        victim, cseed = _s1_violating_flip(g, outputs, flip, corrupt_round)
        spec = CorruptSpec(victim, corrupt_round, flip)
    elif kind == "scramble":
        victim, cseed = max(g.vertices(), key=vertex_key), 7
        spec = CorruptSpec(victim, corrupt_round, "scramble")
    else:
        raise ValueError(f"unknown S1 corruption kind {kind!r}")
    plan = FaultPlan(seed=cseed, corrupts=(spec,))
    report = stabilization_run(g, factory, validator, plan, max_rounds=4_000)
    return {
        "program": program,
        "repaired": repaired,
        "kind": kind,
        "n": len(g),
        "victim": str(victim),
        "plan": plan.spec(),
        **report.as_dict(),
    }


def s1_chaos_cell(program: str, trials: int, seed: int, n: int) -> Dict[str, Any]:
    """S1: a seeded chaos soak of one stock program, repro-gated.

    Fuzzes ``trials`` randomized fault plans (channel + corruption) at
    the program and reports the failure/minimization accounting; the
    render asserts every failure carries a minimized spec that
    reproduces (``all_reproduce``), which is what makes chaos findings
    actionable.
    """
    from ..localmodel import stock_validator, vertex_key
    from ..localmodel.chaos import chaos_soak

    _cls, g, factory = _c1_instance(program, n, seed)
    kind = {
        "bfs": "bfs", "leader": "leader", "echo": "echo", "gather": "gather",
        "luby": "mis", "coloring": "coloring", "linial": "coloring",
    }[program]
    root = None
    if kind == "bfs":
        root = min(
            g.vertices(),
            key=lambda v: (-len(list(g.neighbors_view(v))), vertex_key(v)),
        )
    validator = stock_validator(kind, g, root=root)
    report = chaos_soak(
        [(program, g, factory, validator)],
        trials=trials,
        seed=seed,
        max_rounds=4_000,
    )
    summary = report.summary()
    failures = report.failures()
    return {
        "program": program,
        "n": len(g),
        "trials": summary["trials"],
        "failures": summary["failures"],
        "by_kind": summary["by_kind"],
        "minimized": summary["minimized"],
        "reproduced": summary["reproduced"],
        "all_reproduce": all(t.reproduces for t in failures),
        "executor": report.executors.get(program, {}),
        "specs": [t.minimized for t in failures],
    }
