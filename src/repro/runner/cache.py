"""Content-addressed on-disk cache for experiment cells.

A cell's key is the SHA-256 of its experiment id, its cell function, its
canonicalised parameters, and the :mod:`repro.runner.sourcehash` digest
of the modules the experiment depends on.  The value is the cell's
JSON-serialisable payload.  Consequences:

* re-running a report is a cache hit unless the parameters or the
  *relevant* source changed — editing an unrelated module keeps every
  entry valid;
* there is no invalidation logic to get wrong: stale entries are simply
  never addressed again (``clean`` removes them wholesale);
* only **successful** cells are cached — failures and timeouts always
  re-execute.

Entries live under ``<cache dir>/<key[:2]>/<key>.json``; the default
directory is ``$REPRO_CACHE`` or ``.repro-cache`` in the working
directory.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

__all__ = ["ResultCache", "default_cache_dir", "cell_key"]

#: bump to invalidate every existing entry on a format change
FORMAT_VERSION = 1

ENV_VAR = "REPRO_CACHE"


def default_cache_dir() -> Path:
    env = os.environ.get(ENV_VAR)
    if env:
        return Path(env)
    return Path.cwd() / ".repro-cache"


def canonical_params(params: Dict[str, Any]) -> str:
    """Deterministic JSON encoding of a cell's parameters."""
    return json.dumps(params, sort_keys=True, separators=(",", ":"))


def cell_key(experiment: str, fn: str, params: Dict[str, Any], source: str) -> str:
    payload = "|".join(
        [str(FORMAT_VERSION), experiment, fn, canonical_params(params), source]
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class ResultCache:
    """Disk-backed cell-result store, keyed by content address."""

    def __init__(self, directory: Optional[os.PathLike] = None) -> None:
        self.directory = Path(directory) if directory else default_cache_dir()
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    def get(self, key: str) -> Tuple[bool, Any]:
        """``(hit, value)``; unreadable or corrupt entries count as misses."""
        path = self._path(key)
        try:
            with open(path) as handle:
                entry = json.load(handle)
            value = entry["value"]
        except (OSError, ValueError, KeyError):
            self.misses += 1
            return False, None
        self.hits += 1
        return True, value

    def put(self, key: str, value: Any, meta: Optional[Dict[str, Any]] = None) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"format": FORMAT_VERSION, "value": value, **(meta or {})}
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w") as handle:
            json.dump(entry, handle, sort_keys=True)
        os.replace(tmp, path)  # atomic: concurrent runs never see partial writes

    def clean(self) -> int:
        """Remove the cache directory; returns the number of entries dropped."""
        if not self.directory.is_dir():
            return 0
        count = sum(1 for _ in self.directory.glob("*/*.json"))
        shutil.rmtree(self.directory)
        return count

    def size(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*/*.json"))
