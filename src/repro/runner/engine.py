"""The parallel cell executor.

Cells are embarrassingly parallel — every (experiment, family, n, seed,
ε) point is an independent seeded computation — so the engine fans them
out over a ``ProcessPoolExecutor`` and folds the results back **in plan
order**, which makes the output independent of completion order (and
therefore of ``--jobs``).

Failure semantics (see ``docs/runner.md``):

* a cell that **raises** returns a ``failed`` envelope with the
  exception and traceback tail; the rest of the sweep continues;
* a cell that **hangs** is bounded by a per-cell wall-clock timeout,
  enforced *inside* the worker with ``SIGALRM`` so the pool survives and
  the worker is reusable (pure-Python cells cannot block signal
  delivery);
* a **crashed worker** (hard abort) breaks the pool; the engine marks
  every unfinished cell failed instead of propagating
  ``BrokenProcessPool``;
* only ``ok`` cells enter the cache — failures always re-execute.

With ``jobs=1`` the engine runs cells in-process (no pool, no pickling),
which is also the byte-compat reference path for the tests.
"""

from __future__ import annotations

import signal
import threading
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from contextlib import contextmanager
from typing import Any, Callable, Dict, List, Optional, Tuple

from . import cells as _cells
from .cache import ResultCache, cell_key
from .registry import REGISTRY, CellSpec
from .results import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMEOUT,
    CellResult,
    RunStats,
    collect_stats,
)
from .sourcehash import source_hash

__all__ = ["run_cells", "execute_cell", "CellTimeout"]


class CellTimeout(Exception):
    """Raised inside a worker when a cell exceeds its wall-clock budget."""


@contextmanager
def _alarm(seconds: Optional[float]):
    """Bound a block's wall clock via SIGALRM where that is possible.

    No-ops (the engine then has no hang protection, only crash
    protection) off the main thread or on platforms without SIGALRM.
    """
    usable = (
        seconds is not None
        and seconds > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _raise_timeout(signum, frame):
        raise CellTimeout()

    previous = signal.signal(signal.SIGALRM, _raise_timeout)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def execute_cell(
    experiment: str,
    fn_name: str,
    params: Dict[str, Any],
    timeout: Optional[float] = None,
) -> Tuple[str, Any, Optional[str], float]:
    """Run one cell in the current process, never letting it raise.

    Returns ``(status, value, error, elapsed)`` — the picklable envelope
    the pool ships back.  This is the top-level worker entry point.
    """
    fn = getattr(_cells, fn_name, None)
    start = time.perf_counter()
    if fn is None:
        return STATUS_FAILED, None, f"unknown cell function {fn_name!r}", 0.0
    try:
        with _alarm(timeout):
            value = fn(**params)
        return STATUS_OK, value, None, time.perf_counter() - start
    except CellTimeout:
        elapsed = time.perf_counter() - start
        return (
            STATUS_TIMEOUT,
            None,
            f"cell exceeded the {timeout:g}s per-cell timeout",
            elapsed,
        )
    except BaseException as exc:  # crash isolation: a cell must not kill a sweep
        elapsed = time.perf_counter() - start
        tail = traceback.format_exc(limit=5)
        return STATUS_FAILED, None, f"{type(exc).__name__}: {exc}\n{tail}", elapsed


def _cached_result(
    spec: CellSpec, cache: Optional[ResultCache], hashes: Dict[str, str]
) -> Tuple[Optional[str], Optional[CellResult]]:
    """``(key, hit-or-None)`` for a spec; key is None with caching off."""
    if cache is None:
        return None, None
    key = cell_key(spec.experiment, spec.fn, spec.params, hashes[spec.experiment])
    hit, value = cache.get(key)
    if hit:
        return key, CellResult(
            experiment=spec.experiment,
            fn=spec.fn,
            params=dict(spec.params),
            status=STATUS_OK,
            value=value,
            cached=True,
        )
    return key, None


def run_cells(
    specs: List[CellSpec],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    timeout: Optional[float] = None,
    on_result: Optional[Callable[[CellResult], None]] = None,
) -> Tuple[List[CellResult], RunStats]:
    """Execute every spec; results come back in **plan order**.

    ``on_result`` fires per cell as outcomes settle (progress hooks);
    ordering of the callbacks follows completion, the returned list does
    not.
    """
    started = time.perf_counter()
    jobs = max(1, int(jobs))
    results: List[Optional[CellResult]] = [None] * len(specs)
    hashes = (
        {eid: source_hash(REGISTRY[eid].deps) for eid in {s.experiment for s in specs}}
        if cache is not None
        else {}
    )

    pending: List[Tuple[int, str]] = []  # (index, cache key) still to execute
    for index, spec in enumerate(specs):
        key, hit = _cached_result(spec, cache, hashes)
        if hit is not None:
            results[index] = hit
            if on_result:
                on_result(hit)
        else:
            pending.append((index, key))

    def settle(index: int, key: Optional[str], envelope) -> None:
        status, value, error, elapsed = envelope
        spec = specs[index]
        result = CellResult(
            experiment=spec.experiment,
            fn=spec.fn,
            params=dict(spec.params),
            status=status,
            value=value,
            error=error,
            elapsed=elapsed,
        )
        results[index] = result
        if cache is not None and key is not None and status == STATUS_OK:
            cache.put(key, value, {"experiment": spec.experiment, "fn": spec.fn})
        if on_result:
            on_result(result)

    # jobs > 1 must route even a single pending cell through the pool:
    # running it in-process would let a hard crash (segfault, os._exit)
    # kill the whole sweep instead of settling a `failed` envelope.
    if jobs == 1 or not pending:
        for index, key in pending:
            spec = specs[index]
            settle(index, key, execute_cell(spec.experiment, spec.fn, spec.params, timeout))
    else:
        _run_pool(specs, pending, jobs, timeout, settle)

    final = [r for r in results if r is not None]
    stats = collect_stats(final, jobs=jobs, wall=time.perf_counter() - started)
    return final, stats


def _run_pool(
    specs: List[CellSpec],
    pending: List[Tuple[int, Optional[str]]],
    jobs: int,
    timeout: Optional[float],
    settle: Callable[[int, Optional[str], Tuple], None],
) -> None:
    # A generous pool-level deadline backstops the in-worker SIGALRM for
    # the pathological case of a hang the signal cannot interrupt.
    backstop = None
    if timeout is not None:
        waves = -(-len(pending) // jobs)  # ceil
        backstop = timeout * (waves + 1) + 30.0
    executor = ProcessPoolExecutor(max_workers=min(jobs, len(pending)))
    try:
        futures = {}
        for index, key in pending:
            spec = specs[index]
            fut = executor.submit(
                execute_cell, spec.experiment, spec.fn, spec.params, timeout
            )
            futures[fut] = (index, key)
        deadline = time.monotonic() + backstop if backstop is not None else None
        for fut, (index, key) in futures.items():
            remaining = None
            if deadline is not None:
                remaining = max(0.1, deadline - time.monotonic())
            try:
                envelope = fut.result(timeout=remaining)
            except FutureTimeoutError:
                fut.cancel()
                envelope = (
                    STATUS_TIMEOUT,
                    None,
                    "cell did not finish before the pool deadline",
                    remaining or 0.0,
                )
            except Exception as exc:  # BrokenProcessPool and friends
                envelope = (
                    STATUS_FAILED,
                    None,
                    f"worker crashed: {type(exc).__name__}: {exc}",
                    0.0,
                )
            settle(index, key, envelope)
    finally:
        executor.shutdown(wait=False, cancel_futures=True)
