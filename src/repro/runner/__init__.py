"""Parallel, cached experiment engine behind ``repro run``.

The sweeps that verify every quantitative claim of EXPERIMENTS.md are
embarrassingly parallel across graph instances.  This package registers
each of them as a named, parameterized experiment (ids ``T3``, ``T4``,
``T5/T6``, ``T7/T8``, ``T9``, ``L6``, ``B1``, ``F1-F6``, ``X1``), fans
the individual cells out over a process pool with per-cell timeouts and
crash isolation, caches successful cell results on disk under
content-addressed keys, and folds the payloads back into byte-identical
EXPERIMENTS.md tables regardless of completion order.

High-level API::

    from repro import runner
    report, results, stats = runner.run_experiments(["T4"], jobs=4)
    print(report)                 # the EXPERIMENTS.md table text
    print(stats.summary_line())   # cells / failures / cache hits / wall

See ``docs/runner.md`` for the cache-key design, the failure semantics,
and the JSONL schema.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from .cache import ResultCache, default_cache_dir
from .engine import execute_cell, run_cells
from .registry import (
    REGISTRY,
    CellSpec,
    Experiment,
    UnknownExperimentError,
    experiment_ids,
    plan_cells,
    render_report,
    resolve_ids,
)
from .results import CellResult, RunStats, bench_summary, write_jsonl

__all__ = [
    "REGISTRY",
    "CellSpec",
    "CellResult",
    "Experiment",
    "ResultCache",
    "RunStats",
    "UnknownExperimentError",
    "bench_summary",
    "default_cache_dir",
    "execute_cell",
    "experiment_ids",
    "plan_cells",
    "render_report",
    "resolve_ids",
    "run_bench",
    "run_cells",
    "run_experiments",
    "scheduler_bench",
    "write_jsonl",
]


def run_experiments(
    ids: Optional[List[str]] = None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    use_cache: bool = False,
    cache_dir: Optional[Path] = None,
    timeout: Optional[float] = None,
    overrides: Optional[Dict[str, Dict[str, Any]]] = None,
    jsonl: Optional[str] = None,
    on_result: Optional[Callable[[CellResult], None]] = None,
) -> Tuple[str, List[CellResult], RunStats]:
    """Plan, execute, and render the chosen experiments.

    Returns ``(report text, per-cell results in plan order, stats)``.
    Caching is opt-in: pass ``use_cache=True`` (optionally with
    ``cache_dir``) or an explicit :class:`ResultCache`.
    """
    canonical = resolve_ids(ids or [])
    if cache is None and use_cache:
        cache = ResultCache(cache_dir)
    specs = plan_cells(canonical, overrides)
    results, stats = run_cells(
        specs, jobs=jobs, cache=cache, timeout=timeout, on_result=on_result
    )
    if jsonl:
        write_jsonl(jsonl, results)
    report = render_report(specs, [r.value for r in results], canonical)
    return report, results, stats


def scheduler_bench(
    quiet_n: int = 1000, busy_n: int = 10_000, seed: int = 3
) -> Dict[str, Any]:
    """Active-set vs dense scheduling on the LOCAL-model simulator.

    Two workloads on a path graph, chosen to bracket the scheduler's
    behavior.  The *quiet* one is tree convergecast (``tree_count``):
    almost every node idles while the reports climb toward the root, so
    the active set stays tiny and the scheduler's win is large.  The
    *busy* one is Luby's MIS: an ``always_active`` program whose
    scheduled sets coincide with the dense reference by construction, so
    parity (ratio ~1) is the expected — and asserted-meaningful —
    result.  Outputs are compared for equality before any timing is
    reported, so a speedup can never come from computing something else.
    """
    import time

    from ..baselines.luby import luby_mis
    from ..graphs import path_graph
    from ..localmodel.programs import tree_count

    def timed(fn: Callable[[], Any]) -> Tuple[Any, float]:
        start = time.perf_counter()
        value = fn()
        return value, time.perf_counter() - start

    def compare(workload: str, fn: Callable[[str], Any]) -> Dict[str, Any]:
        active_out, active_s = timed(lambda: fn("active"))
        dense_out, dense_s = timed(lambda: fn("dense"))
        return {
            "workload": workload,
            "active_seconds": active_s,
            "dense_seconds": dense_s,
            "speedup_active_over_dense": dense_s / active_s if active_s else 0.0,
            "outputs_identical": active_out == dense_out,
        }

    quiet = path_graph(quiet_n)
    busy = path_graph(busy_n)
    return {
        "quiet_convergecast": compare(
            f"tree_count on path_graph({quiet_n})",
            lambda scheduler: tree_count(quiet, 0, scheduler=scheduler),
        ),
        "busy_luby": compare(
            f"luby_mis(seed={seed}) on path_graph({busy_n})",
            lambda scheduler: luby_mis(busy, seed=seed, scheduler=scheduler),
        ),
    }


def run_bench(
    ids: Optional[List[str]] = None,
    jobs: Optional[int] = None,
    overrides: Optional[Dict[str, Dict[str, Any]]] = None,
    timeout: Optional[float] = None,
) -> Dict[str, Any]:
    """Serial vs parallel vs warm-cache comparison (``BENCH_runner.json``).

    Three runs over the same cells: jobs=1 without cache (the legacy
    serial baseline), jobs=N against a fresh cache (cold parallel), and
    jobs=N again (warm — measures pure cache-hit latency).  Also asserts
    the three reports are byte-identical and records the verdict, plus a
    ``scheduler`` section comparing the simulator's active-set scheduler
    against the dense reference (see :func:`scheduler_bench`).
    """
    import os
    import tempfile

    canonical = resolve_ids(ids or [])
    jobs = jobs or os.cpu_count() or 2
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        cache = ResultCache(Path(tmp))
        serial_report, _, serial = run_experiments(
            canonical, jobs=1, overrides=overrides, timeout=timeout
        )
        parallel_report, _, parallel = run_experiments(
            canonical, jobs=jobs, cache=cache, overrides=overrides, timeout=timeout
        )
        cached_report, _, cached = run_experiments(
            canonical, jobs=jobs, cache=cache, overrides=overrides, timeout=timeout
        )
    summary = bench_summary(canonical, serial, parallel, cached)
    summary["reports_identical"] = (
        serial_report == parallel_report == cached_report
    )
    summary["scheduler"] = scheduler_bench()
    return summary
