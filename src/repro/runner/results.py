"""Result envelopes, the per-cell JSONL log, and the bench summary.

Every cell execution — cached or fresh, successful or not — produces one
:class:`CellResult`.  The JSONL log is one JSON object per cell with the
schema documented in ``docs/runner.md``; ``BENCH_runner.json`` aggregates
a serial-vs-parallel-vs-cached comparison for the repo's bench
trajectory.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "STATUS_OK",
    "STATUS_FAILED",
    "STATUS_TIMEOUT",
    "CellResult",
    "RunStats",
    "write_jsonl",
    "bench_summary",
]

STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_TIMEOUT = "timeout"


@dataclass
class CellResult:
    """Outcome of one (experiment, params) cell."""

    experiment: str
    fn: str
    params: Dict[str, Any]
    status: str
    value: Any = None
    error: Optional[str] = None
    elapsed: float = 0.0
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def to_json(self) -> Dict[str, Any]:
        return asdict(self)


@dataclass
class RunStats:
    """Aggregate of one engine run (attached to the result list)."""

    cells: int = 0
    ok: int = 0
    failed: int = 0
    timeouts: int = 0
    cache_hits: int = 0
    wall_seconds: float = 0.0
    jobs: int = 1
    by_experiment: Dict[str, int] = field(default_factory=dict)

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.cells if self.cells else 0.0

    def to_json(self) -> Dict[str, Any]:
        data = asdict(self)
        data["cache_hit_rate"] = self.cache_hit_rate
        return data

    def summary_line(self) -> str:
        bits = [
            f"{self.cells} cells",
            f"{self.ok} ok",
            f"{self.cache_hits} cached",
        ]
        if self.failed:
            bits.append(f"{self.failed} failed")
        if self.timeouts:
            bits.append(f"{self.timeouts} timed out")
        bits.append(f"jobs={self.jobs}")
        bits.append(f"{self.wall_seconds:.2f}s")
        return ", ".join(bits)


def collect_stats(results: List[CellResult], jobs: int, wall: float) -> RunStats:
    stats = RunStats(jobs=jobs, wall_seconds=wall)
    for res in results:
        stats.cells += 1
        if res.status == STATUS_OK:
            stats.ok += 1
        elif res.status == STATUS_TIMEOUT:
            stats.timeouts += 1
        else:
            stats.failed += 1
        if res.cached:
            stats.cache_hits += 1
        stats.by_experiment[res.experiment] = (
            stats.by_experiment.get(res.experiment, 0) + 1
        )
    return stats


def write_jsonl(path: str, results: List[CellResult]) -> None:
    """One JSON object per cell, in deterministic (plan) order."""
    with open(path, "w") as handle:
        for res in results:
            handle.write(json.dumps(res.to_json(), sort_keys=True))
            handle.write("\n")


def bench_summary(
    ids: List[str],
    serial: RunStats,
    parallel: RunStats,
    cached: RunStats,
) -> Dict[str, Any]:
    """The ``BENCH_runner.json`` payload: serial vs parallel vs warm cache."""
    speedup = (
        serial.wall_seconds / parallel.wall_seconds
        if parallel.wall_seconds > 0
        else 0.0
    )
    return {
        "benchmark": "repro.runner",
        "ids": ids,
        "cells": serial.cells,
        "serial": serial.to_json(),
        "parallel": parallel.to_json(),
        "cached_rerun": cached.to_json(),
        "speedup_parallel_over_serial": speedup,
        "cached_hit_rate": cached.cache_hit_rate,
    }
