"""The experiment registry: every EXPERIMENTS.md id as a parameterized plan.

Each :class:`Experiment` knows how to

* **plan** — expand its parameter grid into independent
  :class:`CellSpec`\\ s, the units the engine fans out (one graph
  instance / one measurement each);
* **render** — fold the cell payloads back into the exact table text of
  ``EXPERIMENTS.md``.  The folds replicate the loop order and tie-break
  rules of :mod:`repro.analysis.experiments` (e.g. T3's ``>=`` lets the
  *latest* worst seed win), so a ``--jobs 8`` run is byte-identical to
  the legacy serial report;
* **deps** — the root modules whose source feeds the cache key (see
  :mod:`repro.runner.sourcehash`).

Ids accept the aliases used across the docs: ``T5``, ``T6``, ``T5-6``
and ``T5/6`` all resolve to the canonical ``T5/T6``; ``F3`` resolves to
``F1-F6``.  Unknown ids raise :class:`UnknownExperimentError` listing
the known ones — never a silent skip.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import groupby
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..analysis.experiments import GRAPH_FAMILIES
from ..analysis.tables import format_table

__all__ = [
    "CellSpec",
    "Experiment",
    "UnknownExperimentError",
    "REGISTRY",
    "experiment_ids",
    "get",
    "resolve_ids",
    "plan_cells",
    "render_report",
]


class UnknownExperimentError(ValueError):
    """Raised for ids that resolve to no registered experiment."""

    def __init__(self, unknown: Sequence[str]):
        self.unknown = list(unknown)
        self.known = experiment_ids()
        ids = ", ".join(self.unknown)
        super().__init__(
            f"unknown experiment id(s): {ids}; known ids are "
            + ", ".join(self.known)
        )


@dataclass(frozen=True)
class CellSpec:
    """One unit of work: a cell function plus its JSON-plain parameters."""

    experiment: str
    fn: str
    params: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class Experiment:
    id: str
    title: str
    deps: Tuple[str, ...]
    plan: Callable[..., List[CellSpec]]
    render: Callable[[List[CellSpec], List[Any]], str]
    defaults: Dict[str, Any] = field(default_factory=dict)


# --------------------------------------------------------------------------
# plans: expand sweeps into cells (loop order mirrors analysis.experiments)

def _plan_t3(eps_values=(1.0, 0.5, 0.25), n=150, seeds=(0, 1, 2)):
    return [
        CellSpec("T3", "t3_cell", {"family": f, "eps": e, "n": n, "seed": s})
        for f in GRAPH_FAMILIES
        for e in eps_values
        for s in seeds
    ]


def _plan_t4(
    ns=(100, 200, 400, 800),
    epsilon=1.0,
    eps_values=(2.0, 1.0, 0.5, 0.25),
    eps_n=300,
    family="tree",
    seed=0,
):
    rounds = [
        CellSpec(
            "T4",
            "t4_rounds_cell",
            {"n": n, "epsilon": epsilon, "family": family, "seed": seed},
        )
        for n in ns
    ]
    epsilons = [
        CellSpec(
            "T4",
            "t4_epsilon_cell",
            {"eps": e, "n": eps_n, "family": family, "seed": seed},
        )
        for e in eps_values
    ]
    return rounds + epsilons


def _plan_t56(eps_values=(0.8, 0.4, 0.2), n=300, seeds=(0, 1, 2)):
    return [
        CellSpec("T5/T6", "t56_cell", {"eps": e, "n": n, "seed": s})
        for e in eps_values
        for s in seeds
    ]


def _plan_t78(eps_values=(0.45, 0.3, 0.2), n=150, seeds=(0, 1)):
    return [
        CellSpec("T7/T8", "t78_cell", {"family": f, "eps": e, "n": n, "seed": s})
        for f in GRAPH_FAMILIES
        for e in eps_values
        for s in seeds
    ]


def _plan_t9(r_values=(4, 8, 16, 32, 64), n=4000, trials=8, seed=0):
    return [
        CellSpec("T9", "t9_cell", {"r": r, "n": n, "trials": trials, "seed": seed})
        for r in r_values
    ]


def _plan_l6(ns=(50, 100, 200, 400, 800), family="chordal", seed=0):
    return [
        CellSpec("L6", "l6_cell", {"n": n, "family": family, "seed": seed})
        for n in ns
    ]


def _plan_b1(n=200, seeds=(0, 1, 2)):
    return [
        CellSpec("B1", "b1_cell", {"family": f, "n": n, "seed": s})
        for f in GRAPH_FAMILIES
        for s in seeds[:1]
    ]


def _plan_figures(figures=("F1", "F2", "F3/F4", "F5/F6")):
    return [CellSpec("F1-F6", "figure_cell", {"figure": f}) for f in figures]


def _plan_x1(
    handle_lengths=(3, 5, 7, 9),
    n=20,
    handles=3,
    seeds=(0, 1),
    epsilon=0.5,
    exact_chi_guard=45,
):
    return [
        CellSpec(
            "X1",
            "x1_cell",
            {
                "length": length,
                "n": n,
                "handles": handles,
                "seed": s,
                "epsilon": epsilon,
                "exact_chi_guard": exact_chi_guard,
            },
        )
        for length in handle_lengths
        for s in seeds
    ]


#: the C1 suite: every stock node program, in certificate-table order
C1_PROGRAMS = ("bfs", "leader", "echo", "gather", "linial", "luby", "coloring")


def _plan_c1(programs=C1_PROGRAMS, ns=(16, 32, 64), seed=0):
    return [
        CellSpec("C1", "c1_cell", {"program": p, "n": n, "seed": seed})
        for p in programs
        for n in ns
    ]


#: the F7 suite: the C1 programs measured for fault resilience
F7_PROGRAMS = ("bfs", "leader", "echo", "gather", "luby", "coloring")


def _plan_f7(programs=F7_PROGRAMS, drops=(0.1, 0.3), n=16, seed=0):
    return [
        CellSpec(
            "F7",
            "f7_cell",
            {"program": p, "drop": d, "retry": retry, "n": n, "seed": seed},
        )
        for p in programs
        for retry in (False, True)
        for d in drops
    ]


#: the S1 stabilization matrix: repaired vs plain under state corruption
S1_PROGRAMS = ("coloring", "mis")

#: the S1 chaos-soak programs: one per output invariant class
S1_CHAOS_PROGRAMS = ("bfs", "coloring", "luby")


def _plan_s1(
    programs=S1_PROGRAMS,
    kinds=("flip", "scramble"),
    chaos_programs=S1_CHAOS_PROGRAMS,
    trials=8,
    n=14,
    seed=0,
):
    cells = [
        CellSpec(
            "S1",
            "s1_cell",
            {
                "program": p,
                "repaired": repaired,
                "kind": kind,
                "n": n,
                "seed": seed,
            },
        )
        for p in programs
        for repaired in (False, True)
        for kind in kinds
    ]
    cells.extend(
        CellSpec(
            "S1",
            "s1_chaos_cell",
            {"program": p, "trials": trials, "seed": seed, "n": n},
        )
        for p in chaos_programs
    )
    return cells


#: the D1 sweep: message-level pipelines on large instances
D1_PIPELINES = ("mvc", "mis")


def _plan_d1(
    pipelines=D1_PIPELINES,
    path_ns=(2000, 20000),
    interval_ns=(500, 2000),
    chordal_ns=(200, 500),
    sample=64,
    seed=0,
    executor="auto",
):
    # paths scale to n = 2 * 10^4; interval chains have denser balls and
    # are capped where the per-node view reconstruction stays tractable;
    # random chordal graphs peel in several layers (mixed decisions) but
    # their balls cover most of the graph, so they stay smaller still
    return [
        CellSpec(
            "D1",
            "d1_cell",
            {
                "pipeline": p,
                "family": f,
                "n": n,
                "seed": seed,
                "sample": sample,
                "executor": executor,
            },
        )
        for p in pipelines
        for f, ns in (
            ("path", path_ns),
            ("interval", interval_ns),
            ("chordal", chordal_ns),
        )
        for n in ns
    ]


def _plan_k1(
    families=("ktree3", "interval", "path"),
    ns=(10000, 30000, 100000),
    threshold=12,
    seed=0,
):
    return [
        CellSpec(
            "K1",
            "k1_cell",
            {"family": f, "n": n, "seed": seed, "threshold": threshold},
        )
        for f in families
        for n in ns
    ]


#: the K2 sweep: (family, n, radius) cells run under BOTH executors so
#: the table itself witnesses the rounds/messages equivalence, and
#: batch-only cells at sizes where the per-node path is wasteful
K2_PAIR_CELLS = (("path", 20000, 16), ("interval", 2000, 10))
K2_LARGE_CELLS = (("path", 100000, 10), ("interval", 10000, 8))


def _plan_k2(
    pairs=K2_PAIR_CELLS,
    large=K2_LARGE_CELLS,
    executors=("node", "batch"),
    sample=32,
    seed=0,
):
    cells = [
        CellSpec(
            "K2",
            "k2_cell",
            {
                "family": f,
                "n": n,
                "radius": r,
                "executor": e,
                "seed": seed,
                "sample": sample,
            },
        )
        for f, n, r in pairs
        for e in executors
    ]
    # the large cells exist to show whole-round kernel feasibility; they
    # follow a forced executor only when batch is excluded outright
    large_executor = "batch" if "batch" in executors else executors[-1]
    cells += [
        CellSpec(
            "K2",
            "k2_cell",
            {
                "family": f,
                "n": n,
                "radius": r,
                "executor": large_executor,
                "seed": seed,
                "sample": sample,
            },
        )
        for f, n, r in large
    ]
    return cells


# --------------------------------------------------------------------------
# renders: fold payloads back into the EXPERIMENTS.md tables

def _groups(specs, values, key):
    """Consecutive (key, [(spec, value), ...]) groups, failed cells dropped."""
    pairs = list(zip(specs, values))
    for group_key, group in groupby(pairs, key=lambda sv: key(sv[0])):
        cells = [(s, v) for s, v in group if v is not None]
        yield group_key, cells


def _render_t3(specs, values):
    rows = []
    for (family, eps), cells in _groups(
        specs, values, lambda s: (s.params["family"], s.params["eps"])
    ):
        worst, chi, colors = 0.0, 0, 0
        for _, val in cells:
            if val["ratio"] >= worst:
                worst, chi, colors = val["ratio"], val["chi"], val["colors"]
        rows.append((family, eps, chi, colors, worst, 1.0 + eps))
    return format_table(
        ["family", "eps", "chi", "colors", "worst ratio", "bound 1+eps"], rows
    )


def _render_t4(specs, values):
    rounds_rows = [
        (v["n"], v["layers"], v["pruning_rounds"], v["total_rounds"])
        for s, v in zip(specs, values)
        if s.fn == "t4_rounds_cell" and v is not None
    ]
    eps_rows = [
        (v["eps"], v["k"], v["total_rounds"], v["colors"])
        for s, v in zip(specs, values)
        if s.fn == "t4_epsilon_cell" and v is not None
    ]
    a = format_table(["n", "layers", "pruning rounds", "total rounds"], rounds_rows)
    b = format_table(["eps", "k", "total rounds", "colors"], eps_rows)
    return a + "\n\n(rounds vs eps at n = 300, random trees)\n\n" + b


def _render_t56(specs, values):
    rows = []
    for eps, cells in _groups(specs, values, lambda s: s.params["eps"]):
        worst, rounds = 1.0, 0
        for _, val in cells:
            worst = max(worst, val["ratio"])
            rounds = max(rounds, val["rounds"])
        rows.append((eps, worst, 1.0 + eps, rounds))
    return format_table(["eps", "worst alpha/|I|", "bound 1+eps", "rounds"], rows)


def _render_t78(specs, values):
    rows = []
    for (family, eps), cells in _groups(
        specs, values, lambda s: (s.params["family"], s.params["eps"])
    ):
        worst, rounds = 1.0, 0
        for _, val in cells:
            worst = max(worst, val["ratio"])
            rounds = max(rounds, val["rounds"])
        rows.append((family, eps, worst, 1.0 + eps, rounds))
    return format_table(
        ["family", "eps", "worst alpha/|I|", "bound 1+eps", "rounds"], rows
    )


def _render_t9(specs, values):
    rows = [
        (
            s.params["r"],
            v["mean_size"],
            v["optimum"],
            v["density_gap"],
            s.params["r"] * v["density_gap"],
        )
        for s, v in zip(specs, values)
        if v is not None
    ]
    return format_table(["r", "E|I|", "optimum", "density gap", "r x gap"], rows)


def _render_l6(specs, values):
    rows = [
        (s.params["n"], v["layers"], v["bound"])
        for s, v in zip(specs, values)
        if v is not None
    ]
    return format_table(["n", "layers", "ceil(log2 n) + 1"], rows)


def _render_b1(specs, values):
    rows = [
        (
            s.params["family"],
            v["chi"],
            v["greedy"],
            v["ours_colors"],
            v["alpha"],
            v["luby"],
            v["ours_mis"],
        )
        for s, v in zip(specs, values)
        if v is not None
    ]
    return format_table(
        ["family", "chi", "greedy colors", "our colors", "alpha", "Luby |I|", "our |I|"],
        rows,
    )


def _render_figures(specs, values):
    rows = []
    for spec, checks in zip(specs, values):
        if checks is None:
            continue
        for check in checks:
            ok = "yes" if check["measured"] == check["expected"] else "NO"
            rows.append(
                (
                    spec.params["figure"],
                    check["check"],
                    check["measured"],
                    check["expected"],
                    ok,
                )
            )
    return format_table(["figure", "check", "measured", "expected", "ok"], rows)


def _plan_a13(
    multipliers=(0.25, 0.5, 1.0, 2.0),
    threshold_n=300,
    k=2,
    chi_values=(4, 16, 64),
    k_values=(1, 2, 4, 8),
    domination_n=300,
    seed=0,
):
    threshold = [
        CellSpec(
            "A1-A3",
            "a1_cell",
            {"multiplier": m, "n": threshold_n, "k": k, "seed": seed},
        )
        for m in multipliers
    ]
    spares = [
        CellSpec("A1-A3", "a2_cell", {"chi": chi, "k": kv})
        for chi in chi_values
        for kv in k_values
    ]
    domination = [
        CellSpec(
            "A1-A3",
            "a3_cell",
            {"family": f, "n": domination_n, "seed": seed},
        )
        for f in ("random lengths", "unit chain")
    ]
    return threshold + spares + domination


def _render_a13(specs, values):
    a1 = format_table(
        ["multiplier", "threshold", "layers", "collection rounds"],
        [
            (s.params["multiplier"], v["threshold"], v["layers"], v["rounds"])
            for s, v in zip(specs, values)
            if s.fn == "a1_cell" and v is not None
        ],
    )
    a2 = format_table(
        ["chi", "k", "palette", "spares", "relay cuts"],
        [
            (s.params["chi"], s.params["k"], v["palette"], v["spares"], v["cuts"])
            for s, v in zip(specs, values)
            if s.fn == "a2_cell" and v is not None
        ],
    )
    a3 = format_table(
        ["family", "n", "survivors", "components", "max diameter"],
        [
            (
                s.params["family"],
                v["n"],
                v["survivors"],
                v["components"],
                v["max_diameter"],
            )
            for s, v in zip(specs, values)
            if s.fn == "a3_cell" and v is not None
        ],
    )
    return (
        "(A1: internal-threshold sweep)\n\n" + a1
        + "\n\n(A2: spare colors vs relay cuts)\n\n" + a2
        + "\n\n(A3: domination-removal fragmentation)\n\n" + a3
    )


def _render_x1(specs, values):
    rows = []
    for length, cells in _groups(specs, values, lambda s: s.params["length"]):
        worst: Optional[float] = None
        fill = 0
        cycle = 0
        for _, val in cells:
            cycle = max(cycle, val["cycle"])
            fill = max(fill, val["fill"])
            ratio = val["ratio"]
            if ratio is not None and (worst is None or ratio > worst):
                worst = ratio
        rows.append((length, cycle, fill, worst))
    return format_table(
        ["handle len", "longest induced cycle", "fill edges", "worst colors/chi"],
        rows,
    )


def _render_c1(specs, values):
    ns = sorted({s.params["n"] for s in specs})
    rows = []
    for program, cells in _groups(specs, values, lambda s: s.params["program"]):
        if not cells:
            continue
        static_class = cells[0][1]["static_class"]
        horizon = cells[0][1]["horizon"] or "-"
        words = {s.params["n"]: v["max_words"] for s, v in cells}
        series = [words.get(n, "-") for n in ns]
        measured = [w for w in series if w != "-"]
        growth = (
            round(measured[-1] / max(1, measured[0]), 2) if len(measured) > 1 else "-"
        )
        rows.append((program, static_class, horizon) + tuple(series) + (growth,))
    header = (
        ["program", "static class", "horizon"]
        + [f"max words n={n}" for n in ns]
        + ["growth"]
    )
    return (
        "(static certificate vs metered payload; a `const` row must stay"
        " flat as n grows, `ball` is bounded by the horizon attribute)\n\n"
        + format_table(header, rows)
    )


def _render_d1(specs, values):
    rows = [
        (
            s.params["pipeline"],
            s.params["family"],
            v["n"],
            v["radius"],
            v["rounds"],
            f"{v['agree']}/{v['sampled']}",
            v["joined"],
        )
        for s, v in zip(specs, values)
        if v is not None
    ]
    return (
        "(message-level layer decisions from delta-gathered balls; `agree`"
        " counts sampled nodes whose from-ball decision matches the"
        " centralized rule, `joined` how many of them enter the current"
        " layer; wall-clock and message-volume vs the full flood live in"
        " BENCH_network.json)\n\n"
        + format_table(
            ["pipeline", "family", "n", "radius", "rounds", "agree", "joined"],
            rows,
        )
    )


def _render_f7(specs, values):
    rows = []
    for (program, retry), cells in _groups(
        specs, values, lambda s: (s.params["program"], s.params["retry"])
    ):
        if not cells:
            continue
        base = cells[0][1]["baseline_rounds"]
        per_drop = []
        worst_recover: Any = "-"
        for _, val in cells:
            per_drop.append(
                f"{val['classification']} ({val['valid']}/{val['runs']} valid)"
            )
            if val["recover"] is not None and (
                worst_recover == "-" or val["recover"] > worst_recover
            ):
                worst_recover = val["recover"]
        rows.append(
            (program, "yes" if retry else "no", base, *per_drop, worst_recover)
        )
    drops = sorted({s.params["drop"] for s in specs})
    header = (
        ["program", "retries", "base rounds"]
        + [f"drop={d}" for d in drops]
        + ["worst extra rounds"]
    )
    return (
        "(classification per drop rate; `valid` counts fault seeds whose"
        " outputs kept the safety invariant, `worst extra rounds` is the"
        " recovery cost over completed runs)\n\n"
        + format_table(header, rows)
    )


def _render_s1(specs, values):
    def fmt(value):
        return "-" if value is None else value

    rows = []
    stab = [(s, v) for s, v in zip(specs, values) if s.fn == "s1_cell"]
    for (program, repaired), cells in _groups(
        [s for s, _ in stab],
        [v for _, v in stab],
        lambda s: (s.params["program"], s.params["repaired"]),
    ):
        for spec, val in cells:
            rows.append((
                program,
                "yes" if repaired else "no",
                spec.params["kind"],
                val["classification"],
                fmt(val["detection_latency"]),
                fmt(val["recovery_rounds"]),
                val["repairs"],
            ))
    table = format_table(
        ["program", "repaired", "corruption", "classification",
         "detect", "recovery rounds", "repairs"],
        rows,
    )
    chaos_lines = []
    for spec, val in zip(specs, values):
        if spec.fn != "s1_chaos_cell" or val is None:
            continue
        chaos_lines.append(
            f"- chaos soak {val['program']}: {val['failures']} failure(s) in "
            f"{val['trials']} trials, minimized specs reproduce: "
            f"{'yes' if val['all_reproduce'] else 'NO'}"
        )
    return (
        "(one transient corruption of a quiesced node; `flip` provably"
        " violates the invariant, `scramble` is an arbitrary seeded field"
        " scramble; `detect`/`recovery rounds` from the validity monitor,"
        " `-` = the corruption landed after the last monitored round)\n\n"
        + table
        + "\n\n"
        + "\n".join(chaos_lines)
    )


def _render_k1(specs, values):
    rows = [
        (
            s.params["family"],
            v["n"],
            v["m"],
            v["omega"],
            v["colors"],
            v["cliques"],
            v["simplicial"],
            "-" if v["layers"] is None else v["layers"],
            "-" if v["exhausted"] is None else ("yes" if v["exhausted"] else "no"),
        )
        for s, v in zip(specs, values)
        if v is not None
    ]
    table = format_table(
        [
            "family", "n", "m", "omega", "colors", "cliques",
            "simplicial", "peel layers", "exhausted",
        ],
        rows,
    )
    return (
        "(kernel substrate at large n; peeling runs on the sparse-WCIG"
        " families, timings in BENCH_kernels.json)\n\n" + table
    )


def _render_k2(specs, values):
    rows = [
        (
            s.params["family"],
            v["n"],
            v["m"],
            s.params["radius"],
            s.params["executor"],
            v["path"],
            v["rounds"],
            v["messages"],
            f"{v['agree']}/{v['sampled']}",
        )
        for s, v in zip(specs, values)
        if v is not None
    ]
    table = format_table(
        [
            "family", "n", "m", "radius", "executor", "path",
            "rounds", "messages", "ball oracle",
        ],
        rows,
    )
    return (
        "(whole-round batch kernels vs per-node dispatch; `path` is what"
        " BatchExecutor actually ran, node/batch rows of the same cell"
        " must agree on rounds and messages, and `ball oracle` counts"
        " sampled balls equal to the BFS ground truth; wall-clock in"
        " BENCH_network.json)\n\n" + table
    )


# --------------------------------------------------------------------------
# the registry itself (order = report order; legacy ids first)

_GENERATOR_DEPS = ("repro.graphs.generators", "repro.analysis.experiments")

REGISTRY: Dict[str, Experiment] = {
    exp.id: exp
    for exp in [
        Experiment(
            "T3",
            "Theorem 3: MVC approximation factor (Algorithm 1)",
            ("repro.coloring",) + _GENERATOR_DEPS,
            _plan_t3,
            _render_t3,
            {"eps_values": (1.0, 0.5, 0.25), "n": 150, "seeds": (0, 1, 2)},
        ),
        Experiment(
            "T4",
            "Theorem 4: distributed MVC round complexity",
            ("repro.coloring", "repro.localmodel") + _GENERATOR_DEPS,
            _plan_t4,
            _render_t4,
            {"ns": (100, 200, 400, 800), "eps_values": (2.0, 1.0, 0.5, 0.25)},
        ),
        Experiment(
            "T5/T6",
            "Theorems 5-6: interval MIS (Algorithm 5)",
            ("repro.mis",) + _GENERATOR_DEPS,
            _plan_t56,
            _render_t56,
            {"eps_values": (0.8, 0.4, 0.2), "n": 300, "seeds": (0, 1, 2)},
        ),
        Experiment(
            "T7/T8",
            "Theorems 7-8: chordal MIS (Algorithm 6)",
            ("repro.mis",) + _GENERATOR_DEPS,
            _plan_t78,
            _render_t78,
            {"eps_values": (0.45, 0.3, 0.2), "n": 150, "seeds": (0, 1)},
        ),
        Experiment(
            "T9",
            "Theorem 9: Omega(1/eps) lower bound shape",
            ("repro.lowerbounds",),
            _plan_t9,
            _render_t9,
            {"r_values": (4, 8, 16, 32, 64), "n": 4000, "trials": 8},
        ),
        Experiment(
            "L6",
            "Lemma 6: peeling layer count vs log n",
            ("repro.coloring.prune",) + _GENERATOR_DEPS,
            _plan_l6,
            _render_l6,
            {"ns": (50, 100, 200, 400, 800), "family": "chordal"},
        ),
        Experiment(
            "B1",
            "Baselines: maximal-IS / greedy coloring gaps",
            ("repro.baselines", "repro.coloring", "repro.mis") + _GENERATOR_DEPS,
            _plan_b1,
            _render_b1,
            {"n": 200, "seeds": (0, 1, 2)},
        ),
        Experiment(
            "F1-F6",
            "Figures 1-6: the worked structural example",
            ("repro.cliquetree", "repro.graphs.examples"),
            _plan_figures,
            _render_figures,
            {"figures": ("F1", "F2", "F3/F4", "F5/F6")},
        ),
        Experiment(
            "X1",
            "Section 9 open question: l-chordal triangulation detour",
            ("repro.extensions.k_chordal",),
            _plan_x1,
            _render_x1,
            {"handle_lengths": (3, 5, 7, 9), "n": 20, "handles": 3},
        ),
        Experiment(
            "A1-A3",
            "Ablations: threshold / spare colors / domination removal",
            ("repro.analysis.ablations",),
            _plan_a13,
            _render_a13,
            {"multipliers": (0.25, 0.5, 1.0, 2.0), "chi_values": (4, 16, 64)},
        ),
        Experiment(
            "K1",
            "Kernel substrate: large-n chordal pipeline scaling",
            ("repro.graphs", "repro.coloring.prune", "repro.coloring.greedy"),
            _plan_k1,
            _render_k1,
            {"ns": (10000, 30000, 100000), "threshold": 12},
        ),
        Experiment(
            "C1",
            "CONGEST readiness: metered payload words vs static certificate",
            (
                "repro.localmodel",
                "repro.lint",
                "repro.baselines",
                "repro.graphs.generators",
            ),
            _plan_c1,
            _render_c1,
            {"programs": C1_PROGRAMS, "ns": (16, 32, 64)},
        ),
        Experiment(
            "D1",
            "Distributed pipeline at scale: message-level decisions via delta gathering",
            (
                "repro.localmodel",
                "repro.coloring",
                "repro.mis",
                "repro.graphs.generators",
            ),
            _plan_d1,
            _render_d1,
            {
                "pipelines": D1_PIPELINES,
                "path_ns": (2000, 20000),
                "interval_ns": (500, 2000),
                "chordal_ns": (200, 500),
                "sample": 64,
                "executor": "auto",
            },
        ),
        Experiment(
            "K2",
            "Batch executor: whole-round kernel gathering at large n",
            ("repro.localmodel", "repro.graphs"),
            _plan_k2,
            _render_k2,
            {
                "pairs": K2_PAIR_CELLS,
                "large": K2_LARGE_CELLS,
                "executors": ("node", "batch"),
                "sample": 32,
            },
        ),
        Experiment(
            "F7",
            "Fault resilience: classification and recovery vs drop rate",
            (
                "repro.localmodel",
                "repro.baselines",
                "repro.graphs.generators",
            ),
            _plan_f7,
            _render_f7,
            {"programs": F7_PROGRAMS, "drops": (0.1, 0.3), "n": 16},
        ),
        Experiment(
            "S1",
            "Self-stabilization: repair under state corruption + chaos soak",
            (
                "repro.localmodel",
                "repro.baselines",
                "repro.graphs.generators",
            ),
            _plan_s1,
            _render_s1,
            {
                "programs": S1_PROGRAMS,
                "kinds": ("flip", "scramble"),
                "chaos_programs": S1_CHAOS_PROGRAMS,
                "trials": 8,
                "n": 14,
            },
        ),
    ]
}

#: alternative spellings accepted everywhere an id is accepted
ALIASES: Dict[str, str] = {
    "T5": "T5/T6",
    "T6": "T5/T6",
    "T5-6": "T5/T6",
    "T5/6": "T5/T6",
    "T7": "T7/T8",
    "T8": "T7/T8",
    "T7-8": "T7/T8",
    "T7/8": "T7/T8",
    "F3/F4": "F1-F6",
    "F5/F6": "F1-F6",
    **{f"F{i}": "F1-F6" for i in range(1, 7)},
    "F1-6": "F1-F6",
    **{f"A{i}": "A1-A3" for i in range(1, 4)},
    "A1-3": "A1-A3",
}


def experiment_ids() -> List[str]:
    return list(REGISTRY)


def get(experiment_id: str) -> Experiment:
    resolved = resolve_ids([experiment_id])
    return REGISTRY[resolved[0]]


def resolve_ids(ids: Iterable[str]) -> List[str]:
    """Canonicalise ids (aliases allowed) preserving registry order.

    An empty input selects every experiment.  Unknown ids raise
    :class:`UnknownExperimentError`.
    """
    requested = list(ids)
    if not requested:
        return experiment_ids()
    canonical = []
    unknown = []
    lookup = {i.upper(): i for i in REGISTRY}
    lookup.update({a.upper(): target for a, target in ALIASES.items()})
    for raw in requested:
        resolved = lookup.get(str(raw).upper())
        if resolved is None:
            unknown.append(str(raw))
        elif resolved not in canonical:
            canonical.append(resolved)
    if unknown:
        raise UnknownExperimentError(unknown)
    return [i for i in REGISTRY if i in canonical]


def plan_cells(
    ids: Optional[Iterable[str]] = None,
    overrides: Optional[Dict[str, Dict[str, Any]]] = None,
) -> List[CellSpec]:
    """Expand the chosen experiments into the full, ordered cell list.

    ``overrides`` maps canonical ids to plan kwargs — the tests use it to
    shrink sweeps; ``repro run`` always plans the documented defaults.
    """
    specs: List[CellSpec] = []
    for experiment_id in resolve_ids(ids or []):
        kwargs = (overrides or {}).get(experiment_id, {})
        specs.extend(REGISTRY[experiment_id].plan(**kwargs))
    return specs


def render_report(
    specs: List[CellSpec], values: List[Any], ids: Optional[Iterable[str]] = None
) -> str:
    """The full report text — same framing as ``repro.analysis.report``."""
    selected = resolve_ids(ids or [])
    chunks = []
    for experiment_id in selected:
        exp = REGISTRY[experiment_id]
        exp_specs = []
        exp_values = []
        for spec, value in zip(specs, values):
            if spec.experiment == experiment_id:
                exp_specs.append(spec)
                exp_values.append(value)
        if not exp_specs:
            continue
        chunks.append(
            f"== {experiment_id}: {exp.title} ==\n\n{exp.render(exp_specs, exp_values)}\n"
        )
    return "\n".join(chunks)
