"""Independent set algorithms (Sections 6 and 7 of the paper).

* :mod:`repro.mis.exact` -- Gavril's exact MIS on chordal graphs (baseline
  and exact subroutine),
* :mod:`repro.mis.interval_mis` -- Algorithm 5, the (1 + eps)-approximate
  MIS on interval graphs (Theorems 5-6),
* :mod:`repro.mis.absorbing` -- absorbing maximum independent sets,
* :mod:`repro.mis.chordal_mis` -- Algorithm 6, the (1 + eps)-approximate
  MIS on chordal graphs (Theorems 7-8).
"""

from .absorbing import absorbing_mis, is_absorbing
from .chordal_mis import ChordalMISResult, chordal_mis, mis_peeling_parameters
from .distributed_mis import (
    DistributedMISReport,
    distributed_chordal_mis,
    message_level_mis_decisions,
    mis_local_parameters,
)
from .exact import (
    greedy_simplicial_mis,
    independence_number_chordal,
    maximum_independent_set_chordal,
)
from .interval_mis import IntervalMISResult, interval_mis, mis_parameters

__all__ = [
    "absorbing_mis",
    "is_absorbing",
    "ChordalMISResult",
    "chordal_mis",
    "mis_peeling_parameters",
    "DistributedMISReport",
    "distributed_chordal_mis",
    "message_level_mis_decisions",
    "mis_local_parameters",
    "greedy_simplicial_mis",
    "independence_number_chordal",
    "maximum_independent_set_chordal",
    "IntervalMISResult",
    "interval_mis",
    "mis_parameters",
]
