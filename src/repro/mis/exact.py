"""Exact maximum independent sets on chordal graphs (Gavril's algorithm).

A simplicial vertex always belongs to some maximum independent set, so
repeatedly taking one and deleting its closed neighborhood is exact on
chordal graphs; processing a perfect elimination ordering left to right
realizes exactly that in O(n + m).  This serves three roles:

* the *baseline* the experiments compare the distributed algorithms to,
* the exact subroutine of Algorithms 5 and 6 (components of bounded
  diameter / independence number are solved exactly by one coordinator),
* the alpha(G) oracle used in the analysis helpers.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Set

from ..graphs.adjacency import Graph, Vertex
from ..graphs.chordal import perfect_elimination_ordering

__all__ = [
    "maximum_independent_set_chordal",
    "independence_number_chordal",
    "greedy_simplicial_mis",
]


def maximum_independent_set_chordal(graph: Graph) -> Set[Vertex]:
    """A maximum independent set of a chordal graph (Gavril, O(n + m)).

    Processes a PEO left to right, taking each vertex whose neighborhood
    is still untouched.  Raises NotChordalError on non-chordal input.
    """
    taken: Set[Vertex] = set()
    blocked: Set[Vertex] = set()
    for v in perfect_elimination_ordering(graph):
        if v in blocked:
            continue
        taken.add(v)
        blocked.add(v)
        blocked |= graph.neighbors_view(v)
    return taken


def independence_number_chordal(graph: Graph) -> int:
    """alpha(G) of a chordal graph."""
    return len(maximum_independent_set_chordal(graph))


def greedy_simplicial_mis(
    graph: Graph,
    priority: Optional[Dict[Vertex, float]] = None,
) -> Set[Vertex]:
    """Maximum independent set by iterated simplicial removal.

    Any simplicial vertex lies in some maximum independent set, so
    repeatedly taking one (and deleting its closed neighborhood) is exact
    regardless of *which* simplicial vertex is taken.  ``priority`` steers
    the choice -- larger first, ties by vertex id -- which is how the
    absorbing construction of Algorithm 6 takes the simplicial vertex
    furthest from the outside clique (see :mod:`repro.mis.absorbing`).

    O(n^2 m)-ish; used only on the small components Algorithm 6 feeds it.
    """
    current = graph.copy()
    taken: Set[Vertex] = set()
    while len(current) > 0:
        simplicial = [
            v for v in current.vertices()
            if current.is_clique(current.neighbors_view(v))
        ]
        if not simplicial:
            raise ValueError("graph is not chordal: no simplicial vertex found")
        if priority is None:
            choice = simplicial[0]
        else:
            choice = max(simplicial, key=lambda v: (priority.get(v, 0.0), _key(v)))
        taken.add(choice)
        current.remove_vertices(current.closed_neighborhood(choice))
    return taken


def _key(v: Hashable):
    # Deterministic tiebreak that works for ints and strings alike.
    return (str(type(v)), str(v))
