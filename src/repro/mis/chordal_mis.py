"""Algorithm 6: (1 + eps)-approximate MIS on chordal graphs (Section 7).

With d = ceil(64/eps) and kappa = ceil(log2(d/eps) + 2), peel the clique
forest for kappa iterations: pendant paths always, internal paths of
diameter >= 2d + 3 in iterations < kappa, and internal paths of
independence number >= d in the last one.  Lemma 14 shows the unpeeled
remainder G_{kappa+1} carries at most (eps/2) alpha(G) worth of
independent set, so the peeled layers suffice.

Each peeled path contributes the following to the growing independent set
I: for every connected component H of G_i[W_P minus Gamma_G[I]],

* alpha(H) < d and i < kappa:  an *absorbing* maximum independent set
  anchored at the unique outside clique H touches (see
  :mod:`repro.mis.absorbing`),
* alpha(H) < d and i = kappa:  any maximum independent set,
* alpha(H) >= d:               a (1 + eps/8)-approximation from
  Algorithm 5 (:mod:`repro.mis.interval_mis`).

Theorem 7: I is a (1 + eps)-approximation for eps in (0, 1/2).
Theorem 8: the distributed implementation runs in
O((1/eps) log(1/eps) log* n) rounds; :func:`distributed_chordal_mis`
accounts them (kappa ball collections of radius O(d) plus the per-path
interval MIS rounds).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..cliquetree.paths import ForestPath, path_independence_number
from ..graphs.adjacency import Graph, Vertex
from ..graphs.chordal import NotChordalError, is_chordal
from ..coloring.prune import Peeling, diameter_rule, peel_chordal_graph
from .absorbing import absorbing_mis
from .exact import independence_number_chordal, maximum_independent_set_chordal
from .interval_mis import interval_mis

__all__ = ["ChordalMISResult", "chordal_mis", "mis_peeling_parameters"]


@dataclass
class ChordalMISResult:
    """Independent set, the peeling behind it, and round accounting."""

    independent_set: Set[Vertex]
    peeling: Peeling
    epsilon: float
    d: int
    kappa: int
    rounds: int

    def size(self) -> int:
        return len(self.independent_set)


def mis_peeling_parameters(epsilon: float) -> Tuple[int, int]:
    """(d, kappa) = (ceil(64/eps), ceil(log2(d/eps) + 2))."""
    if not 0 < epsilon < 0.5:
        raise ValueError("epsilon must be in (0, 1/2)")
    d = math.ceil(64.0 / epsilon)
    kappa = math.ceil(math.log2(d / epsilon) + 2)
    return d, kappa


def chordal_mis(graph: Graph, epsilon: float) -> ChordalMISResult:
    """Run Algorithm 6 (centralized reference; rounds are accounted too)."""
    d, kappa = mis_peeling_parameters(epsilon)
    if not is_chordal(graph):
        raise NotChordalError("input graph is not chordal")
    if len(graph) == 0:
        return ChordalMISResult(set(), Peeling([], {}, [], True), epsilon, d, kappa, 0)

    def last_rule(current: Graph, path: ForestPath) -> bool:
        return path_independence_number(path.cliques) >= d

    peeling = peel_chordal_graph(
        graph,
        internal_rule=diameter_rule(2 * d + 3),
        max_iterations=kappa,
        last_iteration_rule=last_rule,
    )

    chosen: Set[Vertex] = set()
    rounds = 0
    remaining = set(graph.vertices())
    for i, layer_paths in enumerate(peeling.layers, start=1):
        ambient = graph.induced_subgraph(remaining)  # G_i
        layer_rounds = 0
        for peeled in layer_paths:
            eligible = set(peeled.nodes) - graph.closed_set_neighborhood(chosen)
            if not eligible:
                continue
            sub = graph.induced_subgraph(eligible)
            for comp in sub.connected_components():
                h = sub.induced_subgraph(comp)
                alpha_h = independence_number_chordal(h)
                if alpha_h >= d:
                    result = interval_mis(h, epsilon / 8.0)
                    chosen |= result.independent_set
                    layer_rounds = max(layer_rounds, result.rounds)
                elif i < peeling.num_layers() or not _is_last_peel(peeling, i):
                    anchor = _anchor_clique(ambient, h, peeled)
                    chosen |= absorbing_mis(h, ambient, anchor)
                    layer_rounds = max(layer_rounds, 2 * d + 4)
                else:
                    chosen |= maximum_independent_set_chordal(h)
                    layer_rounds = max(layer_rounds, 2 * d + 4)
        for peeled in layer_paths:
            remaining -= peeled.nodes
        # one ball collection of radius O(d) plus the layer's local work
        rounds += (2 * d + 3) + layer_rounds

    return ChordalMISResult(
        independent_set=chosen,
        peeling=peeling,
        epsilon=epsilon,
        d=d,
        kappa=kappa,
        rounds=rounds,
    )


def _is_last_peel(peeling: Peeling, i: int) -> bool:
    return i == peeling.num_layers() and not peeling.exhausted


def _anchor_clique(
    ambient: Graph, component: Graph, peeled
) -> Optional[frozenset]:
    """The unique outside clique of T_i that H touches, if any.

    A component with alpha < d peeled before the last iteration touches at
    most one of the path's attachment cliques (Section 7.1's diameter
    argument); when it touches none, any maximum independent set is
    absorbing and no anchor is needed.
    """
    touching = []
    members = set(component.vertices())
    for att in (peeled.path.left_attachment, peeled.path.right_attachment):
        if att is None:
            continue
        att_present = set(att) & set(ambient.vertices())
        if any(ambient.neighbors_view(u) & members for u in att_present):
            touching.append(frozenset(att_present))
    if not touching:
        return None
    if len(touching) == 1:
        return touching[0]
    # Both ends touched: only possible for alpha(H) >= d components or in
    # the final iteration; anchor at the nearer end for determinism.
    return touching[0]
