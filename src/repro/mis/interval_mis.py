"""Algorithm 5: distributed (1 + eps)-approximate MIS on interval graphs.

Section 6 of the paper.  Per connected component of the input interval
graph H:

1. remove *dominated* vertices (closed neighborhood strictly containing
   another's) -- a local test that preserves alpha and leaves a proper
   interval graph;
2. if the component's diameter is at most 10k (k = ceil(2.5/eps + 0.5)),
   one coordinator computes an exact maximum independent set;
3. otherwise compute a maximal distance-k independent set I_1 (the paper
   simulates MISUnitInterval [31] on the k-th power; we use the canonical
   greedy with the charged O(k log* n) round cost, see DESIGN.md), then:
   for every pair of I_1 members at distance <= 2k - 1 compute an exact
   maximum independent set of the region V_{u,v} strictly between them,
   and let the right-most member handle the fringe beyond it; the union
   of everything is the output.

Theorem 5/6: the result is a (1 + eps)-approximation, in
O((1/eps) log* n) rounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..graphs.adjacency import Graph, Vertex
from ..graphs.interval import proper_interval_order, remove_dominated_vertices
from ..localmodel.rulingset import charged_rounds_distance_k, greedy_distance_k_selection
from .exact import maximum_independent_set_chordal

__all__ = ["IntervalMISResult", "interval_mis", "mis_parameters"]


@dataclass
class IntervalMISResult:
    """Independent set plus LOCAL-model round accounting."""

    independent_set: Set[Vertex]
    rounds: int

    def size(self) -> int:
        return len(self.independent_set)


def mis_parameters(epsilon: float) -> int:
    """k = ceil(2.5/eps + 0.5) of Theorem 5."""
    if not 0 < epsilon < 1:
        raise ValueError("epsilon must be in (0, 1)")
    return math.ceil(2.5 / epsilon + 0.5)


def interval_mis(graph: Graph, epsilon: float) -> IntervalMISResult:
    """Run Algorithm 5 on a (possibly disconnected) interval graph."""
    k = mis_parameters(epsilon)
    chosen: Set[Vertex] = set()
    rounds = 0
    for comp in graph.connected_components():
        result = _component_mis(graph.induced_subgraph(comp), k)
        chosen |= result.independent_set
        rounds = max(rounds, result.rounds)
    return IntervalMISResult(chosen, rounds)


def _component_mis(component: Graph, k: int) -> IntervalMISResult:
    # Step 1: drop dominated vertices (alpha-preserving, leaves proper
    # interval).  Locally checkable, two rounds of neighborhood exchange.
    h = remove_dominated_vertices(component)
    rounds = 2

    # The removal cannot disconnect h's cover of the component's alpha,
    # but it may disconnect the graph itself; recurse over the pieces.
    pieces = h.connected_components()
    chosen: Set[Vertex] = set()
    for piece in pieces:
        sub = h.induced_subgraph(piece)
        diam = sub.diameter() if len(sub) > 1 else 0
        if diam <= 10 * k:
            chosen |= maximum_independent_set_chordal(sub)
            rounds = max(rounds, 2 + diam + 1)
            continue
        chosen_piece, piece_rounds = _long_component_mis(sub, k)
        chosen |= chosen_piece
        rounds = max(rounds, 2 + piece_rounds)
    return IntervalMISResult(chosen, rounds)


def _long_component_mis(sub: Graph, k: int) -> Tuple[Set[Vertex], int]:
    """Steps 2-6 of Algorithm 5 on a long proper interval component."""
    order = proper_interval_order(sub)
    position = {v: i for i, v in enumerate(order)}
    i1 = greedy_distance_k_selection(sub, order, k)
    rounds = charged_rounds_distance_k(len(sub), k)
    i1.sort(key=lambda v: position[v])

    chosen: Set[Vertex] = set(i1)
    # Pairs of consecutive members at distance <= 2k - 1 (maximality makes
    # this every consecutive pair; we keep the paper's guard anyway).
    for u, v in zip(i1, i1[1:]):
        dist_u = sub.bfs_distances(u, cutoff=2 * k)
        d_uv = dist_u.get(v)
        if d_uv is None or d_uv > 2 * k - 1:
            continue
        dist_v = sub.bfs_distances(v, cutoff=2 * k)
        forbidden = sub.closed_neighborhood(u) | sub.closed_neighborhood(v)
        between = {
            w
            for w in dist_u
            if w in dist_v
            and w not in forbidden
            and max(dist_u[w], dist_v[w]) <= d_uv
            # positional guard: boundary vertices equidistant from u and v
            # but lying outside (u, v) would let two regions' sets touch
            and position[u] < position[w] < position[v]
        }
        if between:
            chosen |= maximum_independent_set_chordal(sub.induced_subgraph(between))
    rounds += 2 * k + 1  # all V_{u,v} regions are solved in parallel

    # Fringes beyond the extreme members (steps 5-6).  The greedy starts
    # at the order's first vertex, so the left fringe is empty; it is
    # still computed for robustness against other selection rules.
    vl, vr = i1[0], i1[-1]
    left = {
        w for w in order[: position[vl]] if not sub.has_edge(w, vl) and w != vl
    }
    right = {
        w for w in order[position[vr] + 1:] if not sub.has_edge(w, vr) and w != vr
    }
    for fringe in (left, right):
        if fringe:
            chosen |= maximum_independent_set_chordal(sub.induced_subgraph(fringe))
    rounds += 2 * k + 1
    return chosen, rounds
