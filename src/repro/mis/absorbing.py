"""Absorbing maximum independent sets (Section 7.1).

Algorithm 6 needs, for small components H (independence number < d) peeled
before the last iteration, a maximum independent set I_H that *absorbs*
its neighborhood:

    |I_H| = alpha( Gamma_{G_i}[I_H] \\ Gamma_G[I] )

so that charging the adversary's independent set to I_H's closed
neighborhood loses nothing.  The paper's construction: such a component
has neighbors in at most one clique C of T_i outside its path (a second
one would force diam >= 2d + 3, contradicting alpha(H) < d); taking the
simplicial vertex *furthest from C* first, and iterating on the shrunken
graph, yields a maximum independent set with the absorbing property.

:func:`absorbing_mis` implements that rule via
:func:`repro.mis.exact.greedy_simplicial_mis` with remoteness priorities;
:func:`is_absorbing` is the (exponential-free) checker used by tests.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

from ..graphs.adjacency import Graph, Vertex
from .exact import greedy_simplicial_mis, maximum_independent_set_chordal

__all__ = ["absorbing_mis", "is_absorbing"]


def absorbing_mis(
    component: Graph,
    ambient: Graph,
    anchor: Optional[Iterable[Vertex]] = None,
) -> Set[Vertex]:
    """A maximum independent set of ``component`` absorbing toward ``anchor``.

    ``component`` is the small graph H; ``ambient`` is the graph G_i
    distances are measured in (H plus its surroundings); ``anchor`` is the
    outside clique C that H touches, or None when H touches nothing
    outside its path (any maximum independent set is absorbing then).
    """
    if anchor is None:
        return maximum_independent_set_chordal(component)
    anchor = set(anchor)
    # Remoteness from C in the ambient graph: min distance to any anchor
    # member; unreachable vertices count as infinitely remote.
    remoteness: Dict[Vertex, float] = {v: float("inf") for v in component.vertices()}
    frontier = [u for u in anchor if u in ambient]
    dist: Dict[Vertex, int] = {u: 0 for u in frontier}
    d = 0
    while frontier:
        d += 1
        nxt = []
        for u in frontier:
            for w in ambient.neighbors_view(u):
                if w not in dist:
                    dist[w] = d
                    nxt.append(w)
        frontier = nxt
    for v in component.vertices():
        if v in dist:
            remoteness[v] = float(dist[v])
    return greedy_simplicial_mis(component, priority=remoteness)


def is_absorbing(
    independent: Set[Vertex],
    component: Graph,
    ambient: Graph,
    excluded: Set[Vertex],
) -> bool:
    """Check |I_H| = alpha(Gamma_ambient[I_H] - excluded) (the paper's
    absorbing property, with ``excluded`` = Gamma_G[I])."""
    closed = ambient.closed_set_neighborhood(independent) - set(excluded)
    region = ambient.induced_subgraph(closed & set(ambient.vertices()))
    return len(independent) == len(maximum_independent_set_chordal(region))
