"""Theorem 8: the distributed implementation of Algorithm 6.

Section 7.3 of the paper: the distributed MIS algorithm mirrors the
distributed coloring pipeline -- nodes obtain local views of the clique
forest and execute the peeling -- but stops after kappa = O(log(1/eps))
iterations, and after each iteration the removed paths compute their
independent sets immediately:

* small components (independence number < d, hence diameter < 2d): a
  coordinator collects the component and solves exactly (absorbing rule),
  O(d) = O(1/eps) rounds;
* large components: Algorithm 5 at eps/8, O((1/eps) log* n) rounds.

Unlike the coloring pipeline there is no correction phase -- independence
is arranged forward by excluding Gamma[I] from later computations -- so
the per-node finish-time recurrence is simply "my layer's collection ends,
then my path's local solve ends".  Total:
O((1/eps) log(1/eps) log* n) rounds.

:func:`distributed_chordal_mis` wraps the centralized run of
:mod:`repro.mis.chordal_mis` with that accounting, per layer, and exposes
the full cost profile.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..coloring.distributed_mvc import message_level_layer_decisions
from ..coloring.parameters import ColoringParameters
from ..graphs.adjacency import Graph, Vertex
from ..localmodel.rounds import NodeClocks
from ..localmodel.rulingset import charged_rounds_distance_k, log_star
from .chordal_mis import ChordalMISResult, chordal_mis, mis_peeling_parameters
from .interval_mis import mis_parameters

__all__ = [
    "DistributedMISReport",
    "distributed_chordal_mis",
    "mis_local_parameters",
    "message_level_mis_decisions",
]


@dataclass
class DistributedMISReport:
    """Independent set plus the LOCAL-model cost profile of Theorem 8."""

    result: ChordalMISResult
    total_rounds: int
    #: absolute round at which each peeling iteration's collection ends
    iteration_finish: List[int]
    #: per-layer local-solve budget (max over that layer's components)
    layer_solve_rounds: List[int]
    finish_time: Dict[Vertex, int]

    @property
    def independent_set(self) -> Set[Vertex]:
        return self.result.independent_set

    def size(self) -> int:
        return self.result.size()


def mis_local_parameters(d: int) -> ColoringParameters:
    """Decision constants for the MIS peeling with path parameter ``d``.

    The MIS peeling (Algorithm 6) peels pendant paths always and internal
    paths of diameter >= 2d + 3 in the non-final iterations -- the same
    rule family as the coloring pipeline's PruneTree, with
    ``internal_threshold = 2d + 3``.  The collection radius mirrors the
    validated geometry of :meth:`ColoringParameters.from_k` (three
    thresholds deep), which is what makes the per-node decision exact;
    ``recolor_distance`` is carried only for completeness (MIS has no
    correction phase).  Pass a scaled-down ``d`` (not ceil(64/eps)) to
    exercise the message-level machinery at tractable radii.
    """
    if d < 1:
        raise ValueError("d must be >= 1")
    threshold = 2 * d + 3
    return ColoringParameters(
        k=d,
        recolor_distance=d + 3,
        internal_threshold=threshold,
        collect_radius=3 * threshold,
    )


def message_level_mis_decisions(
    current_graph: Graph,
    d: int,
    sealed: bool = False,
    scheduler: str = "active",
    program: str = "delta",
    executor: str = "auto",
) -> Tuple[Dict[Vertex, bool], int]:
    """Per-node MIS-peeling layer decisions via real ball gathering.

    Message-level witness of the Section 7.3 claim that nodes decide
    their peeling layer from collected balls alone: floods for
    ``mis_local_parameters(d).collect_radius`` rounds (delta gathering by
    default), then each node decides membership in the current layer from
    its own ball.  Matches the centralized peeling's non-final
    iterations (the final iteration's independence-number rule needs
    kappa-aware coordination and is accounted, not simulated).
    Returns ``(decisions, rounds)``; ``executor`` passes through to the
    gather (``"auto"`` compiles to the batch kernel when eligible).
    """
    return message_level_layer_decisions(
        current_graph,
        mis_local_parameters(d),
        sealed=sealed,
        scheduler=scheduler,
        program=program,
        executor=executor,
    )


def distributed_chordal_mis(graph: Graph, epsilon: float) -> DistributedMISReport:
    """Run Algorithm 6 distributively and account its rounds.

    The independent set (and the peeling) are byte-identical to the
    centralized :func:`repro.mis.chordal_mis`; what is added is the
    per-iteration round recurrence of Section 7.3.
    """
    result = chordal_mis(graph, epsilon)
    d, _kappa = mis_peeling_parameters(epsilon)
    n = max(2, len(graph))

    # Per-iteration collection: local views out to the path-diameter
    # threshold 2d + 3 (the analogue of the coloring pipeline's 10k).
    collection = 2 * d + 3

    # Per-layer solve budget: small components cost O(d); large ones run
    # Algorithm 5 at eps/8, costing its charged O(k' log* n).
    k_prime = mis_parameters(epsilon / 8.0)
    large_cost = charged_rounds_distance_k(n, k_prime) + 4 * k_prime + 2
    small_cost = 2 * d + 4

    clocks = NodeClocks()
    iteration_finish: List[int] = []
    layer_solve: List[int] = []
    now = 0
    for i, layer_paths in enumerate(result.peeling.layers, start=1):
        now += collection
        iteration_finish.append(now)
        solve = 0
        for peeled in layer_paths:
            # A path needs the large-component machinery only when its
            # independence number reaches d; its diameter tells which.
            from ..cliquetree.paths import path_independence_number

            alpha_path = path_independence_number(peeled.cliques)
            solve = max(solve, large_cost if alpha_path >= d else small_cost)
        layer_solve.append(solve)
        finish = now + solve
        for peeled in layer_paths:
            for v in peeled.nodes:
                clocks.set_at(v, finish)
        now = finish

    # Nodes never peeled (the abandoned remainder G_{kappa+1}) terminate
    # with the last iteration, outputting "not in I".
    for v in result.peeling.remaining_nodes():
        clocks.set_at(v, now)

    return DistributedMISReport(
        result=result,
        total_rounds=clocks.makespan(),
        iteration_finish=iteration_finish,
        layer_solve_rounds=layer_solve,
        finish_time=clocks.as_dict(),
    )
