"""``python -m repro.lint`` -- the conformance linter's command line.

Usage::

    python -m repro.lint                      # lint the installed repro package
    python -m repro.lint src/ tests/myprog.py # lint explicit paths
    python -m repro.lint --format=json        # machine-readable report
    python -m repro.lint --select L1,L3       # only some rules
    python -m repro.lint --list-rules         # print the rule set
    python -m repro.lint --congest            # bandwidth certificate table
    python -m repro.lint --sanitize           # shadow-execution determinism run
    python -m repro.lint --baseline FILE      # tolerate known findings by name
    python -m repro.lint --write-baseline F   # record current findings as known

Exit status: 0 when no active findings, 1 when violations were found,
2 on usage/parse errors.  Stale inline suppressions and unused baseline
entries are *warnings* (reported, never failing).  The same entry point
backs the ``repro lint`` subcommand of :mod:`repro.cli`.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from .analyzer import active_findings, analyze_modules, analyze_paths, load_modules
from .baseline import apply_baseline, load_baseline, write_baseline
from .bandwidth import (
    certificates_for_modules,
    format_certificates_json,
    format_certificates_text,
)
from .findings import Finding, format_json, format_text
from .rules import ALL_RULE_CODES, RULES, normalize_codes

__all__ = ["main", "build_parser", "default_paths", "run_lint"]


def default_paths() -> List[Path]:
    """The repro package directory itself (lint ourselves by default)."""
    return [Path(__file__).resolve().parent.parent]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="LOCAL-model conformance linter for NodeProgram classes",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        default="all",
        help="comma-separated rule codes to enforce (default: all)",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="include findings disabled by repro-lint comments in the report",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule set and exit",
    )
    parser.add_argument(
        "--congest",
        action="store_true",
        help="print the per-program bandwidth certificate table instead of "
        "findings (message-size class: const / ball / unbounded / silent)",
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="run the shadow-execution determinism suite: every stock "
        "program re-runs with permuted inbox iteration order and its "
        "transcript/outputs are diffed against the baseline run",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="JSON baseline of tolerated findings (matched by rule/symbol/"
        "path, not line); matched findings report as suppressed",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write every currently active finding to FILE as a baseline "
        "and exit 0",
    )
    return parser


def run_lint(
    paths: List[Path], select: Optional[str] = None
) -> List[Finding]:
    """Analyze ``paths`` and return findings filtered to ``select`` rules."""
    findings = analyze_paths(paths)
    if select:
        keep = normalize_codes(select)
        findings = [f for f in findings if f.rule in keep]
    return findings


def _stale_suppressions(modules) -> List[Tuple[str, int, str]]:
    """(path, line, rule) for every inline marker that suppressed nothing."""
    out: List[Tuple[str, int, str]] = []
    for info in modules:
        for line, rule in info.suppressions.stale_markers():
            out.append((info.path, line, rule))
    return out


# ---------------------------------------------------------------------------
# the shadow-execution suite (``--sanitize``)
# ---------------------------------------------------------------------------

def _sanitize_suite():
    """(name, graph, program factory) triples for every stock program.

    Imported lazily: the static linter must stay importable (and fast)
    without pulling in the graph substrate.
    """
    import random

    from ..baselines.coloring_baselines import RandomizedColoringProgram
    from ..baselines.luby import LubyMISProgram
    from ..graphs import cycle_graph, path_graph, random_chordal_graph
    from ..graphs.index import graph_index
    from ..localmodel import (
        BallGatherProgram,
        BFSLayerProgram,
        DeltaGatherProgram,
        EchoCountProgram,
        LeaderElectionProgram,
        LinialPathProgram,
        vertex_key,
    )

    chordal = random_chordal_graph(14, seed=7, tree_size=14)
    cycle = cycle_graph(8)
    path = path_graph(9)
    tree_n = len(chordal)

    def seeded(cls, *extra):
        master = random.Random(11)
        seeds = {v: master.randrange(2**62) for v in chordal.vertices()}
        return lambda v, nbrs: cls(v, nbrs, *extra, random.Random(seeds[v]))

    root = min(chordal.vertices(), key=vertex_key)
    return [
        ("bfs", chordal, lambda v, nbrs: BFSLayerProgram(v, nbrs, root, tree_n + 1)),
        ("leader", chordal, lambda v, nbrs: LeaderElectionProgram(v, nbrs, tree_n + 1)),
        ("echo", path, lambda v, nbrs: EchoCountProgram(v, nbrs, 0)),
        ("gather", cycle, lambda v, nbrs: BallGatherProgram(v, nbrs, 2, ("s", v))),
        (
            "gather-delta",
            cycle,
            lambda v, nbrs: DeltaGatherProgram(
                v, nbrs, 2, ("s", v), graph_index(cycle)
            ),
        ),
        ("luby", chordal, seeded(LubyMISProgram)),
        (
            "coloring",
            chordal,
            seeded(RandomizedColoringProgram, chordal.max_degree() + 1),
        ),
        ("linial", path, lambda v, nbrs: LinialPathProgram(v, nbrs, id_bound=9)),
    ]


def _run_sanitize(fmt: str, out) -> int:
    from ..localmodel import shadow_check

    results: List[Dict[str, Any]] = []
    failures = 0
    for name, graph, factory in _sanitize_suite():
        report = shadow_check(graph, factory)
        results.append(
            {
                "program": name,
                "vertices": len(graph),
                "rounds": report.rounds,
                "seeds": list(report.seeds),
                "deterministic": report.deterministic,
                "divergences": [
                    {
                        "seed": d.seed,
                        "kind": d.kind,
                        "round": d.round_no,
                        "detail": d.detail,
                    }
                    for d in report.divergences
                ],
            }
        )
        if not report.deterministic:
            failures += 1
    if fmt == "json":
        print(
            json.dumps(
                {"programs": results, "failures": failures},
                indent=2,
                sort_keys=True,
            ),
            file=out,
        )
    else:
        for r in results:
            verdict = "ok" if r["deterministic"] else "DIVERGES"
            print(
                f"{r['program']:<10} {verdict:<9} "
                f"({r['vertices']} vertices, {r['rounds']} rounds, "
                f"seeds {r['seeds']})",
                file=out,
            )
            for d in r["divergences"]:
                print(f"  seed {d['seed']} [{d['kind']}]: {d['detail']}", file=out)
        noun = "program" if failures == 1 else "programs"
        print(
            f"{failures} {noun} schedule-dependent out of {len(results)}",
            file=out,
        )
    return 1 if failures else 0


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------

def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out or sys.stdout
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for code in sorted(ALL_RULE_CODES):
            rule = RULES[code]
            print(f"{code}  {rule.name}: {rule.summary}", file=out)
        return 0

    if args.sanitize:
        return _run_sanitize(args.format, out)

    paths = [Path(p) for p in args.paths] or default_paths()
    for path in paths:
        if not path.exists():
            print(f"repro.lint: no such path: {path}", file=sys.stderr)
            return 2

    try:
        modules = load_modules(paths)
        if args.congest:
            certs = certificates_for_modules(modules)
            render_certs = (
                format_certificates_json
                if args.format == "json"
                else format_certificates_text
            )
            out.write(render_certs(certs))
            out.flush()
            return 0
        findings = analyze_modules(modules)
        keep = normalize_codes(args.select) if args.select else ALL_RULE_CODES
        findings = [f for f in findings if f.rule in keep]
    except (ValueError, SyntaxError) as exc:
        print(f"repro.lint: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        entries = write_baseline(args.write_baseline, findings)
        print(
            f"baseline with {len(entries)} entr"
            f"{'y' if len(entries) == 1 else 'ies'} written to "
            f"{args.write_baseline}",
            file=out,
        )
        return 0

    baseline_matched = 0
    unused_entries: List[Any] = []
    if args.baseline:
        try:
            entries = load_baseline(args.baseline)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"repro.lint: {exc}", file=sys.stderr)
            return 2
        remaining, baselined, unused_entries = apply_baseline(findings, entries)
        baseline_matched = len(baselined)
        excused = {id(f) for f in baselined}
        # a baselined finding renders like a suppressed one: visible with
        # --show-suppressed, never failing the run
        findings = [
            dataclasses.replace(f, suppressed=True) if id(f) in excused else f
            for f in findings
        ]

    stale = _stale_suppressions(modules)

    if args.format == "json":
        data = json.loads(format_json(findings, show_suppressed=args.show_suppressed))
        data["stale_suppressions"] = [
            {"path": p, "line": line, "rule": rule} for p, line, rule in stale
        ]
        if args.baseline:
            data["baseline"] = {
                "file": args.baseline,
                "matched": baseline_matched,
                "unused_entries": [
                    {"rule": e.rule, "symbol": e.symbol, "path": e.path}
                    for e in unused_entries
                ],
            }
        rendered = json.dumps(data, indent=2, sort_keys=True)
    else:
        lines = [format_text(findings, show_suppressed=args.show_suppressed)]
        for p, line, rule in stale:
            lines.append(
                f"warning: {p}:{line}: stale suppression of {rule} "
                "(nothing to suppress; delete the marker)"
            )
        for e in unused_entries:
            lines.append(
                f"warning: baseline entry {e.rule} {e.symbol} ({e.path}) "
                "matched nothing; delete it from the baseline"
            )
        if args.baseline and baseline_matched:
            lines.append(
                f"{baseline_matched} finding(s) excused by baseline "
                f"{args.baseline}"
            )
        rendered = "\n".join(lines)

    try:
        print(rendered, file=out)
        out.flush()
    except BrokenPipeError:
        # downstream consumer (e.g. ``| head``) closed the pipe; the exit
        # status still reports whether violations were found
        sys.stderr.close()
    return 1 if active_findings(findings) else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
