"""``python -m repro.lint`` -- the conformance linter's command line.

Usage::

    python -m repro.lint                      # lint the installed repro package
    python -m repro.lint src/ tests/myprog.py # lint explicit paths
    python -m repro.lint --format=json        # machine-readable report
    python -m repro.lint --select L1,L3       # only some rules
    python -m repro.lint --list-rules         # print the rule set

Exit status: 0 when no active findings, 1 when violations were found,
2 on usage/parse errors.  The same entry point backs the ``repro lint``
subcommand of :mod:`repro.cli`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .analyzer import active_findings, analyze_paths
from .findings import Finding, format_json, format_text
from .rules import ALL_RULE_CODES, RULES, normalize_codes

__all__ = ["main", "build_parser", "default_paths", "run_lint"]


def default_paths() -> List[Path]:
    """The repro package directory itself (lint ourselves by default)."""
    return [Path(__file__).resolve().parent.parent]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="LOCAL-model conformance linter for NodeProgram classes",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        default="all",
        help="comma-separated rule codes to enforce (default: all)",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="include findings disabled by repro-lint comments in the report",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule set and exit",
    )
    return parser


def run_lint(
    paths: List[Path], select: Optional[str] = None
) -> List[Finding]:
    """Analyze ``paths`` and return findings filtered to ``select`` rules."""
    findings = analyze_paths(paths)
    if select:
        keep = normalize_codes(select)
        findings = [f for f in findings if f.rule in keep]
    return findings


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out or sys.stdout
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for code in sorted(ALL_RULE_CODES):
            rule = RULES[code]
            print(f"{code}  {rule.name}: {rule.summary}", file=out)
        return 0

    paths = [Path(p) for p in args.paths] or default_paths()
    for path in paths:
        if not path.exists():
            print(f"repro.lint: no such path: {path}", file=sys.stderr)
            return 2
    try:
        findings = run_lint(paths, args.select)
    except (ValueError, SyntaxError) as exc:
        print(f"repro.lint: {exc}", file=sys.stderr)
        return 2

    render = format_json if args.format == "json" else format_text
    try:
        print(render(findings, show_suppressed=args.show_suppressed), file=out)
        out.flush()
    except BrokenPipeError:
        # downstream consumer (e.g. ``| head``) closed the pipe; the exit
        # status still reports whether violations were found
        sys.stderr.close()
    return 1 if active_findings(findings) else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
