"""AST-based LOCAL-model conformance analysis of node programs.

The analyzer runs in two passes.  Pass one parses every ``.py`` file under
the given paths and records, per module: the classes it defines (with their
base-class names), which imported names refer to global graph state (rule
L1), which refer to nondeterminism sources (rule L3), and which
module-level names are bound to mutable objects (rule L2).  Pass two
resolves the transitive subclass closure of :class:`NodeProgram` *by name
across all scanned modules* -- so a program inheriting from an intermediate
helper class is still analyzed -- and walks each such class with
:class:`_MethodVisitor`, emitting :class:`~repro.lint.findings.Finding`
objects for rules L1-L6 and L10.  Rule L6 (starvation hazard) is class-shaped
rather than expression-shaped: a subclass with a non-trivial ``step`` must
either declare ``always_active`` (inherited declarations count), call
``self.wake_next_round()``, or unconditionally finish on its first step
(a top-level ``self.done = True``), otherwise the active-set scheduler of
:class:`~repro.localmodel.network.SyncNetwork` could skip it forever.

Name-based resolution is deliberate: the linter must work on files that
cannot be imported (fixtures with deliberate violations, future node code
with missing optional deps).  The cost is that a class named ``NodeProgram``
from an unrelated library would be picked up; in this repository there is
exactly one.

Annotation subtrees are never visited: ``rng: random.Random`` is a type,
not a use of the ``random`` module.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from .findings import Finding, sort_findings
from .suppressions import Suppressions, parse_suppressions

__all__ = [
    "analyze_paths",
    "analyze_source",
    "analyze_modules",
    "active_findings",
    "iter_python_files",
    "load_modules",
    "NODE_PROGRAM_ROOT",
]

#: The root of the subclass closure the analyzer walks.
NODE_PROGRAM_ROOT = "NodeProgram"

#: Names that constitute global graph state when referenced from a node
#: program, regardless of which module they were imported from.
_GRAPH_STATE_NAMES = frozenset({"Graph", "SyncNetwork", "TracedNetwork"})

#: Pure type aliases exported by the graphs package; naming a vertex *type*
#: is not the same as touching the graph, so these never trigger L1.
_TYPE_ALIAS_NAMES = frozenset({"Vertex", "Edge"})

#: Modules whose direct use inside a node program is nondeterministic (or
#: environment-dependent, which is the same violation for round accounting).
_NONDET_MODULES = frozenset({"random", "time", "os", "secrets", "uuid"})

#: Builtins whose results vary across interpreter runs (salted hashing).
_NONDET_BUILTINS = frozenset({"hash", "id"})

#: Calls that build a fresh mutable container at class level / as a default.
_MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter", "OrderedDict"}
)

#: Method names that mutate their receiver in place.
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "remove",
        "discard",
        "pop",
        "popitem",
        "clear",
        "setdefault",
        "sort",
        "reverse",
    }
)

#: Calls that copy their argument, so the result is NOT an aliased message.
_PURIFYING_CALLS = frozenset(
    {"list", "dict", "set", "tuple", "frozenset", "sorted", "deepcopy", "copy"}
)

#: Fields that carry a node's committed answer (rule L10): the canonical
#: ``output`` slot plus the problem-specific aliases used by the paper's
#: coloring / independent-set programs.
_OUTPUT_FIELDS = frozenset({"output", "color", "in_mis"})


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
        return name in _MUTABLE_FACTORIES
    return False


def _attr_chain(node: ast.AST) -> Tuple[str, ...]:
    """``a.b.c`` -> ("a", "b", "c"); empty tuple when not a pure name chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


class _ModuleInfo:
    """Everything pass one learns about a single source file."""

    def __init__(self, path: str, tree: ast.Module, suppressions: Suppressions):
        self.path = path
        self.tree = tree
        self.suppressions = suppressions
        self.classes: Dict[str, ast.ClassDef] = {}
        self.base_names: Dict[str, Set[str]] = {}
        self.graph_symbols: Set[str] = set()
        self.nondet_symbols: Set[str] = set()
        self.module_mutables: Set[str] = set()
        self._scan()

    def _scan(self) -> None:
        for node in self.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    root = alias.name.split(".")[0]
                    if root in _NONDET_MODULES:
                        self.nondet_symbols.add(bound)
                    if "graphs" in alias.name.split("."):
                        self.graph_symbols.add(bound)
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                segments = module.split(".")
                for alias in node.names:
                    bound = alias.asname or alias.name
                    if segments and segments[-1] in _NONDET_MODULES:
                        self.nondet_symbols.add(bound)
                    if alias.name in _GRAPH_STATE_NAMES or (
                        "graphs" in segments and alias.name not in _TYPE_ALIAS_NAMES
                    ):
                        self.graph_symbols.add(bound)
            elif isinstance(node, ast.ClassDef):
                self.classes[node.name] = node
                self.base_names[node.name] = {
                    chain[-1] for base in node.bases if (chain := _attr_chain(base))
                }
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                value = node.value
                if value is None or not _is_mutable_literal(value):
                    continue
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if isinstance(target, ast.Name):
                        self.module_mutables.add(target.id)


def iter_python_files(paths: Iterable[Path]) -> List[Path]:
    """All ``.py`` files under ``paths``, skipping caches and build output."""
    out: List[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_file():
            if path.suffix == ".py":
                out.append(path)
            continue
        for candidate in sorted(path.rglob("*.py")):
            parts = set(candidate.parts)
            if parts & {"__pycache__", ".git", ".pytest_cache"}:
                continue
            if any(p.endswith(".egg-info") for p in candidate.parts):
                continue
            out.append(candidate)
    return out


def _subclass_closure(modules: Sequence[_ModuleInfo]) -> Dict[str, List[Tuple[_ModuleInfo, ast.ClassDef]]]:
    """Resolve which scanned classes are (transitive) NodeProgram subclasses.

    Returns class name -> definitions (a name can recur across modules;
    every definition is analyzed).
    """
    known: Set[str] = {NODE_PROGRAM_ROOT}
    changed = True
    while changed:
        changed = False
        for info in modules:
            for name, bases in info.base_names.items():
                if name not in known and bases & known:
                    known.add(name)
                    changed = True
    out: Dict[str, List[Tuple[_ModuleInfo, ast.ClassDef]]] = {}
    for info in modules:
        for name, node in info.classes.items():
            if name in known and name != NODE_PROGRAM_ROOT:
                out.setdefault(name, []).append((info, node))
    return out


class _MethodVisitor(ast.NodeVisitor):
    """Walks one method (or nested function) of a node-program class.

    Tracks two name sets as it goes: *neighbor-derived* names (safe keys for
    ``ctx.inbox``) and *message-tainted* names (objects received from the
    inbox, which must not be mutated).  The tracking is a per-method
    forward scan, not a full data-flow analysis -- adequate for the simple
    method bodies node programs should have, and false positives can always
    be suppressed with a ``repro-lint`` comment.
    """

    def __init__(self, checker: "_ClassChecker", func: ast.FunctionDef):
        self.checker = checker
        self.func = func
        self.ctx_names: Set[str] = set()
        self.neighbor_names: Set[str] = set()
        self.tainted: Set[str] = set()
        for arg in list(func.args.posonlyargs) + list(func.args.args) + list(func.args.kwonlyargs):
            annotation = arg.annotation
            chain = _attr_chain(annotation) if annotation is not None else ()
            if arg.arg in ("ctx", "context") or (chain and chain[-1] == "NodeContext"):
                self.ctx_names.add(arg.arg)

    # -- helpers -------------------------------------------------------

    def _report(self, rule: str, node: ast.AST, message: str) -> None:
        self.checker.report(rule, node, message, self.func.name)

    def _is_ctx(self, node: ast.AST) -> bool:
        return isinstance(node, ast.Name) and node.id in self.ctx_names

    def _is_inbox(self, node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Attribute)
            and node.attr == "inbox"
            and self._is_ctx(node.value)
        )

    def _is_neighbor_source(self, node: ast.AST) -> bool:
        """Iterables whose elements are legitimate neighbor identifiers."""
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in ("keys", "items") and self._is_inbox(node.func.value):
                return True
            return False
        if isinstance(node, ast.Attribute) and node.attr == "neighbors":
            base = node.value
            return self._is_ctx(base) or (isinstance(base, ast.Name) and base.id == "self")
        return self._is_inbox(node)

    def _is_message_source(self, node: ast.AST) -> bool:
        """Expressions that yield (iterables of) received message objects."""
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr == "values" and self._is_inbox(node.func.value):
                return True
            if node.func.attr == "get" and self._is_inbox(node.func.value):
                return True
        if isinstance(node, ast.Subscript) and self._is_inbox(node.value):
            return not isinstance(node.ctx, (ast.Store, ast.Del))
        return isinstance(node, ast.Name) and node.id in self.tainted

    def _allowed_inbox_key(self, key: ast.AST) -> bool:
        if isinstance(key, ast.Name):
            return key.id in self.neighbor_names
        return False

    def _bind_loop_target(self, target: ast.AST, source: ast.AST) -> None:
        """Record what names bound by ``for target in source`` mean."""
        items_call = (
            isinstance(source, ast.Call)
            and isinstance(source.func, ast.Attribute)
            and source.func.attr == "items"
            and self._is_inbox(source.func.value)
        )
        if items_call and isinstance(target, ast.Tuple) and len(target.elts) == 2:
            key_t, value_t = target.elts
            if isinstance(key_t, ast.Name):
                self.neighbor_names.add(key_t.id)
            if isinstance(value_t, ast.Name):
                self.tainted.add(value_t.id)
            return
        if self._is_neighbor_source(source):
            for name in self._bound_names(target):
                self.neighbor_names.add(name)
        elif self._is_message_source(source):
            for name in self._bound_names(target):
                self.tainted.add(name)

    # -- annotation skipping ------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        args = node.args
        for default in list(args.defaults) + [d for d in args.kw_defaults if d]:
            if _is_mutable_literal(default):
                self._report(
                    "L2",
                    default,
                    f"mutable default argument in {node.name}() is shared "
                    "across calls and node instances",
                )
            self.visit(default)
        for stmt in node.body:
            self.visit(stmt)

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_assign([node.target], node.value)
            self.visit(node.target)
            self.visit(node.value)

    # -- bindings ------------------------------------------------------

    @staticmethod
    def _bound_names(target: ast.AST):
        """Names (re)bound by an assignment target.

        Only plain names and unpacking count: ``x[k] = v`` / ``x.a = v``
        store *into* an object but do not rebind ``x``, so they must not
        change what ``x`` is known to be.
        """
        if isinstance(target, ast.Name):
            yield target.id
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                yield from _MethodVisitor._bound_names(elt)
        elif isinstance(target, ast.Starred):
            yield from _MethodVisitor._bound_names(target.value)

    def _record_assign(self, targets: Sequence[ast.AST], value: ast.AST) -> None:
        purifying = (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in _PURIFYING_CALLS
        )
        tainted = not purifying and self._is_message_source(value)
        for target in targets:
            for name in self._bound_names(target):
                if tainted:
                    self.tainted.add(name)
                else:
                    self.tainted.discard(name)
                    self.neighbor_names.discard(name)

    def visit_Assign(self, node: ast.Assign) -> None:
        self._record_assign(node.targets, node.value)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._bind_loop_target(node.target, node.iter)
        self.generic_visit(node)

    def visit_comprehension_generators(self, generators) -> None:
        for gen in generators:
            self._bind_loop_target(gen.target, gen.iter)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self.visit_comprehension_generators(node.generators)
        self.generic_visit(node)

    visit_SetComp = visit_ListComp
    visit_GeneratorExp = visit_ListComp

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self.visit_comprehension_generators(node.generators)
        self.generic_visit(node)

    # -- rule checks ---------------------------------------------------

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            if node.id in self.checker.module.graph_symbols:
                self._report(
                    "L1",
                    node,
                    f"reference to global graph state {node.id!r}; a node may "
                    "only use its ID, neighbor list, and inbox",
                )
            if node.id in self.checker.module.nondet_symbols:
                self._report(
                    "L3",
                    node,
                    f"direct use of nondeterminism source {node.id!r}; inject "
                    "a seeded random.Random through the constructor instead",
                )

    def visit_Global(self, node: ast.Global) -> None:
        self._report(
            "L2",
            node,
            f"global statement ({', '.join(node.names)}) shares module state "
            "between node instances",
        )

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id in _NONDET_BUILTINS:
            self._report(
                "L3",
                node,
                f"{func.id}() varies between interpreter runs "
                "(salted hashing / object identity)",
            )
        if isinstance(func, ast.Attribute):
            receiver = func.value
            if self._is_inbox(receiver):
                if func.attr == "get":
                    if node.args and not self._allowed_inbox_key(node.args[0]):
                        self._report(
                            "L4",
                            node,
                            "ctx.inbox.get() keyed by something not derived "
                            "from this node's neighborhood",
                        )
                elif func.attr in _MUTATOR_METHODS:
                    self._report(
                        "L5",
                        node,
                        f"ctx.inbox.{func.attr}() mutates the inbox; contexts "
                        "are read-only",
                    )
            elif func.attr in _MUTATOR_METHODS:
                if isinstance(receiver, ast.Name) and receiver.id in self.tainted:
                    self._report(
                        "L5",
                        node,
                        f"{receiver.id}.{func.attr}() mutates a received "
                        "message; messages must be treated as immutable",
                    )
                elif (
                    isinstance(receiver, ast.Name)
                    and receiver.id in self.checker.module.module_mutables
                ):
                    self._report(
                        "L2",
                        node,
                        f"{receiver.id}.{func.attr}() mutates module-level "
                        "state shared between node instances",
                    )
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        # `x in ctx.inbox` answers a question about x's message even when x
        # is not a neighbor -- the same covert channel as inbox[x].
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if isinstance(op, (ast.In, ast.NotIn)) and self._is_inbox(right):
                if not self._allowed_inbox_key(left):
                    self._report(
                        "L4",
                        node,
                        "membership test against ctx.inbox with a key not "
                        "derived from this node's neighborhood",
                    )
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if self._is_inbox(node.value):
            if isinstance(node.ctx, (ast.Store, ast.Del)):
                self._report("L5", node, "assignment into ctx.inbox; contexts are read-only")
            elif not self._allowed_inbox_key(node.slice):
                self._report(
                    "L4",
                    node,
                    "ctx.inbox subscripted by something not derived from this "
                    "node's neighborhood",
                )
        elif isinstance(node.ctx, (ast.Store, ast.Del)):
            base = node.value
            if isinstance(base, ast.Name) and base.id in self.tainted:
                self._report(
                    "L5",
                    node,
                    f"item assignment into received message {base.id!r}; "
                    "messages must be treated as immutable",
                )
            elif isinstance(base, ast.Name) and base.id in self.checker.module.module_mutables:
                self._report(
                    "L2",
                    node,
                    f"item assignment into module-level {base.id!r} shares "
                    "state between node instances",
                )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, (ast.Store, ast.Del)) and self._is_ctx(node.value):
            self._report(
                "L5",
                node,
                f"assignment to ctx.{node.attr}; contexts are read-only views",
            )
        self.generic_visit(node)

    # Annotations on nested assignments/arguments are skipped via the
    # overridden visit_FunctionDef / visit_AnnAssign above; Return/other
    # statements carry no annotations.


def _declares_always_active(node: ast.ClassDef) -> bool:
    """Does the class body assign ``always_active`` (either value)?"""
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            if any(isinstance(t, ast.Name) and t.id == "always_active" for t in stmt.targets):
                return True
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and stmt.target.id == "always_active":
                return True
    return False


def _sets_done_unconditionally(step: ast.FunctionDef) -> bool:
    """Does ``step`` assign ``self.done = True`` at the top level of its body?

    Such a program finishes on its very first step; since round 0
    schedules every node, it can never be starved by the active-set
    scheduler, whatever its inbox handling looks like.
    """
    for stmt in step.body:
        if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Constant):
            if stmt.value.value is True:
                for target in stmt.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr == "done"
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        return True
    return False


def _declares_repairable(node: ast.ClassDef) -> bool:
    """Does the class body assign ``repairable`` (either value)?"""
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            if any(isinstance(t, ast.Name) and t.id == "repairable" for t in stmt.targets):
                return True
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and stmt.target.id == "repairable":
                return True
    return False


def _is_self_field_store(node: ast.AST, fields: FrozenSet[str]) -> Optional[str]:
    """The field name when ``node`` is a ``self.<field> = ...`` target."""
    if (
        isinstance(node, ast.Attribute)
        and node.attr in fields
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _is_done_attr(node: ast.AST) -> bool:
    """Is ``node`` a load of ``self.done``?"""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "done"
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def _tests_done_true(test: ast.AST) -> bool:
    """Does ``test`` assert that ``self.done`` is (already) truthy?

    Matches ``self.done``, ``self.done and ...`` (any operand), and
    ``self.done == True`` / ``self.done is True``.
    """
    if _is_done_attr(test):
        return True
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        return any(_tests_done_true(value) for value in test.values)
    if isinstance(test, ast.Compare) and len(test.ops) == 1:
        if isinstance(test.ops[0], (ast.Eq, ast.Is)):
            left, right = test.left, test.comparators[0]
            literal_true = isinstance(right, ast.Constant) and right.value is True
            return _is_done_attr(left) and literal_true
    return False


def _tests_done_false(test: ast.AST) -> bool:
    """Does ``test`` assert that ``self.done`` is falsy (``not self.done``)?"""
    return (
        isinstance(test, ast.UnaryOp)
        and isinstance(test.op, ast.Not)
        and _is_done_attr(test.operand)
    )


def _halted_output_writes(func: ast.FunctionDef) -> List[Tuple[ast.AST, str]]:
    """Rule L10 core: output-field stores under a ``self.done`` guard.

    Setting ``self.output`` in the same step invocation that sets
    ``self.done = True`` is the normal commit idiom -- outputs take
    effect when ``step`` returns.  What L10 flags is a store to
    ``self.output`` / ``self.color`` / ``self.in_mis`` inside a branch
    that is only reached when ``self.done`` is *already* true (the node
    halted in an earlier round): ``if self.done: self.output = ...`` or
    the ``else`` arm of ``if not self.done: ...``.  Such a write revises
    a committed answer, which only the repair protocol may do.
    """
    hits: List[Tuple[ast.AST, str]] = []

    def stores_in(body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            for sub in ast.walk(stmt):
                targets: List[ast.AST] = []
                if isinstance(sub, ast.Assign):
                    targets = list(sub.targets)
                elif isinstance(sub, (ast.AnnAssign, ast.AugAssign)):
                    targets = [sub.target]
                for target in targets:
                    field = _is_self_field_store(target, _OUTPUT_FIELDS)
                    if field is not None:
                        hits.append((sub, field))

    for node in ast.walk(func):
        if isinstance(node, (ast.If, ast.While)):
            if _tests_done_true(node.test):
                stores_in(node.body)
            elif _tests_done_false(node.test) and node.orelse:
                stores_in(node.orelse)

    return hits


def _calls_wake_next_round(step: ast.FunctionDef) -> bool:
    for node in ast.walk(step):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "wake_next_round"
        ):
            return True
    return False


def _step_is_trivial(step: ast.FunctionDef) -> bool:
    """A ``step`` that only returns an empty mapping cannot act on silence."""
    body = step.body
    if body and isinstance(body[0], ast.Expr) and isinstance(body[0].value, ast.Constant):
        body = body[1:]  # docstring
    if len(body) != 1 or not isinstance(body[0], ast.Return):
        return False
    value = body[0].value
    if value is None:
        return True
    if isinstance(value, ast.Dict) and not value.keys:
        return True
    return (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Name)
        and value.func.id == "dict"
        and not value.args
        and not value.keywords
    )


class _ClassChecker:
    """Applies rules L1-L6 and L10 to one NodeProgram subclass definition."""

    def __init__(
        self,
        module: _ModuleInfo,
        node: ast.ClassDef,
        findings: List[Finding],
        inherits_always_active: bool = False,
        inherits_repairable: bool = False,
    ):
        self.module = module
        self.node = node
        self.findings = findings
        self.inherits_always_active = inherits_always_active
        self.inherits_repairable = inherits_repairable

    def report(self, rule: str, at: ast.AST, message: str, method: str = "") -> None:
        line = getattr(at, "lineno", self.node.lineno)
        col = getattr(at, "col_offset", 0)
        symbol = f"{self.node.name}.{method}" if method else self.node.name
        self.findings.append(
            Finding(
                rule=rule,
                path=self.module.path,
                line=line,
                col=col,
                message=message,
                symbol=symbol,
                suppressed=self.module.suppressions.is_suppressed(rule, line),
            )
        )

    def run(self) -> None:
        step: Optional[ast.FunctionDef] = None
        for stmt in self.node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if isinstance(stmt, ast.FunctionDef) and stmt.name == "step":
                    step = stmt
                visitor = _MethodVisitor(self, stmt)
                visitor.visit_FunctionDef(stmt)
                if isinstance(stmt, ast.FunctionDef):
                    self._check_halted_writes(stmt)
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                value = stmt.value
                if value is not None and _is_mutable_literal(value):
                    targets = (
                        stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                    )
                    names = ", ".join(
                        t.id for t in targets if isinstance(t, ast.Name)
                    ) or "<attribute>"
                    self.report(
                        "L2",
                        value,
                        f"mutable class-level attribute {names} is shared by "
                        "every node instance; initialize it in __init__",
                    )
        self._check_starvation(step)

    def _check_halted_writes(self, func: ast.FunctionDef) -> None:
        """Rule L10: committed outputs only reopen inside a repair envelope."""
        if _declares_repairable(self.node) or self.inherits_repairable:
            return
        for at, field in _halted_output_writes(func):
            self.report(
                "L10",
                at,
                f"self.{field} stored under an `if self.done` guard; a "
                "halted node's outputs are committed -- declare "
                "repairable = True (the RepairableProgram envelope) if this "
                "program revises committed outputs under repair",
                method=func.name,
            )

    def _check_starvation(self, step: Optional[ast.FunctionDef]) -> None:
        """Rule L6: a step that may act on silence needs a declaration."""
        if step is None or _step_is_trivial(step):
            return
        if _declares_always_active(self.node) or self.inherits_always_active:
            return
        if _calls_wake_next_round(step) or _sets_done_unconditionally(step):
            return
        self.report(
            "L6",
            step,
            f"{self.node.name}.step() may act on silence but the class does "
            "not declare always_active; the active-set scheduler would skip "
            "it in rounds where it receives nothing -- declare "
            "always_active = True (or False for purely event-driven "
            "programs) or call self.wake_next_round()",
            method="step",
        )


def _declarers(
    modules: Sequence[_ModuleInfo], declares: "Callable[[ast.ClassDef], bool]"
) -> Set[str]:
    """Class names satisfying ``declares``, own or inherited (by name)."""
    declared: Set[str] = set()
    for info in modules:
        for name, node in info.classes.items():
            if declares(node):
                declared.add(name)
    changed = True
    while changed:
        changed = False
        for info in modules:
            for name, bases in info.base_names.items():
                if name not in declared and bases & declared:
                    declared.add(name)
                    changed = True
    return declared


def _always_active_declarers(modules: Sequence[_ModuleInfo]) -> Set[str]:
    """Class names that declare ``always_active``, own or inherited (by name)."""
    return _declarers(modules, _declares_always_active)


def _repairable_declarers(modules: Sequence[_ModuleInfo]) -> Set[str]:
    """Class names that declare ``repairable``, own or inherited (by name)."""
    return _declarers(modules, _declares_repairable)


def _analyze_modules(modules: Sequence[_ModuleInfo]) -> List[Finding]:
    # bandwidth imports dataflow which is analyzer-independent; importing
    # here (not at module top) keeps the public import graph acyclic
    from .bandwidth import bandwidth_findings

    findings: List[Finding] = []
    declarers = _always_active_declarers(modules)
    repairers = _repairable_declarers(modules)
    for name, definitions in _subclass_closure(modules).items():
        for info, node in definitions:
            _ClassChecker(
                info,
                node,
                findings,
                inherits_always_active=name in declarers,
                inherits_repairable=name in repairers,
            ).run()
    findings.extend(bandwidth_findings(modules))
    return sort_findings(findings)


def load_modules(paths: Iterable[Path]) -> List[_ModuleInfo]:
    """Pass one alone: parse every file under ``paths`` into module infos.

    The result feeds both :func:`_analyze_modules` and the bandwidth
    certifier (``repro lint --congest``), so a combined run parses each
    file exactly once.
    """
    modules: List[_ModuleInfo] = []
    for file in iter_python_files(paths):
        source = file.read_text()
        tree = ast.parse(source, filename=str(file))
        modules.append(_ModuleInfo(str(file), tree, parse_suppressions(source, str(file))))
    return modules


def analyze_modules(modules: Sequence[_ModuleInfo]) -> List[Finding]:
    """Pass two over already-loaded modules (rules L1-L10, sorted findings).

    Separated from :func:`analyze_paths` so a caller holding the modules
    -- e.g. the CLI, which also needs them for the bandwidth certificate
    table and for stale-suppression reporting -- parses each file once.
    """
    return _analyze_modules(modules)


def analyze_paths(paths: Iterable[Path]) -> List[Finding]:
    """Lint every NodeProgram subclass found under ``paths``.

    Returns all findings, including suppressed ones (marked as such);
    filter with :func:`active_findings` for the pass/fail decision.
    Unparseable files raise ``SyntaxError`` -- a file the linter cannot
    read is a build problem, not a lint finding.
    """
    return _analyze_modules(load_modules(paths))


def analyze_source(source: str, path: str = "<string>") -> List[Finding]:
    """Lint a single in-memory module (test/tooling convenience)."""
    tree = ast.parse(source, filename=path)
    info = _ModuleInfo(path, tree, parse_suppressions(source, path))
    return _analyze_modules([info])


def active_findings(findings: Iterable[Finding]) -> List[Finding]:
    return [f for f in findings if not f.suppressed]
