"""Checked-in lint baselines: known findings the build tolerates by name.

Inline ``# repro-lint: disable=`` comments are right for violations the
code's own author signs off on.  A *baseline* file handles the other
case: the linter grows a new rule, the existing reference implementation
trips it for documented reasons, and the findings should stay visible in
reports without failing CI or requiring comment churn across the tree.
``tools/lint_baseline.json`` is exactly that for this repository (the
one entry today: :class:`LinialPathProgram`'s ``list(ctx.inbox.values())``,
statically L9 but verified order-insensitive by the shadow sanitizer).

Entries match on ``(rule, symbol, path)`` -- deliberately **not** on line
numbers, which shift with every edit.  Paths compare by their trailing
``repro/...`` component so a baseline written from a repo checkout
(``src/repro/...``) also matches a lint run over an installed package
(``.../site-packages/repro/...``).

An entry that matches nothing is *unused* and reported as a warning:
the violation it excused is gone and the entry should be deleted
(same staleness contract as inline suppressions).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from .findings import Finding
from .rules import RULES

__all__ = [
    "BaselineEntry",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
    "entry_for",
]


@dataclass(frozen=True)
class BaselineEntry:
    """One tolerated finding, identified structurally (no line numbers)."""

    rule: str
    symbol: str
    path: str
    reason: str = ""

    def key(self) -> Tuple[str, str, str]:
        return (self.rule, self.symbol, _path_key(self.path))


def _path_key(path: str) -> str:
    """The stable tail of a source path: from the last ``repro/`` on.

    Falls back to the basename for files outside the package (fixtures),
    which keeps matching well-defined everywhere the linter runs.
    """
    posix = Path(path).as_posix()
    marker = "repro/"
    idx = posix.rfind(marker)
    if idx >= 0:
        return posix[idx:]
    return posix.rsplit("/", 1)[-1]


def entry_for(finding: Finding, reason: str = "") -> BaselineEntry:
    return BaselineEntry(
        rule=finding.rule,
        symbol=finding.symbol,
        path=_path_key(finding.path),
        reason=reason,
    )


def load_baseline(path: Union[str, Path]) -> List[BaselineEntry]:
    """Parse a baseline file; raises ``ValueError`` on malformed entries."""
    data = json.loads(Path(path).read_text())
    entries_raw = data.get("entries") if isinstance(data, dict) else data
    if not isinstance(entries_raw, list):
        raise ValueError(f"{path}: baseline must be a list (or {{'entries': [...]}})")
    entries: List[BaselineEntry] = []
    for i, raw in enumerate(entries_raw):
        if not isinstance(raw, dict) or not {"rule", "symbol", "path"} <= set(raw):
            raise ValueError(
                f"{path}: entry {i} must be an object with rule/symbol/path"
            )
        if raw["rule"] not in RULES:
            raise ValueError(f"{path}: entry {i} names unknown rule {raw['rule']!r}")
        entries.append(
            BaselineEntry(
                rule=str(raw["rule"]),
                symbol=str(raw["symbol"]),
                path=str(raw["path"]),
                reason=str(raw.get("reason", "")),
            )
        )
    return entries


def write_baseline(
    path: Union[str, Path], findings: Sequence[Finding]
) -> List[BaselineEntry]:
    """Write every active finding as a baseline entry; returns the entries."""
    entries = sorted(
        {entry_for(f) for f in findings if not f.suppressed},
        key=BaselineEntry.key,
    )
    payload = {
        "entries": [
            {
                "rule": e.rule,
                "symbol": e.symbol,
                "path": e.path,
                "reason": e.reason or "TODO: justify or fix",
            }
            for e in entries
        ]
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return entries


def apply_baseline(
    findings: Sequence[Finding], entries: Sequence[BaselineEntry]
) -> Tuple[List[Finding], List[Finding], List[BaselineEntry]]:
    """Split findings by the baseline.

    Returns ``(remaining, baselined, unused_entries)``: the active
    findings the baseline does not excuse, the ones it does, and the
    entries that matched nothing (stale -- report, don't fail).
    Suppressed findings pass through in ``remaining``'s complement
    untouched; a baseline only ever speaks about active findings.
    """
    by_key: Dict[Tuple[str, str, str], BaselineEntry] = {
        e.key(): e for e in entries
    }
    used: set = set()
    remaining: List[Finding] = []
    baselined: List[Finding] = []
    for finding in findings:
        if finding.suppressed:
            continue
        key = (finding.rule, finding.symbol, _path_key(finding.path))
        if key in by_key:
            used.add(key)
            baselined.append(finding)
        else:
            remaining.append(finding)
    unused = [e for e in entries if e.key() not in used]
    return remaining, baselined, unused
