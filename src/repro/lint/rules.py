"""The LOCAL-model conformance rule set.

Every round/approximation number this repository reports assumes the
standard LOCAL model contract (Linial; see Section 1 of the paper): a node
knows initially only its own ID and its neighbors' IDs, learns strictly
through messages from declared neighbors, and -- for the deterministic
algorithms the paper analyzes -- computes the same outputs on every run.
The rules below are the machine-checkable fragment of that contract:

L1  global-state access: a :class:`NodeProgram` references the global graph
    substrate (``Graph``, ``SyncNetwork``, anything imported from
    ``repro.graphs``) from inside the class.  A node that can touch the
    whole graph is not a LOCAL algorithm, whatever its round count says.

L2  shared mutable state: mutable class-level attributes, mutable default
    arguments, or mutation of module-level mutable globals from inside a
    program.  All of these alias one object across node instances, i.e.
    free communication outside the message channel.

L3  nondeterminism: direct use of ``random``/``time``/``os``/``secrets``/
    ``uuid`` or the salted ``hash()`` builtin inside a program.  Randomized
    programs must take an explicitly seeded ``random.Random`` through their
    constructor (the :class:`~repro.baselines.luby.LubyMISProgram` idiom)
    so the harness controls reproducibility; everything else must be
    deterministic.  Set-iteration order hazards are only caught at this
    syntactic level, not through data flow.

L4  out-of-neighborhood read: subscripting or ``.get``-ing ``ctx.inbox``
    with a key that is not derived from iterating the node's own
    neighborhood (``self.neighbors`` / ``ctx.neighbors`` / ``ctx.inbox``
    itself).  Asking for a non-neighbor's message -- even one that answers
    ``None`` -- encodes knowledge a LOCAL node cannot have.

L5  aliasing/mutation hazard: assigning to ``ctx`` attributes, writing into
    or clearing ``ctx.inbox``, or calling a mutator method on an object
    obtained from the inbox.  Messages and contexts must be treated as
    immutable; mutating them can leak state between rounds or nodes.

L6  starvation hazard: a :class:`NodeProgram` subclass with a non-trivial
    ``step`` that neither declares ``always_active`` at class level nor
    calls ``self.wake_next_round()``.  The active-set scheduler of
    :class:`~repro.localmodel.network.SyncNetwork` skips silent nodes, so
    a program that acts on silence (round counting, phase re-draws) would
    silently starve.  Declare ``always_active = True`` for such programs,
    or ``always_active = False`` to assert the program is purely
    event-driven.  Exempt: programs whose ``step`` unconditionally sets
    ``self.done = True`` at its top level -- they finish on their first
    step (round 0 schedules every node) and cannot starve.

Rules L7-L9 are the *bandwidth* fragment, added for CONGEST readiness
(see :mod:`repro.lint.bandwidth`): the LOCAL model lets messages grow
without bound, but every quantitative claim reproduced here assumes node
programs ship at most their gathered balls, and deterministically so.

L7  unbounded payload growth: an attribute accumulating inbox-derived
    state is re-broadcast with no round horizon.  The per-round message
    size then grows round over round -- beyond even the ball-gathering
    budget the paper's ``collect Gamma^r(v)`` primitive allows.

L8  ball-radius leak: the program declares a ``radius`` attribute but
    the accumulated state it ships is not bounded by it (either no round
    horizon at all, or a horizon keyed to a different attribute).  The
    wire payload then encodes state older than the declared radius.

L9  schedule dependence: message or output content derived from set /
    dict-view iteration order (``next(iter(...))``, ``list()`` over a set
    or inbox view, ``set.pop()``) or from float-literal equality.  Static
    L9 findings are one-sided -- the consumer may be order-insensitive --
    so each should be cross-checked with the shadow-execution sanitizer
    (``repro lint --sanitize``), which permutes inbox iteration order and
    diffs transcripts.

L10 halted output write: a program stores to an output field
    (``output``, ``color``, ``in_mis``) inside a branch that is only
    reached when ``self.done`` is *already* true -- ``if self.done:
    self.output = ...`` or the ``else`` arm of ``if not self.done``.
    Setting the output in the same step that sets ``self.done = True``
    is the normal commit idiom; a done-guarded store instead revises an
    answer committed in an earlier round, which only the repair protocol
    may do.  Programs that mean to revise committed outputs must opt in
    by declaring ``repairable = True`` (the
    :class:`~repro.localmodel.stabilize.RepairableProgram` envelope
    idiom), which both exempts them from this rule and tells the
    network's corruption hook to re-schedule them after state
    corruption.

Suppression: append ``# repro-lint: disable=L3`` (comma-separate several
codes, or use ``all``) to the offending line or the line above it; a
``# repro-lint: disable-file=L3`` comment before the first statement of a
module suppresses a rule file-wide.  The dynamic counterpart of L4/L5 is
the sealed-context mode of :class:`~repro.localmodel.network.SyncNetwork`
(``sealed=True``), which enforces the same contract at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet

__all__ = ["Rule", "RULES", "ALL_RULE_CODES", "normalize_codes"]


@dataclass(frozen=True)
class Rule:
    """One conformance rule: a stable code plus human-facing prose."""

    code: str
    name: str
    summary: str


RULES: Dict[str, Rule] = {
    rule.code: rule
    for rule in (
        Rule(
            "L1",
            "global-state-access",
            "node program references global graph state (Graph, SyncNetwork, "
            "or anything imported from repro.graphs)",
        ),
        Rule(
            "L2",
            "shared-mutable-state",
            "mutable class-level attribute, mutable default argument, or "
            "mutation of a module-level mutable shared between node instances",
        ),
        Rule(
            "L3",
            "nondeterminism",
            "direct use of random/time/os/secrets/uuid or hash() inside a "
            "node program; randomness must arrive as an injected seeded "
            "random.Random",
        ),
        Rule(
            "L4",
            "out-of-neighborhood-read",
            "ctx.inbox is keyed by something not derived from the node's own "
            "neighborhood",
        ),
        Rule(
            "L5",
            "context-mutation",
            "node program mutates ctx, ctx.inbox, or a received message "
            "(messages must be treated as immutable)",
        ),
        Rule(
            "L6",
            "starvation-hazard",
            "node program with a non-trivial step neither declares "
            "always_active nor calls wake_next_round(); the active-set "
            "scheduler would skip it in silent rounds",
        ),
        Rule(
            "L7",
            "unbounded-payload-growth",
            "node program re-broadcasts accumulated inbox-derived state "
            "with no round horizon; per-round message size grows without "
            "bound, leaving both CONGEST and ball-gathering budgets",
        ),
        Rule(
            "L8",
            "ball-radius-leak",
            "node program declares a gathering radius but ships accumulated "
            "state past it (no horizon, or a horizon keyed to a different "
            "attribute); the payload encodes state older than the declared "
            "radius",
        ),
        Rule(
            "L9",
            "schedule-dependence",
            "message or output content derived from set/dict iteration "
            "order, next(iter(...)), set.pop(), or float-literal equality; "
            "cross-check dynamically with `repro lint --sanitize`",
        ),
        Rule(
            "L10",
            "halted-output-write",
            "output field stored under an `if self.done` guard; a halted "
            "node's outputs are committed -- declare repairable = True (the "
            "RepairableProgram envelope) to revise them under repair",
        ),
    )
}

ALL_RULE_CODES: FrozenSet[str] = frozenset(RULES)


def normalize_codes(spec: str) -> FrozenSet[str]:
    """Parse a comma-separated rule spec (``"L1,L3"``; ``"all"`` = every rule).

    Raises ``ValueError`` on unknown codes so typos in suppression comments
    and ``--select`` arguments fail loudly instead of silently disabling
    nothing.
    """
    codes = set()
    for part in spec.split(","):
        part = part.strip().upper()
        if not part:
            continue
        if part == "ALL":
            return ALL_RULE_CODES
        if part not in RULES:
            raise ValueError(f"unknown repro-lint rule code: {part!r}")
        codes.add(part)
    return frozenset(codes)
