"""Bandwidth certificates: from dataflow facts to CONGEST-readiness claims.

:mod:`repro.lint.dataflow` reduces every ``NodeProgram`` subclass to a
small fact base -- payload sites with abstract sizes, cross-round
accumulators, round horizons, order hazards.  This module turns those
facts into two consumer-facing artifacts:

* a :class:`BandwidthCertificate` per program, classifying its per-round
  message size as ``const`` (O(1) words / opaque forwarding), ``ball``
  (accumulated state bounded by a round horizon -- the Konrad-Zamaraev
  ``Gamma^r(v)`` gathering shape), ``unbounded`` (accumulated state
  re-broadcast with no horizon), or ``silent`` (never sends);

* :class:`~repro.lint.findings.Finding` objects for the three bandwidth
  rules --

  L7  unbounded payload growth: an accumulator reaches the wire with no
      round horizon bounding the flood;
  L8  ball-radius leak: the program declares a ``radius`` attribute but
      ships accumulated state past it (no horizon, or a horizon keyed to
      a different attribute -- the payload then encodes state older than
      the declared radius);
  L9  schedule dependence: message or output content derived from set /
      dict-view iteration order (``next(iter(..))``, ``list()`` over a
      set or inbox view, ``set.pop()``) or from float-literal equality.
      The dynamic counterpart is the shadow-execution checker in
      :mod:`repro.localmodel.shadow`, which permutes inbox iteration
      order and diffs transcripts.

The certificate is sound in one direction only: ``static class >=
observed growth class``.  The test suite cross-validates this against
:class:`~repro.localmodel.meter.MessageMeter` measurements -- a program
certified ``const`` must measure flat payloads across ``n``, and a
program that measures growing payloads must be certified ``ball`` or
worse.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .dataflow import (
    ACC,
    MSG,
    WORD,
    ClassDataflow,
    ModuleLike,
    analyze_dataflow,
)
from .findings import Finding

__all__ = [
    "BandwidthCertificate",
    "CLASS_ORDER",
    "certify",
    "certificates_for_modules",
    "bandwidth_findings",
    "format_certificates_text",
    "format_certificates_json",
]

#: Growth classes, weakest claim first.  ``observed_class_index`` from the
#: meter must never exceed the static index for shipped programs.
CLASS_ORDER: Tuple[str, ...] = ("silent", "const", "ball", "unbounded")


@dataclass(frozen=True)
class BandwidthCertificate:
    """The per-program result of the static bandwidth pass."""

    program: str
    path: str
    line: int
    message_class: str  # one of CLASS_ORDER
    horizon: Optional[str]  # bounding attribute for the ``ball`` class
    payloads: Tuple[str, ...]  # human-readable payload descriptions
    accumulators: Tuple[str, ...]  # attributes that grow across rounds
    hazards: int  # count of L9 order hazards
    assumptions: Tuple[str, ...]  # compositional caveats (e.g. forwarding)

    @property
    def class_index(self) -> int:
        return CLASS_ORDER.index(self.message_class)


def certify(df: ClassDataflow) -> BandwidthCertificate:
    """Classify one program's dataflow facts."""
    assumptions: List[str] = []
    horizon: Optional[str] = None

    if not df.sends:
        message_class = "silent"
    else:
        acc_sites = [s for s in df.payload_sites if s.size == ACC]
        if not acc_sites:
            message_class = "const"
            if any(s.size == MSG for s in df.payload_sites):
                assumptions.append(
                    "forwards received payloads opaquely; O(1) words only if "
                    "every upstream sender is O(1) words"
                )
        else:
            bounded = [s for s in acc_sites if s.bounded_by is not None]
            if len(bounded) == len(acc_sites):
                message_class = "ball"
                horizon = bounded[0].bounded_by
                assumptions.append(
                    f"payload is the accumulated ball up to round "
                    f"self.{horizon}; size is O(|ball(horizon)|) words"
                )
            else:
                message_class = "unbounded"

    payloads = tuple(
        f"{s.description} [{_size_word(s.size)}"
        + (f", bounded by self.{s.bounded_by}" if s.bounded_by else "")
        + "]"
        for s in df.payload_sites
    )
    accumulators = tuple(sorted(df.accumulators))
    return BandwidthCertificate(
        program=df.name,
        path=df.path,
        line=df.line,
        message_class=message_class,
        horizon=horizon,
        payloads=payloads,
        accumulators=accumulators,
        hazards=len(df.order_hazards),
        assumptions=tuple(assumptions),
    )


def _size_word(size: int) -> str:
    return {WORD: "O(1) words", MSG: "forwarded message", ACC: "accumulated"}[size]


def certificates_for_modules(
    modules: Sequence[ModuleLike],
) -> List[BandwidthCertificate]:
    """One certificate per NodeProgram subclass under ``modules``."""
    certs = [certify(df) for df in analyze_dataflow(modules)]
    certs.sort(key=lambda c: (c.path, c.line))
    return certs


# ---------------------------------------------------------------------------
# findings (rules L7 / L8 / L9)
# ---------------------------------------------------------------------------

def bandwidth_findings(modules: Sequence[ModuleLike]) -> List[Finding]:
    """L7/L8/L9 findings for every NodeProgram subclass under ``modules``.

    Suppression state is read from each module's ``suppressions``
    attribute when present (the analyzer's ``_ModuleInfo`` carries one);
    modules without it produce unsuppressed findings.
    """
    by_path: Dict[str, ModuleLike] = {info.path: info for info in modules}
    findings: List[Finding] = []
    for df in analyze_dataflow(modules):
        suppressions = getattr(by_path.get(df.path), "suppressions", None)

        def emit(rule: str, line: int, col: int, message: str, method: str = "") -> None:
            symbol = f"{df.name}.{method}" if method else df.name
            suppressed = (
                suppressions.is_suppressed(rule, line)
                if suppressions is not None
                else False
            )
            findings.append(
                Finding(
                    rule=rule,
                    path=df.path,
                    line=line,
                    col=col,
                    message=message,
                    symbol=symbol,
                    suppressed=suppressed,
                )
            )

        acc_sites = [s for s in df.payload_sites if s.size == ACC]
        unbounded = [s for s in acc_sites if s.bounded_by is None]
        inbox_accs = sorted(
            a.attr for a in df.accumulators.values() if a.inbox_fed
        )

        for site in unbounded:
            if df.declares_radius:
                emit(
                    "L8",
                    site.line,
                    site.col,
                    f"payload {site.description!r} ships accumulated state "
                    f"({', '.join(inbox_accs) or 'inbox capture'}) with no "
                    "round horizon, but the program declares a radius -- the "
                    "message encodes state older than the declared radius; "
                    "guard the broadcast with a ctx.round_number cutoff on "
                    "self.radius",
                    method="step",
                )
            else:
                emit(
                    "L7",
                    site.line,
                    site.col,
                    f"payload {site.description!r} re-broadcasts accumulated "
                    f"state ({', '.join(inbox_accs) or 'inbox capture'}) with "
                    "no round horizon; per-round message size grows without "
                    "bound -- bound the flood with a ctx.round_number cutoff "
                    "or ship an O(1)-word digest",
                    method="step",
                )
        if df.declares_radius:
            for site in acc_sites:
                if site.bounded_by is not None and site.bounded_by != "radius":
                    emit(
                        "L8",
                        site.line,
                        site.col,
                        f"payload {site.description!r} is bounded by "
                        f"self.{site.bounded_by}, not the declared "
                        "self.radius -- the ball shipped on the wire can "
                        "encode state older than the declared radius",
                        method="step",
                    )

        for hazard in df.order_hazards:
            emit(
                "L9",
                hazard.line,
                hazard.col,
                f"schedule-dependent value: {hazard.description}; run "
                "`repro lint --sanitize` to check whether outputs and "
                "transcripts actually diverge under permuted inbox order",
                method=hazard.method,
            )
    return findings


# ---------------------------------------------------------------------------
# rendering (``repro lint --congest``)
# ---------------------------------------------------------------------------

def format_certificates_text(certs: Sequence[BandwidthCertificate]) -> str:
    if not certs:
        return "no NodeProgram subclasses found\n"
    rows = [("program", "class", "horizon", "accumulators", "L9 hazards")]
    for cert in certs:
        rows.append(
            (
                cert.program,
                cert.message_class,
                f"self.{cert.horizon}" if cert.horizon else "-",
                ", ".join(cert.accumulators) or "-",
                str(cert.hazards) if cert.hazards else "-",
            )
        )
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    lines = []
    for idx, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip())
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    for cert in certs:
        for note in cert.assumptions:
            lines.append(f"note [{cert.program}]: {note}")
    return "\n".join(lines) + "\n"


def format_certificates_json(certs: Sequence[BandwidthCertificate]) -> str:
    payload = {
        "certificates": [
            {
                "program": c.program,
                "path": c.path,
                "line": c.line,
                "class": c.message_class,
                "horizon": c.horizon,
                "payloads": list(c.payloads),
                "accumulators": list(c.accumulators),
                "order_hazards": c.hazards,
                "assumptions": list(c.assumptions),
            }
            for c in certs
        ],
        "class_order": list(CLASS_ORDER),
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
