"""Per-line and per-file suppression comments for the conformance linter.

Syntax (anywhere a comment is legal)::

    self.color = hash(self.node)      # repro-lint: disable=L3
    # repro-lint: disable=L2,L5      <- also covers the line directly below
    # repro-lint: disable-file=L1    <- before the first statement: whole file

Comments are located with :mod:`tokenize`, so the markers are never
confused with string literals that merely look like comments.  Unknown
rule codes raise immediately (a typo'd suppression that silently disables
nothing is worse than a failing lint run).
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet, List, Set, Tuple

from .rules import normalize_codes

__all__ = ["Suppressions", "parse_suppressions"]

_MARKER = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable(?:-file)?)\s*=\s*(?P<codes>[A-Za-z0-9,\s]+)"
)


class Suppressions:
    """Which rule codes are disabled at which lines (or file-wide).

    The object also keeps score: every :meth:`is_suppressed` call that a
    marker answers affirmatively records a *hit* against that marker, so
    after an analysis pass :meth:`stale_markers` names the line-scoped
    markers that suppressed nothing -- the finding they were written for
    is gone and the comment is dead weight (or worse, a typo'd line).
    Stale detection is advisory, not an error: an analysis restricted to
    a rule subset legitimately leaves other markers unexercised.
    """

    def __init__(
        self, by_line: Dict[int, FrozenSet[str]], file_wide: FrozenSet[str]
    ):
        self._by_line = by_line
        self._file_wide = file_wide
        self._hits: Set[Tuple[int, str]] = set()

    def is_suppressed(self, rule: str, line: int) -> bool:
        """True when ``rule`` is disabled at ``line``.

        A line-scoped marker covers its own line and, when the comment
        stands alone, the line below it -- both checks are cheap, so the
        marker simply covers both.
        """
        if rule in self._file_wide:
            return True
        hit = False
        for covered in (line, line - 1):
            if rule in self._by_line.get(covered, frozenset()):
                self._hits.add((covered, rule))
                hit = True
        return hit

    def stale_markers(self) -> List[Tuple[int, str]]:
        """Line-scoped ``(line, rule)`` markers no finding ever matched."""
        return sorted(
            (line, rule)
            for line, codes in self._by_line.items()
            for rule in codes
            if (line, rule) not in self._hits
        )

    @property
    def file_wide(self) -> FrozenSet[str]:
        return self._file_wide


def parse_suppressions(source: str, path: str = "<string>") -> Suppressions:
    """Extract every ``repro-lint`` marker from ``source``.

    ``disable-file`` markers only count before the first statement (the
    leading comment block); later ones raise, because a file-wide disable
    buried mid-module is unreadable.
    """
    by_line: Dict[int, Set[str]] = {}
    file_wide: Set[str] = set()
    seen_code = False
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        # Unparseable files are reported by the analyzer proper; no
        # suppressions can be trusted from them.
        return Suppressions({}, frozenset())
    for tok in tokens:
        if tok.type in (
            tokenize.COMMENT,
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENCODING,
            tokenize.ENDMARKER,
        ):
            if tok.type != tokenize.COMMENT:
                continue
        else:
            seen_code = True
            continue
        match = _MARKER.search(tok.string)
        if not match:
            continue
        try:
            codes = normalize_codes(match.group("codes"))
        except ValueError as exc:
            raise ValueError(f"{path}:{tok.start[0]}: {exc}") from None
        if match.group("kind") == "disable-file":
            if seen_code:
                raise ValueError(
                    f"{path}:{tok.start[0]}: disable-file markers must appear "
                    "before the first statement"
                )
            file_wide.update(codes)
        else:
            by_line.setdefault(tok.start[0], set()).update(codes)
    return Suppressions(
        {line: frozenset(codes) for line, codes in by_line.items()},
        frozenset(file_wide),
    )
