"""LOCAL-model conformance checking for node programs.

Round counts in this repository are only meaningful if every
:class:`~repro.localmodel.network.NodeProgram` plays by the LOCAL-model
rules: no access to global graph state, no state shared between node
instances, no hidden nondeterminism, no reading beyond the declared
neighborhood, no mutation of delivered messages.  This package checks
that contract statically:

* :mod:`repro.lint.rules` -- the rule set L1-L10 and its rationale;
* :mod:`repro.lint.analyzer` -- the AST analysis (NodeProgram subclass
  closure + per-method visitors, rules L1-L6 and L10);
* :mod:`repro.lint.dataflow` -- interprocedural message-size abstract
  interpretation (the WORD < MSG < ACC lattice);
* :mod:`repro.lint.bandwidth` -- bandwidth certificates (``const`` /
  ``ball`` / ``unbounded`` per program) and rules L7-L9;
* :mod:`repro.lint.findings` -- findings and text/JSON rendering;
* :mod:`repro.lint.suppressions` -- ``# repro-lint: disable=...`` comments;
* :mod:`repro.lint.baseline` -- checked-in tolerated-findings files;
* :mod:`repro.lint.cli` -- ``python -m repro.lint`` / ``repro lint``.

The dynamic counterparts live in :mod:`repro.localmodel`: sealed-context
mode (``sealed=True``) enforces L4/L5 at runtime, the
:class:`~repro.localmodel.meter.MessageMeter` sink measures what L7/L8
bound statically, and the shadow-execution checker
(:func:`~repro.localmodel.shadow.shadow_check`, ``repro lint
--sanitize``) is the dynamic face of L9, and the repair envelope
(:class:`~repro.localmodel.stabilize.RepairableProgram`) is the
sanctioned form of what L10 forbids; ``tests/lint`` cross-validates
static against dynamic on deliberately cheating programs.
"""

from .analyzer import (
    NODE_PROGRAM_ROOT,
    active_findings,
    analyze_modules,
    analyze_paths,
    analyze_source,
    iter_python_files,
    load_modules,
)
from .bandwidth import (
    CLASS_ORDER,
    BandwidthCertificate,
    bandwidth_findings,
    certificates_for_modules,
    certify,
    format_certificates_json,
    format_certificates_text,
)
from .baseline import (
    BaselineEntry,
    apply_baseline,
    entry_for,
    load_baseline,
    write_baseline,
)
from .cli import default_paths, main, run_lint
from .dataflow import ACC, MSG, WORD, ClassDataflow, analyze_dataflow
from .findings import Finding, format_json, format_text, sort_findings
from .rules import ALL_RULE_CODES, RULES, Rule, normalize_codes
from .suppressions import Suppressions, parse_suppressions

__all__ = [
    "NODE_PROGRAM_ROOT",
    "active_findings",
    "analyze_modules",
    "analyze_paths",
    "analyze_source",
    "iter_python_files",
    "load_modules",
    "CLASS_ORDER",
    "BandwidthCertificate",
    "bandwidth_findings",
    "certificates_for_modules",
    "certify",
    "format_certificates_json",
    "format_certificates_text",
    "BaselineEntry",
    "apply_baseline",
    "entry_for",
    "load_baseline",
    "write_baseline",
    "default_paths",
    "main",
    "run_lint",
    "ACC",
    "MSG",
    "WORD",
    "ClassDataflow",
    "analyze_dataflow",
    "Finding",
    "format_json",
    "format_text",
    "sort_findings",
    "ALL_RULE_CODES",
    "RULES",
    "Rule",
    "normalize_codes",
    "Suppressions",
    "parse_suppressions",
]
