"""LOCAL-model conformance checking for node programs.

Round counts in this repository are only meaningful if every
:class:`~repro.localmodel.network.NodeProgram` plays by the LOCAL-model
rules: no access to global graph state, no state shared between node
instances, no hidden nondeterminism, no reading beyond the declared
neighborhood, no mutation of delivered messages.  This package checks
that contract statically:

* :mod:`repro.lint.rules` -- the rule set L1-L5 and its rationale;
* :mod:`repro.lint.analyzer` -- the AST analysis (NodeProgram subclass
  closure + per-method visitors);
* :mod:`repro.lint.findings` -- findings and text/JSON rendering;
* :mod:`repro.lint.suppressions` -- ``# repro-lint: disable=...`` comments;
* :mod:`repro.lint.cli` -- ``python -m repro.lint`` / ``repro lint``.

The dynamic counterpart is the sealed-context mode of
:class:`~repro.localmodel.network.SyncNetwork` (``sealed=True``), which
enforces L4/L5 at runtime; ``tests/lint`` cross-validates the two on
deliberately cheating programs.
"""

from .analyzer import (
    NODE_PROGRAM_ROOT,
    active_findings,
    analyze_paths,
    analyze_source,
    iter_python_files,
)
from .cli import default_paths, main, run_lint
from .findings import Finding, format_json, format_text, sort_findings
from .rules import ALL_RULE_CODES, RULES, Rule, normalize_codes
from .suppressions import Suppressions, parse_suppressions

__all__ = [
    "NODE_PROGRAM_ROOT",
    "active_findings",
    "analyze_paths",
    "analyze_source",
    "iter_python_files",
    "default_paths",
    "main",
    "run_lint",
    "Finding",
    "format_json",
    "format_text",
    "sort_findings",
    "ALL_RULE_CODES",
    "RULES",
    "Rule",
    "normalize_codes",
    "Suppressions",
    "parse_suppressions",
]
