"""Findings produced by the conformance analyzer, and their two renderings.

A :class:`Finding` pins a rule violation to ``path:line:col`` plus the
enclosing ``Class.method`` so it is actionable from a terminal or CI log.
Formatting mirrors the two consumers: ``format_text`` for humans (the
``repro lint`` default) and ``format_json`` for tooling, following the
table/report idiom of :mod:`repro.analysis.report` (plain strings, no
third-party dependencies).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

from .rules import RULES

__all__ = ["Finding", "format_text", "format_json", "sort_findings"]


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str  # "L1".."L5"
    path: str  # file the violation lives in
    line: int  # 1-based line number
    col: int  # 0-based column, as reported by ast
    message: str  # what exactly is wrong, with the offending symbol named
    symbol: str = ""  # enclosing "Class.method" when known
    suppressed: bool = False  # True when a repro-lint comment disabled it

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "rule_name": RULES[self.rule].name,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "symbol": self.symbol,
            "suppressed": self.suppressed,
        }


def sort_findings(findings: Sequence[Finding]) -> List[Finding]:
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))


def format_text(findings: Sequence[Finding], show_suppressed: bool = False) -> str:
    """Human-readable report, one ``path:line:col: CODE [name] message`` line each."""
    lines = []
    active = 0
    for f in sort_findings(findings):
        if f.suppressed and not show_suppressed:
            continue
        tag = " (suppressed)" if f.suppressed else ""
        where = f" (in {f.symbol})" if f.symbol else ""
        lines.append(
            f"{f.location()}: {f.rule} [{RULES[f.rule].name}] {f.message}{where}{tag}"
        )
        if not f.suppressed:
            active += 1
    noun = "finding" if active == 1 else "findings"
    lines.append(f"{active} {noun}")
    return "\n".join(lines)


def format_json(findings: Sequence[Finding], show_suppressed: bool = False) -> str:
    """Machine-readable report: findings list plus per-rule summary.

    ``summary.suppressed_count`` counts the findings disabled by
    ``repro-lint`` comments whether or not they are shown, so a JSON
    consumer can tell "this code is clean" (total 0, suppressed_count 0)
    from "every violation here has been waved through" (total 0,
    suppressed_count > 0) without re-running with ``--show-suppressed``.
    """
    shown = [
        f for f in sort_findings(findings) if show_suppressed or not f.suppressed
    ]
    active = [f for f in shown if not f.suppressed]
    suppressed_count = sum(1 for f in findings if f.suppressed)
    by_rule: Dict[str, int] = {}
    for f in active:
        by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
    return json.dumps(
        {
            "findings": [f.as_dict() for f in shown],
            "summary": {
                "total": len(active),
                "by_rule": by_rule,
                "suppressed_count": suppressed_count,
            },
        },
        indent=2,
        sort_keys=True,
    )
