"""Interprocedural message-size dataflow over ``NodeProgram`` classes.

The LOCAL model charges rounds and lets messages grow without bound; the
CONGEST model caps every message at O(log n) bits.  Every quantitative
claim this repository reproduces silently assumes something in between:
node programs may ship their gathered balls (Konrad-Zamaraev's
``collect Gamma^{10k}(v)`` primitive) but nothing *more* -- no payloads
that keep growing after the declared gathering radius, and no payload
whose bytes depend on the schedule.  This module is the static half of
that check: an abstract interpreter that traces dataflow from
``ctx.inbox`` into ``send``/return payloads and classifies each
program's per-round message size.

Abstract domain
---------------

Every expression evaluates to one of three sizes, ordered
``WORD < MSG < ACC``:

* ``WORD`` -- O(1) machine words: constants, IDs, round numbers, and
  anything reached through arithmetic, comparisons, or aggregators
  (``len``/``sum``/``min``/``max``/...).  Fixed-arity tuples of words
  are words.
* ``MSG`` -- a single received payload (or a value unpacked from one),
  forwarded opaquely.  Forwarding is size-preserving: a system in which
  every program ships words stays O(1) under forwarding, so ``MSG``
  certifies *no amplification* rather than an absolute bound.  The
  certificate records the assumption.
* ``ACC`` -- a container holding received payloads: either a capture of
  a whole round's inbox (``dict(ctx.inbox)``, ``list(ctx.inbox.values())``)
  or an attribute that *accumulates* inbox-derived state across rounds
  (``self.known.update(...)``).  Re-broadcasting ``ACC`` data compounds
  round over round -- that is ball growth when a round horizon bounds it
  and unbounded growth when nothing does.

Interprocedural analysis: helper methods and module-level functions are
summarized on demand -- the summary of ``f`` is the abstract size of its
return value as a function of its argument sizes, memoized per call
signature, with recursion conservatively pinned to ``ACC``.  That is what
lets :class:`~repro.localmodel.colorreduction.LinialPathProgram` (whose
payload passes through ``linial_new_color``) classify as O(1) words.

Horizon detection: a payload site carrying ``ACC`` data is *bounded*
when it is guarded by a round-horizon cutoff -- a top-level
``if ctx.round_number >= self.X: ... return`` in ``step`` before the
send, or an enclosing ``if ctx.round_number < self.X:``.  The attribute
``X`` is the program's flooding horizon; when the program also declares
a ``radius`` attribute, the horizon must *be* ``self.radius`` or the
payload encodes state older than the declared radius (rule L8).

The classifier is deliberately one-sided: it may over-approximate
(``static class >= observed growth class``, cross-validated against
:class:`~repro.localmodel.meter.MessageMeter` measurements in the test
suite) but shipped programs must never measure above their certificate.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "WORD",
    "MSG",
    "ACC",
    "SIZE_NAMES",
    "PayloadSite",
    "OrderHazard",
    "AccumulatorInfo",
    "ClassDataflow",
    "ModuleLike",
    "analyze_dataflow",
    "node_program_closure",
]

#: Abstract sizes, ordered: O(1) words < one forwarded message < an
#: accumulated/captured collection of messages.
WORD, MSG, ACC = 0, 1, 2

SIZE_NAMES = {WORD: "words", MSG: "forwarded-message", ACC: "accumulated-state"}

#: The root of the subclass closure (kept in sync with the analyzer).
_NODE_PROGRAM_ROOT = "NodeProgram"

#: Aggregating builtins whose result is O(1) words whatever the argument.
_WORD_CALLS = frozenset(
    {
        "len",
        "sum",
        "min",
        "max",
        "any",
        "all",
        "abs",
        "round",
        "int",
        "float",
        "bool",
        "str",
        "repr",
        "ord",
        "chr",
        "isinstance",
        "hasattr",
        "getattr",
        "range",
        "enumerate",
        "zip",
        "divmod",
        "pow",
    }
)

#: Size-preserving container constructors / copies.
_PRESERVING_CALLS = frozenset(
    {"list", "tuple", "set", "frozenset", "dict", "sorted", "reversed", "copy", "deepcopy"}
)

#: Receiver methods that grow a container in place.
_GROW_METHODS = frozenset(
    {"update", "add", "append", "extend", "insert", "setdefault"}
)

#: Receiver methods that yield a single element of the container.
_ELEMENT_METHODS = frozenset({"get", "pop", "popitem"})


class ModuleLike:
    """Structural type for what the analyzer's pass one records per file.

    Any object with these attributes works (the analyzer's ``_ModuleInfo``
    does); this lightweight mirror keeps the import direction
    ``analyzer -> bandwidth -> dataflow`` acyclic.
    """

    path: str
    tree: ast.Module
    classes: Dict[str, ast.ClassDef]
    base_names: Dict[str, Set[str]]


@dataclass(frozen=True)
class PayloadSite:
    """One expression whose value reaches the wire."""

    line: int
    col: int
    size: int  # WORD / MSG / ACC
    bounded_by: Optional[str]  # horizon attribute name, when round-bounded
    description: str


@dataclass(frozen=True)
class OrderHazard:
    """One schedule-dependence hazard (rule L9)."""

    line: int
    col: int
    method: str
    description: str


@dataclass(frozen=True)
class AccumulatorInfo:
    """One attribute that grows across rounds."""

    attr: str
    line: int
    inbox_fed: bool  # grew from inbox-derived data (vs local data)


@dataclass
class ClassDataflow:
    """Everything the bandwidth certifier needs about one program class."""

    name: str
    path: str
    line: int
    has_step: bool = False
    sends: bool = False
    payload_sites: List[PayloadSite] = field(default_factory=list)
    accumulators: Dict[str, AccumulatorInfo] = field(default_factory=dict)
    order_hazards: List[OrderHazard] = field(default_factory=list)
    declares_radius: bool = False
    radius_line: int = 0
    horizons: List[str] = field(default_factory=list)

    @property
    def max_payload_size(self) -> int:
        return max((s.size for s in self.payload_sites), default=WORD)


# ---------------------------------------------------------------------------
# class resolution (subclass closure + inherited method lookup)
# ---------------------------------------------------------------------------

def node_program_closure(
    modules: Sequence[ModuleLike],
) -> List[Tuple[ModuleLike, ast.ClassDef]]:
    """Every (module, class) definition in the NodeProgram subclass closure.

    Name-based, transitive across modules -- same resolution rule as the
    conformance analyzer, so the two passes always agree on what counts
    as a node program.
    """
    known: Set[str] = {_NODE_PROGRAM_ROOT}
    changed = True
    while changed:
        changed = False
        for info in modules:
            for name, bases in info.base_names.items():
                if name not in known and bases & known:
                    known.add(name)
                    changed = True
    out: List[Tuple[ModuleLike, ast.ClassDef]] = []
    for info in modules:
        for name, node in info.classes.items():
            if name in known and name != _NODE_PROGRAM_ROOT:
                out.append((info, node))
    return out


def _method_resolution(
    cls: ast.ClassDef,
    classes: Dict[str, ast.ClassDef],
) -> Dict[str, ast.FunctionDef]:
    """Own methods first, then depth-first through named bases."""
    resolved: Dict[str, ast.FunctionDef] = {}
    seen: Set[str] = set()

    def visit(node: ast.ClassDef) -> None:
        if node.name in seen:
            return
        seen.add(node.name)
        for stmt in node.body:
            if isinstance(stmt, ast.FunctionDef) and stmt.name not in resolved:
                resolved[stmt.name] = stmt
        for base in node.bases:
            base_name = _tail_name(base)
            if base_name and base_name in classes:
                visit(classes[base_name])

    visit(cls)
    return resolved


def _tail_name(node: ast.AST) -> Optional[str]:
    while isinstance(node, ast.Attribute):
        node = node.value  # type: ignore[assignment]
    if isinstance(node, ast.Name):
        return node.id
    return None


def _call_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


def _is_self_attr(node: ast.AST) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


# ---------------------------------------------------------------------------
# the abstract interpreter
# ---------------------------------------------------------------------------

class _ClassAnalysis:
    """Drives the two analysis phases for one NodeProgram subclass."""

    def __init__(
        self,
        module: ModuleLike,
        cls: ast.ClassDef,
        classes: Dict[str, ast.ClassDef],
        functions: Dict[str, ast.FunctionDef],
    ):
        self.module = module
        self.cls = cls
        self.classes = classes
        self.functions = functions  # module-level functions by name
        self.methods = _method_resolution(cls, classes)
        self.attr_sizes: Dict[str, int] = {}
        self.set_attrs: Set[str] = set()  # attributes known to hold sets
        self.result = ClassDataflow(name=cls.name, path=module.path, line=cls.lineno)
        self._summary_cache: Dict[Tuple[int, Tuple[int, ...]], int] = {}
        self._summary_stack: Set[Tuple[int, Tuple[int, ...]]] = set()

    # -- entry ----------------------------------------------------------

    def run(self) -> ClassDataflow:
        step = self.methods.get("step")
        self.result.has_step = step is not None
        self._detect_radius()
        # Phase 1: attribute sizes + accumulators, to a (cheap) fixed point.
        for _ in range(4):
            before = (dict(self.attr_sizes), set(self.set_attrs))
            for name, method in self.methods.items():
                _MethodFlow(self, method, collect_payloads=False).walk()
            if (dict(self.attr_sizes), set(self.set_attrs)) == before:
                break
        # Phase 2: payload sites + order hazards.
        for name, method in self.methods.items():
            _MethodFlow(
                self,
                method,
                collect_payloads=(name == "step"),
                report_hazards=True,
            ).walk()
        self.result.sends = bool(self.result.payload_sites)
        return self.result

    def _detect_radius(self) -> None:
        """Does the class (or a base) declare a ``radius`` attribute?"""
        for stmt in self.cls.body:
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                targets = (
                    stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                )
                for t in targets:
                    if isinstance(t, ast.Name) and t.id == "radius":
                        self.result.declares_radius = True
                        self.result.radius_line = stmt.lineno
        for method in self.methods.values():
            for node in ast.walk(method):
                if isinstance(node, (ast.Assign, ast.AnnAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for t in targets:
                        if _is_self_attr(t) == "radius":
                            self.result.declares_radius = True
                            self.result.radius_line = node.lineno

    # -- attribute environment -----------------------------------------

    def join_attr(self, attr: str, size: int) -> None:
        if size > self.attr_sizes.get(attr, WORD):
            self.attr_sizes[attr] = size

    def mark_accumulator(self, attr: str, line: int, inbox_fed: bool) -> None:
        self.join_attr(attr, ACC)
        existing = self.result.accumulators.get(attr)
        if existing is None or (inbox_fed and not existing.inbox_fed):
            self.result.accumulators[attr] = AccumulatorInfo(attr, line, inbox_fed)

    # -- interprocedural summaries -------------------------------------

    def callee(self, name: str) -> Optional[ast.FunctionDef]:
        return self.functions.get(name)

    def summarize(self, func: ast.FunctionDef, arg_sizes: Tuple[int, ...]) -> int:
        """Abstract size of ``func``'s return value for these argument sizes.

        Recursion (direct or mutual) conservatively returns ``ACC`` so the
        certificate can only over-approximate.
        """
        key = (id(func), arg_sizes)
        if key in self._summary_cache:
            return self._summary_cache[key]
        if key in self._summary_stack:
            return ACC
        self._summary_stack.add(key)
        try:
            flow = _MethodFlow(self, func, collect_payloads=False)
            params = [a.arg for a in func.args.posonlyargs + func.args.args]
            if params and params[0] == "self":
                params = params[1:]
            for param, size in zip(params, arg_sizes):
                flow.names[param] = size
            size = flow.return_size()
        finally:
            self._summary_stack.discard(key)
        self._summary_cache[key] = size
        return size


class _MethodFlow(ast.NodeVisitor):
    """Forward scan of one method under the WORD/MSG/ACC domain."""

    def __init__(
        self,
        analysis: _ClassAnalysis,
        func: ast.FunctionDef,
        collect_payloads: bool,
        report_hazards: bool = False,
    ):
        self.analysis = analysis
        self.func = func
        self.collect_payloads = collect_payloads
        self.report_hazards = report_hazards
        self.names: Dict[str, int] = {}
        self.set_names: Set[str] = set()
        #: names bound to dict literals inside this method -- candidate
        #: outboxes whose item-assignments carry payloads
        self.outbox_names: Dict[str, List[ast.expr]] = {}
        #: local name -> instance attribute it aliases (``states =
        #: self._states``); growth through the alias must charge the attr
        self.attr_aliases: Dict[str, str] = {}
        self.ctx_names: Set[str] = set()
        self._returns: List[int] = []
        #: the horizon attribute in force for statements after a top-level
        #: ``if ctx.round_number >= self.X: ... return`` cutoff in step
        self._cutoff_attr: Optional[str] = None
        #: horizon from an enclosing ``if ctx.round_number < self.X`` guard
        self._guard_stack: List[str] = []
        for arg in list(func.args.posonlyargs) + list(func.args.args):
            if arg.arg in ("ctx", "context"):
                self.ctx_names.add(arg.arg)
        self.is_init = func.name == "__init__"

    # -- driving --------------------------------------------------------

    def walk(self) -> None:
        for stmt in self.func.body:
            self._visit_toplevel(stmt)

    def return_size(self) -> int:
        self.walk()
        return max(self._returns, default=WORD)

    def _visit_toplevel(self, stmt: ast.stmt) -> None:
        cutoff = self._round_cutoff(stmt)
        if cutoff is not None:
            # statements *inside* the cutoff body run past the horizon;
            # statements after it are bounded by the horizon
            self.visit(stmt)
            self._cutoff_attr = cutoff
            return
        self.visit(stmt)

    def _round_cutoff(self, stmt: ast.stmt) -> Optional[str]:
        """``if ctx.round_number >= self.X: ... return`` -> ``X``."""
        if not isinstance(stmt, ast.If) or stmt.orelse:
            return None
        attr = self._horizon_test(stmt.test, past=True)
        if attr is None:
            return None
        sets_done = any(
            isinstance(s, ast.Assign)
            and any(_is_self_attr(t) == "done" for t in s.targets)
            for s in ast.walk(stmt)
            if isinstance(s, ast.Assign)
        )
        returns = any(isinstance(s, ast.Return) for s in ast.walk(stmt))
        if sets_done and returns:
            return attr
        return None

    def _horizon_test(self, test: ast.expr, past: bool) -> Optional[str]:
        """Match ``ctx.round_number <cmp> self.X`` (or reversed).

        ``past=True`` matches the "horizon reached" direction
        (``>=``/``>``), ``past=False`` the "still inside" direction
        (``<``/``<=``).
        """
        if not isinstance(test, ast.Compare) or len(test.ops) != 1:
            return None
        left, op, right = test.left, test.ops[0], test.comparators[0]
        fwd = (ast.GtE, ast.Gt) if past else (ast.Lt, ast.LtE)
        rev = (ast.Lt, ast.LtE) if past else (ast.GtE, ast.Gt)
        if self._is_round_number(left) and isinstance(op, fwd):
            return _is_self_attr(right)
        if self._is_round_number(right) and isinstance(op, rev):
            return _is_self_attr(left)
        return None

    def _is_round_number(self, node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Attribute)
            and node.attr == "round_number"
            and isinstance(node.value, ast.Name)
            and node.value.id in self.ctx_names
        )

    # -- inbox recognizers ---------------------------------------------

    def _is_inbox(self, node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Attribute)
            and node.attr == "inbox"
            and isinstance(node.value, ast.Name)
            and node.value.id in self.ctx_names
        )

    def _is_inbox_view(self, node: ast.AST) -> bool:
        """``ctx.inbox`` or ``ctx.inbox.values()/items()/keys()``."""
        if self._is_inbox(node):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("values", "items", "keys")
            and self._is_inbox(node.func.value)
        )

    # -- the size function ---------------------------------------------

    def size_of(self, node: ast.expr) -> int:
        if isinstance(node, ast.Constant):
            return WORD
        if isinstance(node, ast.Name):
            return self.names.get(node.id, WORD)
        if isinstance(node, ast.Attribute):
            attr = _is_self_attr(node)
            if attr is not None:
                return self.analysis.attr_sizes.get(attr, WORD)
            if self._is_inbox(node):
                return ACC
            return WORD
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return max((self.size_of(e) for e in node.elts), default=WORD)
        if isinstance(node, ast.Dict):
            sizes = [self.size_of(v) for v in node.values if v is not None]
            sizes += [self.size_of(k) for k in node.keys if k is not None]
            return max(sizes, default=WORD)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._comprehension_size(node.elt, node.generators)
        if isinstance(node, ast.DictComp):
            return max(
                self._comprehension_size(node.key, node.generators),
                self._comprehension_size(node.value, node.generators),
            )
        if isinstance(node, ast.Call):
            return self._call_size(node)
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, (ast.Add, ast.Sub, ast.BitOr, ast.BitAnd, ast.BitXor)):
                # set algebra and concatenation are size-preserving in
                # their operands: a union/difference of message containers
                # is still message-container-sized
                return max(self.size_of(node.left), self.size_of(node.right))
            return WORD
        if isinstance(node, (ast.UnaryOp, ast.Compare, ast.BoolOp)):
            # arithmetic/logic yields scalars
            return WORD
        if isinstance(node, ast.IfExp):
            return max(self.size_of(node.body), self.size_of(node.orelse))
        if isinstance(node, ast.Subscript):
            if self._is_inbox(node.value):
                return MSG
            base = self.size_of(node.value)
            return MSG if base >= MSG else WORD
        if isinstance(node, ast.Starred):
            return self.size_of(node.value)
        if isinstance(node, ast.JoinedStr):
            return WORD
        return WORD

    def _elem_size(self, iterable: ast.expr) -> int:
        """Size of one element drawn from ``iterable``."""
        if self._is_inbox_view(iterable):
            return MSG
        size = self.size_of(iterable)
        return MSG if size >= MSG else WORD

    def _comprehension_size(self, elt: ast.expr, generators) -> int:
        saved = dict(self.names)
        capture = False
        for gen in generators:
            if self._is_inbox_view(gen.iter) or self.size_of(gen.iter) >= ACC:
                capture = True
            self._bind_target(gen.target, self._elem_size(gen.iter))
        size = self.size_of(elt)
        self.names = saved
        if capture and size >= MSG:
            # a (filtered) copy of accumulated state -- or of the whole
            # inbox -- is still accumulated state, matching the
            # ``list(ctx.inbox.values())`` capture rule
            return ACC
        return size

    def _call_size(self, node: ast.Call) -> int:
        name = _call_name(node)
        if name in _WORD_CALLS:
            return WORD
        if name in _PRESERVING_CALLS:
            if not node.args:
                return WORD
            arg = node.args[0]
            if self._is_inbox_view(arg):
                return ACC  # whole-inbox capture
            return self.size_of(arg)
        # self.broadcast(E) / self.helper(...) -- method dispatch
        if isinstance(node.func, ast.Attribute):
            recv_attr = _is_self_attr(node.func)
            if recv_attr == "broadcast" and node.args:
                return self.size_of(node.args[0])
            if recv_attr is not None and recv_attr in self.analysis.methods:
                args = tuple(self.size_of(a) for a in node.args)
                return self.analysis.summarize(self.analysis.methods[recv_attr], args)
            if node.func.attr in _ELEMENT_METHODS:
                base = self.size_of(node.func.value)
                if self._is_inbox(node.func.value):
                    return MSG
                return MSG if base >= MSG else WORD
            if node.func.attr in ("items", "values", "keys"):
                # dict views are size-preserving windows onto the dict
                base = self.size_of(node.func.value)
                if base >= MSG:
                    return base
            # unknown method on some object (rng.choice, str.join, ...):
            # assume scalar unless an argument is a message container
            return WORD
        if name is not None:
            callee = self.analysis.callee(name)
            if callee is not None:
                args = tuple(self.size_of(a) for a in node.args)
                return self.analysis.summarize(callee, args)
        return WORD

    # -- bindings -------------------------------------------------------

    def _bind_target(self, target: ast.AST, size: int, is_set: bool = False) -> None:
        if isinstance(target, ast.Name):
            self.names[target.id] = size
            self.attr_aliases.pop(target.id, None)
            if is_set:
                self.set_names.add(target.id)
            else:
                self.set_names.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            # unpacking a message yields message parts
            part = size if size <= MSG else MSG
            for elt in target.elts:
                self._bind_target(elt, part)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, size)

    def _is_growing_rebind(self, value: ast.expr, attr: str, size: int) -> bool:
        """Does ``self.attr = value`` grow ``attr`` rather than replace it?

        Two shapes count: concatenation/union that splices the old value
        together with a container (``self.X = self.X + [item]``,
        ``self.X = self.X | other``), and re-binding the attribute to a
        message-container-sized expression that still contains the old
        value (``self.X = dict(self.X, **ctx.inbox)``).
        """
        if isinstance(value, ast.BinOp) and isinstance(value.op, (ast.Add, ast.BitOr)):
            sides = (value.left, value.right)
            if any(_references_self_attr(s, attr) for s in sides):
                other = sides[1] if _references_self_attr(sides[0], attr) else sides[0]
                return (
                    isinstance(other, (ast.List, ast.Dict, ast.Set, ast.Tuple,
                                       ast.ListComp, ast.DictComp, ast.SetComp))
                    or self._is_set_valued(other)
                    or self.size_of(other) >= MSG
                )
        return size >= ACC and _references_self_attr(value, attr)

    def _is_set_valued(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.set_names
        attr = _is_self_attr(node)
        if attr is not None:
            return attr in self.analysis.set_attrs
        if isinstance(node, ast.Call):
            return _call_name(node) in ("set", "frozenset")
        return False

    def visit_Assign(self, node: ast.Assign) -> None:
        size = self.size_of(node.value)
        is_set = self._is_set_valued(node.value)
        grew = False
        for target in node.targets:
            attr = _is_self_attr(target)
            if attr is not None:
                # self.X = self.X + [...] style growth: re-binding that
                # references the old value AND splices in more data counts
                # as accumulation.  self.x = f(self.x, ...) with a scalar
                # result is an ordinary state update, not growth.
                if not self.is_init and self._is_growing_rebind(node.value, attr, size):
                    self.analysis.mark_accumulator(
                        attr, node.lineno, inbox_fed=size >= MSG
                    )
                    grew = True
                else:
                    self.analysis.join_attr(attr, size)
                if is_set:
                    self.analysis.set_attrs.add(attr)
            elif isinstance(target, ast.Subscript):
                base_attr = _is_self_attr(target.value)
                if base_attr is not None and not self.is_init:
                    # self.X[k] = v grows X across rounds
                    self.analysis.mark_accumulator(
                        base_attr,
                        node.lineno,
                        inbox_fed=self.size_of(node.value) >= MSG
                        or self.size_of(target.slice) >= MSG,
                    )
                    grew = True
                elif isinstance(target.value, ast.Name):
                    base_name = target.value.id
                    if base_name in self.outbox_names:
                        self.outbox_names[base_name].append(node.value)
                    # filling a local container: a dict/set holding
                    # message-derived entries is accumulated state
                    self._join_local_container(base_name, size)
                    alias = self.attr_aliases.get(base_name)
                    if alias is not None and not self.is_init:
                        # growth through a local alias (states[k] = v
                        # after states = self._states) charges the attr
                        self.analysis.mark_accumulator(
                            alias,
                            node.lineno,
                            inbox_fed=size >= MSG
                            or self.size_of(target.slice) >= MSG,
                        )
            else:
                self._bind_target(target, size, is_set)
                if isinstance(target, ast.Name):
                    value_attr = _is_self_attr(node.value)
                    if value_attr is not None:
                        self.attr_aliases[target.id] = value_attr
        if (
            not grew
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Dict)
            and not node.value.keys
        ):
            self.outbox_names[node.targets[0].id] = []
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is None:
            return
        size = self.size_of(node.value)
        attr = _is_self_attr(node.target)
        if attr is not None:
            self.analysis.join_attr(attr, size)
            if self._is_set_valued(node.value):
                self.analysis.set_attrs.add(attr)
        elif isinstance(node.target, ast.Name):
            self._bind_target(node.target, size, self._is_set_valued(node.value))
            value_attr = _is_self_attr(node.value)
            if value_attr is not None:
                self.attr_aliases[node.target.id] = value_attr
            # an annotated ``outbox: Dict[...] = {}`` is an outbox
            # candidate exactly like its unannotated twin
            if isinstance(node.value, ast.Dict) and not node.value.keys:
                self.outbox_names[node.target.id] = []
        self.visit(node.value)

    def _join_local_container(self, name: str, element_size: int) -> None:
        """A local container absorbing an element of ``element_size``.

        Collecting message-derived elements turns the container into
        accumulated state (the WORD/MSG/ACC domain has no "bounded
        collection of messages" point, and the certificate must only
        over-approximate); collecting words leaves the size unchanged.
        """
        if element_size >= MSG:
            self.names[name] = ACC


    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        attr = _is_self_attr(node.target)
        size = self.size_of(node.value)
        if attr is not None and not self.is_init:
            if isinstance(node.op, (ast.BitOr, ast.Add)) and (
                size >= MSG
                or self._is_set_valued(node.value)
                or isinstance(node.value, (ast.List, ast.Dict, ast.Set, ast.Call))
            ):
                self.analysis.mark_accumulator(attr, node.lineno, inbox_fed=size >= MSG)
            else:
                self.analysis.join_attr(attr, size)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        iterable = node.iter
        if (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Attribute)
            and iterable.func.attr == "items"
            and self._is_inbox(iterable.func.value)
            and isinstance(node.target, ast.Tuple)
            and len(node.target.elts) == 2
        ):
            self._bind_target(node.target.elts[0], WORD)  # neighbor id
            self._bind_target(node.target.elts[1], MSG)
        else:
            self._bind_target(node.target, self._elem_size(iterable))
        for stmt in node.body:
            self.visit(stmt)
        for stmt in node.orelse:
            self.visit(stmt)

    def visit_If(self, node: ast.If) -> None:
        guard = self._horizon_test(node.test, past=False)
        self.visit(node.test)
        if guard is not None:
            self._guard_stack.append(guard)
        for stmt in node.body:
            self.visit(stmt)
        if guard is not None:
            self._guard_stack.pop()
        for stmt in node.orelse:
            self.visit(stmt)

    # -- growth through mutators ---------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Attribute):
            attr = _is_self_attr(node.func.value)
            if (
                attr is not None
                and node.func.attr in _GROW_METHODS
                and not self.is_init
            ):
                arg_size = max((self.size_of(a) for a in node.args), default=WORD)
                inbox_fed = arg_size >= MSG or any(
                    self._is_inbox_view(a) for a in node.args
                )
                self.analysis.mark_accumulator(attr, node.lineno, inbox_fed)
            elif (
                isinstance(node.func.value, ast.Name)
                and node.func.attr in _GROW_METHODS
                and not self.is_init
            ):
                # growing a local container with message-derived data
                arg_size = max((self.size_of(a) for a in node.args), default=WORD)
                if any(self._is_inbox_view(a) for a in node.args):
                    arg_size = ACC
                base_name = node.func.value.id
                self._join_local_container(base_name, arg_size)
                alias = self.attr_aliases.get(base_name)
                if alias is not None:
                    # edges.update(...) after edges = self._edges grows
                    # the aliased attribute across rounds
                    self.analysis.mark_accumulator(
                        alias, node.lineno, inbox_fed=arg_size >= MSG
                    )
        if self.report_hazards:
            self._check_order_hazards(node)
        self.generic_visit(node)

    # -- payload collection --------------------------------------------

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None:
            self._returns.append(self.size_of(node.value))
            if self.collect_payloads:
                self._collect_payloads(node.value)
        self.generic_visit(node)

    def _current_horizon(self) -> Optional[str]:
        if self._guard_stack:
            return self._guard_stack[-1]
        return self._cutoff_attr

    def _collect_payloads(self, value: ast.expr) -> None:
        """Record the payload expressions shipped by a ``return`` in step."""
        for expr, desc in self._payload_exprs(value):
            size = self.size_of(expr)
            if size == WORD and not _contains_inbox_use(expr, self):
                # pure O(1)-word payloads are recorded once per site too,
                # so the certificate can show what the program ships
                pass
            self.analysis.result.payload_sites.append(
                PayloadSite(
                    line=expr.lineno,
                    col=expr.col_offset,
                    size=size,
                    bounded_by=self._current_horizon(),
                    description=desc,
                )
            )

    def _payload_exprs(self, value: ast.expr) -> List[Tuple[ast.expr, str]]:
        out: List[Tuple[ast.expr, str]] = []
        if isinstance(value, ast.Dict):
            for v in value.values:
                if v is not None:
                    out.append((v, _describe(v)))
        elif isinstance(value, ast.DictComp):
            out.append((value.value, _describe(value.value)))
        elif isinstance(value, ast.Call):
            recv = _is_self_attr(value.func) if isinstance(value.func, ast.Attribute) else None
            if recv == "broadcast" and value.args:
                out.append((value.args[0], _describe(value.args[0])))
            elif recv is not None and recv in self.analysis.methods:
                # helper returning an outbox: charge the call site with the
                # helper's summarized size
                out.append((value, f"outbox from helper self.{recv}()"))
            elif _call_name(value) == "dict" and value.args:
                out.append((value.args[0], _describe(value.args[0])))
        elif isinstance(value, ast.Name):
            for payload in self.outbox_names.get(value.id, []):
                out.append((payload, _describe(payload)))
        elif isinstance(value, ast.IfExp):
            out.extend(self._payload_exprs(value.body))
            out.extend(self._payload_exprs(value.orelse))
        return out

    # -- order hazards (rule L9) ---------------------------------------

    def _check_order_hazards(self, node: ast.Call) -> None:
        name = _call_name(node)
        # next(iter(X)): the first element of an arbitrary iteration order
        if (
            name == "next"
            and node.args
            and isinstance(node.args[0], ast.Call)
            and _call_name(node.args[0]) == "iter"
        ):
            self._hazard(node, "next(iter(...)) picks an iteration-order-dependent element")
            return
        # list/tuple over a set or over the inbox view: materializes an
        # arbitrary order into an ordered container
        if name in ("list", "tuple") and node.args:
            arg = node.args[0]
            if self._is_inbox_view(arg):
                self._hazard(
                    node,
                    f"{name}(ctx.inbox...) materializes inbox iteration order; "
                    "wrap in sorted(...) to fix the order",
                )
            elif self._is_set_valued(arg):
                self._hazard(
                    node,
                    f"{name}() over a set materializes arbitrary iteration "
                    "order; wrap in sorted(...) to fix the order",
                )
            else:
                attr = _is_self_attr(arg)
                if attr is not None and attr in self.analysis.result.accumulators:
                    acc = self.analysis.result.accumulators[attr]
                    if acc.inbox_fed:
                        self._hazard(
                            node,
                            f"{name}(self.{attr}) materializes arrival order of "
                            "accumulated messages; wrap in sorted(...)",
                        )
        # set.pop(): removes an arbitrary element
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in ("pop", "popitem")
            and not node.args
            and self._is_set_valued(node.func.value)
        ):
            self._hazard(node, "set.pop() removes an iteration-order-dependent element")

    def visit_Compare(self, node: ast.Compare) -> None:
        if self.report_hazards:
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if isinstance(op, (ast.Eq, ast.NotEq)):
                    for side in (left, right):
                        if isinstance(side, ast.Constant) and isinstance(
                            side.value, float
                        ):
                            self._hazard(
                                node,
                                "equality comparison against a float literal is "
                                "representation-dependent",
                            )
        self.generic_visit(node)

    def _hazard(self, node: ast.AST, description: str) -> None:
        self.analysis.result.order_hazards.append(
            OrderHazard(
                line=getattr(node, "lineno", self.func.lineno),
                col=getattr(node, "col_offset", 0),
                method=self.func.name,
                description=description,
            )
        )


def _references_self_attr(node: ast.expr, attr: str) -> bool:
    for sub in ast.walk(node):
        if _is_self_attr(sub) == attr:
            return True
    return False


def _contains_inbox_use(node: ast.expr, flow: _MethodFlow) -> bool:
    for sub in ast.walk(node):
        if flow._is_inbox(sub):
            return True
    return False


def _describe(node: ast.expr) -> str:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        text = "<payload>"
    if len(text) > 60:
        text = text[:57] + "..."
    return text


def analyze_dataflow(modules: Sequence[ModuleLike]) -> List[ClassDataflow]:
    """Dataflow results for every NodeProgram subclass under ``modules``."""
    classes: Dict[str, ast.ClassDef] = {}
    for info in modules:
        for name, node in info.classes.items():
            classes.setdefault(name, node)
    results: List[ClassDataflow] = []
    for info, cls in node_program_closure(modules):
        functions = {
            stmt.name: stmt
            for stmt in info.tree.body
            if isinstance(stmt, ast.FunctionDef)
        }
        results.append(_ClassAnalysis(info, cls, classes, functions).run())
    return results
