"""Exploring the paper's closing question: graphs with longer induced cycles.

Section 9 asks how to extend the (1 + eps) results beyond chordal graphs,
e.g. to *l-chordal* graphs (every cycle longer than l has a chord; chordal
= 3-chordal).  This module provides the experimental scaffolding for that
question rather than an answer:

* :func:`is_l_chordal` / :func:`longest_induced_cycle` -- bounded search
  for long induced cycles (exponential in the worst case; intended for the
  small instances of the accompanying experiment);
* :func:`chordal_with_handles` -- a seeded generator of l-chordal
  instances: a random chordal base plus a few long "handles" (paths glued
  between distant base vertices), each creating induced cycles of bounded
  length;
* :func:`triangulate_and_color` -- the natural first attack: min-fill
  triangulation followed by Algorithm 1, measuring how far the completion
  pushes the color count above the *true* chromatic number;
* :func:`handle_experiment_rows` -- the sweep behind
  benchmarks/bench_k_chordal.py: as the handle length l grows, the
  triangulation detour degrades, quantifying why the question is open.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from ..coloring.chordal_mvc import ChordalColoringResult, color_chordal_graph
from ..graphs.adjacency import Graph, Vertex
from ..graphs.chordal import clique_number, is_chordal
from ..graphs.exact import brute_force_chromatic_number
from ..graphs.generators import random_chordal_graph
from ..graphs.triangulation import triangulate

__all__ = [
    "longest_induced_cycle",
    "is_l_chordal",
    "chordal_with_handles",
    "TriangulatedColoring",
    "triangulate_and_color",
    "handle_experiment_rows",
]


def longest_induced_cycle(graph: Graph, cap: int = 12) -> int:
    """Length of the longest induced cycle, searched up to ``cap``.

    Returns 0 for forests.  DFS over induced paths with chord pruning:
    a partial path is extended only by vertices adjacent to its head and
    to no other path vertex; a cycle closes when the new vertex is also
    adjacent to the tail -- and to nothing else on the path.  Exponential
    in general; ``cap`` bounds the search depth.
    """
    best = 0
    vertices = graph.vertices()
    index = {v: i for i, v in enumerate(vertices)}

    def extend(path: List[Vertex], members: Set[Vertex]) -> None:
        nonlocal best
        head, tail = path[-1], path[0]
        for nxt in sorted(graph.neighbors_view(head)):
            if nxt in members:
                continue
            if index[nxt] < index[tail]:
                continue  # canonical start: cycles counted from min vertex
            if len(path) == 1:
                # second cycle vertex: nothing to check yet
                path.append(nxt)
                members.add(nxt)
                extend(path, members)
                members.discard(nxt)
                path.pop()
                continue
            inner = members - {head, tail}
            if graph.neighbors_view(nxt) & inner:
                continue  # chord to the middle: not induced
            if graph.has_edge(nxt, tail):
                # closes an induced cycle path[0] .. head, nxt
                if len(path) + 1 <= cap:
                    best = max(best, len(path) + 1)
                continue  # extending past nxt would leave the chord nxt-tail
            if len(path) < cap:
                path.append(nxt)
                members.add(nxt)
                extend(path, members)
                members.discard(nxt)
                path.pop()

    for start in vertices:
        extend([start], {start})
    return best


def is_l_chordal(graph: Graph, l: int, cap: int = 12) -> bool:
    """No induced cycle longer than l (searched up to ``cap``)."""
    if l < 3:
        raise ValueError("l-chordality needs l >= 3")
    return longest_induced_cycle(graph, cap=max(cap, l + 1)) <= l


def chordal_with_handles(
    n: int,
    handles: int,
    handle_length: int,
    seed: int = 0,
) -> Graph:
    """A chordal base plus ``handles`` glued paths of ``handle_length``.

    Each handle connects the endpoints of a random base *edge* through
    fresh interior vertices, creating an induced cycle of exactly
    handle_length + 1.  The result is l-chordal for moderate l and not
    chordal for handle_length >= 3 (length 2 would close a triangle).
    """
    if handle_length < 3:
        raise ValueError(
            "handles need length >= 3 to create a chordless cycle"
        )
    rng = random.Random(seed)
    g = random_chordal_graph(n, seed=rng.randrange(2**30), tree_size=n)
    nxt = n
    base_edges = g.edges()
    if not base_edges:
        raise ValueError("base graph has no edges to attach handles to")
    for _ in range(handles):
        u, v = base_edges[rng.randrange(len(base_edges))]
        prev = u
        for _ in range(handle_length - 1):
            g.add_edge(prev, nxt)
            prev = nxt
            nxt += 1
        g.add_edge(prev, v)
    return g


@dataclass
class TriangulatedColoring:
    """Outcome of the triangulate-then-color attack on an l-chordal graph."""

    result: ChordalColoringResult
    fill_edges: int
    chi_completion: int
    chi_true: Optional[int]  # exact when the instance is small enough

    @property
    def colors(self) -> int:
        return self.result.num_colors()

    @property
    def detour_ratio(self) -> Optional[float]:
        """colors / true chi: the price of the triangulation detour."""
        if not self.chi_true:
            return None
        return self.colors / self.chi_true


def triangulate_and_color(
    graph: Graph,
    epsilon: float = 0.5,
    exact_chi_guard: int = 28,
) -> TriangulatedColoring:
    """Min-fill completion + Algorithm 1, with the true chi when computable."""
    tri = triangulate(graph)
    result = color_chordal_graph(tri.chordal_graph, epsilon=epsilon)
    chi_true: Optional[int] = None
    if len(graph) <= exact_chi_guard:
        chi_true = brute_force_chromatic_number(
            graph, size_guard=max(40, exact_chi_guard)
        )
    return TriangulatedColoring(
        result=result,
        fill_edges=len(tri.fill_edges),
        chi_completion=clique_number(tri.chordal_graph),
        chi_true=chi_true,
    )


def handle_experiment_rows(
    handle_lengths: Sequence[int] = (3, 5, 7, 9),
    n: int = 20,
    handles: int = 3,
    seeds: Sequence[int] = (0, 1),
    epsilon: float = 0.5,
    exact_chi_guard: int = 45,
) -> List[Tuple]:
    """The l-chordal sweep: detour cost as induced cycles lengthen."""
    rows = []
    for length in handle_lengths:
        worst: Optional[float] = None
        fill = 0
        cycle = 0
        for seed in seeds:
            g = chordal_with_handles(n, handles, length, seed=seed)
            outcome = triangulate_and_color(
                g, epsilon=epsilon, exact_chi_guard=exact_chi_guard
            )
            cycle = max(cycle, longest_induced_cycle(g, cap=length + 6))
            fill = max(fill, outcome.fill_edges)
            ratio = outcome.detour_ratio
            if ratio is not None and (worst is None or ratio > worst):
                worst = ratio
        rows.append((length, cycle, fill, worst))
    return rows
