"""Explorations beyond the paper (its Section 9 future-work questions)."""

from .k_chordal import (
    TriangulatedColoring,
    chordal_with_handles,
    handle_experiment_rows,
    is_l_chordal,
    longest_induced_cycle,
    triangulate_and_color,
)

__all__ = [
    "TriangulatedColoring",
    "chordal_with_handles",
    "handle_experiment_rows",
    "is_l_chordal",
    "longest_induced_cycle",
    "triangulate_and_color",
]
