"""Plain-text table rendering shared by examples and benchmarks."""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table", "format_value"]


def format_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render an aligned ASCII table (headers + rows of cells)."""
    rendered = [[format_value(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
