"""Experiment runners behind EXPERIMENTS.md.

Each function reproduces one quantitative claim of the paper (the
per-experiment index lives in DESIGN.md) and returns plain rows; the
benchmarks time them and the examples print them with
:func:`repro.analysis.tables.format_table`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from ..baselines import luby_mis, sequential_greedy_coloring
from ..coloring import color_chordal_graph, distributed_color_chordal
from ..graphs import (
    Graph,
    clique_number,
    num_colors,
    random_chordal_graph,
    random_connected_interval_graph,
    random_interval_graph,
    random_k_tree,
    random_tree,
    unit_interval_chain,
)
from ..lowerbounds import measure_r_round_mis
from ..mis import (
    chordal_mis,
    independence_number_chordal,
    interval_mis,
    maximum_independent_set_chordal,
)

__all__ = [
    "GRAPH_FAMILIES",
    "mvc_approximation_rows",
    "mvc_rounds_rows",
    "mvc_rounds_vs_epsilon_rows",
    "interval_mis_rows",
    "chordal_mis_rows",
    "lower_bound_rows",
    "baseline_rows",
    "pruning_rows",
]

#: name -> generator(n, seed); the families every sweep runs over.
GRAPH_FAMILIES: Dict[str, Callable[[int, int], Graph]] = {
    "tree": lambda n, seed: random_tree(n, seed=seed),
    "interval": lambda n, seed: random_interval_graph(n, seed=seed, max_length=0.05),
    "k-tree(3)": lambda n, seed: random_k_tree(n, 3, seed=seed),
    "chordal": lambda n, seed: random_chordal_graph(n, seed=seed, tree_size=n),
}


def mvc_approximation_rows(
    eps_values: Sequence[float] = (1.0, 0.5, 0.25),
    n: int = 150,
    seeds: Sequence[int] = (0, 1, 2),
) -> List[Tuple]:
    """Theorem 3: measured colors vs the (1 + eps) chi bound, per family."""
    rows = []
    for family, make in GRAPH_FAMILIES.items():
        for eps in eps_values:
            worst = 0.0
            chi = 0
            colors = 0
            for seed in seeds:
                g = make(n, seed)
                result = color_chordal_graph(g, epsilon=eps)
                ratio = result.approximation_ratio()
                if ratio >= worst:
                    worst, chi, colors = ratio, result.chi, result.num_colors()
            rows.append((family, eps, chi, colors, worst, 1.0 + eps))
    return rows


def mvc_rounds_rows(
    ns: Sequence[int] = (100, 200, 400, 800),
    epsilon: float = 1.0,
    family: str = "tree",
    seed: int = 0,
) -> List[Tuple]:
    """Theorem 4: distributed rounds vs n at fixed eps (O((1/eps) log n))."""
    make = GRAPH_FAMILIES[family]
    rows = []
    for n in ns:
        g = make(n, seed)
        report = distributed_color_chordal(g, epsilon=epsilon)
        layers = report.result.peeling.num_layers()
        rows.append((n, layers, report.pruning_rounds, report.total_rounds))
    return rows


def mvc_rounds_vs_epsilon_rows(
    eps_values: Sequence[float] = (2.0, 1.0, 0.5, 0.25),
    n: int = 300,
    family: str = "tree",
    seed: int = 0,
) -> List[Tuple]:
    """Theorem 4, other axis: rounds vs 1/eps at fixed n."""
    make = GRAPH_FAMILIES[family]
    g = make(n, seed)
    rows = []
    for eps in eps_values:
        report = distributed_color_chordal(g, epsilon=eps)
        rows.append(
            (eps, report.result.parameters.k, report.total_rounds, report.num_colors())
        )
    return rows


def interval_mis_rows(
    eps_values: Sequence[float] = (0.8, 0.4, 0.2),
    n: int = 300,
    seeds: Sequence[int] = (0, 1, 2),
) -> List[Tuple]:
    """Theorems 5-6: interval MIS size vs alpha, and rounds."""
    rows = []
    for eps in eps_values:
        worst_ratio = 1.0
        rounds = 0
        for seed in seeds:
            g = unit_interval_chain(n, seed=seed)
            result = interval_mis(g, eps)
            alpha = independence_number_chordal(g)
            ratio = alpha / max(1, result.size())
            worst_ratio = max(worst_ratio, ratio)
            rounds = max(rounds, result.rounds)
        rows.append((eps, worst_ratio, 1.0 + eps, rounds))
    return rows


def chordal_mis_rows(
    eps_values: Sequence[float] = (0.45, 0.3, 0.2),
    n: int = 150,
    seeds: Sequence[int] = (0, 1),
) -> List[Tuple]:
    """Theorems 7-8: chordal MIS size vs alpha, per family."""
    rows = []
    for family, make in GRAPH_FAMILIES.items():
        for eps in eps_values:
            worst_ratio = 1.0
            rounds = 0
            for seed in seeds:
                g = make(n, seed)
                result = chordal_mis(g, eps)
                alpha = independence_number_chordal(g)
                ratio = alpha / max(1, result.size())
                worst_ratio = max(worst_ratio, ratio)
                rounds = max(rounds, result.rounds)
            rows.append((family, eps, worst_ratio, 1.0 + eps, rounds))
    return rows


def lower_bound_rows(
    r_values: Sequence[int] = (4, 8, 16, 32, 64),
    n: int = 4000,
    trials: int = 8,
    seed: int = 0,
) -> List[Tuple]:
    """Theorem 9: density gap of the r-round rule, expected ~1/r decay."""
    rows = []
    for r in r_values:
        sample = measure_r_round_mis(n, r, trials=trials, seed=seed)
        rows.append(
            (r, sample.mean_size, sample.optimum, sample.density_gap, r * sample.density_gap)
        )
    return rows


def baseline_rows(
    n: int = 200, seeds: Sequence[int] = (0, 1, 2)
) -> List[Tuple]:
    """Motivating comparison: (1 + eps) algorithms vs classic baselines."""
    rows = []
    for family, make in GRAPH_FAMILIES.items():
        for seed in seeds[:1]:
            g = make(n, seed)
            chi = clique_number(g)
            alpha = independence_number_chordal(g)
            greedy = num_colors(sequential_greedy_coloring(g))
            ours_col = color_chordal_graph(g, epsilon=0.5).num_colors()
            luby_size = len(luby_mis(g, seed=seed)[0])
            ours_mis = chordal_mis(g, 0.45).size()
            rows.append(
                (family, chi, greedy, ours_col, alpha, luby_size, ours_mis)
            )
    return rows


def pruning_rows(
    ns: Sequence[int] = (50, 100, 200, 400, 800),
    family: str = "chordal",
    seed: int = 0,
) -> List[Tuple]:
    """Lemma 6: number of peeling layers vs the ceil(log2 n) bound."""
    import math

    from ..coloring import diameter_rule, peel_chordal_graph

    make = GRAPH_FAMILIES[family]
    rows = []
    for n in ns:
        g = make(n, seed)
        peeling = peel_chordal_graph(g, internal_rule=diameter_rule(4))
        rows.append(
            (n, peeling.num_layers(), math.ceil(math.log2(max(2, len(g)))) + 1)
        )
    return rows
