"""Scaling-law fits for the shape assertions of the benchmarks.

The paper's claims are asymptotic; the benchmarks verify their *shape* by
fitting power laws to measured series.  :func:`power_law_exponent` returns
the least-squares slope of log y against log x -- e.g. the lower-bound
density gap should fit exponent ~ -1 in r, and distributed-MVC rounds
should fit exponent ~ 1 in k at fixed n.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

__all__ = ["power_law_exponent", "linear_fit"]


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float]:
    """Least-squares (slope, intercept) of y against x."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two matching points")
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    var_x = sum((x - mean_x) ** 2 for x in xs)
    if var_x == 0:
        raise ValueError("x values are all equal")
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = cov / var_x
    return slope, mean_y - slope * mean_x


def power_law_exponent(xs: Sequence[float], ys: Sequence[float]) -> float:
    """The exponent b of the best fit y ~ c * x^b (log-log regression)."""
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("power-law fitting needs positive data")
    slope, _ = linear_fit([math.log(x) for x in xs], [math.log(y) for y in ys])
    return slope
