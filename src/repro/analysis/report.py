"""Regenerate every experiment table of EXPERIMENTS.md.

Run as a module::

    python -m repro.analysis.report           # all experiments
    python -m repro.analysis.report T4 T9     # a subset by id
    python -m repro.analysis.report T4 --jobs 4 --cache

Since the introduction of :mod:`repro.runner` this module is a thin
front-end over the experiment registry: each section is planned as
independent cells, executed (serially here by default — ``repro run``
exposes the parallel/cached engine in full), and folded back into the
exact tables EXPERIMENTS.md records.  Unknown experiment ids are an
error listing the known ids, never a silent skip.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Tuple

from ..runner import (
    ResultCache,
    UnknownExperimentError,
    run_cells,
    run_experiments,
)
from ..runner.registry import REGISTRY

__all__ = ["EXPERIMENTS", "run_report"]


def _section_renderer(experiment_id: str) -> Callable[[], str]:
    def render() -> str:
        exp = REGISTRY[experiment_id]
        specs = exp.plan()
        results, _ = run_cells(specs)
        return exp.render(specs, [r.value for r in results])

    return render


#: id -> (title, zero-argument callable returning the table body).
#: Kept for backwards compatibility; built straight from the runner registry.
EXPERIMENTS: Dict[str, Tuple[str, Callable[[], str]]] = {
    experiment_id: (exp.title, _section_renderer(experiment_id))
    for experiment_id, exp in REGISTRY.items()
}


def run_report(
    ids: List[str],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> str:
    """The report text for ``ids`` (all experiments when empty).

    Raises :class:`repro.runner.UnknownExperimentError` for ids missing
    from the registry.
    """
    report, _, _ = run_experiments(list(ids), jobs=jobs, cache=cache)
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.report",
        description="regenerate the EXPERIMENTS.md tables",
    )
    parser.add_argument("ids", nargs="*", help="experiment ids (default: all)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (default: 1, serial)")
    parser.add_argument("--cache", action="store_true",
                        help="reuse cached cell results (see 'repro run')")
    args = parser.parse_args(argv)
    try:
        report, _, stats = run_experiments(
            args.ids, jobs=args.jobs, use_cache=args.cache
        )
    except UnknownExperimentError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report)
    if stats.failed or stats.timeouts:
        print(f"warning: {stats.summary_line()}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
