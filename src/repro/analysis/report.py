"""Regenerate every experiment table of EXPERIMENTS.md.

Run as a module::

    python -m repro.analysis.report           # all experiments
    python -m repro.analysis.report T4 T9     # a subset by id

Each section corresponds to one entry of DESIGN.md's per-experiment index
and prints the same rows EXPERIMENTS.md records.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, List, Tuple

from .experiments import (
    baseline_rows,
    chordal_mis_rows,
    interval_mis_rows,
    lower_bound_rows,
    mvc_approximation_rows,
    mvc_rounds_rows,
    mvc_rounds_vs_epsilon_rows,
    pruning_rows,
)
from .tables import format_table

__all__ = ["EXPERIMENTS", "run_report"]


def _t3() -> str:
    rows = mvc_approximation_rows()
    return format_table(
        ["family", "eps", "chi", "colors", "worst ratio", "bound 1+eps"], rows
    )


def _t4() -> str:
    a = format_table(
        ["n", "layers", "pruning rounds", "total rounds"],
        mvc_rounds_rows(),
    )
    b = format_table(
        ["eps", "k", "total rounds", "colors"],
        mvc_rounds_vs_epsilon_rows(),
    )
    return a + "\n\n(rounds vs eps at n = 300, random trees)\n\n" + b


def _t56() -> str:
    return format_table(
        ["eps", "worst alpha/|I|", "bound 1+eps", "rounds"], interval_mis_rows()
    )


def _t78() -> str:
    return format_table(
        ["family", "eps", "worst alpha/|I|", "bound 1+eps", "rounds"],
        chordal_mis_rows(),
    )


def _t9() -> str:
    return format_table(
        ["r", "E|I|", "optimum", "density gap", "r x gap"], lower_bound_rows()
    )


def _l6() -> str:
    return format_table(["n", "layers", "ceil(log2 n) + 1"], pruning_rows())


def _b1() -> str:
    return format_table(
        ["family", "chi", "greedy colors", "our colors", "alpha", "Luby |I|", "our |I|"],
        baseline_rows(),
    )


EXPERIMENTS: Dict[str, Tuple[str, Callable[[], str]]] = {
    "T3": ("Theorem 3: MVC approximation factor (Algorithm 1)", _t3),
    "T4": ("Theorem 4: distributed MVC round complexity", _t4),
    "T5/T6": ("Theorems 5-6: interval MIS (Algorithm 5)", _t56),
    "T7/T8": ("Theorems 7-8: chordal MIS (Algorithm 6)", _t78),
    "T9": ("Theorem 9: Omega(1/eps) lower bound shape", _t9),
    "L6": ("Lemma 6: peeling layer count vs log n", _l6),
    "B1": ("Baselines: maximal-IS / greedy coloring gaps", _b1),
}


def run_report(ids: List[str]) -> str:
    chunks = []
    for key, (title, fn) in EXPERIMENTS.items():
        if ids and key not in ids:
            continue
        chunks.append(f"== {key}: {title} ==\n\n{fn()}\n")
    return "\n".join(chunks)


if __name__ == "__main__":
    print(run_report(sys.argv[1:]))
