"""Experiment runners and table formatting (see EXPERIMENTS.md)."""

from .experiments import (
    GRAPH_FAMILIES,
    baseline_rows,
    chordal_mis_rows,
    interval_mis_rows,
    lower_bound_rows,
    mvc_approximation_rows,
    mvc_rounds_rows,
    mvc_rounds_vs_epsilon_rows,
    pruning_rows,
)
from .tables import format_table, format_value

__all__ = [
    "GRAPH_FAMILIES",
    "baseline_rows",
    "chordal_mis_rows",
    "interval_mis_rows",
    "lower_bound_rows",
    "mvc_approximation_rows",
    "mvc_rounds_rows",
    "mvc_rounds_vs_epsilon_rows",
    "pruning_rows",
    "format_table",
    "format_value",
]
