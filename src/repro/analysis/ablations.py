"""Ablations of the design choices DESIGN.md calls out.

Three knobs materially shape the pipelines; each ablation isolates one:

* **internal-path diameter threshold** (Algorithm 1's ``3k``): smaller
  thresholds peel more aggressively per iteration (fewer layers, fewer
  collection rounds) but shrink the recoloring room; the coloring quality
  is unaffected as long as the threshold stays above the morph's needs.
  :func:`threshold_ablation` sweeps multipliers of the default.

* **spare colors for the morph** (the palette's q - chi): more spares cut
  the number of relay cuts (and hence the required boundary distance)
  linearly.  :func:`spares_ablation` reports
  :func:`repro.coloring.parameters.morph_cut_budget` across the spare
  range the global palette can actually afford.

* **dominated-vertex removal** (Algorithm 5's step 1): measures how much
  of each interval instance the purely-local step already solves -- the
  fragmentation observation recorded in EXPERIMENTS.md.
  :func:`domination_ablation` reports survivor counts and component
  diameters before/after.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..coloring.chordal_mvc import color_chordal_graph
from ..coloring.parameters import ColoringParameters, morph_cut_budget
from ..coloring.prune import diameter_rule, peel_chordal_graph
from ..graphs import (
    Graph,
    random_chordal_graph,
    random_connected_interval_graph,
    remove_dominated_vertices,
    unit_interval_chain,
)

__all__ = ["threshold_ablation", "spares_ablation", "domination_ablation"]


def threshold_ablation(
    multipliers: Sequence[float] = (0.25, 0.5, 1.0, 2.0),
    n: int = 300,
    k: int = 2,
    seed: int = 0,
) -> List[Tuple]:
    """Layers and pruning rounds as the internal threshold varies.

    The approximation guarantee needs the *default* threshold; smaller
    multipliers are measured for structure only (layer counts), showing
    the peeling-speed/recoloring-room tradeoff.
    """
    params = ColoringParameters.from_k(k)
    g = random_chordal_graph(n, seed=seed, tree_size=n)
    rows = []
    for mult in multipliers:
        threshold = max(4, int(params.internal_threshold * mult))
        peeling = peel_chordal_graph(g, internal_rule=diameter_rule(threshold))
        rows.append(
            (
                mult,
                threshold,
                peeling.num_layers(),
                peeling.num_layers() * params.collect_radius,
            )
        )
    return rows


def spares_ablation(
    chi_values: Sequence[int] = (4, 16, 64),
    k_values: Sequence[int] = (1, 2, 4, 8),
) -> List[Tuple]:
    """Relay cuts needed by the morph as spare colors vary with k."""
    rows = []
    for chi in chi_values:
        for k in k_values:
            params = ColoringParameters.from_k(k)
            spares = params.minimum_spares(chi)
            rows.append(
                (chi, k, params.palette_size(chi), spares, morph_cut_budget(chi, spares))
            )
    return rows


def domination_ablation(
    n: int = 300, seeds: Sequence[int] = (0, 1, 2)
) -> List[Tuple]:
    """How much of each interval family step 1 of Algorithm 5 dissolves."""
    rows = []
    families = {
        "random lengths": lambda s: random_connected_interval_graph(n, seed=s),
        "unit chain": lambda s: unit_interval_chain(n, seed=s),
    }
    for name, make in families.items():
        for seed in seeds[:1]:
            g = make(seed)
            h = remove_dominated_vertices(g)
            comps = h.connected_components()
            max_diam = max(
                (h.induced_subgraph(c).diameter() for c in comps), default=0
            )
            rows.append(
                (name, len(g), len(h), len(comps), max_diam)
            )
    return rows
