"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``info GRAPH``       -- structural summary (chordality, chi, alpha, ...)
* ``color GRAPH``      -- run Algorithm 1/2, print or save the coloring
* ``mis GRAPH``        -- run Algorithm 6, print or save the set
* ``generate FAMILY``  -- write a seeded random instance as an edge list
* ``report [IDS...]``  -- regenerate the EXPERIMENTS.md tables
* ``lint [PATHS...]``  -- LOCAL-model conformance linter (see ``repro.lint``)

``GRAPH`` is an edge-list file (see :mod:`repro.graphs.io`); ``-`` reads
stdin.  Non-chordal inputs are rejected unless ``--triangulate`` is given,
in which case the min-fill completion is used (colorings remain valid for
the original graph; independent sets too, with the guarantee referring to
the completion).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from .analysis.report import EXPERIMENTS, run_report
from .coloring import color_chordal_graph, distributed_color_chordal
from .graphs import (
    Graph,
    clique_number,
    degeneracy,
    density,
    dump_json,
    from_edge_list,
    is_chordal,
    random_chordal_graph,
    random_connected_interval_graph,
    random_interval_graph,
    random_k_tree,
    random_tree,
    to_edge_list,
    triangulate,
    unit_interval_chain,
)
from .mis import chordal_mis, independence_number_chordal

__all__ = ["main", "build_parser"]

GENERATORS = {
    "chordal": lambda n, seed: random_chordal_graph(n, seed=seed, tree_size=n),
    "tree": lambda n, seed: random_tree(n, seed=seed),
    "interval": lambda n, seed: random_interval_graph(n, seed=seed),
    "interval-chain": lambda n, seed: random_connected_interval_graph(n, seed=seed),
    "unit-chain": lambda n, seed: unit_interval_chain(n, seed=seed),
    "k-tree": lambda n, seed: random_k_tree(n, 3, seed=seed),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed (1+eps)-approximate MVC and MIS on chordal graphs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="structural summary of a graph file")
    info.add_argument("graph")

    color = sub.add_parser("color", help="run the (1+eps) coloring pipeline")
    color.add_argument("graph")
    color.add_argument("--epsilon", type=float, default=0.5)
    color.add_argument("--triangulate", action="store_true")
    color.add_argument("--distributed", action="store_true",
                       help="also report LOCAL-model rounds")
    color.add_argument("--output", help="write the coloring as JSON")

    mis = sub.add_parser("mis", help="run the (1+eps) independent set pipeline")
    mis.add_argument("graph")
    mis.add_argument("--epsilon", type=float, default=0.4)
    mis.add_argument("--triangulate", action="store_true")
    mis.add_argument("--output", help="write the set as JSON")

    gen = sub.add_parser("generate", help="write a random instance")
    gen.add_argument("family", choices=sorted(GENERATORS))
    gen.add_argument("--n", type=int, default=100)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--output", help="file to write (default stdout)")

    rep = sub.add_parser("report", help="regenerate experiment tables")
    rep.add_argument("ids", nargs="*", choices=[[], *sorted(EXPERIMENTS)][1:] or None,
                     help="experiment ids (default: all)")

    lint = sub.add_parser(
        "lint", help="check NodeProgram classes for LOCAL-model conformance"
    )
    lint.add_argument("paths", nargs="*",
                      help="files or directories (default: the repro package)")
    lint.add_argument("--format", choices=("text", "json"), default="text")
    lint.add_argument("--select", default="all",
                      help="comma-separated rule codes (default: all)")
    lint.add_argument("--show-suppressed", action="store_true")

    return parser


def _read_graph(path: str) -> Graph:
    text = sys.stdin.read() if path == "-" else open(path).read()
    return from_edge_list(text)


def _prepare(graph: Graph, allow_triangulate: bool, out) -> Graph:
    if is_chordal(graph):
        return graph
    if not allow_triangulate:
        raise SystemExit(
            "input graph is not chordal; pass --triangulate to use its "
            "min-fill completion"
        )
    tri = triangulate(graph)
    print(
        f"triangulated: +{len(tri.fill_edges)} fill edges, "
        f"treewidth <= {tri.width}",
        file=out,
    )
    return tri.chordal_graph


def main(argv: Optional[list] = None, out=None) -> int:
    out = out or sys.stdout
    args = build_parser().parse_args(argv)

    if args.command == "info":
        g = _read_graph(args.graph)
        chordal = is_chordal(g)
        print(f"vertices: {len(g)}", file=out)
        print(f"edges:    {g.num_edges()}", file=out)
        print(f"density:  {density(g):.4f}", file=out)
        print(f"chordal:  {chordal}", file=out)
        print(f"degeneracy: {degeneracy(g)}", file=out)
        if chordal:
            print(f"chi (= omega): {clique_number(g)}", file=out)
            print(f"alpha:         {independence_number_chordal(g)}", file=out)
        return 0

    if args.command == "color":
        g = _prepare(_read_graph(args.graph), args.triangulate, out)
        if args.distributed:
            report = distributed_color_chordal(g, epsilon=args.epsilon)
            result = report.result
            print(f"LOCAL rounds: {report.total_rounds}", file=out)
        else:
            result = color_chordal_graph(g, epsilon=args.epsilon)
        print(f"colors used: {result.num_colors()} "
              f"(chi = {result.chi}, bound = "
              f"{result.chi + result.chi // result.parameters.k + 1})", file=out)
        if args.output:
            with open(args.output, "w") as f:
                json.dump({str(v): c for v, c in result.coloring.items()}, f)
            print(f"coloring written to {args.output}", file=out)
        return 0

    if args.command == "mis":
        g = _prepare(_read_graph(args.graph), args.triangulate, out)
        result = chordal_mis(g, args.epsilon)
        alpha = independence_number_chordal(g)
        print(f"independent set size: {result.size()} "
              f"(alpha = {alpha}, guarantee >= {alpha / (1 + args.epsilon):.1f})",
              file=out)
        if args.output:
            with open(args.output, "w") as f:
                json.dump(sorted(result.independent_set, key=str), f)
            print(f"set written to {args.output}", file=out)
        return 0

    if args.command == "generate":
        g = GENERATORS[args.family](args.n, args.seed)
        text = to_edge_list(g)
        if args.output:
            with open(args.output, "w") as f:
                f.write(text)
            print(f"{args.family} instance (n={len(g)}) written to {args.output}",
                  file=out)
        else:
            out.write(text)
        return 0

    if args.command == "report":
        print(run_report(list(args.ids)), file=out)
        return 0

    if args.command == "lint":
        from .lint.cli import main as lint_main

        lint_argv = [*args.paths, "--format", args.format, "--select", args.select]
        if args.show_suppressed:
            lint_argv.append("--show-suppressed")
        return lint_main(lint_argv, out=out)

    raise AssertionError("unreachable")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
