"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``info GRAPH``       -- structural summary (chordality, chi, alpha, ...)
* ``color GRAPH``      -- run Algorithm 1/2, print or save the coloring
* ``mis GRAPH``        -- run Algorithm 6, print or save the set
* ``generate FAMILY``  -- write a seeded random instance as an edge list
* ``report [IDS...]``  -- regenerate the EXPERIMENTS.md tables (serial)
* ``run``              -- the parallel cached experiment engine
  (``--list``, ``--ids``, ``--jobs``, ``--no-cache``, ``--clean-cache``,
  ``--bench``, ``--executor``, ``--profile``; see :mod:`repro.runner`
  and docs/runner.md)
* ``lint [PATHS...]``  -- LOCAL-model conformance linter (see ``repro.lint``)
* ``trace GRAPH``      -- run a stock message-passing program with trace
  sinks attached: per-round metrics, an optional ``--timeline``, and
  ``--jsonl`` export (schema in docs/tracing.md); ``--faults SPEC``
  attaches a fault plan (grammar in docs/faults.md); ``--executor
  batch|auto`` compiles the run to whole-round kernels (docs/executor.md)
* ``faults``           -- fault-injection front-end: a single run under a
  ``--plan`` with validity monitoring (``--stock`` replays a plan on a
  program's generated sweep graph), or ``--sweep`` to classify every
  stock program as self-healing / degraded-but-valid / unsafe
* ``chaos``            -- chaos soak: N seeded randomized fault plans
  (channel + state corruption) against the stock suite, every failure
  delta-debugged to a minimal deterministic repro spec (docs/stabilize.md)

``GRAPH`` is an edge-list file (see :mod:`repro.graphs.io`); ``-`` reads
stdin.  Non-chordal inputs are rejected unless ``--triangulate`` is given,
in which case the min-fill completion is used (colorings remain valid for
the original graph; independent sets too, with the guarantee referring to
the completion).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from .analysis.report import EXPERIMENTS, run_report
from .coloring import color_chordal_graph, distributed_color_chordal
from .graphs import (
    Graph,
    clique_number,
    degeneracy,
    density,
    dump_json,
    from_edge_list,
    is_chordal,
    random_chordal_graph,
    random_connected_interval_graph,
    random_interval_graph,
    random_k_tree,
    random_tree,
    to_edge_list,
    triangulate,
    unit_interval_chain,
)
from .mis import chordal_mis, independence_number_chordal

__all__ = ["main", "build_parser"]

GENERATORS = {
    "chordal": lambda n, seed: random_chordal_graph(n, seed=seed, tree_size=n),
    "tree": lambda n, seed: random_tree(n, seed=seed),
    "interval": lambda n, seed: random_interval_graph(n, seed=seed),
    "interval-chain": lambda n, seed: random_connected_interval_graph(n, seed=seed),
    "unit-chain": lambda n, seed: unit_interval_chain(n, seed=seed),
    "k-tree": lambda n, seed: random_k_tree(n, 3, seed=seed),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed (1+eps)-approximate MVC and MIS on chordal graphs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="structural summary of a graph file")
    info.add_argument("graph")

    color = sub.add_parser("color", help="run the (1+eps) coloring pipeline")
    color.add_argument("graph")
    color.add_argument("--epsilon", type=float, default=0.5)
    color.add_argument("--triangulate", action="store_true")
    color.add_argument("--distributed", action="store_true",
                       help="also report LOCAL-model rounds")
    color.add_argument("--output", help="write the coloring as JSON")

    mis = sub.add_parser("mis", help="run the (1+eps) independent set pipeline")
    mis.add_argument("graph")
    mis.add_argument("--epsilon", type=float, default=0.4)
    mis.add_argument("--triangulate", action="store_true")
    mis.add_argument("--output", help="write the set as JSON")

    gen = sub.add_parser("generate", help="write a random instance")
    gen.add_argument("family", choices=sorted(GENERATORS))
    gen.add_argument("--n", type=int, default=100)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--output", help="file to write (default stdout)")

    rep = sub.add_parser("report", help="regenerate experiment tables")
    rep.add_argument("ids", nargs="*",
                     help="experiment ids (default: all; aliases like T5 ok)")

    run = sub.add_parser(
        "run", help="parallel cached experiment engine (see docs/runner.md)"
    )
    run.add_argument("--ids", nargs="*", default=[], metavar="ID",
                     help="experiment ids (default: all registered)")
    run.add_argument("--jobs", type=int, default=None,
                     help="worker processes (default: CPU count; 1 = in-process)")
    run.add_argument("--no-cache", action="store_true",
                     help="ignore and do not write the result cache")
    run.add_argument("--cache-dir",
                     help="cache directory (default: $REPRO_CACHE or .repro-cache)")
    run.add_argument("--clean-cache", action="store_true",
                     help="remove every cached cell result and exit")
    run.add_argument("--list", action="store_true", dest="list_experiments",
                     help="list registered experiments and exit")
    run.add_argument("--timeout", type=float, default=600.0,
                     help="per-cell wall-clock budget in seconds (default: 600)")
    run.add_argument("--jsonl", metavar="PATH",
                     help="write one JSON object per cell to PATH")
    run.add_argument("--bench", action="store_true",
                     help="benchmark serial vs parallel vs warm cache")
    run.add_argument("--bench-output", default="BENCH_runner.json", metavar="PATH",
                     help="where --bench writes its summary")
    run.add_argument("--executor", choices=("node", "batch", "auto"), default=None,
                     help="override the executor mode of the executor-aware "
                     "experiments (D1, K2); default: their registered plans")
    run.add_argument("--profile", action="store_true",
                     help="profile under cProfile (forces --jobs 1) and print "
                     "the top 15 functions by cumulative time")
    run.add_argument("--profile-out", metavar="PATH",
                     help="with --profile: dump the raw pstats data to PATH")

    trace = sub.add_parser(
        "trace", help="run a stock program with trace sinks attached"
    )
    trace.add_argument("graph")
    trace.add_argument("--program", choices=sorted(TRACE_PROGRAMS), default="bfs",
                       help="which stock NodeProgram to run (default: bfs)")
    trace.add_argument("--root", type=int, default=None,
                       help="root vertex for bfs/echo (default: smallest id)")
    trace.add_argument("--radius", type=int, default=2,
                       help="gathering radius for --program gather/gather-delta")
    trace.add_argument("--seed", type=int, default=0,
                       help="seed for the randomized programs (luby, coloring)")
    trace.add_argument("--executor", choices=("node", "batch", "auto"),
                       default="node",
                       help="dispatch mode (default: node, the only mode that "
                       "supports trace sinks; batch/auto compile the run to "
                       "whole-round kernels, see docs/executor.md)")
    trace.add_argument("--profile", action="store_true",
                       help="profile under cProfile and print the top 15 "
                       "functions by cumulative time")
    trace.add_argument("--profile-out", metavar="PATH",
                       help="with --profile: dump the raw pstats data to PATH")
    trace.add_argument("--scheduler", choices=("active", "dense"),
                       default="active",
                       help="node scheduler (default: active; dense = reference)")
    trace.add_argument("--sealed", action="store_true",
                       help="run under sealed contexts (runtime LOCAL enforcement)")
    trace.add_argument("--timeline", action="store_true",
                       help="print the per-round timeline after the summary")
    trace.add_argument("--jsonl", metavar="PATH",
                       help="write one JSON object per round to PATH")
    trace.add_argument("--no-payloads", action="store_true",
                       help="omit message payloads from the JSONL trace")
    trace.add_argument("--faults", default="", metavar="SPEC",
                       help="fault plan, e.g. 'drop=0.1,delay=0.05:2,seed=3' "
                       "(grammar in docs/faults.md)")
    trace.add_argument("--max-rounds", type=int, default=10_000)

    faults = sub.add_parser(
        "faults", help="fault-injection runs and the resilience sweep"
    )
    faults.add_argument("graph", nargs="?",
                        help="edge-list file for a single run (omit with --sweep)")
    faults.add_argument("--plan", default="", metavar="SPEC",
                        help="fault plan: drop=P,dup=P,delay=P:K,burst=R1-R2,"
                        "crash=V@R[-R2],seed=N (grammar in docs/faults.md)")
    faults.add_argument("--program", choices=sorted(TRACE_PROGRAMS), default="bfs",
                        help="stock NodeProgram for a single run (default: bfs)")
    faults.add_argument("--root", type=int, default=None,
                        help="root vertex for bfs/echo (default: smallest id)")
    faults.add_argument("--radius", type=int, default=2,
                        help="gathering radius for --program gather")
    faults.add_argument("--seed", type=int, default=0,
                        help="seed for the randomized programs (luby, coloring)")
    faults.add_argument("--sweep", action="store_true",
                        help="classify every stock program under the default "
                        "fault grid (self-healing / degraded-but-valid / unsafe)")
    faults.add_argument("--retries", action="store_true",
                        help="wrap programs in the retry/ack envelope "
                        "(ReliableProgram)")
    faults.add_argument("--drops", default=None, metavar="P1,P2,...",
                        help="sweep drop rates (default: 0.05,0.15,0.3)")
    faults.add_argument("--format", choices=("text", "json"), default="text")
    faults.add_argument("--timeline", action="store_true",
                        help="print the per-round timeline of a single run")
    faults.add_argument("--max-rounds", type=int, default=10_000)
    faults.add_argument("--stock", action="store_true",
                        help="run --program on its stock sweep graph instead "
                        "of a GRAPH file (replays 'repro chaos' repro specs)")
    faults.add_argument("--recovery", choices=("intact", "restart", "checkpoint"),
                        default="intact",
                        help="crash-recover state policy (default: intact; "
                        "see docs/faults.md)")
    faults.add_argument("--checkpoint-every", type=int, default=None,
                        metavar="N",
                        help="checkpoint node state every N rounds (required "
                        "for --recovery checkpoint)")

    chaos = sub.add_parser(
        "chaos", help="chaos soak: fuzz randomized fault plans, minimize failures"
    )
    chaos.add_argument("--trials", type=int, default=50,
                       help="seeded fuzz trials across the stock suite "
                       "(default: 50)")
    chaos.add_argument("--seed", type=int, default=0,
                       help="master seed; the whole soak replays bit-for-bit")
    chaos.add_argument("--programs", default=None, metavar="P1,P2,...",
                       help="restrict the suite to these stock programs")
    chaos.add_argument("--quick", action="store_true",
                       help="three-program quick suite (the CI smoke subset)")
    chaos.add_argument("--no-minimize", action="store_true",
                       help="skip delta-debugging the failing plans")
    chaos.add_argument("--check", action="store_true",
                       help="exit 1 unless every failure minimized to a spec "
                       "that reproduces on replay")
    chaos.add_argument("--format", choices=("text", "json"), default="text")
    chaos.add_argument("--max-rounds", type=int, default=4_000)

    lint = sub.add_parser(
        "lint", help="check NodeProgram classes for LOCAL-model conformance"
    )
    lint.add_argument("paths", nargs="*",
                      help="files or directories (default: the repro package)")
    lint.add_argument("--format", choices=("text", "json"), default="text")
    lint.add_argument("--select", default="all",
                      help="comma-separated rule codes (default: all)")
    lint.add_argument("--show-suppressed", action="store_true")
    lint.add_argument("--congest", action="store_true",
                      help="print the per-program bandwidth certificate table")
    lint.add_argument("--sanitize", action="store_true",
                      help="shadow-execution determinism suite (permuted "
                      "inbox order, transcript diff)")
    lint.add_argument("--baseline", metavar="FILE",
                      help="JSON baseline of tolerated findings")
    lint.add_argument("--write-baseline", metavar="FILE",
                      help="record current findings as the baseline")

    return parser


def _read_graph(path: str) -> Graph:
    text = sys.stdin.read() if path == "-" else open(path).read()
    return from_edge_list(text)


def _prepare(graph: Graph, allow_triangulate: bool, out) -> Graph:
    if is_chordal(graph):
        return graph
    if not allow_triangulate:
        raise SystemExit(
            "input graph is not chordal; pass --triangulate to use its "
            "min-fill completion"
        )
    tri = triangulate(graph)
    print(
        f"triangulated: +{len(tri.fill_edges)} fill edges, "
        f"treewidth <= {tri.width}",
        file=out,
    )
    return tri.chordal_graph


#: The stock programs ``repro trace`` can put on the wire.
TRACE_PROGRAMS = (
    "bfs", "leader", "echo", "gather", "gather-delta", "luby", "coloring"
)


def _trace_factory(args, graph: Graph):
    """(program factory, describe(outputs) -> str) for ``repro trace``."""
    import random as _random

    n = len(graph)
    root = args.root
    if root is None:
        from .localmodel import vertex_key

        root = min(graph.vertices(), key=vertex_key)
    if args.program == "bfs":
        from .localmodel import BFSLayerProgram

        budget = n + 1
        factory = lambda v, nbrs: BFSLayerProgram(v, nbrs, root, budget)
        describe = lambda outputs: (
            f"bfs from {root}: eccentricity "
            f"{max((d for d in outputs.values() if d is not None), default=0)}"
        )
    elif args.program == "leader":
        from .localmodel import LeaderElectionProgram

        budget = n + 1
        factory = lambda v, nbrs: LeaderElectionProgram(v, nbrs, budget)
        describe = lambda outputs: f"leader: {min(outputs.values(), default=None)}"
    elif args.program == "echo":
        from .localmodel import EchoCountProgram

        factory = lambda v, nbrs: EchoCountProgram(v, nbrs, root)
        describe = lambda outputs: f"echo count at root {root}: {outputs[root]}"
    elif args.program == "gather":
        from .localmodel import BallGatherProgram

        factory = lambda v, nbrs: BallGatherProgram(v, nbrs, args.radius, None)
        describe = lambda outputs: (
            f"gathered radius-{args.radius} balls; largest has "
            f"{max(len(ball.states) for ball in outputs.values())} vertices"
        )
    elif args.program == "gather-delta":
        from .graphs.index import graph_index
        from .localmodel import DeltaGatherProgram

        index = graph_index(graph)
        factory = lambda v, nbrs: DeltaGatherProgram(
            v, nbrs, args.radius, None, index
        )
        describe = lambda outputs: (
            f"delta-gathered radius-{args.radius} balls; largest has "
            f"{max(len(ball.states) for ball in outputs.values())} vertices"
        )
    elif args.program == "luby":
        from .baselines.luby import LubyMISProgram

        master = _random.Random(args.seed)
        seeds = {v: master.randrange(2**62) for v in graph.vertices()}
        factory = lambda v, nbrs: LubyMISProgram(v, nbrs, _random.Random(seeds[v]))
        describe = lambda outputs: (
            f"luby MIS size: {sum(1 for joined in outputs.values() if joined)}"
        )
    else:  # coloring
        from .baselines.coloring_baselines import RandomizedColoringProgram

        palette = graph.max_degree() + 1
        master = _random.Random(args.seed)
        seeds = {v: master.randrange(2**62) for v in graph.vertices()}
        factory = lambda v, nbrs: RandomizedColoringProgram(
            v, nbrs, palette, _random.Random(seeds[v])
        )
        describe = lambda outputs: (
            f"(Delta+1)-coloring used {len(set(outputs.values()))} colors "
            f"(palette {palette})"
        )
    return factory, describe


def _trace_batch(args, graph, factory, describe, out) -> int:
    """``repro trace --executor batch|auto``: whole-round kernel dispatch.

    The batch executor replaces per-message dispatch with per-round
    kernels, so there is nothing for trace sinks to observe; the
    sink-dependent flags are rejected up front rather than silently
    producing an empty trace (``batch``) or falling back (``auto``).
    """
    from .localmodel import BatchExecutor

    for given, flag in (
        (args.jsonl, "--jsonl"),
        (args.timeline, "--timeline"),
        (args.faults, "--faults"),
    ):
        if given:
            raise SystemExit(
                f"repro trace: {flag} needs per-round trace sinks, which "
                "the batch executor bypasses; drop the flag or use "
                "--executor node"
            )
    net = BatchExecutor(
        graph,
        factory,
        sealed=args.sealed,
        scheduler=args.scheduler,
        mode=args.executor,
    )
    try:
        outputs = net.run(max_rounds=args.max_rounds)
    except (RuntimeError, ValueError) as exc:
        # blockers (a program without a kernel under --executor batch)
        # or round-budget exhaustion
        raise SystemExit(f"trace aborted: {exc}")
    stats = net.stats
    print(
        f"{args.program} on {len(graph)} vertices "
        f"({args.executor} executor -> {net.executed} path"
        f"{', sealed' if args.sealed else ''})",
        file=out,
    )
    print(
        f"rounds: {stats.rounds}  messages: {stats.messages_sent}  "
        f"max/round: {stats.max_messages_per_round}",
        file=out,
    )
    print(describe(outputs), file=out)
    return 0


def _cmd_trace(args, out) -> int:
    """The ``repro trace`` front-end over the trace sinks."""
    from .localmodel import JSONLTraceSink, MetricsSink, TracedNetwork

    graph = _read_graph(args.graph)
    if len(graph) == 0:
        print("graph is empty; nothing to trace", file=out)
        return 0
    factory, describe = _trace_factory(args, graph)
    if args.executor != "node":
        return _trace_batch(args, graph, factory, describe, out)

    plan = None
    if args.faults:
        from .localmodel import FaultPlan, FaultPlanError

        try:
            plan = FaultPlan.parse(args.faults)
        except FaultPlanError as exc:
            raise SystemExit(f"bad --faults spec: {exc}")

    metrics = MetricsSink()
    sinks = [metrics]
    jsonl_sink = None
    if args.jsonl:
        jsonl_sink = JSONLTraceSink(args.jsonl, payloads=not args.no_payloads)
        sinks.append(jsonl_sink)
    traced = TracedNetwork(
        graph,
        factory,
        sealed=args.sealed,
        scheduler=args.scheduler,
        sinks=sinks,
        faults=plan,
    )
    try:
        outputs = traced.run(max_rounds=args.max_rounds)
    except RuntimeError as exc:
        # starvation / round-budget exhaustion: e.g. --program echo on a
        # non-tree graph, where the convergecast can never complete
        raise SystemExit(
            f"trace aborted after {traced.network.stats.rounds} round(s): {exc}"
        )
    finally:
        if jsonl_sink is not None:
            jsonl_sink.close()

    summary = metrics.summary()
    print(
        f"{args.program} on {len(graph)} vertices "
        f"({args.scheduler} scheduler{', sealed' if args.sealed else ''})",
        file=out,
    )
    print(
        f"rounds: {summary['rounds']}  messages: {summary['messages']}  "
        f"max/round: {summary['max_messages_per_round']}",
        file=out,
    )
    print(
        f"node steps: {summary['total_steps']}  "
        f"max active: {summary['max_active']}  "
        f"quiet rounds: {summary['quiet_rounds']}",
        file=out,
    )
    print(describe(outputs), file=out)
    if plan is not None and not plan.is_empty():
        summary_faults = traced.network.fault_summary() or {}
        print(
            "faults injected: "
            + "  ".join(f"{k}: {v}" for k, v in summary_faults.items()),
            file=out,
        )
    if jsonl_sink is not None:
        print(
            f"trace written to {args.jsonl} ({jsonl_sink.rounds_written} rounds)",
            file=out,
        )
    if args.timeline:
        print(traced.timeline(), file=out)
    return 0


#: ``repro faults`` validator kind per stock program (see ``stock_validator``).
FAULT_VALIDATORS = {
    "bfs": "bfs",
    "leader": "leader",
    "echo": "echo",
    "gather": "gather",
    "gather-delta": "gather",
    "luby": "mis",
    "coloring": "coloring",
    "linial": "coloring",
}


def _faults_suite():
    """(name, graph, factory, validator) for the ``--sweep`` classification.

    Programs and graphs come from the ``lint --sanitize`` suite so the
    classification covers exactly the stock inventory; each entry pairs
    the program with its safety validator (properness, independence,
    distance lower bounds, ...) from :mod:`repro.localmodel.resilience`.
    """
    from .lint.cli import _sanitize_suite
    from .localmodel import stock_validator, vertex_key

    suite = []
    for name, graph, factory in _sanitize_suite():
        kind = FAULT_VALIDATORS[name]
        root = None
        if kind == "bfs":
            root = min(graph.vertices(), key=vertex_key)
        suite.append((name, graph, factory, stock_validator(kind, graph, root=root)))
    return suite


def _cmd_faults_sweep(args, out) -> int:
    """``repro faults --sweep``: classify every stock program."""
    from .analysis.tables import format_table
    from .localmodel import fault_grid, resilience_check, with_retries

    grid = fault_grid(
        drop_rates=tuple(
            float(tok) for tok in args.drops.split(",") if tok
        ) if args.drops else (0.05, 0.15, 0.3)
    )
    results = []
    for name, graph, factory, validator in _faults_suite():
        if args.retries:
            factory = with_retries(factory)
        report = resilience_check(
            graph, factory, validator, grid=grid, max_rounds=args.max_rounds
        )
        results.append((name, len(graph), report))

    if args.format == "json":
        payload = {
            "retries": args.retries,
            "grid": [plan.spec() for plan in grid],
            "programs": [
                {
                    "program": name,
                    "vertices": n,
                    "classification": report.classification,
                    "baseline_rounds": report.baseline_rounds,
                    "rounds_to_recover": report.rounds_to_recover,
                    "outcomes": [
                        {
                            "plan": o.plan,
                            "complete": o.complete,
                            "valid": o.valid,
                            "matches_baseline": o.matches_baseline,
                            "rounds": o.rounds,
                            "extra_rounds": o.extra_rounds,
                            "injected": o.injected,
                            "problems": list(o.problems),
                            "error": o.error,
                        }
                        for o in report.outcomes
                    ],
                }
                for name, n, report in results
            ],
        }
        print(json.dumps(payload, indent=2, sort_keys=True), file=out)
    else:
        rows = []
        for name, n, report in results:
            incomplete = sum(1 for o in report.outcomes if not o.complete)
            invalid = sum(1 for o in report.outcomes if not o.valid)
            recover = report.rounds_to_recover
            rows.append((
                name,
                report.classification,
                report.baseline_rounds,
                "-" if recover is None else recover,
                f"{len(report.outcomes) - incomplete}/{len(report.outcomes)}",
                invalid,
            ))
        print(
            format_table(
                ["program", "classification", "base rounds", "worst extra",
                 "completed", "invalid"],
                rows,
            ),
            file=out,
        )
    return 0


def _cmd_faults(args, out) -> int:
    """The ``repro faults`` front-end (single run or classification sweep)."""
    from .localmodel import (
        FaultPlan,
        FaultPlanError,
        MetricsSink,
        TracedNetwork,
        ValidityMonitor,
        stock_validator,
        vertex_key,
        with_retries,
    )

    if args.sweep:
        return _cmd_faults_sweep(args, out)
    try:
        plan = FaultPlan.parse(args.plan)
    except FaultPlanError as exc:
        raise SystemExit(f"bad --plan spec: {exc}")

    if args.stock:
        # the generated sweep graph + seeded factory: the environment
        # every `repro chaos` repro spec refers to
        entry = next(
            (e for e in _faults_suite() if e[0] == args.program), None
        )
        if entry is None:
            raise SystemExit(
                f"no stock suite entry for --program {args.program}"
            )
        _, graph, factory, validator = entry

        def describe(outputs):
            committed = sum(1 for v in outputs.values() if v is not None)
            return f"committed outputs: {committed}/{len(graph)}"
    else:
        if not args.graph:
            raise SystemExit(
                "repro faults: provide a GRAPH file or use --stock / --sweep"
            )
        graph = _read_graph(args.graph)
        if len(graph) == 0:
            print("graph is empty; nothing to run", file=out)
            return 0
        factory, describe = _trace_factory(args, graph)
        kind = FAULT_VALIDATORS[args.program]
        root = args.root
        if root is None:
            root = min(graph.vertices(), key=vertex_key)
        validator = stock_validator(
            kind, graph, root=root if kind == "bfs" else None
        )
    if args.retries:
        factory = with_retries(factory)

    metrics = MetricsSink()
    try:
        traced = TracedNetwork(
            graph,
            factory,
            sinks=[metrics],
            faults=plan,
            recovery=args.recovery,
            checkpoint_every=args.checkpoint_every,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    monitor = ValidityMonitor(traced.network, validator)
    traced.network.add_sink(monitor)

    outputs = None
    error = None
    try:
        outputs = traced.run(max_rounds=args.max_rounds)
    except RuntimeError as exc:
        error = str(exc).splitlines()[0]

    summary = metrics.summary()
    print(
        f"{args.program} on {len(graph)} vertices under "
        f"plan '{plan.spec() or 'none'}'"
        f"{' with retries' if args.retries else ''}",
        file=out,
    )
    print(
        f"rounds: {summary['rounds']}  messages: {summary['messages']}  "
        f"quiet rounds: {summary['quiet_rounds']}",
        file=out,
    )
    injected = traced.network.fault_summary()
    if injected is not None:
        print(
            "faults injected: "
            + "  ".join(f"{k}: {v}" for k, v in injected.items()),
            file=out,
        )
    crashed = traced.network.crashed_nodes()
    if crashed:
        print(f"still crashed: {', '.join(str(v) for v in crashed)}", file=out)
    if error is not None:
        print(f"run did not complete: {error}", file=out)
    elif outputs is not None:
        print(describe(outputs), file=out)
    # validate the *final* outputs too: a corruption landing after the
    # last monitored round (e.g. on a quiesced network) is invisible to
    # the per-round monitor but must still fail the replay
    final = {v: p.output for v, p in traced.network.programs.items()}
    final_problems = validator(graph, final)
    if monitor.first_violation_round is None and not final_problems:
        print("output validity: OK (no round ever violated the invariant)",
              file=out)
    elif monitor.first_violation_round is not None:
        _, problems = monitor.violations[-1]
        print(
            f"output validity: VIOLATED from round "
            f"{monitor.first_violation_round}: {problems[0]}",
            file=out,
        )
    else:
        print(
            f"output validity: VIOLATED in the final outputs: "
            f"{final_problems[0]}",
            file=out,
        )
    if args.timeline:
        print(traced.timeline(), file=out)
    return 0 if monitor.first_violation_round is None and not final_problems else 1


#: the CI smoke subset for ``repro chaos --quick``: one representative per
#: output invariant (distances, coloring, independence)
CHAOS_QUICK_PROGRAMS = ("bfs", "coloring", "luby")


def _cmd_chaos(args, out) -> int:
    """``repro chaos``: the seeded fuzz soak with failure minimization."""
    from .analysis.tables import format_table
    from .localmodel.chaos import chaos_soak

    suite = _faults_suite()
    if args.quick:
        suite = [e for e in suite if e[0] in CHAOS_QUICK_PROGRAMS]
    if args.programs:
        wanted = {tok for tok in args.programs.split(",") if tok}
        unknown = wanted - {e[0] for e in suite}
        if unknown:
            raise SystemExit(
                f"unknown chaos programs: {', '.join(sorted(unknown))} "
                f"(have: {', '.join(e[0] for e in suite)})"
            )
        suite = [e for e in suite if e[0] in wanted]
    if args.trials < 1:
        raise SystemExit("repro chaos: --trials must be >= 1")

    report = chaos_soak(
        suite,
        trials=args.trials,
        seed=args.seed,
        max_rounds=args.max_rounds,
        minimize=not args.no_minimize,
    )
    summary = report.summary()
    failures = report.failures()
    unreproduced = [
        t for t in failures if not args.no_minimize and not t.reproduces
    ]

    if args.format == "json":
        payload = {
            "summary": summary,
            "executors": report.executors,
            "trials": [t.as_dict() for t in report.trials],
        }
        print(json.dumps(payload, indent=2, sort_keys=True), file=out)
    else:
        print(
            f"chaos soak: {summary['trials']} trials over "
            f"{len(suite)} programs (seed {args.seed})",
            file=out,
        )
        rows = []
        for name, _graph, _factory, _validator in suite:
            info = report.executors.get(name, {})
            rows.append((
                name,
                sum(1 for t in report.trials if t.program == name),
                summary["by_program"].get(name, 0),
                info.get("executed", "?"),
            ))
        print(
            format_table(["program", "trials", "failures", "executor"], rows),
            file=out,
        )
        for t in failures:
            print(f"{t.program} trial {t.trial}: {t.kind}", file=out)
            detail = t.problems[0] if t.problems else (t.error or "")
            if detail:
                print(f"  {detail}", file=out)
            print(f"  plan: {t.plan}", file=out)
            if t.minimized is not None:
                status = "reproduces" if t.reproduces else "DOES NOT reproduce"
                print(f"  minimized ({status}): {t.minimized}", file=out)
                print(
                    f"  replay: repro faults --stock --program {t.program} "
                    f"--plan '{t.minimized}'",
                    file=out,
                )
        print(
            f"failures: {summary['failures']}  minimized: "
            f"{summary['minimized']}  reproduced: {summary['reproduced']}",
            file=out,
        )
    if args.check and unreproduced:
        print(
            f"chaos --check: {len(unreproduced)} failure(s) lack a "
            "reproducing minimized spec",
            file=out,
        )
        return 1
    return 0


def _cmd_run(args, out) -> int:
    """The ``repro run`` front-end over :mod:`repro.runner`.

    Tables go to ``out`` (byte-identical to ``repro report`` for the
    same ids); progress and cache statistics go to stderr so stdout
    stays diffable.
    """
    import json as _json

    from . import runner

    requested = [part for token in args.ids for part in token.split(",") if part]
    try:
        ids = runner.resolve_ids(requested)
    except runner.UnknownExperimentError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.list_experiments:
        from .analysis.tables import format_table

        rows = [
            (eid, len(exp.plan()), ", ".join(exp.deps), exp.title)
            for eid, exp in runner.REGISTRY.items()
        ]
        print(format_table(["id", "cells", "cache deps (roots)", "title"], rows),
              file=out)
        return 0

    cache_dir = args.cache_dir
    if args.clean_cache:
        cache = runner.ResultCache(cache_dir)
        removed = cache.clean()
        print(f"removed {removed} cached cell result(s) from {cache.directory}",
              file=out)
        return 0

    if args.bench:
        summary = runner.run_bench(ids, jobs=args.jobs, timeout=args.timeout)
        with open(args.bench_output, "w") as handle:
            _json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(
            f"serial {summary['serial']['wall_seconds']:.2f}s  "
            f"parallel(x{summary['parallel']['jobs']}) "
            f"{summary['parallel']['wall_seconds']:.2f}s  "
            f"warm cache {summary['cached_rerun']['wall_seconds']:.2f}s  "
            f"({summary['cells']} cells, reports identical: "
            f"{summary['reports_identical']})",
            file=out,
        )
        quiet = summary["scheduler"]["quiet_convergecast"]
        print(
            f"scheduler: active {quiet['active_seconds']:.3f}s vs dense "
            f"{quiet['dense_seconds']:.3f}s on {quiet['workload']} "
            f"({quiet['speedup_active_over_dense']:.0f}x, outputs identical: "
            f"{quiet['outputs_identical']})",
            file=out,
        )
        print(f"bench summary written to {args.bench_output}", file=out)
        return 0

    import os

    jobs = args.jobs or os.cpu_count() or 1
    if args.profile:
        # pool workers escape the profiler; keep every cell in-process
        jobs = 1
    overrides = None
    if args.executor:
        overrides = {
            "D1": {"executor": args.executor},
            "K2": {"executors": (args.executor,)},
        }
    cache = None if args.no_cache else runner.ResultCache(cache_dir)
    report, results, stats = runner.run_experiments(
        ids,
        jobs=jobs,
        cache=cache,
        timeout=args.timeout,
        overrides=overrides,
        jsonl=args.jsonl,
    )
    print(report, file=out)
    print(stats.summary_line(), file=sys.stderr)
    failures = [r for r in results if not r.ok]
    for res in failures:
        first_line = (res.error or "").splitlines()[0] if res.error else ""
        print(
            f"  {res.status}: {res.experiment} {res.fn}{res.params}: {first_line}",
            file=sys.stderr,
        )
    return 1 if failures else 0


def _with_profile(args, command, out) -> int:
    """Run ``command()`` under cProfile when ``--profile`` was given.

    The top 15 functions by cumulative time print after the command's
    own output; ``--profile-out`` additionally dumps the raw ``pstats``
    data for offline analysis (``python -m pstats``, snakeviz, ...).
    """
    if not getattr(args, "profile", False):
        return command()
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        return command()
    finally:
        profiler.disable()
        stream = io.StringIO()
        stats = pstats.Stats(profiler, stream=stream)
        stats.sort_stats("cumulative").print_stats(15)
        print(stream.getvalue().rstrip(), file=out)
        if args.profile_out:
            profiler.dump_stats(args.profile_out)
            print(f"raw profile stats written to {args.profile_out}", file=out)


def main(argv: Optional[list] = None, out=None) -> int:
    out = out or sys.stdout
    args = build_parser().parse_args(argv)

    if args.command == "info":
        g = _read_graph(args.graph)
        chordal = is_chordal(g)
        print(f"vertices: {len(g)}", file=out)
        print(f"edges:    {g.num_edges()}", file=out)
        print(f"density:  {density(g):.4f}", file=out)
        print(f"chordal:  {chordal}", file=out)
        print(f"degeneracy: {degeneracy(g)}", file=out)
        if chordal:
            print(f"chi (= omega): {clique_number(g)}", file=out)
            print(f"alpha:         {independence_number_chordal(g)}", file=out)
        return 0

    if args.command == "color":
        g = _prepare(_read_graph(args.graph), args.triangulate, out)
        if args.distributed:
            report = distributed_color_chordal(g, epsilon=args.epsilon)
            result = report.result
            print(f"LOCAL rounds: {report.total_rounds}", file=out)
        else:
            result = color_chordal_graph(g, epsilon=args.epsilon)
        print(f"colors used: {result.num_colors()} "
              f"(chi = {result.chi}, bound = "
              f"{result.chi + result.chi // result.parameters.k + 1})", file=out)
        if args.output:
            with open(args.output, "w") as f:
                json.dump({str(v): c for v, c in result.coloring.items()}, f)
            print(f"coloring written to {args.output}", file=out)
        return 0

    if args.command == "mis":
        g = _prepare(_read_graph(args.graph), args.triangulate, out)
        result = chordal_mis(g, args.epsilon)
        alpha = independence_number_chordal(g)
        print(f"independent set size: {result.size()} "
              f"(alpha = {alpha}, guarantee >= {alpha / (1 + args.epsilon):.1f})",
              file=out)
        if args.output:
            with open(args.output, "w") as f:
                json.dump(sorted(result.independent_set, key=str), f)
            print(f"set written to {args.output}", file=out)
        return 0

    if args.command == "generate":
        g = GENERATORS[args.family](args.n, args.seed)
        text = to_edge_list(g)
        if args.output:
            with open(args.output, "w") as f:
                f.write(text)
            print(f"{args.family} instance (n={len(g)}) written to {args.output}",
                  file=out)
        else:
            out.write(text)
        return 0

    if args.command == "report":
        from .runner import UnknownExperimentError

        try:
            print(run_report(list(args.ids)), file=out)
        except UnknownExperimentError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return 0

    if args.command == "run":
        return _with_profile(args, lambda: _cmd_run(args, out), out)

    if args.command == "trace":
        return _with_profile(args, lambda: _cmd_trace(args, out), out)

    if args.command == "faults":
        return _cmd_faults(args, out)

    if args.command == "chaos":
        return _cmd_chaos(args, out)

    if args.command == "lint":
        from .lint.cli import main as lint_main

        lint_argv = [*args.paths, "--format", args.format, "--select", args.select]
        if args.show_suppressed:
            lint_argv.append("--show-suppressed")
        if args.congest:
            lint_argv.append("--congest")
        if args.sanitize:
            lint_argv.append("--sanitize")
        if args.baseline:
            lint_argv.extend(["--baseline", args.baseline])
        if args.write_baseline:
            lint_argv.extend(["--write-baseline", args.write_baseline])
        return lint_main(lint_argv, out=out)

    raise AssertionError("unreachable")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
