"""Theorem 9's experiment: r-round MIS on randomly labeled paths.

Theorem 9 proves every randomized r-round LOCAL algorithm for MIS on the
labeled path P_n has expected size at most about (1/2 - Theta(1/r)) n --
so (1 + eps)-approximation needs r = Omega(1/eps) rounds.  A lower bound
cannot be "run", but its *shape* can be exhibited: this module implements
a natural family of r-round algorithms whose measured loss decays as
Theta(1/r), sandwiching the truth between the theorem's Omega(1/r) and the
construction's O(1/r).

The **anchor-parity rule** with radius r (every decision depends only on
the radius-r label window, as an r-round LOCAL algorithm must):

* a node is an *anchor* when its label is minimal within distance
  h ~ 0.3 r (anchors are >= h apart, one per ~2h nodes);
* every node computes d = its distance to the nearest visible anchor
  (breaking ties toward the anchor with the smaller label) and joins the
  independent set iff d is even and no adjacent node has the same d.

Neighbors with the same nearest anchor differ in d by one, so losses come
from (a) the collision frontier between two anchors' regions, O(1) nodes
per ~h-long region, and (b) nodes with no anchor in sight.  At h ~ 0.3 r
the measured density gap tracks ~0.8/r across two orders of magnitude of
r -- the Theta(1/r) shape that Theorem 9's Omega(1/r) bound predicts is
the best possible.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

__all__ = [
    "anchor_parity_mis",
    "anchor_radius",
    "LowerBoundSample",
    "measure_r_round_mis",
]


def anchor_radius(r: int) -> int:
    """The anchor-minimum radius h of an r-round budget.

    h ~ 0.3 r balances the two loss sources (frontier collisions ~ 1/h per
    node against out-of-sight anchors); a parameter scan shows the
    resulting density gap tracks ~0.8/r across two orders of magnitude.
    """
    if r < 12:
        return 1
    return max(1, round(0.3 * r))


def anchor_parity_mis(labels: Sequence[int], r: int) -> Set[int]:
    """Positions selected by the r-round anchor-parity rule.

    ``labels`` are the path's (distinct) labels in path order; the return
    value is a set of positions (indices).  The decision at position i
    depends only on labels[i-r : i+r+1]; tests verify this locality.
    """
    n = len(labels)
    if n == 0:
        return set()
    if len(set(labels)) != n:
        raise ValueError("labels must be distinct")
    if r < 3:
        # With so few rounds, fall back to plain local minima: independent
        # and roughly n/3 positions.
        return {
            i
            for i in range(n)
            if (i == 0 or labels[i] < labels[i - 1])
            and (i == n - 1 or labels[i] < labels[i + 1])
        }
    h = anchor_radius(r)

    anchors = [
        i
        for i in range(n)
        if labels[i] == min(labels[max(0, i - h): i + h + 1])
    ]

    # Distance to nearest visible anchor; ties by anchor label.  The reach
    # keeps every consulted quantity inside the radius-r window: a node
    # must see the anchor (reach), certify its anchor-hood (+h), and know
    # its neighbors' values (+1).
    reach = max(1, r - h - 2)

    def nearest(i: int) -> Optional[Tuple[int, int]]:
        best: Optional[Tuple[int, int]] = None  # (distance, label)
        for a in anchors:
            d = abs(a - i)
            if d <= reach:
                cand = (d, labels[a])
                if best is None or cand < best:
                    best = cand
        return best

    info = [nearest(i) for i in range(n)]
    chosen: Set[int] = set()
    for i in range(n):
        if info[i] is None or info[i][0] % 2 == 1:
            continue
        left_clash = i > 0 and info[i - 1] is not None and info[i - 1][0] == info[i][0]
        right_clash = (
            i < n - 1 and info[i + 1] is not None and info[i + 1][0] == info[i][0]
        )
        if not left_clash and not right_clash:
            chosen.add(i)
    return chosen


@dataclass
class LowerBoundSample:
    """One measured point of the Theorem 9 experiment."""

    r: int
    n: int
    trials: int
    mean_size: float
    optimum: int

    @property
    def density_gap(self) -> float:
        """(opt - E|I|) / n: the per-node loss, expected Theta(1/r)."""
        return (self.optimum - self.mean_size) / self.n

    @property
    def approximation_ratio(self) -> float:
        return self.optimum / self.mean_size if self.mean_size else math.inf


def measure_r_round_mis(
    n: int, r: int, trials: int = 20, seed: int = 0
) -> LowerBoundSample:
    """Average the anchor-parity rule over random labelings of P_n."""
    rng = random.Random(seed)
    total = 0
    for _ in range(trials):
        labels = list(range(n))
        rng.shuffle(labels)
        chosen = anchor_parity_mis(labels, r)
        _assert_independent(chosen)
        total += len(chosen)
    return LowerBoundSample(
        r=r,
        n=n,
        trials=trials,
        mean_size=total / trials,
        optimum=(n + 1) // 2,
    )


def _assert_independent(chosen: Set[int]) -> None:
    for i in chosen:
        if i + 1 in chosen:
            raise AssertionError(f"positions {i} and {i + 1} both selected")
