"""The Theorem 9 lower-bound experiment (Section 8)."""

from .mis_path import (
    LowerBoundSample,
    anchor_parity_mis,
    anchor_radius,
    measure_r_round_mis,
)

__all__ = [
    "LowerBoundSample",
    "anchor_parity_mis",
    "anchor_radius",
    "measure_r_round_mis",
]
