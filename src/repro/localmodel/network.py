"""Synchronous message-passing simulator for the LOCAL model.

The LOCAL model (Section 1): the input graph is the communication network;
every node hosts a computational entity knowing initially only its own ID
and its neighbors' IDs.  Computation proceeds in synchronous rounds; per
round each node performs unlimited local computation and then exchanges
messages of unbounded size with its neighbors.  The complexity measure is
the number of rounds.

:class:`SyncNetwork` drives :class:`NodeProgram` instances round by round,
collecting per-round message statistics.  The genuinely message-passing
algorithms of the library (Luby's MIS, Cole-Vishkin color reduction, ball
gathering) run on it directly; the large layered algorithms of the paper
use the ball-equivalence accounting of :mod:`repro.localmodel.rounds`
instead (see that module's docstring for why both exist).

Active-set scheduling
---------------------

The LOCAL model charges *rounds*, not work, so a simulator is free to
skip nodes whose step would provably be a no-op.  The default scheduler
(``scheduler="active"``) steps a node in a round only when it is not done
and at least one of these holds:

* it is round 0 (every program gets its initialization step);
* the node received a message in the previous round;
* the node's program called :meth:`NodeProgram.wake_next_round` during
  its last step;
* the program declares :attr:`NodeProgram.always_active` (it "acts on
  silence": round counting, internal state machines, timeout-style
  termination -- anything whose empty-inbox step is not a no-op).

A program that acts on silence without declaring ``always_active`` (or
requesting wakeup) starves: the active set empties while the node is
still running, and :meth:`SyncNetwork.run` raises ``RuntimeError``
immediately instead of spinning to the round budget.  Lint rule L6
(:mod:`repro.lint.rules`) flags such programs statically.

``scheduler="dense"`` preserves the historical reference semantics --
every not-yet-done node is stepped every round -- and exists so the
equivalence suite can assert that active-set scheduling changes neither
outputs nor :class:`RunStats` nor traces for any conforming program.
Inboxes are allocated only for nodes that actually receive, under both
schedulers.

Trace sinks
-----------

Observability is a pluggable :class:`TraceSink` attached to the network
(``SyncNetwork(..., sinks=[...])``).  After *every* round -- including
rounds driven by direct :meth:`SyncNetwork.step_round` calls -- each sink
receives ``on_round(round_no, messages, completed, active_count)`` with:

* ``round_no`` -- the network's own round counter for the round just
  executed (0-based; always equals ``stats.rounds - 1`` at call time);
* ``messages`` -- the round's :class:`MessageRecord` list, sorted by
  ``(sender, receiver)`` under the natural vertex order
  (:func:`vertex_key`), so integer ids order 0, 1, 2, ..., 10, 11;
* ``completed`` -- nodes whose program set ``done`` this round, sorted
  by :func:`vertex_key`;
* ``active_count`` -- how many nodes were actually stepped.

Sinks fire in attachment order.  :class:`~repro.localmodel.trace.TracedNetwork`
is a thin convenience wrapper over one recording sink; see
``docs/tracing.md`` for the protocol and the JSONL export schema.
"""

from __future__ import annotations

import copy
import random
import zlib
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    ClassVar,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from ..graphs.adjacency import Graph, Vertex
from .sealed import SealedContextError, SealedInbox, freeze

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .faults import FaultPlan, FaultRuntime

__all__ = [
    "NodeProgram",
    "NodeContext",
    "SealedNodeContext",
    "SyncNetwork",
    "RunStats",
    "MessageRecord",
    "TraceSink",
    "vertex_key",
    "SCHEDULERS",
    "RECOVERY_MODES",
    "DELIVERY_STATUSES",
    "WIRE_STATUSES",
]

#: The recognized scheduling disciplines of :class:`SyncNetwork`.
SCHEDULERS = ("active", "dense")

#: What a crash-*recover* node resumes from: ``"intact"`` keeps whatever
#: state the program had when it crashed (the historical semantics),
#: ``"restart"`` resets it to its round-0 state, ``"checkpoint"``
#: restores the last snapshot taken at the ``checkpoint_every`` cadence.
RECOVERY_MODES = ("intact", "restart", "checkpoint")

# ----------------------------------------------------------------------
# The send-vs-deliver counting contract.
#
# Every message event carries a MessageRecord status; the two frozensets
# below partition those statuses into the two quantities the library
# counts, and they are the single source of truth for RunStats,
# MessageMeter, and the fault-sweep reports:
#
# * a **send** is one outbox entry as returned by a program's step();
#   RunStats.messages_sent counts sends, regardless of what the network
#   then does with the message (deliver, drop, delay, duplicate);
# * a **delivery** is one payload reaching a receiver's inbox; a record
#   counts as a delivery iff its status is in DELIVERY_STATUSES.  Matured
#   late and duplicate copies injected by the fault layer are deliveries
#   even though they were never (separately) sent;
# * a **wire transmission** is one payload crossing an edge once; a
#   record counts iff its status is in WIRE_STATUSES.  "late" is
#   deliberately absent: a late record is the maturity of an
#   already-charged "delayed" transmission, and charging both would
#   double-count the wire.  MessageMeter charges payload sizes per
#   transmission.
# ----------------------------------------------------------------------

#: Statuses whose records reach a receiver's inbox (the "deliver" side of
#: the counting contract; see :class:`RunStats`).
DELIVERY_STATUSES = frozenset({"delivered", "late", "duplicate"})

#: Statuses representing a distinct transmission on the wire (the unit
#: :class:`~repro.localmodel.meter.MessageMeter` charges).
WIRE_STATUSES = frozenset({"delivered", "dropped", "delayed", "duplicate"})


def vertex_key(v: Vertex) -> Tuple[int, str, Any]:
    """Sort key realizing the natural vertex order.

    Numeric ids sort numerically (0, 1, 2, ..., 10, 11 -- not the string
    order 0, 1, 10, 11, 2), everything else sorts by type name then
    string form, so graphs mixing id types remain sortable.
    """
    if isinstance(v, bool) or not isinstance(v, (int, float)):
        return (1, type(v).__name__, str(v))
    return (0, "", v)


@dataclass(frozen=True)
class MessageRecord:
    """One message event, as reported to trace sinks.

    ``status`` is ``"delivered"`` on a reliable network.  Under fault
    injection (:mod:`repro.localmodel.faults`) it tags what actually
    happened: ``"dropped"`` (lost, including sends to a crashed node),
    ``"delayed"`` (deferred; a matching ``"late"`` record appears at the
    actual delivery round), or ``"duplicate"`` (a network-injected extra
    copy).  Only ``delivered``/``late``/``duplicate`` records reach an
    inbox.
    """

    sender: Vertex
    receiver: Vertex
    payload: Any
    status: str = "delivered"


class TraceSink:
    """Observer protocol for per-round network events.

    Subclass (or duck-type) and attach via ``SyncNetwork(..., sinks=[...])``.
    The network calls :meth:`on_round` exactly once per executed round with
    canonically ordered data (see the module docstring for the ordering
    guarantees); sinks must not mutate the ``messages``/``completed``
    lists, which are shared by every sink attached to the same network.
    """

    def on_round(
        self,
        round_no: int,
        messages: List[MessageRecord],
        completed: List[Vertex],
        active_count: int,
    ) -> None:
        """Observe one executed round (see the class docstring for the contract)."""
        raise NotImplementedError


@dataclass
class NodeContext:
    """What a node can see when it takes a step.

    ``inbox`` maps each neighbor to the message it sent in the previous
    round (absent if it sent nothing).  ``round_number`` is 0 for the first
    step, matching the convention that initialization happens "before round
    zero"'s communication.
    """

    node: Vertex
    neighbors: List[Vertex]
    round_number: int
    inbox: Mapping[Vertex, Any]


class SealedNodeContext(NodeContext):
    """A :class:`NodeContext` whose attributes cannot be reassigned.

    Used by sealed execution (``SyncNetwork(..., sealed=True)``): together
    with :class:`~repro.localmodel.sealed.SealedInbox` it turns the context
    into a read-only view, so any program mutating its context (lint rule
    L5) fails at the offending statement instead of silently corrupting
    the round's state.
    """

    def __init__(self, node, neighbors, round_number, inbox):
        """Build the context, then flip the seal so mutation raises."""
        super().__init__(node, neighbors, round_number, inbox)
        object.__setattr__(self, "_sealed", True)

    def __setattr__(self, name: str, value: Any) -> None:
        if getattr(self, "_sealed", False):
            raise SealedContextError(
                f"node {self.node!r} assigned to ctx.{name}; contexts are "
                "read-only under sealed execution"
            )
        super().__setattr__(name, value)


class NodeProgram:
    """Base class for per-node algorithms.

    Subclasses override :meth:`step`, returning the outbox: a mapping from
    neighbor to message (use :meth:`broadcast` to message every neighbor).
    A program signals completion by setting :attr:`done` *inside* a step;
    its result should be left in :attr:`output`.  Messages returned in the
    same step as ``done = True`` are still delivered, so a node can
    announce its final state as it stops.

    Scheduling contract (see the module docstring): under the active-set
    scheduler a quiet node -- one that received nothing last round -- is
    not stepped.  A program whose empty-inbox step is *not* a no-op must
    either declare :attr:`always_active` = True at class level, or call
    :meth:`wake_next_round` before returning from any step after which it
    needs to run regardless of incoming messages.  Purely event-driven
    programs should declare ``always_active = False`` explicitly; lint
    rule L6 enforces that the declaration exists one way or the other.
    """

    #: Schedule this node every round while it is not done.  Declare True
    #: for programs that act on silence (round counting, state machines);
    #: declare False explicitly for purely event-driven programs.
    always_active = False

    #: Optional whole-round kernel: a
    #: :class:`~repro.localmodel.executor.BatchKernel` subclass that
    #: advances every instance of this program one round at a time over
    #: the CSR index, replacing per-node ``step`` dispatch.  ``None``
    #: (the default) means the program always runs on the per-node
    #: scheduler; :class:`~repro.localmodel.executor.BatchExecutor`
    #: consults this attribute under ``mode="auto"``/``"batch"`` and is
    #: equivalence-bound to the per-node path (see ``docs/executor.md``).
    batch_kernel: ClassVar[Optional[type]] = None

    def __init__(self, node: Vertex, neighbors: List[Vertex]):
        """Bind identity: this ``node`` and its sorted ``neighbors`` list."""
        self.node = node
        self.neighbors = list(neighbors)
        self.done = False
        self.output: Any = None
        self._wake_requested = False

    def step(self, ctx: NodeContext) -> Mapping[Vertex, Any]:
        """Advance one round; return the outbox ``{neighbor: payload}``."""
        raise NotImplementedError

    def broadcast(self, message: Any) -> Dict[Vertex, Any]:
        """An outbox sending ``message`` to every declared neighbor."""
        return {u: message for u in self.neighbors}

    def wake_next_round(self) -> None:
        """Request a step next round even if no message arrives.

        The per-step escape hatch for programs that usually are
        event-driven but occasionally act on silence; the request is
        consumed (and cleared) by the scheduler after the current step.
        """
        self._wake_requested = True


@dataclass
class RunStats:
    """Round and message accounting for a :class:`SyncNetwork` run.

    Counting follows the module's send-vs-deliver contract (see
    :data:`DELIVERY_STATUSES`): ``messages_sent`` counts outbox entries
    as returned by the programs, ``messages_delivered`` counts inbox
    arrivals -- including matured late and duplicate copies injected by
    the fault layer, which were never separately sent.  On a reliable
    network the two are equal; under faults, drops push ``delivered``
    below ``sent`` and duplicates push it above.

    Identical under both schedulers for conforming programs: skipped
    nodes would have sent nothing, so rounds, message totals, and
    per-round maxima are scheduling-invariant (asserted program-by-program
    in the equivalence suite).
    """

    rounds: int = 0
    messages_sent: int = 0
    messages_delivered: int = 0
    max_messages_per_round: int = 0

    def record_round(self, sent: int, delivered: int) -> None:
        """Fold one executed round's send/delivery counts into the totals."""
        self.rounds += 1
        self.messages_sent += sent
        self.messages_delivered += delivered
        self.max_messages_per_round = max(self.max_messages_per_round, sent)


class SyncNetwork:
    """Runs one :class:`NodeProgram` per node of a graph, synchronously.

    ``scheduler`` selects the stepping discipline: ``"active"`` (default)
    steps only nodes with a reason to run (see the module docstring),
    ``"dense"`` steps every not-done node every round (the historical
    reference semantics).  ``sinks`` is an iterable of :class:`TraceSink`
    observers notified after every round.

    With ``sealed=True`` every delivered message is deep-frozen and every
    context is read-only (see :mod:`repro.localmodel.sealed`): a program
    peeking beyond its neighborhood or mutating delivered state raises
    :class:`~repro.localmodel.sealed.SealedContextError` at the offending
    statement.  Sealing is behavior-preserving for conforming programs
    and orthogonal to the scheduler, so any of the four sealed x scheduler
    combinations is safe (just slightly slower with sealing) in tests.

    ``faults`` attaches a :class:`~repro.localmodel.faults.FaultPlan`:
    every delivery consults the plan (drop / duplicate / delay), crash
    schedules unschedule nodes, and trace sinks receive the affected
    :class:`MessageRecord`\\ s with a non-default ``status`` tag.  An
    empty plan is behavior-preserving -- byte-identical transcripts,
    outputs, and stats versus ``faults=None`` (regression-tested); see
    :mod:`repro.localmodel.faults` for the guarantees.  Corruption
    schedules (:class:`~repro.localmodel.faults.CorruptSpec`) mutate
    node state strictly *between* rounds: after the named round's
    steps, deliveries, and trace sinks, so sinks observe the round as
    executed and the corrupted state is first visible in the following
    round.  A corrupted program whose class declares ``repairable =
    True`` is re-activated -- ``done`` cleared, back on the schedule --
    so it can detect and repair the damage (see
    :mod:`repro.localmodel.stabilize`); any other program keeps its
    completion status and lives with the corruption, which is how
    unrepaired algorithms end up classified unsafe.

    ``recovery`` picks what a crash-recover node resumes from (one of
    :data:`RECOVERY_MODES`: state intact, round-0 restart, or last
    checkpoint); ``checkpoint_every`` enables state snapshots every
    that-many rounds (required by ``recovery="checkpoint"`` and
    consumed by :meth:`rollback`).  Both default off and are then
    behavior-preserving.

    ``inbox_order`` is the shadow-execution knob of the determinism
    sanitizer (:mod:`repro.localmodel.shadow`): when set to an integer
    seed, every delivered inbox is rebuilt in a pseudorandom key order
    derived deterministically from ``(seed, round, receiver)`` -- the
    LOCAL model promises nothing about inbox iteration order, so a
    conforming program's outputs and transcript must not change.  The
    permutation uses ``zlib.crc32`` rather than ``hash()`` so a given
    seed permutes identically across interpreter runs (salted hashing
    would make the *sanitizer itself* nondeterministic).
    """

    def __init__(
        self,
        graph: Graph,
        program_factory: Callable[[Vertex, List[Vertex]], NodeProgram],
        sealed: bool = False,
        scheduler: str = "active",
        sinks: Optional[List[TraceSink]] = None,
        inbox_order: Optional[int] = None,
        faults: Optional["FaultPlan"] = None,
        recovery: str = "intact",
        checkpoint_every: Optional[int] = None,
    ):
        """Instantiate one program per vertex and wire up the run machinery.

        ``program_factory(v, sorted_neighbors)`` builds each node program;
        ``sealed`` deep-freezes deliveries, ``scheduler`` picks
        ``"active"``/``"dense"`` stepping, ``sinks`` observe every round,
        ``inbox_order`` permutes inbox iteration (the sanitizer's knob),
        ``faults`` attaches a :class:`~repro.localmodel.faults
        .FaultPlan` consulted at every delivery, ``recovery`` picks the
        crash-recover resume semantics (:data:`RECOVERY_MODES`), and
        ``checkpoint_every`` enables periodic state snapshots.
        """
        if scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {scheduler!r}; expected one of {SCHEDULERS}"
            )
        if recovery not in RECOVERY_MODES:
            raise ValueError(
                f"unknown recovery mode {recovery!r}; "
                f"expected one of {RECOVERY_MODES}"
            )
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        if recovery == "checkpoint" and checkpoint_every is None:
            raise ValueError(
                'recovery="checkpoint" requires checkpoint_every=N'
            )
        self.graph = graph
        self.sealed = sealed
        self.scheduler = scheduler
        self.inbox_order = inbox_order
        self.recovery = recovery
        self.checkpoint_every = checkpoint_every
        self.sinks: List[TraceSink] = list(sinks) if sinks else []
        self.programs: Dict[Vertex, NodeProgram] = {
            v: program_factory(v, sorted(graph.neighbors_view(v))) for v in graph.vertices()
        }
        self.faults = faults
        if faults is None:
            self._fault_runtime: Optional["FaultRuntime"] = None
        else:
            from .faults import FaultPlanError, FaultRuntime

            for spec in faults.crashes:
                if spec.node not in self.programs:
                    raise FaultPlanError(
                        f"crash schedule names unknown node {spec.node!r}"
                    )
            for corrupt in faults.corrupts:
                if corrupt.node not in self.programs:
                    raise FaultPlanError(
                        f"corruption schedule names unknown node "
                        f"{corrupt.node!r}"
                    )
            self._fault_runtime = FaultRuntime(faults)
        #: round-0 snapshots for recovery="restart"; last periodic
        #: snapshots (round taken, state dict) for checkpointing.  Both
        #: deep copies: restoring must never alias live state.
        self._initial: Dict[Vertex, Dict[str, Any]] = (
            {v: copy.deepcopy(p.__dict__) for v, p in self.programs.items()}
            if recovery == "restart"
            else {}
        )
        self._checkpoints: Dict[Vertex, Tuple[int, Dict[str, Any]]] = (
            {
                v: (-1, copy.deepcopy(p.__dict__))
                for v, p in self.programs.items()
            }
            if checkpoint_every is not None
            else {}
        )
        self.stats = RunStats()
        #: canonical stepping order (= vertex insertion order of the graph)
        self._order: Dict[Vertex, int] = {v: i for i, v in enumerate(self.programs)}
        #: receiver -> {sender: message}; holds only nodes that received
        self._pending: Dict[Vertex, Dict[Vertex, Any]] = {}
        #: not-done nodes owed a step next round (messages or wakeups);
        #: round 0 steps everybody so initialization always happens
        self._active: Set[Vertex] = set(self.programs)
        #: not-done nodes whose program declares always_active
        self._always: Set[Vertex] = {
            v for v, p in self.programs.items() if p.always_active
        }
        #: cached per-node frozenset of neighbors for sealed inboxes
        self._sealed_allowed: Dict[Vertex, Any] = {}
        self._undone = len(self.programs)
        #: spent inbox dicts recycled across rounds on the reliable path.
        #: Reuse is safe only when nothing can retain a reference to last
        #: round's inbox beyond the step that consumed it: sealing hands
        #: out long-lived SealedInbox views, faults keep payload-bearing
        #: state in flight, and the sanitizer rebuilds inboxes anyway --
        #: so all three disable the pool.
        self._inbox_pool: List[Dict[Vertex, Any]] = []
        self._reuse_inboxes = (
            not sealed and faults is None and inbox_order is None
        )

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------
    def run(self, max_rounds: int = 10_000) -> Dict[Vertex, Any]:
        """Run until every program is done; returns the per-node outputs.

        Fast-exits as soon as the last program completes.  The budget is
        exact: a run needing ``r`` rounds succeeds with ``max_rounds=r``
        (completion is re-checked after the final round, not only before
        stepping).  Raises ``RuntimeError`` if the budget is exhausted
        with programs still running, or -- under the active-set scheduler
        -- immediately when running nodes starve (no messages in flight,
        no wakeups, no always-active programs): a deadlocked or
        non-conforming program is a bug that should fail loudly rather
        than spin forever.
        """
        for _round in range(max_rounds):
            if self._undone == 0 and not (
                self._fault_runtime is not None
                and self._fault_runtime.corruption_pending(self.stats.rounds)
            ):
                # A pending corruption keeps a quiesced network ticking
                # (empty rounds) until it lands: a repairable victim is
                # then re-activated, an unrepaired one keeps its now-
                # corrupted output.  Without corruption the exit is the
                # historical fast path, byte-identical to PR 9.
                return self.outputs()
            if (
                self.scheduler == "active"
                and not (self._active or self._always)
                and not (
                    self._fault_runtime is not None
                    and self._fault_runtime.pending(self.stats.rounds)
                )
            ):
                raise RuntimeError(
                    f"{self._undone} node(s) starved: still running, but no "
                    "messages are in flight and no program requested wakeup. "
                    "A program that acts on silence must declare "
                    "always_active = True or call wake_next_round() "
                    "(lint rule L6)."
                )
            self.step_round()
        if self._undone == 0:
            return self.outputs()
        raise RuntimeError(
            f"network did not terminate within {max_rounds} rounds; "
            f"{self._undone} nodes still running"
        )

    def _make_context(self, v: Vertex, program: NodeProgram) -> NodeContext:
        # ctx.neighbors is always a fresh list: handing out the program's
        # own list would let a program corrupt its neighbor set by mutating
        # the context (an aliasing hazard lint rule L5 exists to prevent).
        inbox = self._pending.get(v)
        if self.sealed:
            allowed = self._sealed_allowed.get(v)
            if allowed is None:
                allowed = self._sealed_allowed[v] = frozenset(program.neighbors)
            return SealedNodeContext(
                node=v,
                neighbors=list(program.neighbors),
                round_number=self.stats.rounds,
                inbox=SealedInbox(v, allowed, inbox if inbox is not None else {}),
            )
        return NodeContext(
            node=v,
            neighbors=list(program.neighbors),
            round_number=self.stats.rounds,
            inbox=inbox if inbox is not None else {},
        )

    def _scheduled(self) -> List[Vertex]:
        """The nodes to step this round, in canonical order."""
        crashed: Set[Vertex] = (
            self._fault_runtime.crashed if self._fault_runtime is not None else set()
        )
        if self.scheduler == "dense":
            return [
                v for v, p in self.programs.items()
                if not p.done and v not in crashed
            ]
        if self._always:
            chosen = self._active | self._always
        else:
            chosen = self._active
        if crashed:
            chosen = chosen - crashed
        return sorted(chosen, key=self._order.__getitem__)

    def _apply_fault_transitions(self, round_no: int) -> None:
        """Fire the plan's crash/recover events scheduled for this round."""
        runtime = self._fault_runtime
        assert runtime is not None
        for spec in runtime.crashes_at(round_no):
            v = spec.node
            if v in runtime.crashed:
                continue
            program = self.programs[v]
            runtime.crashed.add(v)
            runtime.crash_events += 1
            self._active.discard(v)
            self._always.discard(v)
            self._pending.pop(v, None)  # the undelivered inbox dies with it
            program._wake_requested = False
            if spec.recover_round is None and not program.done:
                # crash-stop: this node will never finish; do not hold the
                # run hostage waiting for it
                self._undone -= 1
        for v in runtime.recoveries_at(round_no):
            if v not in runtime.crashed:
                continue
            runtime.crashed.discard(v)
            runtime.recover_events += 1
            program = self.programs[v]
            if self.recovery == "restart":
                self._restore_state(v, self._initial[v])
            elif self.recovery == "checkpoint":
                self._restore_state(v, self._checkpoints[v][1])
            if not program.done:
                self._active.add(v)  # wake it so it notices the world moved on
                if program.always_active:
                    self._always.add(v)

    def _restore_state(self, v: Vertex, snapshot: Dict[str, Any]) -> None:
        """Overwrite a program's state with a deep copy of ``snapshot``.

        Keeps the network's completion accounting consistent when the
        restore flips ``done`` (a node that had finished but is reset to
        a pre-completion snapshot is running again).
        """
        program = self.programs[v]
        was_done = program.done
        state = copy.deepcopy(snapshot)
        program.__dict__.clear()
        program.__dict__.update(state)
        program._wake_requested = False
        if was_done and not program.done:
            self._undone += 1
        elif not was_done and program.done:
            self._undone -= 1

    def _take_checkpoint(self, round_no: int) -> None:
        """Snapshot every live program's state dict at ``round_no``."""
        crashed: Set[Vertex] = (
            self._fault_runtime.crashed if self._fault_runtime is not None else set()
        )
        for v, program in self.programs.items():
            if v in crashed:
                continue  # a down node keeps its previous checkpoint
            self._checkpoints[v] = (round_no, copy.deepcopy(program.__dict__))

    def _apply_corruptions(self, round_no: int) -> None:
        """Fire the corruption events scheduled after ``round_no``.

        Runs at the very end of :meth:`step_round`, after the round's
        trace sinks: corruption strikes strictly between rounds.  A
        victim whose program declares ``repairable = True`` is put back
        on the schedule (``done`` cleared) so it can detect and repair
        the damage next round; other victims keep their completion
        status and their now-corrupted state.
        """
        from .faults import corrupt_program

        runtime = self._fault_runtime
        assert runtime is not None
        assert self.faults is not None
        for spec in runtime.corruptions_at(round_no):
            v = spec.node
            if v in runtime.crashed:
                continue  # a down node has no state to corrupt
            program = self.programs[v]
            if not corrupt_program(program, spec, self.faults.seed):
                continue
            runtime.corrupt_events += 1
            runtime.corruption_rounds.append(round_no)
            if getattr(program, "repairable", False):
                if program.done:
                    program.done = False
                    self._undone += 1
                self._active.add(v)
                if program.always_active:
                    self._always.add(v)

    def step_round(self) -> None:
        """Advance the whole network by one synchronous round."""
        round_no = self.stats.rounds
        runtime = self._fault_runtime
        if runtime is not None and runtime.has_node_events:
            self._apply_fault_transitions(round_no)
        scheduled = self._scheduled()
        outboxes: List[Tuple[Vertex, Mapping[Vertex, Any]]] = []
        completed: List[Vertex] = []
        for v in scheduled:
            program = self.programs[v]
            outbox = program.step(self._make_context(v, program)) or {}
            if program.done:
                self._undone -= 1
                self._always.discard(v)
                program._wake_requested = False
                completed.append(v)
            if outbox:
                outboxes.append((v, outbox))

        sent_count = 0
        delivered_count = 0
        new_pending: Dict[Vertex, Dict[Vertex, Any]] = {}
        records: Optional[List[MessageRecord]] = [] if self.sinks else None

        if self._reuse_inboxes:
            # Last round's inboxes were consumed by the steps above;
            # recycle the dicts so the steady state allocates nothing.
            for spent in self._pending.values():
                spent.clear()
                self._inbox_pool.append(spent)

        # An inert plan (nothing randomized, no bursts, nobody crashed,
        # nothing in flight) takes the exact reliable-network path below,
        # so attaching an empty FaultPlan costs essentially nothing.
        faults_active = runtime is not None and (
            runtime.has_message_faults or runtime.crashed or runtime.in_flight
        )

        if runtime is not None and runtime.in_flight:
            # Copies the fault layer kept in flight (delays, duplicates)
            # land first, so a fresher direct send can overwrite them.
            # Maturities are deliveries, not sends: they count toward
            # stats.messages_delivered but never messages_sent.
            for sender, receiver, payload, status in runtime.matured(round_no):
                if receiver in runtime.crashed:
                    status = "dropped"
                    runtime.dropped += 1
                else:
                    delivered_count += 1
                if records is not None:
                    records.append(MessageRecord(sender, receiver, payload, status))
                if status != "dropped" and not self.programs[receiver].done:
                    new_pending.setdefault(receiver, {})[sender] = payload

        for sender, outbox in outboxes:
            # broadcast() reuses one payload object for every receiver;
            # freeze it once per distinct object, not once per receiver
            # (the outbox keeps the originals alive, so id() keys are
            # stable for the duration of this loop).
            frozen_memo: Optional[Dict[int, Any]] = {} if self.sealed else None
            for receiver, message in outbox.items():
                if not self.graph.has_edge(sender, receiver):
                    raise ValueError(
                        f"node {sender!r} tried to message non-neighbor {receiver!r}"
                    )
                if frozen_memo is None:
                    payload = message
                else:
                    key = id(message)
                    if key not in frozen_memo:
                        frozen_memo[key] = freeze(message)
                    payload = frozen_memo[key]
                sent_count += 1
                if faults_active:
                    assert runtime is not None
                    if receiver in runtime.crashed:
                        runtime.dropped += 1
                        if records is not None:
                            records.append(
                                MessageRecord(sender, receiver, payload, "dropped")
                            )
                        continue
                    action, extra = self.faults.decide(round_no, sender, receiver)  # type: ignore[union-attr]
                    if action == "drop":
                        runtime.dropped += 1
                        if records is not None:
                            records.append(
                                MessageRecord(sender, receiver, payload, "dropped")
                            )
                        continue
                    if action == "delay":
                        runtime.delayed += 1
                        runtime.schedule(
                            round_no + extra, sender, receiver, payload, "late"
                        )
                        if records is not None:
                            records.append(
                                MessageRecord(sender, receiver, payload, "delayed")
                            )
                        continue
                    if action == "duplicate":
                        runtime.duplicated += 1
                        runtime.schedule(
                            round_no + 1, sender, receiver, payload, "duplicate"
                        )
                delivered_count += 1
                if records is not None:
                    records.append(MessageRecord(sender, receiver, payload))
                if not self.programs[receiver].done:
                    inbox = new_pending.get(receiver)
                    if inbox is None:
                        inbox = new_pending[receiver] = (
                            self._inbox_pool.pop() if self._inbox_pool else {}
                        )
                    inbox[sender] = payload

        if self.inbox_order is not None:
            new_pending = {
                receiver: self._permuted_inbox(receiver, round_no, inbox)
                for receiver, inbox in new_pending.items()
            }

        # Next round's active set: actual receivers plus explicit wakeups.
        next_active = set(new_pending)
        for v in scheduled:
            program = self.programs[v]
            if program._wake_requested:
                program._wake_requested = False
                if not program.done:
                    next_active.add(v)

        self._pending = new_pending
        self._active = next_active
        self.stats.record_round(sent_count, delivered_count)

        if self.sinks:
            assert records is not None
            records.sort(key=lambda m: (vertex_key(m.sender), vertex_key(m.receiver)))
            completed.sort(key=vertex_key)
            for sink in self.sinks:
                sink.on_round(round_no, records, completed, len(scheduled))

        # Between-round state events, in commit order: the checkpoint
        # snapshots the round as executed (durable storage writes the
        # committed state), then corruption strikes -- a transient fault
        # between rounds never pollutes the checkpoint of the round it
        # follows.
        if (
            self.checkpoint_every is not None
            and round_no % self.checkpoint_every == 0
        ):
            self._take_checkpoint(round_no)
        if runtime is not None and runtime.has_corruption:
            self._apply_corruptions(round_no)

    def _permuted_inbox(
        self, receiver: Vertex, round_no: int, inbox: Dict[Vertex, Any]
    ) -> Dict[Vertex, Any]:
        """The same inbox, rebuilt in a seed-determined insertion order."""
        senders = list(inbox)
        rng = random.Random(
            zlib.crc32(repr((self.inbox_order, round_no, receiver)).encode())
        )
        rng.shuffle(senders)
        return {sender: inbox[sender] for sender in senders}

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def add_sink(self, sink: TraceSink) -> TraceSink:
        """Attach a :class:`TraceSink`; returns it for chaining."""
        self.sinks.append(sink)
        return sink

    def fault_summary(self) -> Optional[Dict[str, int]]:
        """Injection counters of the attached fault plan (None without one)."""
        if self._fault_runtime is None:
            return None
        return self._fault_runtime.summary()

    def rollback(self, node: Optional[Vertex] = None) -> int:
        """Restore state from the last checkpoint, on demand.

        Restores ``node`` (or every node when ``None``) to its most
        recent snapshot and reschedules any node the restore made
        runnable again.  Returns the latest checkpoint round restored
        (-1 when only the construction-time snapshot exists).  Raises
        ``ValueError`` unless the network was built with
        ``checkpoint_every=N``.
        """
        if self.checkpoint_every is None:
            raise ValueError(
                "rollback() requires checkpointing; construct the network "
                "with checkpoint_every=N"
            )
        if node is not None and node not in self.programs:
            raise KeyError(f"unknown node {node!r}")
        targets = [node] if node is not None else list(self.programs)
        restored = -1
        for v in targets:
            round_taken, snapshot = self._checkpoints[v]
            self._restore_state(v, snapshot)
            restored = max(restored, round_taken)
            program = self.programs[v]
            if not program.done:
                self._active.add(v)
                if program.always_active:
                    self._always.add(v)
        return restored

    def crashed_nodes(self) -> List[Vertex]:
        """The currently crashed nodes, in natural vertex order."""
        if self._fault_runtime is None:
            return []
        return sorted(self._fault_runtime.crashed, key=vertex_key)

    def active_nodes(self) -> List[Vertex]:
        """The nodes the active-set scheduler would step next round."""
        return self._scheduled() if self.scheduler == "active" else [
            v for v, p in self.programs.items() if not p.done
        ]

    def outputs(self) -> Dict[Vertex, Any]:
        """Snapshot of ``{node: program.output}`` (``None`` while undecided)."""
        return {v: p.output for v, p in self.programs.items()}
