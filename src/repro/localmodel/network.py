"""Synchronous message-passing simulator for the LOCAL model.

The LOCAL model (Section 1): the input graph is the communication network;
every node hosts a computational entity knowing initially only its own ID
and its neighbors' IDs.  Computation proceeds in synchronous rounds; per
round each node performs unlimited local computation and then exchanges
messages of unbounded size with its neighbors.  The complexity measure is
the number of rounds.

:class:`SyncNetwork` drives :class:`NodeProgram` instances round by round,
collecting per-round message statistics.  The genuinely message-passing
algorithms of the library (Luby's MIS, Cole-Vishkin color reduction, ball
gathering) run on it directly; the large layered algorithms of the paper
use the ball-equivalence accounting of :mod:`repro.localmodel.rounds`
instead (see that module's docstring for why both exist).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Mapping, Optional, Set

from ..graphs.adjacency import Graph, Vertex
from .sealed import SealedContextError, SealedInbox, freeze

__all__ = [
    "NodeProgram",
    "NodeContext",
    "SealedNodeContext",
    "SyncNetwork",
    "RunStats",
]


@dataclass
class NodeContext:
    """What a node can see when it takes a step.

    ``inbox`` maps each neighbor to the message it sent in the previous
    round (absent if it sent nothing).  ``round_number`` is 0 for the first
    step, matching the convention that initialization happens "before round
    zero"'s communication.
    """

    node: Vertex
    neighbors: List[Vertex]
    round_number: int
    inbox: Mapping[Vertex, Any]


class SealedNodeContext(NodeContext):
    """A :class:`NodeContext` whose attributes cannot be reassigned.

    Used by sealed execution (``SyncNetwork(..., sealed=True)``): together
    with :class:`~repro.localmodel.sealed.SealedInbox` it turns the context
    into a read-only view, so any program mutating its context (lint rule
    L5) fails at the offending statement instead of silently corrupting
    the round's state.
    """

    def __init__(self, node, neighbors, round_number, inbox):
        super().__init__(node, neighbors, round_number, inbox)
        object.__setattr__(self, "_sealed", True)

    def __setattr__(self, name: str, value: Any) -> None:
        if getattr(self, "_sealed", False):
            raise SealedContextError(
                f"node {self.node!r} assigned to ctx.{name}; contexts are "
                "read-only under sealed execution"
            )
        super().__setattr__(name, value)


class NodeProgram:
    """Base class for per-node algorithms.

    Subclasses override :meth:`step`, returning the outbox: a mapping from
    neighbor to message (use :meth:`broadcast` to message every neighbor).
    A program signals completion by setting :attr:`done`; its result should
    be left in :attr:`output`.  Messages returned in the same step as
    ``done = True`` are still delivered, so a node can announce its final
    state as it stops.
    """

    def __init__(self, node: Vertex, neighbors: List[Vertex]):
        self.node = node
        self.neighbors = list(neighbors)
        self.done = False
        self.output: Any = None

    def step(self, ctx: NodeContext) -> Mapping[Vertex, Any]:
        raise NotImplementedError

    def broadcast(self, message: Any) -> Dict[Vertex, Any]:
        return {u: message for u in self.neighbors}


@dataclass
class RunStats:
    """Round and message accounting for a :class:`SyncNetwork` run."""

    rounds: int = 0
    messages_sent: int = 0
    max_messages_per_round: int = 0

    def record_round(self, messages: int) -> None:
        self.rounds += 1
        self.messages_sent += messages
        self.max_messages_per_round = max(self.max_messages_per_round, messages)


class SyncNetwork:
    """Runs one :class:`NodeProgram` per node of a graph, synchronously.

    With ``sealed=True`` every delivered message is deep-frozen and every
    context is read-only (see :mod:`repro.localmodel.sealed`): a program
    peeking beyond its neighborhood or mutating delivered state raises
    :class:`~repro.localmodel.sealed.SealedContextError` at the offending
    statement.  Sealing is behavior-preserving for conforming programs, so
    it is safe (just slightly slower) to leave on in tests.
    """

    def __init__(
        self,
        graph: Graph,
        program_factory: Callable[[Vertex, List[Vertex]], NodeProgram],
        sealed: bool = False,
    ):
        self.graph = graph
        self.sealed = sealed
        self.programs: Dict[Vertex, NodeProgram] = {
            v: program_factory(v, sorted(graph.neighbors(v))) for v in graph.vertices()
        }
        self.stats = RunStats()
        self._pending: Dict[Vertex, Dict[Vertex, Any]] = {v: {} for v in self.programs}

    def run(self, max_rounds: int = 10_000) -> Dict[Vertex, Any]:
        """Run until every program is done; returns the per-node outputs.

        Raises ``RuntimeError`` if the round budget is exhausted first --
        a deadlocked program is a bug that should fail loudly rather than
        spin forever.
        """
        for _round in range(max_rounds):
            if all(p.done for p in self.programs.values()):
                return self.outputs()
            self.step_round()
        raise RuntimeError(
            f"network did not terminate within {max_rounds} rounds; "
            f"{sum(1 for p in self.programs.values() if not p.done)} nodes still running"
        )

    def _make_context(self, v: Vertex, program: NodeProgram) -> NodeContext:
        # ctx.neighbors is always a fresh list: handing out the program's
        # own list would let a program corrupt its neighbor set by mutating
        # the context (an aliasing hazard lint rule L5 exists to prevent).
        if self.sealed:
            return SealedNodeContext(
                node=v,
                neighbors=list(program.neighbors),
                round_number=self.stats.rounds,
                inbox=SealedInbox(v, frozenset(program.neighbors), self._pending[v]),
            )
        return NodeContext(
            node=v,
            neighbors=list(program.neighbors),
            round_number=self.stats.rounds,
            inbox=self._pending[v],
        )

    def step_round(self) -> None:
        """Advance the whole network by one synchronous round."""
        outboxes: Dict[Vertex, Mapping[Vertex, Any]] = {}
        for v, program in self.programs.items():
            if program.done:
                continue
            outboxes[v] = program.step(self._make_context(v, program)) or {}
        message_count = 0
        new_pending: Dict[Vertex, Dict[Vertex, Any]] = {v: {} for v in self.programs}
        for sender, outbox in outboxes.items():
            for receiver, message in outbox.items():
                if not self.graph.has_edge(sender, receiver):
                    raise ValueError(
                        f"node {sender!r} tried to message non-neighbor {receiver!r}"
                    )
                new_pending[receiver][sender] = freeze(message) if self.sealed else message
                message_count += 1
        self._pending = new_pending
        self.stats.record_round(message_count)

    def outputs(self) -> Dict[Vertex, Any]:
        return {v: p.output for v, p in self.programs.items()}
