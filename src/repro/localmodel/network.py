"""Synchronous message-passing simulator for the LOCAL model.

The LOCAL model (Section 1): the input graph is the communication network;
every node hosts a computational entity knowing initially only its own ID
and its neighbors' IDs.  Computation proceeds in synchronous rounds; per
round each node performs unlimited local computation and then exchanges
messages of unbounded size with its neighbors.  The complexity measure is
the number of rounds.

:class:`SyncNetwork` drives :class:`NodeProgram` instances round by round,
collecting per-round message statistics.  The genuinely message-passing
algorithms of the library (Luby's MIS, Cole-Vishkin color reduction, ball
gathering) run on it directly; the large layered algorithms of the paper
use the ball-equivalence accounting of :mod:`repro.localmodel.rounds`
instead (see that module's docstring for why both exist).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Mapping, Optional, Set

from ..graphs.adjacency import Graph, Vertex

__all__ = ["NodeProgram", "NodeContext", "SyncNetwork", "RunStats"]


@dataclass
class NodeContext:
    """What a node can see when it takes a step.

    ``inbox`` maps each neighbor to the message it sent in the previous
    round (absent if it sent nothing).  ``round_number`` is 0 for the first
    step, matching the convention that initialization happens "before round
    zero"'s communication.
    """

    node: Vertex
    neighbors: List[Vertex]
    round_number: int
    inbox: Dict[Vertex, Any]


class NodeProgram:
    """Base class for per-node algorithms.

    Subclasses override :meth:`step`, returning the outbox: a mapping from
    neighbor to message (use :meth:`broadcast` to message every neighbor).
    A program signals completion by setting :attr:`done`; its result should
    be left in :attr:`output`.  Messages returned in the same step as
    ``done = True`` are still delivered, so a node can announce its final
    state as it stops.
    """

    def __init__(self, node: Vertex, neighbors: List[Vertex]):
        self.node = node
        self.neighbors = list(neighbors)
        self.done = False
        self.output: Any = None

    def step(self, ctx: NodeContext) -> Mapping[Vertex, Any]:
        raise NotImplementedError

    def broadcast(self, message: Any) -> Dict[Vertex, Any]:
        return {u: message for u in self.neighbors}


@dataclass
class RunStats:
    """Round and message accounting for a :class:`SyncNetwork` run."""

    rounds: int = 0
    messages_sent: int = 0
    max_messages_per_round: int = 0

    def record_round(self, messages: int) -> None:
        self.rounds += 1
        self.messages_sent += messages
        self.max_messages_per_round = max(self.max_messages_per_round, messages)


class SyncNetwork:
    """Runs one :class:`NodeProgram` per node of a graph, synchronously."""

    def __init__(
        self,
        graph: Graph,
        program_factory: Callable[[Vertex, List[Vertex]], NodeProgram],
    ):
        self.graph = graph
        self.programs: Dict[Vertex, NodeProgram] = {
            v: program_factory(v, sorted(graph.neighbors(v))) for v in graph.vertices()
        }
        self.stats = RunStats()
        self._pending: Dict[Vertex, Dict[Vertex, Any]] = {v: {} for v in self.programs}

    def run(self, max_rounds: int = 10_000) -> Dict[Vertex, Any]:
        """Run until every program is done; returns the per-node outputs.

        Raises ``RuntimeError`` if the round budget is exhausted first --
        a deadlocked program is a bug that should fail loudly rather than
        spin forever.
        """
        for _round in range(max_rounds):
            if all(p.done for p in self.programs.values()):
                return self.outputs()
            self.step_round()
        raise RuntimeError(
            f"network did not terminate within {max_rounds} rounds; "
            f"{sum(1 for p in self.programs.values() if not p.done)} nodes still running"
        )

    def step_round(self) -> None:
        """Advance the whole network by one synchronous round."""
        outboxes: Dict[Vertex, Mapping[Vertex, Any]] = {}
        for v, program in self.programs.items():
            if program.done:
                continue
            ctx = NodeContext(
                node=v,
                neighbors=program.neighbors,
                round_number=self.stats.rounds,
                inbox=self._pending[v],
            )
            outboxes[v] = program.step(ctx) or {}
        message_count = 0
        new_pending: Dict[Vertex, Dict[Vertex, Any]] = {v: {} for v in self.programs}
        for sender, outbox in outboxes.items():
            for receiver, message in outbox.items():
                if not self.graph.has_edge(sender, receiver):
                    raise ValueError(
                        f"node {sender!r} tried to message non-neighbor {receiver!r}"
                    )
                new_pending[receiver][sender] = message
                message_count += 1
        self._pending = new_pending
        self.stats.record_round(message_count)

    def outputs(self) -> Dict[Vertex, Any]:
        return {v: p.output for v, p in self.programs.items()}
