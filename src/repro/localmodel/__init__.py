"""LOCAL-model simulation: message passing, ball gathering, round accounting.

* :mod:`repro.localmodel.network` -- synchronous message-passing engine
  (:class:`SyncNetwork`) driving per-node :class:`NodeProgram` instances,
  with active-set scheduling and pluggable :class:`TraceSink` observers.
* :mod:`repro.localmodel.trace` -- the stock sinks (recording, metrics,
  JSONL export) and the :class:`TracedNetwork` convenience wrapper.
* :mod:`repro.localmodel.gather` -- ball gathering, the executable
  witness of the "r rounds = radius-r knowledge" equivalence: an
  output-sensitive delta-flooding program (the default) plus the
  full-flood reference it is equivalence-tested against.
* :mod:`repro.localmodel.rounds` -- ledgers and per-node clocks used by the
  layered algorithms to account rounds under that equivalence.
* :mod:`repro.localmodel.colorreduction` -- Linial/Cole-Vishkin O(log* n)
  3-coloring of paths, both lock-step and message-passing.
* :mod:`repro.localmodel.rulingset` -- distance-k selections on paths and
  ordered structures, with the round-cost model for the paper's black-box
  subroutines.
* :mod:`repro.localmodel.sealed` -- sealed execution contexts: runtime
  enforcement of the LOCAL contract (the dynamic counterpart of the
  :mod:`repro.lint` static rules), enabled with ``SyncNetwork(...,
  sealed=True)``.
* :mod:`repro.localmodel.meter` -- :class:`MessageMeter`, a trace sink
  measuring serialized payload sizes per round (the dynamic counterpart
  of the static bandwidth certificates, lint rules L7/L8).
* :mod:`repro.localmodel.shadow` -- shadow-execution determinism checker:
  re-runs a program with permuted inbox iteration order and diffs
  transcripts and outputs (the dynamic counterpart of lint rule L9).
* :mod:`repro.localmodel.faults` -- deterministic fault injection:
  seeded :class:`FaultPlan`\\ s (drop / duplicate / delay / burst /
  crash) consulted by ``SyncNetwork(..., faults=...)`` at delivery time,
  plus transient state corruption (:class:`CorruptSpec`) applied
  strictly between rounds.
* :mod:`repro.localmodel.resilience` -- the robustness harness: validity
  monitors (now with the stabilization profile: corruption round,
  detection latency, recovery rounds), the :class:`ReliableProgram`
  retry/ack wrapper, and the :func:`resilience_check` sweep classifying
  programs as self-healing / degraded-but-valid / unsafe (the ``repro
  faults`` CLI).
* :mod:`repro.localmodel.stabilize` -- self-stabilizing repair: the
  :class:`RepairableProgram` envelope verifies committed outputs against
  the cached 1-ball and re-enters a bounded repair protocol after state
  corruption (priority recoloring, MIS re-election); see
  docs/stabilize.md.
* :mod:`repro.localmodel.chaos` -- the chaos-soak harness: seeded
  randomized fault plans fuzzed over the stock suite, failing plans
  delta-debugged to minimal deterministic repro specs (``repro chaos``).
"""

from .colorreduction import (
    LINIAL_FIXPOINT,
    LinialPathKernel,
    LinialPathProgram,
    linial_new_color,
    linial_parameters,
    three_color_path,
)
from .executor import (
    EXECUTORS,
    BatchExecutor,
    BatchKernel,
    KernelIneligible,
)
from .chaos import (
    ChaosReport,
    ChaosTrial,
    chaos_soak,
    minimize_plan,
    random_fault_plan,
)
from .faults import (
    CORRUPT_KINDS,
    MESSAGE_STATUSES,
    CorruptSpec,
    CrashSpec,
    FaultPlan,
    FaultPlanError,
    FaultRuntime,
    corrupt_program,
)
from .gather import (
    BallGatherProgram,
    DeltaGatherKernel,
    DeltaGatherProgram,
    KnownBall,
    gather_balls,
)
from .network import (
    DELIVERY_STATUSES,
    RECOVERY_MODES,
    SCHEDULERS,
    WIRE_STATUSES,
    MessageRecord,
    NodeContext,
    NodeProgram,
    RunStats,
    SealedNodeContext,
    SyncNetwork,
    TraceSink,
    vertex_key,
)
from .programs import (
    BFSLayerKernel,
    BFSLayerProgram,
    EchoCountProgram,
    LeaderElectionProgram,
    bfs_layers,
    elect_leader,
    tree_count,
)
from .meter import MessageMeter, payload_bytes, payload_words
from .rounds import NodeClocks, RoundLedger
from .resilience import (
    CLASSIFICATIONS,
    DEFAULT_FAULT_GRID,
    FaultOutcome,
    ReliableProgram,
    ResilienceReport,
    ValidityMonitor,
    corruption_grid,
    fault_grid,
    independent_set_validator,
    maximal_independent_set_validator,
    proper_coloring_validator,
    resilience_check,
    stock_validator,
    with_retries,
)
from .stabilize import (
    ColoringRepair,
    MISRepair,
    RepairPolicy,
    RepairableProgram,
    StabilizationReport,
    repairable,
    stabilization_run,
)
from .shadow import Divergence, ShadowReport, canonical_transcript, shadow_check
from .trace import (
    JSONLTraceSink,
    MetricsSink,
    RecordingSink,
    RoundTrace,
    TracedNetwork,
)
from .sealed import FrozenMessageDict, SealedContextError, SealedInbox, freeze
from .rulingset import (
    charged_rounds_distance_k,
    greedy_distance_k_selection,
    log_star,
    path_spaced_selection,
)

__all__ = [
    "LINIAL_FIXPOINT",
    "LinialPathKernel",
    "LinialPathProgram",
    "linial_new_color",
    "linial_parameters",
    "three_color_path",
    "EXECUTORS",
    "BatchExecutor",
    "BatchKernel",
    "KernelIneligible",
    "CORRUPT_KINDS",
    "MESSAGE_STATUSES",
    "ChaosReport",
    "ChaosTrial",
    "CorruptSpec",
    "CrashSpec",
    "FaultPlan",
    "FaultPlanError",
    "FaultRuntime",
    "chaos_soak",
    "corrupt_program",
    "minimize_plan",
    "random_fault_plan",
    "BallGatherProgram",
    "DeltaGatherKernel",
    "DeltaGatherProgram",
    "KnownBall",
    "gather_balls",
    "DELIVERY_STATUSES",
    "RECOVERY_MODES",
    "SCHEDULERS",
    "WIRE_STATUSES",
    "MessageRecord",
    "NodeContext",
    "NodeProgram",
    "RunStats",
    "SealedNodeContext",
    "SyncNetwork",
    "TraceSink",
    "vertex_key",
    "BFSLayerKernel",
    "BFSLayerProgram",
    "EchoCountProgram",
    "LeaderElectionProgram",
    "bfs_layers",
    "elect_leader",
    "tree_count",
    "MessageMeter",
    "payload_bytes",
    "payload_words",
    "NodeClocks",
    "RoundLedger",
    "CLASSIFICATIONS",
    "DEFAULT_FAULT_GRID",
    "FaultOutcome",
    "ReliableProgram",
    "ResilienceReport",
    "ValidityMonitor",
    "corruption_grid",
    "fault_grid",
    "independent_set_validator",
    "maximal_independent_set_validator",
    "proper_coloring_validator",
    "resilience_check",
    "stock_validator",
    "with_retries",
    "ColoringRepair",
    "MISRepair",
    "RepairPolicy",
    "RepairableProgram",
    "StabilizationReport",
    "repairable",
    "stabilization_run",
    "Divergence",
    "ShadowReport",
    "canonical_transcript",
    "shadow_check",
    "JSONLTraceSink",
    "MetricsSink",
    "RecordingSink",
    "RoundTrace",
    "TracedNetwork",
    "FrozenMessageDict",
    "SealedContextError",
    "SealedInbox",
    "freeze",
    "charged_rounds_distance_k",
    "greedy_distance_k_selection",
    "log_star",
    "path_spaced_selection",
]
