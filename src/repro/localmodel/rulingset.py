"""Distance-k selections ("ruling sets") on linearly ordered structures.

Two tools live here:

:func:`path_spaced_selection`
    A fully local algorithm for *path graphs*: selects vertices pairwise at
    distance >= k with consecutive selected vertices O(k) apart and the
    first/last selected O(k) from the path ends, in O(k log* n) rounds.
    It three-colors the path with Linial reduction, extracts an MIS, and
    then doubles the spacing level by level.  The key trick making each
    level conflict-free: after 3-coloring the *virtual path* of currently
    selected vertices, two same-color members are at least two virtual hops
    apart, hence at path distance >= twice the current spacing -- already
    meeting the next level's target -- so a color-class pass never selects
    two conflicting members simultaneously.

:func:`greedy_distance_k_selection`
    The canonical sequential greedy over an explicit linear order (umbrella
    orders of proper interval graphs, clique paths).  This is the output
    the paper's black-box subroutine MISUnitInterval [31] computes on
    G^{k-1}; re-deriving Schneider-Wattenhofer's growth-bounded-graph MIS
    is out of scope (see DESIGN.md), so callers charge its documented round
    cost O(k log* n) via :func:`charged_rounds_distance_k`.

Both tools are lock-step simulations: round counts here are *charged*
analytically rather than executed on :class:`SyncNetwork`, so they are
unaffected by (and independent of) the network's scheduler choice.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..graphs.adjacency import Graph, Vertex
from .colorreduction import three_color_path

__all__ = [
    "log_star",
    "path_spaced_selection",
    "greedy_distance_k_selection",
    "charged_rounds_distance_k",
]


def log_star(n: float) -> int:
    """Iterated logarithm (base 2); log*(n) = 0 for n <= 1."""
    count = 0
    while n > 1:
        n = math.log2(n)
        count += 1
    return count


def path_spaced_selection(ids: Sequence[int], k: int) -> Tuple[List[int], int]:
    """Distance->=k selection on a path graph; returns (selected ids, rounds).

    ``ids`` lists the path's vertices end to end (path distance between
    positions i and j is |i - j|).  Guarantees, for k >= 1:

    * selected vertices pairwise at path distance >= k,
    * consecutive selected vertices at distance <= 4k,
    * first (last) selected vertex within 4k of the path's start (end),
    * at least one vertex selected on a nonempty path.

    Round count: one Linial 3-coloring of the full path, then one
    3-coloring plus three sweep passes per doubling level, each charged at
    the current virtual-hop cost.
    """
    n = len(ids)
    if k < 1:
        raise ValueError("spacing k must be >= 1")
    if n == 0:
        return [], 0
    positions = {v: i for i, v in enumerate(ids)}

    colors, rounds = three_color_path(ids)
    # Base level: ordinary MIS of the path from the 3-coloring (3 passes of
    # one round each).  Same-color vertices are non-adjacent, so passes are
    # conflict-free; gaps between consecutive members end up in [2, 4].
    selected = _class_greedy(ids, positions, list(ids), colors, target=2)
    rounds += 3
    spacing = 2

    while spacing < k:
        target = min(2 * spacing, k)
        # 3-color the virtual path of selected members.  A virtual hop
        # spans <= 2*spacing + base-gap path distance; messages between
        # virtual neighbors cost that many real rounds.
        hop = 2 * target
        vcolors, vrounds = three_color_path(selected)
        rounds += vrounds * hop
        selected = _class_greedy(ids, positions, selected, vcolors, target)
        rounds += 3 * hop
        spacing = target
    return selected, rounds


def _class_greedy(
    ids: Sequence[int],
    positions: Dict[int, int],
    members: List[int],
    colors: Dict[int, int],
    target: int,
) -> List[int]:
    """Three conflict-free color-class passes at the given spacing target."""
    chosen: List[int] = []
    chosen_pos: List[int] = []
    for cls in (1, 2, 3):
        for v in members:
            if colors[v] != cls:
                continue
            p = positions[v]
            if all(abs(p - q) >= target for q in chosen_pos):
                chosen.append(v)
                chosen_pos.append(p)
    chosen.sort(key=lambda v: positions[v])
    return chosen


def greedy_distance_k_selection(
    graph: Graph, order: Sequence[Vertex], k: int
) -> List[Vertex]:
    """Left-to-right greedy maximal distance-k independent set.

    Scans ``order`` (an umbrella order / clique-path order) and takes every
    vertex at graph distance >= k from all previously taken.  The result is
    a maximal distance-k independent set of the induced graph on ``order``
    whenever ``order`` covers a whole component.
    """
    if k < 1:
        raise ValueError("spacing k must be >= 1")
    chosen: List[Vertex] = []
    for v in order:
        ball = graph.bfs_distances(v, cutoff=k - 1)
        if not any(u in ball for u in chosen):
            chosen.append(v)
    return chosen


def charged_rounds_distance_k(n: int, k: int) -> int:
    """Round cost charged for one distance-k MIS black-box invocation.

    The paper simulates MISUnitInterval [31] on the k-th power of a unit
    interval graph in O(k log* n) rounds; the constant below mirrors the
    explicit path implementation (:func:`path_spaced_selection`): one
    3-coloring plus three sweeps per doubling level.
    """
    if n <= 1:
        return 0
    levels = max(1, math.ceil(math.log2(max(2, k))))
    per_level = log_star(n) + 3
    return max(1, k) * per_level + levels
