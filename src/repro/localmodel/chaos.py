"""Chaos-soak harness: fuzz randomized fault plans, minimize failures.

The resilience sweep (:func:`~repro.localmodel.resilience
.resilience_check`) classifies programs against a small hand-picked
grid.  This module goes the other way: :func:`chaos_soak` throws *N*
seeded randomized :class:`~repro.localmodel.faults.FaultPlan`\\ s --
channel faults and state corruption mixed -- at a program suite and
records every run whose final outputs violate the safety invariant or
that dies outright.  Each trial is a pure function of ``(seed, trial
index)``, so the whole soak replays bit-for-bit.

When a trial fails, :func:`minimize_plan` delta-debugs the plan: it
greedily removes whole fault atoms (each burst window, each crash, each
corruption, each Bernoulli channel probability) while the failure
persists, then halves the surviving probabilities, and finally verifies
that the minimized plan still fails.  The result prints as the
:meth:`~repro.localmodel.faults.FaultPlan.spec` grammar string, so every
chaos finding is a one-line deterministic repro for ``repro faults``.

``repro chaos`` drives this over the stock-program suite; the S1
experiment and ``benchmarks/bench_chaos.py`` pin the soak's aggregate
behaviour.
"""

from __future__ import annotations

import dataclasses
import random
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..graphs.adjacency import Graph, Vertex
from .faults import CORRUPT_KINDS, CorruptSpec, CrashSpec, FaultPlan
from .network import NodeProgram, SyncNetwork, vertex_key
from .resilience import Validator

__all__ = [
    "ChaosTrial",
    "ChaosReport",
    "random_fault_plan",
    "minimize_plan",
    "chaos_soak",
]

#: suite entry: (program name, graph, program factory, safety validator)
SuiteEntry = Tuple[
    str, Graph, Callable[[Vertex, List[Vertex]], NodeProgram], Validator
]


def _rng(seed: int, *salt: Any) -> random.Random:
    """A deterministic stream keyed on ``(seed, *salt)`` (crc32, like faults)."""
    return random.Random(zlib.crc32(repr((seed,) + salt).encode("utf8")))


def random_fault_plan(
    seed: int,
    nodes: Sequence[Vertex],
    max_round: int = 12,
    kinds: Sequence[str] = CORRUPT_KINDS,
) -> FaultPlan:
    """One seeded randomized fault plan mixing channel faults and corruption.

    Draws drop/duplicate/delay probabilities (biased toward 0 so many
    trials stress a single fault class), at most one burst window, at
    most one crash (always with a recovery round -- crash-stop trivially
    fails every completion check and would drown the interesting
    findings), and up to two corruption events over ``nodes`` within
    ``max_round``.  A draw where everything came up empty is re-armed
    with one corruption, so no trial is a silent no-op.
    """
    if not nodes:
        raise ValueError("random_fault_plan needs a non-empty node sequence")
    if max_round < 1:
        raise ValueError(f"max_round must be >= 1, got {max_round}")
    rng = _rng(seed, "chaos-plan")
    ordered = sorted(nodes, key=vertex_key)
    drop = rng.choice((0.0, 0.0, 0.0, 0.05, 0.15, 0.3))
    duplicate = rng.choice((0.0, 0.0, 0.0, 0.1))
    delay = rng.choice((0.0, 0.0, 0.0, 0.1))
    max_delay = rng.randint(1, 3)
    bursts: Tuple[Tuple[int, int], ...] = ()
    if rng.random() < 0.25:
        start = rng.randrange(max_round)
        bursts = ((start, start + rng.randint(0, 2)),)
    crashes: Tuple[CrashSpec, ...] = ()
    if rng.random() < 0.4:
        crash_round = rng.randrange(max_round)
        crashes = (
            CrashSpec(
                node=rng.choice(ordered),
                crash_round=crash_round,
                recover_round=crash_round + rng.randint(1, 4),
            ),
        )
    corrupt_count = rng.choice((0, 1, 1, 2))
    corrupts: List[CorruptSpec] = []
    victims = list(ordered)
    for _ in range(min(corrupt_count, len(victims))):
        victim = victims.pop(rng.randrange(len(victims)))
        corrupts.append(
            CorruptSpec(victim, rng.randrange(max_round), rng.choice(tuple(kinds)))
        )
    plan = FaultPlan(
        seed=seed,
        drop=drop,
        duplicate=duplicate,
        delay=delay,
        max_delay=max_delay,
        bursts=bursts,
        crashes=crashes,
        corrupts=tuple(corrupts),
    )
    if plan.is_empty():
        plan = dataclasses.replace(
            plan,
            corrupts=(
                CorruptSpec(
                    rng.choice(ordered),
                    rng.randrange(max_round),
                    rng.choice(tuple(kinds)),
                ),
            ),
        )
    return plan


@dataclass(frozen=True)
class ChaosTrial:
    """One fuzz trial: the plan thrown, what broke, and the minimal repro.

    ``kind`` is ``None`` for a passing trial, else ``invalid`` (final
    outputs violate the safety invariant), ``stalled`` (starvation or
    round-budget exhaustion -- loud, but still a finding worth a repro),
    or ``error`` (an unexpected exception escaped the simulator).
    ``minimized`` holds the delta-debugged plan spec and ``reproduces``
    whether replaying it still fails -- the acceptance gate for every
    chaos finding.
    """

    program: str
    trial: int
    plan: str
    failed: bool
    kind: Optional[str] = None
    problems: Tuple[str, ...] = ()
    error: Optional[str] = None
    rounds: int = 0
    minimized: Optional[str] = None
    reproduces: Optional[bool] = None

    def as_dict(self) -> Dict[str, Any]:
        """The trial as a JSON-plain dict."""
        return {
            "program": self.program,
            "trial": self.trial,
            "plan": self.plan,
            "failed": self.failed,
            "kind": self.kind,
            "problems": list(self.problems),
            "error": self.error,
            "rounds": self.rounds,
            "minimized": self.minimized,
            "reproduces": self.reproduces,
        }


@dataclass
class ChaosReport:
    """Outcome of one :func:`chaos_soak`: every trial plus aggregates."""

    seed: int
    trials: List[ChaosTrial] = field(default_factory=list)
    #: which executor path the suite's networks would take, per program,
    #: with the fall-back explanation (the BatchExecutor diagnostic)
    executors: Dict[str, Dict[str, Optional[str]]] = field(default_factory=dict)

    def failures(self) -> List[ChaosTrial]:
        """The failing trials, in trial order."""
        return [t for t in self.trials if t.failed]

    def summary(self) -> Dict[str, Any]:
        """Aggregate counts: trials, failures by kind, repro coverage."""
        failures = self.failures()
        by_kind: Dict[str, int] = {}
        by_program: Dict[str, int] = {}
        for t in failures:
            by_kind[t.kind or "?"] = by_kind.get(t.kind or "?", 0) + 1
            by_program[t.program] = by_program.get(t.program, 0) + 1
        return {
            "seed": self.seed,
            "trials": len(self.trials),
            "failures": len(failures),
            "by_kind": by_kind,
            "by_program": by_program,
            "minimized": sum(1 for t in failures if t.minimized is not None),
            "reproduced": sum(1 for t in failures if t.reproduces),
        }


def _evaluate(
    graph: Graph,
    factory: Callable[[Vertex, List[Vertex]], NodeProgram],
    validator: Validator,
    plan: FaultPlan,
    max_rounds: int,
) -> Tuple[Optional[str], Tuple[str, ...], Optional[str], int]:
    """Run one plan: (failure kind or None, problems, error, rounds)."""
    net = SyncNetwork(graph, factory, faults=plan)
    error: Optional[str] = None
    kind: Optional[str] = None
    try:
        net.run(max_rounds=max_rounds)
    except RuntimeError as exc:
        kind, error = "stalled", str(exc).splitlines()[0]
    except Exception as exc:  # noqa: BLE001 - a fuzz harness records, never hides
        kind, error = "error", f"{type(exc).__name__}: {exc}"
    final = {v: p.output for v, p in net.programs.items()}
    problems = tuple(validator(graph, final))
    if problems:
        kind = "invalid"  # silently-wrong trumps loud failures
    return kind, problems, error, net.stats.rounds


def minimize_plan(
    plan: FaultPlan, fails: Callable[[FaultPlan], bool]
) -> FaultPlan:
    """Delta-debug ``plan`` to a minimal spec for which ``fails`` holds.

    Greedy atom removal to a fixpoint -- each burst window, each crash,
    each corruption, and each whole channel probability (drop, duplicate,
    delay) is a removable atom -- followed by binary probability halving
    on whatever channel noise survives.  ``fails(plan)`` must be True on
    entry (the caller observed the failure); the returned plan is
    guaranteed to still satisfy ``fails`` because every accepted
    reduction re-ran it.
    """

    def without_atom(p: FaultPlan, atom: Tuple[str, int]) -> FaultPlan:
        name, index = atom
        if name == "burst":
            seq = p.bursts[:index] + p.bursts[index + 1:]
            return dataclasses.replace(p, bursts=seq)
        if name == "crash":
            seq_c = p.crashes[:index] + p.crashes[index + 1:]
            return dataclasses.replace(p, crashes=seq_c)
        if name == "corrupt":
            seq_k = p.corrupts[:index] + p.corrupts[index + 1:]
            return dataclasses.replace(p, corrupts=seq_k)
        return dataclasses.replace(p, **{name: 0.0})

    def atoms(p: FaultPlan) -> List[Tuple[str, int]]:
        found: List[Tuple[str, int]] = []
        for name in ("drop", "duplicate", "delay"):
            if getattr(p, name) > 0.0:
                found.append((name, 0))
        found.extend(("burst", i) for i in range(len(p.bursts)))
        found.extend(("crash", i) for i in range(len(p.crashes)))
        found.extend(("corrupt", i) for i in range(len(p.corrupts)))
        return found

    current = plan
    shrunk = True
    while shrunk:
        shrunk = False
        for atom in atoms(current):
            candidate = without_atom(current, atom)
            if not candidate.is_empty() and fails(candidate):
                current = candidate
                shrunk = True
                break  # atom indices shifted; re-enumerate

    for name in ("drop", "duplicate", "delay"):
        for _ in range(6):
            value = getattr(current, name)
            if value <= 0.01:
                break
            candidate = dataclasses.replace(current, **{name: round(value / 2, 5)})
            if fails(candidate):
                current = candidate
            else:
                break
    return current


def chaos_soak(
    suite: Sequence[SuiteEntry],
    trials: int,
    seed: int = 0,
    max_rounds: int = 4_000,
    minimize: bool = True,
    horizon_slack: int = 4,
) -> ChaosReport:
    """Throw ``trials`` seeded randomized fault plans at ``suite``.

    Trial *t* targets ``suite[t % len(suite)]`` with the plan
    ``random_fault_plan(seed * 1_000_003 + t, ...)`` whose event horizon
    is the program's fault-free round count plus ``horizon_slack`` (so
    corruption can strike a quiesced network, the hardest case).  Every
    failing trial is delta-debugged into a minimal deterministic repro
    when ``minimize`` is set, and the minimized plan is re-run to prove
    it still reproduces.  The report also records, per program, which
    executor path a :class:`~repro.localmodel.executor.BatchExecutor`
    would take for the trial networks and why it fell back.
    """
    if not suite:
        raise ValueError("chaos_soak needs a non-empty suite")
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    from .executor import BatchExecutor

    report = ChaosReport(seed=seed)
    horizons: Dict[str, int] = {}
    for name, graph, factory, _validator in suite:
        base = SyncNetwork(graph, factory)
        base.run(max_rounds=max_rounds)
        horizons[name] = base.stats.rounds + horizon_slack
        probe = BatchExecutor(
            graph, factory, mode="auto", faults=random_fault_plan(seed, list(graph.vertices()))
        )
        path, blockers = probe.plan()
        report.executors[name] = {
            "executed": path,
            "fallback_reason": "; ".join(blockers) or None,
        }

    for t in range(trials):
        name, graph, factory, validator = suite[t % len(suite)]
        plan = random_fault_plan(
            seed * 1_000_003 + t,
            list(graph.vertices()),
            max_round=horizons[name],
        )
        kind, problems, error, rounds = _evaluate(
            graph, factory, validator, plan, max_rounds
        )
        minimized: Optional[str] = None
        reproduces: Optional[bool] = None
        if kind is not None and minimize:
            small = minimize_plan(
                plan,
                lambda p: _evaluate(graph, factory, validator, p, max_rounds)[0]
                is not None,
            )
            minimized = small.spec()
            reproduces = (
                _evaluate(graph, factory, validator, small, max_rounds)[0]
                is not None
            )
        report.trials.append(
            ChaosTrial(
                program=name,
                trial=t,
                plan=plan.spec(),
                failed=kind is not None,
                kind=kind,
                problems=problems,
                error=error,
                rounds=rounds,
                minimized=minimized,
                reproduces=reproduces,
            )
        )
    return report
