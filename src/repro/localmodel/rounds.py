"""Round accounting for ball-equivalence simulations.

Message-level simulation of the paper's layered algorithms would flood
radius-Theta(k) balls from every node in every peeling iteration -- faithful
but quadratically wasteful.  The standard LOCAL-model equivalence (r rounds
of unbounded messages = knowledge of the radius-r ball, demonstrated
executably by :mod:`repro.localmodel.gather` and its tests) lets the
algorithm implementations instead *charge* rounds to a ledger whenever they
consume non-local information:

* ``charge(label, rounds)`` for a lock-step phase all nodes perform
  together (e.g. one peeling iteration's ball collection);
* per-node *completion clocks* for the asynchronous phases of Algorithm 2,
  where layers finish pruning at different times and the color correction
  waits on parents (Lemma 12's induction is exactly a recurrence over these
  clocks; :class:`NodeClocks` evaluates it).

The reported totals are what the paper's analysis counts: the number of
synchronous communication rounds until the last node terminates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

__all__ = ["RoundLedger", "NodeClocks"]


@dataclass
class RoundLedger:
    """Labeled, ordered round charges for lock-step phases."""

    charges: List[Tuple[str, int]] = field(default_factory=list)

    def charge(self, label: str, rounds: int) -> None:
        """Append a labeled, non-negative round charge."""
        if rounds < 0:
            raise ValueError("cannot charge negative rounds")
        self.charges.append((label, rounds))

    def total(self) -> int:
        """Sum of all charges."""
        return sum(r for _, r in self.charges)

    def by_label(self) -> Dict[str, int]:
        """Charges aggregated per label, insertion-ordered."""
        out: Dict[str, int] = {}
        for label, rounds in self.charges:
            out[label] = out.get(label, 0) + rounds
        return out

    def merge(self, other: "RoundLedger", prefix: str = "") -> None:
        """Append another ledger's charges, labels prefixed by ``prefix``."""
        for label, rounds in other.charges:
            self.charge(prefix + label, rounds)


class NodeClocks:
    """Per-node completion times for asynchronous phases.

    ``set_at(v, t)`` records that node v completed some milestone at round
    t; ``ready(vs)`` is the earliest round by which all of ``vs`` have
    completed (the "wait until ..." steps of Algorithms 2 and 4).
    """

    def __init__(self) -> None:
        """Start with no recorded completion times."""
        self._time: Dict[Hashable, int] = {}

    def set_at(self, node: Hashable, time: int) -> None:
        """Record that ``node`` completed at round ``time`` (monotone)."""
        if time < 0:
            raise ValueError("round clocks start at 0")
        current = self._time.get(node)
        if current is not None and time < current:
            raise ValueError(
                f"clock for {node!r} moved backwards ({current} -> {time})"
            )
        self._time[node] = time

    def __contains__(self, node: Hashable) -> bool:
        return node in self._time

    def at(self, node: Hashable) -> int:
        """The recorded completion round of ``node`` (KeyError if unset)."""
        return self._time[node]

    def ready(self, nodes: Iterable[Hashable]) -> int:
        """Earliest round by which every node in ``nodes`` has completed."""
        times = [self._time[v] for v in nodes]
        return max(times, default=0)

    def makespan(self) -> int:
        """Round at which the last node completed (0 when empty)."""
        return max(self._time.values(), default=0)

    def as_dict(self) -> Dict[Hashable, int]:
        """A copy of the node -> completion-round mapping."""
        return dict(self._time)
