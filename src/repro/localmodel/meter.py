"""Dynamic payload-size measurement: the runtime half of the bandwidth pass.

:mod:`repro.lint.bandwidth` classifies each node program's per-round
message size *statically* (``const`` / ``ball`` / ``unbounded``).  The
:class:`MessageMeter` below is the matching instrument: a
:class:`~repro.localmodel.network.TraceSink` that measures what actually
goes on the wire, in two units --

* **words**: the number of scalar leaves in the payload's JSON-able
  structure (one per number/string/bool/None; containers contribute the
  sum of their leaves, an empty container counts one).  This is the unit
  of the CONGEST model's O(log n)-bits-per-word accounting, and the unit
  the static certificate speaks;
* **bytes**: the length of the canonical JSON serialization, for
  eyeballing absolute sizes.

Unboundedness is not observable in a finite run, so the dynamic check is
a *growth* check across input sizes: a program certified ``const`` must
measure a flat ``max_payload_words`` as ``n`` grows, while a ``ball`` or
``unbounded`` program may grow.  The C1 experiment and the bandwidth
test suite assert exactly that one-sided inequality
(``static class >= observed growth class``).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from .network import WIRE_STATUSES, MessageRecord, TraceSink, Vertex
from .trace import jsonable_payload

__all__ = ["MessageMeter", "payload_words", "payload_bytes"]


def payload_words(payload: Any) -> int:
    """Number of machine words the payload occupies on the wire.

    Counted over the JSON-able rendering (so sets/tuples/frozen dicts
    measure like their serialized form): every scalar leaf is one word,
    a dict entry charges both key and value, an empty container still
    charges one word (its length field is information too).
    """
    return _words(jsonable_payload(payload))


def _words(data: Any) -> int:
    if isinstance(data, dict):
        return max(1, sum(_words(k) + _words(v) for k, v in data.items()))
    if isinstance(data, list):
        return max(1, sum(_words(v) for v in data))
    return 1


def payload_bytes(payload: Any) -> int:
    """Length of the canonical JSON serialization of the payload."""
    return len(json.dumps(jsonable_payload(payload), sort_keys=True))


class MessageMeter(TraceSink):
    """Measures serialized payload sizes per round.

    Attach via ``SyncNetwork(..., sinks=[meter])``; after the run,
    :meth:`summary` reports the figures the bandwidth tests compare
    against the static certificate.  ``per_round`` keeps the round
    series (max words per round) so ball-gathering programs can be
    checked for the expected rise-then-stop shape.

    The meter charges per **wire transmission**, following the counting
    contract of :data:`~repro.localmodel.network.WIRE_STATUSES`: dropped
    and delayed payloads crossed the wire and are charged in the round
    they were sent, but a matured ``"late"`` record is the delivery of
    an already-charged ``"delayed"`` transmission and is not charged
    again (the ``messages`` figure in :attr:`per_round` counts charged
    records the same way).
    """

    def __init__(self) -> None:
        """Start with an empty per-round series and zeroed maxima."""
        self.per_round: List[Dict[str, int]] = []
        self.max_payload_words = 0
        self.max_payload_bytes = 0
        self.total_payload_words = 0

    def on_round(
        self,
        round_no: int,
        messages: List[MessageRecord],
        completed: List[Vertex],
        active_count: int,
    ) -> None:
        """Accumulate payload words/bytes over this round's transmissions."""
        round_max_words = 0
        round_words = 0
        round_max_bytes = 0
        charged = 0
        for record in messages:
            if record.status not in WIRE_STATUSES:
                continue  # "late": the matching "delayed" was already charged
            charged += 1
            words = payload_words(record.payload)
            round_words += words
            if words > round_max_words:
                round_max_words = words
            size = payload_bytes(record.payload)
            if size > round_max_bytes:
                round_max_bytes = size
        self.per_round.append(
            {
                "round": round_no,
                "messages": charged,
                "max_words": round_max_words,
                "total_words": round_words,
                "max_bytes": round_max_bytes,
            }
        )
        self.total_payload_words += round_words
        if round_max_words > self.max_payload_words:
            self.max_payload_words = round_max_words
        if round_max_bytes > self.max_payload_bytes:
            self.max_payload_bytes = round_max_bytes

    def summary(self) -> Dict[str, Any]:
        """Headline figures: rounds, max/total payload words, max bytes."""
        return {
            "rounds": len(self.per_round),
            "max_payload_words": self.max_payload_words,
            "max_payload_bytes": self.max_payload_bytes,
            "total_payload_words": self.total_payload_words,
        }
