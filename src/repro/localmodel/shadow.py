"""Shadow execution: the dynamic half of the schedule-dependence check.

Lint rule L9 statically flags expressions that *extract* iteration order
from sets, dict views, or the inbox (``next(iter(...))``,
``list(ctx.inbox.values())``, ``set.pop()``).  The static finding is
one-sided: the consumer may well be order-insensitive (Linial color
reduction reads its neighbors' colors as a list but treats it as a set),
so every L9 deserves a dynamic cross-check.

:func:`shadow_check` is that cross-check.  It runs the same program on
the same graph several times: once as the baseline, then once per shadow
seed with :class:`~repro.localmodel.network.SyncNetwork`'s
``inbox_order`` knob set -- which rebuilds every delivered inbox in a
seed-determined key order, the one degree of freedom the LOCAL model
never promises.  A conforming (deterministic) program must produce an
identical canonical transcript and identical outputs under every
permutation; any divergence is reported with the first round and message
where the runs split.

Canonicalization (:func:`canonical_transcript`) deliberately mirrors the
model's semantics: messages sort by (sender, receiver), dict payloads
compare key-insensitively and sets compare order-insensitively (both
canonicalize), but **lists and tuples keep their claimed order** -- a
program that ships inbox arrival order inside a list has encoded the
schedule into its message, which is exactly the bug.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..graphs.adjacency import Graph, Vertex
from .network import NodeProgram, SyncNetwork
from .trace import RecordingSink, jsonable_payload

if TYPE_CHECKING:  # pragma: no cover - types only
    from .faults import FaultPlan

__all__ = ["Divergence", "ShadowReport", "shadow_check", "canonical_transcript"]

#: Default shadow seeds: three permutations catch order dependence on any
#: graph with a degree->=2 vertex with high probability; tests that need
#: certainty pass more.
DEFAULT_SHADOW_SEEDS: Tuple[int, ...] = (1, 2, 3)


@dataclass(frozen=True)
class Divergence:
    """First observable difference between baseline and one shadow run."""

    seed: int
    kind: str  # "transcript" | "outputs" | "rounds"
    round_no: Optional[int]
    detail: str


@dataclass
class ShadowReport:
    """Outcome of :func:`shadow_check` for one program/graph pair."""

    seeds: Tuple[int, ...]
    rounds: int
    divergences: List[Divergence] = field(default_factory=list)

    @property
    def deterministic(self) -> bool:
        """True iff no seed produced a divergence."""
        return not self.divergences


def canonical_transcript(sink: RecordingSink) -> List[List[Tuple[str, ...]]]:
    """Per-round message triples ``(sender, receiver, payload-json)``.

    Senders/receivers render through :func:`jsonable_payload`'s string
    fallback; payloads serialize with sorted keys so dict/set iteration
    order cannot leak into the comparison while list/tuple order does.
    Under fault injection a record with a non-default ``status`` tag
    carries it as a fourth element, so a run where a message was dropped
    can never compare equal to one where it was delivered.
    """
    transcript: List[List[Tuple[str, ...]]] = []
    for round_trace in sink.rounds:
        transcript.append(
            [
                (
                    json.dumps(jsonable_payload(m.sender)),
                    json.dumps(jsonable_payload(m.receiver)),
                    json.dumps(jsonable_payload(m.payload), sort_keys=True),
                )
                + (() if m.status == "delivered" else (m.status,))
                for m in round_trace.messages
            ]
        )
    return transcript


def _canonical_outputs(outputs: Dict[Vertex, Any]) -> Dict[str, str]:
    return {
        json.dumps(jsonable_payload(v)): json.dumps(
            jsonable_payload(out), sort_keys=True
        )
        for v, out in outputs.items()
    }


def shadow_check(
    graph: Graph,
    program_factory: Callable[[Vertex, List[Vertex]], NodeProgram],
    seeds: Sequence[int] = DEFAULT_SHADOW_SEEDS,
    sealed: bool = False,
    scheduler: str = "active",
    max_rounds: int = 10_000,
    faults: Optional["FaultPlan"] = None,
) -> ShadowReport:
    """Diff a baseline run against shadow runs with permuted inbox order.

    The program factory is called once per run per vertex, so programs
    must be (re)constructible -- the same requirement ``repro trace``
    already imposes.  Raises whatever the program run raises (a shadow
    run that crashes is a determinism bug of a different color and
    should fail loudly).

    ``faults`` attaches the same :class:`~repro.localmodel.faults
    .FaultPlan` to the baseline and every shadow run.  Fault decisions
    are functions of ``(seed, round, sender, receiver)`` only, never of
    inbox order, so a conforming program must stay transcript-identical
    under any plan -- in particular an empty plan changes nothing.
    """
    base_sink = RecordingSink()
    base_net = SyncNetwork(
        graph,
        program_factory,
        sealed=sealed,
        scheduler=scheduler,
        sinks=[base_sink],
        faults=faults,
    )
    base_outputs = _canonical_outputs(base_net.run(max_rounds=max_rounds))
    base_transcript = canonical_transcript(base_sink)

    report = ShadowReport(seeds=tuple(seeds), rounds=len(base_transcript))
    for seed in seeds:
        shadow_sink = RecordingSink()
        shadow_net = SyncNetwork(
            graph,
            program_factory,
            sealed=sealed,
            scheduler=scheduler,
            sinks=[shadow_sink],
            inbox_order=seed,
            faults=faults,
        )
        shadow_outputs = _canonical_outputs(shadow_net.run(max_rounds=max_rounds))
        shadow_transcript = canonical_transcript(shadow_sink)
        report.divergences.extend(
            _diff(seed, base_transcript, base_outputs, shadow_transcript, shadow_outputs)
        )
    return report


def _diff(
    seed: int,
    base_transcript: List[List[Tuple[str, ...]]],
    base_outputs: Dict[str, str],
    shadow_transcript: List[List[Tuple[str, ...]]],
    shadow_outputs: Dict[str, str],
) -> List[Divergence]:
    """At most one transcript and one output divergence, first occurrence."""
    out: List[Divergence] = []
    if len(base_transcript) != len(shadow_transcript):
        out.append(
            Divergence(
                seed=seed,
                kind="rounds",
                round_no=min(len(base_transcript), len(shadow_transcript)),
                detail=(
                    f"baseline ran {len(base_transcript)} round(s), shadow "
                    f"ran {len(shadow_transcript)}"
                ),
            )
        )
    for round_no, (base_round, shadow_round) in enumerate(
        zip(base_transcript, shadow_transcript)
    ):
        if base_round == shadow_round:
            continue
        detail = f"round {round_no}: message sets differ"
        for base_msg, shadow_msg in zip(base_round, shadow_round):
            if base_msg != shadow_msg:
                detail = (
                    f"round {round_no}: {base_msg[0]}->{base_msg[1]} sent "
                    f"{base_msg[2]} in baseline but {shadow_msg[2]} under "
                    f"permuted inbox order"
                )
                break
        out.append(
            Divergence(seed=seed, kind="transcript", round_no=round_no, detail=detail)
        )
        break
    if base_outputs != shadow_outputs:
        changed = sorted(
            v for v in base_outputs
            if base_outputs.get(v) != shadow_outputs.get(v)
        )
        sample = changed[0] if changed else "?"
        out.append(
            Divergence(
                seed=seed,
                kind="outputs",
                round_no=None,
                detail=(
                    f"{len(changed)} node output(s) differ, e.g. node {sample}: "
                    f"{base_outputs.get(sample)} vs {shadow_outputs.get(sample)}"
                ),
            )
        )
    return out
