"""Sealed execution contexts: runtime enforcement of the LOCAL contract.

The static analyzer of :mod:`repro.lint` *proves* (syntactically) that node
programs only read their declared neighborhood and never mutate delivered
state; this module enforces the same contract dynamically, so the two can
cross-validate each other in tests.  With ``SyncNetwork(..., sealed=True)``:

* every delivered message is deep-frozen (:func:`freeze`): dicts become
  read-only :class:`FrozenMessageDict` views, lists become tuples, sets
  become frozensets -- recursively;
* each node's inbox is wrapped in a :class:`SealedInbox`, which raises
  :class:`SealedContextError` when keyed by anything outside the node's
  declared neighbor list (rule L4) or when mutated (rule L5);
* the :class:`~repro.localmodel.network.NodeContext` itself is a
  :class:`SealedNodeContext` whose attributes cannot be reassigned
  (rule L5).

Sealing is behavior-preserving for conforming programs: reading through a
frozen mapping is indistinguishable from reading the original dict, so a
program that passes the linter produces byte-identical outputs with sealing
on or off (asserted for every stock program in the test-suite).

Sealing is also orthogonal to the network's scheduler: it wraps *what a
stepped node may see*, never *which nodes are stepped*, so sealed runs
behave identically under the active-set and dense schedulers (the
equivalence suite asserts the full ``sealed x scheduler`` product).
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterator, List, Mapping

from ..graphs.adjacency import Vertex

__all__ = [
    "SealedContextError",
    "FrozenMessageDict",
    "SealedInbox",
    "freeze",
]


class SealedContextError(RuntimeError):
    """A node program broke the LOCAL contract under sealed execution."""


class FrozenMessageDict(Mapping):
    """A read-only, hash-capable view of a dict-valued message payload."""

    __slots__ = ("_data",)

    def __init__(self, data: Dict[Any, Any]):
        """Wrap ``data``; the reference is kept, never copied or mutated."""
        self._data = data

    def __getitem__(self, key: Any) -> Any:
        return self._data[key]

    def __iter__(self) -> Iterator[Any]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FrozenMessageDict({self._data!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FrozenMessageDict):
            return self._data == other._data
        if isinstance(other, dict):
            return self._data == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self._data.items()))

    def _refuse(self, *_args: Any, **_kwargs: Any) -> None:
        raise SealedContextError(
            "message payloads are frozen under sealed execution; copy with "
            "dict(...) before mutating"
        )

    __setitem__ = __delitem__ = _refuse
    pop = popitem = clear = update = setdefault = _refuse


def freeze(obj: Any) -> Any:
    """Recursively turn the standard mutable containers into frozen ones.

    dict -> :class:`FrozenMessageDict`, list/tuple -> tuple, set ->
    frozenset.  Everything else passes through unchanged (arbitrary user
    objects cannot be frozen generically; the static L5 rule covers them).
    """
    if isinstance(obj, FrozenMessageDict):
        return obj
    if isinstance(obj, dict):
        return FrozenMessageDict({k: freeze(v) for k, v in obj.items()})
    if isinstance(obj, (list, tuple)):
        return tuple(freeze(v) for v in obj)
    if isinstance(obj, (set, frozenset)):
        return frozenset(freeze(v) for v in obj)
    return obj


class SealedInbox(Mapping):
    """A node's inbox that answers only for declared neighbors.

    Iteration (``for u in inbox`` / ``.items()`` / ``.values()``) is always
    allowed -- it reveals exactly the senders, all of which are neighbors.
    Keyed access (``inbox[u]``, ``.get(u)``, ``u in inbox``) demands
    ``u`` be a declared neighbor: merely *asking* about a non-neighbor is
    information a LOCAL node cannot act on, and under sealed execution it
    raises :class:`SealedContextError` instead of answering.
    """

    __slots__ = ("_node", "_allowed", "_data")

    def __init__(self, node: Vertex, allowed: FrozenSet[Vertex], data: Dict[Vertex, Any]):
        """Expose ``data`` to ``node``, restricted to the ``allowed`` senders."""
        self._node = node
        self._allowed = allowed
        self._data = data

    def _check(self, key: Any) -> None:
        if key not in self._allowed:
            raise SealedContextError(
                f"node {self._node!r} queried the inbox for {key!r}, which is "
                "not one of its declared neighbors"
            )

    def __getitem__(self, key: Any) -> Any:
        self._check(key)
        return self._data[key]

    def get(self, key: Any, default: Any = None) -> Any:
        """Like ``dict.get``, after the declared-neighbor check."""
        self._check(key)
        return self._data.get(key, default)

    def __contains__(self, key: Any) -> bool:
        self._check(key)
        return key in self._data

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SealedInbox(node={self._node!r}, senders={sorted(map(repr, self._data))})"

    def _refuse(self, *_args: Any, **_kwargs: Any) -> None:
        raise SealedContextError(
            f"node {self._node!r} attempted to mutate its inbox; contexts "
            "are read-only under sealed execution"
        )

    __setitem__ = __delitem__ = _refuse
    pop = popitem = clear = update = setdefault = _refuse
