"""Self-stabilizing repair envelopes: detect and fix corrupted outputs.

The fault layer (:mod:`repro.localmodel.faults`) can flip a node's
committed state between rounds (:class:`~repro.localmodel.faults
.CorruptSpec`).  A plain :class:`~repro.localmodel.network.NodeProgram`
never notices -- it already halted, its neighbors already halted, and
the invalid output simply persists, which is why the resilience
classifier flags unrepaired algorithms ``unsafe`` under corruption.
This module supplies the missing half of the self-stabilization story:

* **Local checkability** -- for the library's two output invariants the
  violation is visible in a node's 1-ball: a proper coloring is wrong
  iff some neighbor shares my color; a maximal independent set is wrong
  iff two adjacent members exist or some node has no member in its
  closed neighborhood.  :class:`RepairPolicy` captures exactly that
  1-ball check plus the corresponding repair move.
* **Local repair** -- :class:`RepairableProgram` wraps any inner
  program.  While the inner program runs, the envelope forwards its
  messages untouched; once it halts, the envelope enters a *guard*
  phase: it announces its output to the 1-ball, caches the neighbors'
  announcements, and keeps verifying its own output against that cached
  1-ball.  After a corruption the network re-activates the victim (the
  class declares ``repairable = True``); the victim re-verifies, exposes
  its state for one probe round, and then applies the policy's bounded
  repair move -- priority recoloring from the palette, or local
  re-election for MIS.  Closure holds by construction (a legal
  configuration triggers no repair), and convergence is measured, not
  assumed: :class:`~repro.localmodel.resilience.ValidityMonitor` records
  ``corruption_round``, ``detection_latency``, and ``recovery_rounds``.
* **Measured classification** -- :func:`stabilization_run` executes one
  factory under one fault plan with the monitor attached and folds the
  result into a :class:`StabilizationReport`; the S1 experiment and
  ``benchmarks/bench_chaos.py`` pin its numbers.

Unlike :func:`~repro.localmodel.resilience.resilience_check`'s
``self-healing`` (which demands byte-identical outputs), stabilization
convergence means *reaching a legal configuration*: a victim may repair
to a different valid color than it originally held.

See ``docs/stabilize.md`` for the protocol walkthrough and the repair
bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..graphs.adjacency import Graph, Vertex
from .faults import FaultPlan
from .network import NodeContext, NodeProgram, SyncNetwork, vertex_key
from .resilience import Validator, ValidityMonitor

__all__ = [
    "RepairPolicy",
    "ColoringRepair",
    "MISRepair",
    "RepairableProgram",
    "repairable",
    "StabilizationReport",
    "stabilization_run",
]


class RepairPolicy:
    """The 1-ball check and bounded repair move for one output invariant.

    ``check`` decides, from a node's own output and its cached neighbor
    outputs, whether the local invariant is violated; ``should_yield``
    implements the priority protocol (a violated node of higher priority
    waits a few rounds for the lower-priority partner to move first);
    ``repair`` produces the corrected output.  All three see only the
    1-ball -- exactly the locality that makes self-stabilizing repair
    possible for locally checkable problems.
    """

    def check(
        self, node: Vertex, output: Any, neighbors: Mapping[Vertex, Any]
    ) -> bool:
        """True iff the node's output violates the invariant locally."""
        raise NotImplementedError

    def should_yield(
        self, node: Vertex, output: Any, neighbors: Mapping[Vertex, Any]
    ) -> bool:
        """True iff a lower-priority partner should move first."""
        return False

    def repair(
        self, node: Vertex, output: Any, neighbors: Mapping[Vertex, Any]
    ) -> Any:
        """The corrected output, computed from the cached 1-ball."""
        raise NotImplementedError


class ColoringRepair(RepairPolicy):
    """Priority recoloring from a bounded palette.

    A node is in violation when its color is missing, outside the
    palette ``first_color .. first_color + palette_size - 1``, or equal
    to a cached neighbor's color.  The priority protocol: among a
    conflicting pair the node with the *larger*
    :func:`~repro.localmodel.network.vertex_key` moves first; the
    smaller-key node yields briefly (so simultaneous repairs do not
    livelock) but moves anyway once the conflict persists -- the partner
    may be asleep.  The repair move picks the smallest palette color not
    used in the cached 1-ball, the classic greedy step of
    Barenboim-Elkin-style deterministic recoloring.
    """

    def __init__(self, palette_size: int, first_color: int = 0):
        """Repair within the palette ``first_color .. first_color + palette_size - 1``.

        ``first_color=1`` matches :class:`~repro.baselines
        .coloring_baselines.RandomizedColoringProgram`'s 1-based palette.
        """
        if palette_size < 1:
            raise ValueError(f"palette_size must be >= 1, got {palette_size}")
        self.palette_size = palette_size
        self.first_color = first_color

    def _conflicts(
        self, output: Any, neighbors: Mapping[Vertex, Any]
    ) -> List[Vertex]:
        return [u for u, c in neighbors.items() if c == output]

    def check(
        self, node: Vertex, output: Any, neighbors: Mapping[Vertex, Any]
    ) -> bool:
        """Violated iff the color is missing, out of palette, or shared."""
        if not isinstance(output, int) or isinstance(output, bool):
            return True
        if not self.first_color <= output < self.first_color + self.palette_size:
            return True
        return bool(self._conflicts(output, neighbors))

    def should_yield(
        self, node: Vertex, output: Any, neighbors: Mapping[Vertex, Any]
    ) -> bool:
        """Yield while every conflicting partner has the larger key."""
        conflicts = self._conflicts(output, neighbors)
        if not conflicts:
            return False  # a type/palette violation is mine alone to fix
        me = vertex_key(node)
        return all(vertex_key(u) > me for u in conflicts)

    def repair(
        self, node: Vertex, output: Any, neighbors: Mapping[Vertex, Any]
    ) -> Any:
        """The smallest palette color free in the cached 1-ball."""
        taken = {c for c in neighbors.values() if isinstance(c, int)}
        palette = range(self.first_color, self.first_color + self.palette_size)
        for color in palette:
            if color not in taken and color != output:
                return color
        for color in palette:  # pragma: no cover - full ball
            if color not in taken:
                return color
        return output  # pragma: no cover - palette exhausted


class MISRepair(RepairPolicy):
    """Local re-election for maximal-independent-set membership.

    A node is in violation when its flag is not a boolean, when it is a
    member adjacent to another cached member, or when it is a non-member
    with no cached member in its neighborhood (it went uncovered).  The
    repair move re-elects locally: leave the set if a cached neighbor is
    a member, join otherwise.  Priority: among two adjacent members the
    smaller-key node is the rightful keeper and briefly yields (its
    partner should leave); the larger-key member leaves immediately.
    """

    def _members(self, neighbors: Mapping[Vertex, Any]) -> List[Vertex]:
        return [u for u, flag in neighbors.items() if flag is True]

    def check(
        self, node: Vertex, output: Any, neighbors: Mapping[Vertex, Any]
    ) -> bool:
        """Violated iff the flag is non-boolean, clashing, or uncovered."""
        if not isinstance(output, bool):
            return True
        members = self._members(neighbors)
        if output:
            return bool(members)
        return not members

    def should_yield(
        self, node: Vertex, output: Any, neighbors: Mapping[Vertex, Any]
    ) -> bool:
        """A member yields while every adjacent member has the larger key."""
        if output is not True:
            return False
        members = self._members(neighbors)
        if not members:
            return False
        me = vertex_key(node)
        return all(vertex_key(u) > me for u in members)

    def repair(
        self, node: Vertex, output: Any, neighbors: Mapping[Vertex, Any]
    ) -> Any:
        """Re-elect from the cached 1-ball: in iff no neighbor is in."""
        return not self._members(neighbors)


class RepairableProgram(NodeProgram):
    """Envelope adding continuous 1-ball verification and bounded repair.

    Phase one drives the wrapped inner program to completion, forwarding
    its messages tagged ``("in", payload)``.  Phase two (*guard*) mirrors
    the inner output, announces it as ``("st", output)``, caches the
    neighbors' announcements, and verifies the output against the cached
    1-ball every round via the :class:`RepairPolicy`.  The program halts
    after ``quiet_rounds`` consecutive clean verifications.

    On violation -- typically after the fault layer corrupted this node
    and re-activated it (the class declares ``repairable = True``, the
    hook :class:`~repro.localmodel.network.SyncNetwork` keys on) -- the
    envelope first spends one probe round exposing its state, honours
    the policy's priority yield for up to ``patience`` rounds, then
    applies one repair move.  ``repair_budget`` bounds the total repair
    moves; an exhausted budget halts the node in whatever state it is in
    (the run then classifies unsafe, loudly, instead of spinning).
    """

    always_active = True
    #: the marker the network's corruption hook re-activates on
    repairable = True

    def __init__(
        self,
        node: Vertex,
        neighbors: List[Vertex],
        inner_factory: Callable[[Vertex, List[Vertex]], NodeProgram],
        policy: RepairPolicy,
        quiet_rounds: int = 2,
        repair_budget: int = 8,
        patience: int = 3,
    ):
        """Wrap ``inner_factory(node, neighbors)`` under ``policy``.

        ``quiet_rounds`` clean verifications end the guard phase;
        ``repair_budget`` bounds total repair moves; ``patience`` bounds
        the priority yield before a violated node repairs regardless.
        """
        super().__init__(node, neighbors)
        if quiet_rounds < 1:
            raise ValueError(f"quiet_rounds must be >= 1, got {quiet_rounds}")
        if repair_budget < 0:
            raise ValueError(f"repair_budget must be >= 0, got {repair_budget}")
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        self.inner = inner_factory(node, list(neighbors))
        self.policy = policy
        self.quiet_rounds = quiet_rounds
        self.repair_budget = repair_budget
        self.patience = patience
        #: repair moves taken so far (read by the stabilization report)
        self.repairs = 0
        #: cached 1-ball: last announced output per neighbor
        self.nbr_state: Dict[Vertex, Any] = {}
        self._budget_left = repair_budget
        self._quiet = 0
        self._strikes = 0

    def _collect(self, ctx: NodeContext) -> Dict[Vertex, Any]:
        """Split the inbox: cache ``st`` announcements, return inner inbox."""
        inner_inbox: Dict[Vertex, Any] = {}
        for u, message in ctx.inbox.items():
            tag = message[0]
            if tag == "in":
                inner_inbox[u] = message[1]
            elif tag == "st":
                self.nbr_state[u] = message[1]
            else:  # ("both", inner_payload, output)
                inner_inbox[u] = message[1]
                self.nbr_state[u] = message[2]
        return inner_inbox

    def _should_step_inner(
        self, inner_inbox: Mapping[Vertex, Any], round_no: int
    ) -> bool:
        if self.inner.done:
            return False
        if round_no == 0 or inner_inbox or self.inner.always_active:
            return True
        if self.inner._wake_requested:
            self.inner._wake_requested = False
            return True
        return False

    def step(self, ctx: NodeContext) -> Mapping[Vertex, Any]:
        """One round: drive the inner program, or guard and repair."""
        inner_inbox = self._collect(ctx)
        if not self.inner.done:
            fresh: Mapping[Vertex, Any] = {}
            if self._should_step_inner(inner_inbox, ctx.round_number):
                inner_ctx = NodeContext(
                    node=self.node,
                    neighbors=list(self.neighbors),
                    round_number=ctx.round_number,
                    inbox=inner_inbox,
                )
                fresh = self.inner.step(inner_ctx) or {}
            self.output = self.inner.output
            if not self.inner.done:
                return {u: ("in", payload) for u, payload in fresh.items()}
            # the inner program just halted: enter the guard phase,
            # announcing the committed output alongside any final message
            self._quiet = 0
            self._strikes = 0
            outbox: Dict[Vertex, Any] = {}
            for u in self.neighbors:
                if u in fresh:
                    outbox[u] = ("both", fresh[u], self.output)
                else:
                    outbox[u] = ("st", self.output)
            return outbox
        return self._guard_step()

    def _guard_step(self) -> Mapping[Vertex, Any]:
        """Verify the output against the cached 1-ball; repair on violation."""
        if self.policy.check(self.node, self.output, self.nbr_state):
            self._quiet = 0
            if self._budget_left <= 0:
                # bounded repair: give up loudly in whatever state we
                # are in rather than spinning forever
                self.done = True
                return {}
            self._strikes += 1
            yielding = (
                self._strikes <= self.patience
                and self.policy.should_yield(self.node, self.output, self.nbr_state)
            )
            if self._strikes >= 2 and not yielding:
                self.output = self.policy.repair(
                    self.node, self.output, self.nbr_state
                )
                self.repairs += 1
                self._budget_left -= 1
                self._strikes = 0
            return self.broadcast(("st", self.output))
        self._strikes = 0
        self._quiet += 1
        if self._quiet >= self.quiet_rounds:
            self.done = True
            return {}
        return self.broadcast(("st", self.output))


def repairable(
    inner_factory: Callable[[Vertex, List[Vertex]], NodeProgram],
    policy_factory: Callable[[], RepairPolicy],
    quiet_rounds: int = 2,
    repair_budget: int = 8,
    patience: int = 3,
) -> Callable[[Vertex, List[Vertex]], RepairableProgram]:
    """A program factory wrapping ``inner_factory`` in :class:`RepairableProgram`.

    ``policy_factory`` builds one fresh :class:`RepairPolicy` per node
    (policies are stateless, but per-node instances keep the factory
    contract re-constructible for the shadow and resilience sweeps).
    """

    def factory(node: Vertex, neighbors: List[Vertex]) -> RepairableProgram:
        return RepairableProgram(
            node,
            neighbors,
            inner_factory,
            policy_factory(),
            quiet_rounds=quiet_rounds,
            repair_budget=repair_budget,
            patience=patience,
        )

    return factory


@dataclass(frozen=True)
class StabilizationReport:
    """One factory under one fault plan, with the stabilization profile.

    ``classification`` follows the resilience vocabulary but measures
    *convergence to a legal configuration*: ``unsafe`` when the final
    outputs violate the invariant, ``self-healing`` when the run
    completed and re-legalized, ``degraded-but-valid`` otherwise (valid
    but incomplete -- e.g. a crash-stopped node).  The monitor-derived
    fields (``corruption_round``, ``detection_latency``,
    ``recovery_rounds``) quantify the convergence; ``repairs`` counts
    the repair moves the envelopes actually took.
    """

    classification: str
    rounds: int
    baseline_rounds: int
    complete: bool
    valid: bool
    matches_baseline: bool
    corruption_round: Optional[int]
    first_violation_round: Optional[int]
    detection_latency: Optional[int]
    recovery_rounds: Optional[int]
    recovered: bool
    repairs: int
    injected: Dict[str, int]
    problems: Tuple[str, ...] = ()
    error: Optional[str] = None

    def as_dict(self) -> Dict[str, Any]:
        """The report as a JSON-plain dict (runner cells, CLI JSON)."""
        return {
            "classification": self.classification,
            "rounds": self.rounds,
            "baseline_rounds": self.baseline_rounds,
            "complete": self.complete,
            "valid": self.valid,
            "matches_baseline": self.matches_baseline,
            "corruption_round": self.corruption_round,
            "first_violation_round": self.first_violation_round,
            "detection_latency": self.detection_latency,
            "recovery_rounds": self.recovery_rounds,
            "recovered": self.recovered,
            "repairs": self.repairs,
            "injected": dict(self.injected),
            "problems": list(self.problems),
            "error": self.error,
        }


def stabilization_run(
    graph: Graph,
    program_factory: Callable[[Vertex, List[Vertex]], NodeProgram],
    validator: Validator,
    faults: FaultPlan,
    max_rounds: int = 4_000,
    recovery: str = "intact",
    checkpoint_every: Optional[int] = None,
) -> StabilizationReport:
    """Run one factory under one fault plan with validity monitoring.

    The fault-free baseline run supplies the reference outputs and round
    count; the monitored faulty run then yields the stabilization
    profile (see :class:`StabilizationReport`).  A run that starves or
    exhausts ``max_rounds`` is incomplete, never silently wrong: its
    partial outputs are still validated.
    """
    base_net = SyncNetwork(graph, program_factory)
    baseline = base_net.run(max_rounds=max_rounds)
    baseline_rounds = base_net.stats.rounds

    net = SyncNetwork(
        graph,
        program_factory,
        faults=faults,
        recovery=recovery,
        checkpoint_every=checkpoint_every,
    )
    monitor = ValidityMonitor(net, validator)
    net.add_sink(monitor)
    error: Optional[str] = None
    outputs: Optional[Dict[Vertex, Any]] = None
    try:
        outputs = net.run(max_rounds=max_rounds)
    except RuntimeError as exc:
        error = str(exc).splitlines()[0]
    final = {v: p.output for v, p in net.programs.items()}
    problems = validator(graph, final)
    valid = not problems
    complete = outputs is not None
    if not valid:
        classification = "unsafe"
    elif complete:
        classification = "self-healing"
    else:
        classification = "degraded-but-valid"
    return StabilizationReport(
        classification=classification,
        rounds=net.stats.rounds,
        baseline_rounds=baseline_rounds,
        complete=complete,
        valid=valid,
        matches_baseline=complete and outputs == baseline,
        corruption_round=monitor.corruption_round,
        first_violation_round=monitor.first_violation_round,
        detection_latency=monitor.detection_latency,
        recovery_rounds=monitor.recovery_rounds,
        recovered=monitor.recovered and valid,
        repairs=sum(
            p.repairs
            for p in net.programs.values()
            if isinstance(p, RepairableProgram)
        ),
        injected=net.fault_summary() or {},
        problems=tuple(problems),
        error=error,
    )
