"""Deterministic fault injection for the synchronous simulator.

The LOCAL model assumes a perfectly reliable synchronous network; real
deployments do not get one.  This module lets :class:`~repro.localmodel
.network.SyncNetwork` simulate an *unreliable* network without touching
any node program: a :class:`FaultPlan` describes which messages are
dropped, duplicated, or delayed and which nodes crash (and possibly
recover) at which rounds, and the network consults it once per delivery.

Determinism guarantees
----------------------

Every fault decision is a pure function of ``(plan.seed, round, sender,
receiver)``, hashed through ``zlib.crc32`` exactly like the inbox-order
sanitizer (:mod:`repro.localmodel.shadow`), so

* the same plan on the same run produces the same faults on every
  interpreter invocation (no salted hashing, no global RNG);
* decisions are independent of outbox iteration order -- permuting the
  senders cannot change which messages fail;
* an **empty plan** (no probabilities, no bursts, no crashes) makes
  every decision "deliver", and the run is byte-identical -- canonical
  transcript, outputs, and :class:`~repro.localmodel.network.RunStats`
  -- to a run without any fault layer attached (regression-tested).

Fault vocabulary
----------------

* *drop* -- the message silently vanishes (Bernoulli, per message);
* *duplicate* -- the message is delivered normally and a second copy
  arrives one round later (at-least-once delivery);
* *delay* -- the message arrives ``k`` extra rounds late, ``k`` drawn
  uniformly from ``1..max_delay``;
* *burst* -- an adversarial window of rounds in which **every** message
  is dropped (models a network partition);
* *crash* -- a :class:`CrashSpec` stops a node at a given round: it is
  no longer scheduled, its undelivered inbox is lost, and messages
  addressed to it vanish.  With a ``recover_round`` the node resumes --
  state intact, as crash-*recover* -- at that round; without one it is
  crash-*stop* and its output stays ``None``.
* *corrupt* -- a :class:`CorruptSpec` transiently scrambles one node's
  *state* between rounds (after the given round's steps, deliveries,
  and trace sinks): a color flip, an IS-flag flip, ball-fact deletion,
  or arbitrary field scrambling (see :data:`CORRUPT_KINDS` and
  :func:`corrupt_program`).  Channel semantics are untouched -- no
  message is created, dropped, or reordered by a corruption.

Accounting: :attr:`RunStats.messages_sent` keeps counting what programs
*send* (a dropped message still cost its sender a send); copies injected
by the network (duplicates, late re-deliveries) are never double-counted.
Trace sinks see every event: each :class:`~repro.localmodel.network
.MessageRecord` carries a ``status`` tag (``delivered`` / ``dropped`` /
``delayed`` / ``late`` / ``duplicate``), so the stock sinks and the
meter observe faults without any API change.

The textual grammar (``FaultPlan.parse``) is what ``repro faults`` and
``repro trace --faults`` accept::

    drop=0.2,dup=0.05,delay=0.1:3,seed=7,burst=4-6,crash=2@3,crash=5@4-9

with state corruption joining the same token stream::

    corrupt=4@6:color,corrupt=2@0:scramble,seed=7

See ``docs/faults.md`` for the full grammar and the resilience
classification built on top (:mod:`repro.localmodel.resilience`).
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from ..graphs.adjacency import Vertex

__all__ = [
    "CrashSpec",
    "CorruptSpec",
    "FaultPlan",
    "FaultRuntime",
    "FaultPlanError",
    "MESSAGE_STATUSES",
    "CORRUPT_KINDS",
    "corrupt_program",
]

#: Every status tag a :class:`MessageRecord` can carry under fault
#: injection; ``delivered`` is the default (and only) tag without it.
MESSAGE_STATUSES = ("delivered", "dropped", "delayed", "late", "duplicate")

#: The recognized transient state-corruption kinds of :class:`CorruptSpec`:
#: ``color`` flips an integer color output, ``mis`` flips a boolean
#: IS-membership output, ``ball`` deletes cached ball facts (dict/set
#: state), ``scramble`` overwrites one seeded scalar field.
CORRUPT_KINDS = ("color", "mis", "ball", "scramble")


class FaultPlanError(ValueError):
    """Raised for an unparseable fault spec or an inconsistent plan."""


@dataclass(frozen=True)
class CrashSpec:
    """One node's crash schedule.

    The node stops executing at the start of ``crash_round`` (it does not
    take that round's step).  ``recover_round`` of ``None`` means
    crash-stop: the node never returns and its output stays ``None``.
    Otherwise the node resumes -- with its program state intact -- at the
    start of ``recover_round``.
    """

    node: Vertex
    crash_round: int
    recover_round: Optional[int] = None

    def __post_init__(self) -> None:
        if self.crash_round < 0:
            raise FaultPlanError(
                f"crash round must be >= 0, got {self.crash_round}"
            )
        if self.recover_round is not None and self.recover_round <= self.crash_round:
            raise FaultPlanError(
                f"recover round {self.recover_round} must come after crash "
                f"round {self.crash_round}"
            )


@dataclass(frozen=True)
class CorruptSpec:
    """One transient state-corruption event.

    The node's program state is mutated by :func:`corrupt_program` *after*
    round ``round_no`` executes (steps, deliveries, and trace sinks all
    see the uncorrupted round) and before round ``round_no + 1`` begins --
    corruption strikes strictly between rounds, so channel semantics are
    untouched.  ``kind`` is one of :data:`CORRUPT_KINDS`.  A corruption
    aimed at a currently crashed node is skipped (a down node has no
    state to flip).
    """

    node: Vertex
    round_no: int
    kind: str = "scramble"

    def __post_init__(self) -> None:
        if self.round_no < 0:
            raise FaultPlanError(
                f"corrupt round must be >= 0, got {self.round_no}"
            )
        if self.kind not in CORRUPT_KINDS:
            raise FaultPlanError(
                f"unknown corruption kind {self.kind!r}; "
                f"expected one of {CORRUPT_KINDS}"
            )


def _probability(name: str, value: float) -> float:
    if not 0.0 <= value <= 1.0:
        raise FaultPlanError(f"{name} must be a probability in [0, 1], got {value}")
    return value


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, immutable description of every fault to inject.

    The plan itself holds no runtime state, so one plan can drive any
    number of runs (the shadow and resilience sweeps rely on this);
    per-run bookkeeping lives in :class:`FaultRuntime`.
    """

    seed: int = 0
    drop: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    max_delay: int = 1
    bursts: Tuple[Tuple[int, int], ...] = ()
    crashes: Tuple[CrashSpec, ...] = ()
    corrupts: Tuple[CorruptSpec, ...] = ()

    def __post_init__(self) -> None:
        _probability("drop", self.drop)
        _probability("duplicate", self.duplicate)
        _probability("delay", self.delay)
        if self.max_delay < 1:
            raise FaultPlanError(f"max_delay must be >= 1, got {self.max_delay}")
        for start, end in self.bursts:
            if start < 0 or end < start:
                raise FaultPlanError(
                    f"burst window {start}-{end} must satisfy 0 <= start <= end"
                )
        seen: Set[Vertex] = set()
        for spec in self.crashes:
            if spec.node in seen:
                raise FaultPlanError(
                    f"node {spec.node!r} has more than one crash schedule"
                )
            seen.add(spec.node)

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        """True when the plan injects nothing at all (identity plan)."""
        return (
            self.drop == 0.0
            and self.duplicate == 0.0
            and self.delay == 0.0
            and not self.bursts
            and not self.crashes
            and not self.corrupts
        )

    def _randomized(self) -> bool:
        return self.drop > 0.0 or self.duplicate > 0.0 or self.delay > 0.0

    def in_burst(self, round_no: int) -> bool:
        """True when ``round_no`` falls inside an adversarial burst window."""
        return any(start <= round_no <= end for start, end in self.bursts)

    # ------------------------------------------------------------------
    # the per-message decision
    # ------------------------------------------------------------------
    def decide(
        self, round_no: int, sender: Vertex, receiver: Vertex
    ) -> Tuple[str, int]:
        """The fate of one message: ``(action, extra_rounds)``.

        ``action`` is ``"deliver"``, ``"drop"``, ``"delay"`` (with the
        extra rounds as the second element), or ``"duplicate"`` (deliver
        now plus a copy one round later).  Deterministic in
        ``(seed, round, sender, receiver)`` and nothing else.
        """
        if self.in_burst(round_no):
            return ("drop", 0)
        if not self._randomized():
            return ("deliver", 0)
        rng = random.Random(
            zlib.crc32(repr((self.seed, round_no, sender, receiver)).encode())
        )
        if rng.random() < self.drop:
            return ("drop", 0)
        if rng.random() < self.delay:
            return ("delay", rng.randint(1, self.max_delay))
        if rng.random() < self.duplicate:
            return ("duplicate", 0)
        return ("deliver", 0)

    # ------------------------------------------------------------------
    # the textual grammar
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from the comma-separated ``key=value`` grammar.

        Keys: ``seed=N``, ``drop=P``, ``dup=P``, ``delay=P`` or
        ``delay=P:K`` (delay probability with max extra rounds K),
        ``burst=R1-R2`` (inclusive round window, repeatable),
        ``crash=V@R`` / ``crash=V@R1-R2`` (crash-stop / crash-recover,
        repeatable; V parses as an int when it looks like one), and
        ``corrupt=V@R`` / ``corrupt=V@R:kind`` (transient state
        corruption of node V after round R; ``kind`` defaults to
        ``scramble``, see :data:`CORRUPT_KINDS`; repeatable).  An
        empty string parses to the identity plan.
        """
        kwargs: Dict[str, Any] = {}
        bursts: List[Tuple[int, int]] = []
        crashes: List[CrashSpec] = []
        corrupts: List[CorruptSpec] = []
        for token in filter(None, (t.strip() for t in spec.split(","))):
            if "=" not in token:
                raise FaultPlanError(
                    f"bad fault token {token!r}: expected key=value"
                )
            key, _, value = token.partition("=")
            key = key.strip()
            value = value.strip()
            try:
                if key == "seed":
                    kwargs["seed"] = int(value)
                elif key == "drop":
                    kwargs["drop"] = float(value)
                elif key in ("dup", "duplicate"):
                    kwargs["duplicate"] = float(value)
                elif key == "delay":
                    prob, _, max_extra = value.partition(":")
                    kwargs["delay"] = float(prob)
                    if max_extra:
                        kwargs["max_delay"] = int(max_extra)
                elif key == "burst":
                    start, _, end = value.partition("-")
                    bursts.append((int(start), int(end or start)))
                elif key == "crash":
                    node_text, _, window = value.partition("@")
                    if not window:
                        raise FaultPlanError(
                            f"crash spec {value!r} needs '@round' or '@r1-r2'"
                        )
                    node: Vertex = (
                        int(node_text) if _looks_like_int(node_text) else node_text
                    )
                    start_text, _, end_text = window.partition("-")
                    crashes.append(
                        CrashSpec(
                            node=node,
                            crash_round=int(start_text),
                            recover_round=int(end_text) if end_text else None,
                        )
                    )
                elif key == "corrupt":
                    node_text, _, event = value.partition("@")
                    if not event:
                        raise FaultPlanError(
                            f"corrupt spec {value!r} needs '@round' or "
                            "'@round:kind'"
                        )
                    victim: Vertex = (
                        int(node_text) if _looks_like_int(node_text) else node_text
                    )
                    round_text, _, kind_text = event.partition(":")
                    corrupts.append(
                        CorruptSpec(
                            node=victim,
                            round_no=int(round_text),
                            kind=kind_text or "scramble",
                        )
                    )
                else:
                    raise FaultPlanError(f"unknown fault key {key!r}")
            except FaultPlanError:
                raise
            except ValueError as exc:
                raise FaultPlanError(
                    f"bad fault token {token!r}: {exc}"
                ) from None
        if bursts:
            kwargs["bursts"] = tuple(bursts)
        if crashes:
            kwargs["crashes"] = tuple(crashes)
        if corrupts:
            kwargs["corrupts"] = tuple(corrupts)
        return cls(**kwargs)

    def spec(self) -> str:
        """The plan back in the textual grammar (``parse`` round-trips)."""
        parts: List[str] = []
        if self.drop:
            parts.append(f"drop={self.drop:g}")
        if self.duplicate:
            parts.append(f"dup={self.duplicate:g}")
        if self.delay:
            parts.append(f"delay={self.delay:g}:{self.max_delay}")
        for start, end in self.bursts:
            parts.append(f"burst={start}-{end}")
        for crash in self.crashes:
            window = (
                str(crash.crash_round)
                if crash.recover_round is None
                else f"{crash.crash_round}-{crash.recover_round}"
            )
            parts.append(f"crash={crash.node}@{window}")
        for corrupt in self.corrupts:
            parts.append(
                f"corrupt={corrupt.node}@{corrupt.round_no}:{corrupt.kind}"
            )
        if self._randomized() or parts:
            parts.append(f"seed={self.seed}")
        return ",".join(parts)


def _looks_like_int(text: str) -> bool:
    try:
        int(text)
    except ValueError:
        return False
    return True


#: Instance fields a corruption must never touch: identity, topology,
#: and the scheduler handshake (flipping ``done`` would desynchronize the
#: network's completion accounting, which models *state* faults, not
#: Byzantine schedulers).
_PROTECTED_FIELDS = frozenset({"node", "neighbors", "done", "_wake_requested"})


def _corrupt_rng(seed: int, spec: CorruptSpec) -> random.Random:
    return random.Random(
        zlib.crc32(repr((seed, spec.round_no, spec.node, spec.kind)).encode())
    )


def _scramble_value(value: Any, rng: random.Random) -> Any:
    """A deterministic different value of the same rough shape."""
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value ^ (1 + rng.randrange(255))
    if isinstance(value, float):
        return value + 1.0 + rng.random()
    if isinstance(value, str):
        flipped = value[::-1]
        return flipped if flipped != value else value + "?"
    return value


def corrupt_program(program: Any, spec: CorruptSpec, seed: int) -> bool:
    """Apply one :class:`CorruptSpec` to a node program's instance state.

    Returns True iff any field actually changed (a ``color`` flip on a
    program with no integer color is a no-op, for example).  Every
    mutation is a pure function of ``(seed, spec)`` -- same crc32-seeded
    derivation as :meth:`FaultPlan.decide` -- so replaying a plan replays
    the exact corruption.  Kinds (:data:`CORRUPT_KINDS`):

    * ``color`` -- shift an integer ``output`` (and a ``color`` field if
      one exists) by a small seeded offset, staying non-negative;
    * ``mis`` -- negate a boolean ``output`` (and an ``in_mis`` field);
    * ``ball`` -- delete a seeded subset of entries from every non-empty
      ``dict``/``set`` field (cached ball facts, neighbor tables);
    * ``scramble`` -- overwrite one seeded scalar field (preferring
      ``output`` when it is scalar) with a different value.
    """
    rng = _corrupt_rng(seed, spec)
    state: Dict[str, Any] = program.__dict__
    changed = False
    if spec.kind == "color":
        for name in ("output", "color"):
            value = state.get(name)
            if isinstance(value, int) and not isinstance(value, bool):
                offset = 1 + rng.randrange(3)
                flipped = value - offset if value >= offset else value + offset
                state[name] = flipped
                changed = True
    elif spec.kind == "mis":
        for name in ("output", "in_mis"):
            value = state.get(name)
            if isinstance(value, bool):
                state[name] = not value
                changed = True
    elif spec.kind == "ball":
        for name in sorted(state):
            if name in _PROTECTED_FIELDS:
                continue
            value = state[name]
            if isinstance(value, dict) and value:
                keys = sorted(value, key=repr)
                doomed = [k for k in keys if rng.random() < 0.5] or [keys[0]]
                for k in doomed:
                    del value[k]
                changed = True
            elif isinstance(value, set) and value:
                members = sorted(value, key=repr)
                doomed = [m for m in members if rng.random() < 0.5] or [members[0]]
                value.difference_update(doomed)
                changed = True
    else:  # scramble
        scalars = (bool, int, float, str)
        candidates = [
            name
            for name in sorted(state)
            if name not in _PROTECTED_FIELDS
            and isinstance(state[name], scalars)
        ]
        if not candidates:
            return False
        if "output" in candidates and rng.random() < 0.5:
            victim = "output"
        else:
            victim = candidates[rng.randrange(len(candidates))]
        new_value = _scramble_value(state[victim], rng)
        if new_value != state[victim]:
            state[victim] = new_value
            changed = True
    return changed


@dataclass
class FaultRuntime:
    """Per-run mutable state and counters for one plan on one network.

    Owned by :class:`~repro.localmodel.network.SyncNetwork`; a fresh one
    is created per network so a single :class:`FaultPlan` can drive many
    runs concurrently.
    """

    plan: FaultPlan
    #: delivery round -> [(sender, receiver, payload, status), ...]
    in_flight: Dict[int, List[Tuple[Vertex, Vertex, Any, str]]] = field(
        default_factory=dict
    )
    #: nodes currently crashed
    crashed: Set[Vertex] = field(default_factory=set)
    #: counters exposed through :meth:`summary`
    dropped: int = 0
    delayed: int = 0
    duplicated: int = 0
    crash_events: int = 0
    recover_events: int = 0
    corrupt_events: int = 0
    #: rounds at which a corruption actually mutated state (in order);
    #: :class:`~repro.localmodel.resilience.ValidityMonitor` reads this
    #: to compute detection latency and recovery rounds
    corruption_rounds: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._crash_at: Dict[int, List[CrashSpec]] = {}
        self._recover_at: Dict[int, List[Vertex]] = {}
        for spec in self.plan.crashes:
            self._crash_at.setdefault(spec.crash_round, []).append(spec)
            if spec.recover_round is not None:
                self._recover_at.setdefault(spec.recover_round, []).append(spec.node)
        self._corrupt_at: Dict[int, List[CorruptSpec]] = {}
        for corrupt in self.plan.corrupts:
            self._corrupt_at.setdefault(corrupt.round_no, []).append(corrupt)
        #: hot-loop gates for the network: with all three False and
        #: nothing crashed or in flight, step_round skips the fault hooks
        #: entirely, keeping an inert plan's overhead near zero
        self.has_node_events: bool = bool(self.plan.crashes)
        self.has_message_faults: bool = (
            self.plan._randomized() or bool(self.plan.bursts)
        )
        self.has_corruption: bool = bool(self.plan.corrupts)

    def crashes_at(self, round_no: int) -> List[CrashSpec]:
        """Crash specs scheduled to fire at the start of ``round_no``."""
        return self._crash_at.get(round_no, [])

    def recoveries_at(self, round_no: int) -> List[Vertex]:
        """Nodes scheduled to recover at the start of ``round_no``."""
        return self._recover_at.get(round_no, [])

    def corruptions_at(self, round_no: int) -> List[CorruptSpec]:
        """Corruptions scheduled to strike after round ``round_no``."""
        return self._corrupt_at.get(round_no, [])

    def corruption_pending(self, round_no: int) -> bool:
        """True while a corruption is still scheduled at ``round_no`` or later.

        The network keeps ticking (possibly empty) rounds through a
        quiesced run while this holds, so a corruption aimed past the
        natural termination round still lands -- and a repairable victim
        gets its chance to re-converge.
        """
        if not self.has_corruption:
            return False
        return any(future >= round_no for future in self._corrupt_at)

    def schedule(
        self,
        delivery_round: int,
        sender: Vertex,
        receiver: Vertex,
        payload: Any,
        status: str,
    ) -> None:
        """Queue a copy for delivery during ``delivery_round``."""
        self.in_flight.setdefault(delivery_round, []).append(
            (sender, receiver, payload, status)
        )

    def matured(self, round_no: int) -> List[Tuple[Vertex, Vertex, Any, str]]:
        """Pop and return the copies due for delivery this round."""
        return self.in_flight.pop(round_no, [])

    def pending(self, round_no: int) -> bool:
        """True while the fault layer still owes the network an event.

        Either a delayed/duplicate copy is in flight, or a currently
        crashed node has a recovery scheduled at ``round_no`` (the next
        round to step) or later -- both mean an apparently quiet network
        is *not* starved and the scheduler must keep ticking rounds.
        """
        if self.in_flight:
            return True
        if self.corruption_pending(round_no):
            return True
        return any(
            future >= round_no and any(v in self.crashed for v in nodes)
            for future, nodes in self._recover_at.items()
        )

    def summary(self) -> Dict[str, int]:
        """The injection counters as a JSON-plain dict."""
        return {
            "dropped": self.dropped,
            "delayed": self.delayed,
            "duplicated": self.duplicated,
            "crash_events": self.crash_events,
            "recover_events": self.recover_events,
            "corrupt_events": self.corrupt_events,
            "still_crashed": len(self.crashed),
        }
