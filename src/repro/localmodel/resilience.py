"""Robustness harness: which programs survive an unreliable network?

:mod:`repro.localmodel.faults` makes the simulator drop, duplicate, and
delay messages and crash nodes.  This module answers the question that
motivates it: *which of our node programs degrade gracefully, and which
silently emit invalid outputs?*  Three pieces:

* **Invariant monitors** -- :class:`ValidityMonitor` is a
  :class:`~repro.localmodel.network.TraceSink` that re-checks a safety
  invariant (proper coloring, independence) over the *tentative* outputs
  after every round, recording the first round each violation appears;
* **A retry/ack wrapper** -- :class:`ReliableProgram` (via
  :func:`with_retries`) wraps any :class:`~repro.localmodel.network
  .NodeProgram` in a sequence-numbered envelope protocol: every data
  message is acknowledged, unacknowledged messages are re-sent after a
  timeout with exponential backoff and a bounded resend budget, and
  duplicates are filtered before the inner program sees them.  The inner
  program observes real round numbers, so every retry is charged against
  round complexity;
* **The classification sweep** -- :func:`resilience_check` runs one
  program across a grid of fault plans and classifies it

  - ``self-healing``   -- every faulty run completed with outputs
    identical to the fault-free baseline;
  - ``degraded-but-valid`` -- outputs stayed valid (or the run failed
    *loudly* by starving/timing out) but differ from the baseline or
    never completed;
  - ``unsafe``         -- some faulty run silently emitted an output
    violating its safety invariant.

``repro faults --sweep`` runs :func:`resilience_check` over every stock
program (the F7 experiment pins the results); see ``docs/faults.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..graphs.adjacency import Graph, Vertex
from .faults import FaultPlan
from .network import (
    MessageRecord,
    NodeContext,
    NodeProgram,
    SyncNetwork,
    TraceSink,
)

if TYPE_CHECKING:  # pragma: no cover - types only
    from .gather import KnownBall

__all__ = [
    "ValidityMonitor",
    "ReliableProgram",
    "with_retries",
    "FaultOutcome",
    "ResilienceReport",
    "resilience_check",
    "fault_grid",
    "corruption_grid",
    "DEFAULT_FAULT_GRID",
    "proper_coloring_validator",
    "independent_set_validator",
    "maximal_independent_set_validator",
    "stock_validator",
    "CLASSIFICATIONS",
]

#: The three verdicts of :func:`resilience_check`, strongest first.
CLASSIFICATIONS = ("self-healing", "degraded-but-valid", "unsafe")

Validator = Callable[[Graph, Dict[Vertex, Any]], List[str]]


# ---------------------------------------------------------------------------
# safety invariants
# ---------------------------------------------------------------------------

def proper_coloring_validator(graph: Graph, outputs: Dict[Vertex, Any]) -> List[str]:
    """Violations of properness over the committed (non-None) colors."""
    problems: List[str] = []
    for v, color in outputs.items():
        if color is None:
            continue
        for u in graph.neighbors_view(v):
            if outputs.get(u) is not None and outputs[u] == color and repr(v) < repr(u):
                problems.append(f"adjacent nodes {v!r} and {u!r} share color {color!r}")
    return problems


def independent_set_validator(graph: Graph, outputs: Dict[Vertex, Any]) -> List[str]:
    """Violations of independence over the committed membership bits."""
    problems: List[str] = []
    for v, joined in outputs.items():
        if not joined:
            continue
        for u in graph.neighbors_view(v):
            if outputs.get(u) and repr(v) < repr(u):
                problems.append(f"adjacent nodes {v!r} and {u!r} both joined the set")
    return problems


def maximal_independent_set_validator(
    graph: Graph, outputs: Dict[Vertex, Any]
) -> List[str]:
    """Independence plus maximality over fully committed neighborhoods.

    The stabilization experiments need this stronger check: a corrupted
    member flipped *out* of the set violates nothing the independence
    validator can see, but it leaves its neighborhood uncovered.  A node
    counts as uncovered only when it and every neighbor have committed
    boolean ``False`` -- undecided (``None``) nodes anywhere in the
    closed neighborhood suppress the check, so a partially completed run
    under channel faults stays degraded rather than unsafe.
    """
    problems = independent_set_validator(graph, outputs)
    for v, joined in outputs.items():
        if joined is not False:
            continue
        closed = [outputs.get(u) for u in graph.neighbors_view(v)]
        if all(flag is False for flag in closed):
            problems.append(
                f"node {v!r} and its whole neighborhood are outside the set"
            )
    return problems


def _bfs_validator(root: Vertex) -> Validator:
    """Distances may only *overestimate* under message loss, never lie low."""

    def validate(graph: Graph, outputs: Dict[Vertex, Any]) -> List[str]:
        true_dist: Dict[Vertex, int] = {root: 0}
        frontier = [root]
        while frontier:
            nxt: List[Vertex] = []
            for v in frontier:
                for u in graph.neighbors_view(v):
                    if u not in true_dist:
                        true_dist[u] = true_dist[v] + 1
                        nxt.append(u)
            frontier = nxt
        problems: List[str] = []
        for v, claimed in outputs.items():
            if claimed is None:
                continue
            truth = true_dist.get(v)
            if truth is None or claimed < truth:
                problems.append(
                    f"node {v!r} claims distance {claimed} but the true "
                    f"distance is {truth}"
                )
        return problems

    return validate


def _leader_validator(graph: Graph, outputs: Dict[Vertex, Any]) -> List[str]:
    """An elected leader must at least be an existing vertex id."""
    ids = set(graph.vertices())
    return [
        f"node {v!r} elected non-existent leader {leader!r}"
        for v, leader in outputs.items()
        if leader is not None and leader not in ids
    ]


def _echo_validator(graph: Graph, outputs: Dict[Vertex, Any]) -> List[str]:
    """A convergecast count can undershoot under loss but never overshoot."""
    n = len(graph)
    return [
        f"node {v!r} reports subtree size {count} on a {n}-node tree"
        for v, count in outputs.items()
        if count is not None and not 1 <= count <= n
    ]


def _gather_validator(graph: Graph, outputs: Dict[Vertex, Any]) -> List[str]:
    """A gathered ball may be incomplete under loss, but never wrong."""
    problems: List[str] = []
    for v, ball in outputs.items():
        if ball is None:
            continue
        known = set(ball.states)
        reachable = {v}
        frontier = [v]
        for _ in range(ball.radius):
            nxt: List[Vertex] = []
            for w in frontier:
                for u in graph.neighbors_view(w):
                    if u not in reachable:
                        reachable.add(u)
                        nxt.append(u)
            frontier = nxt
        extra = known - reachable
        if extra:
            problems.append(
                f"node {v!r} claims to know {sorted(map(repr, extra))} "
                f"outside its radius-{ball.radius} ball"
            )
        for a, b in ball.edges:
            if not graph.has_edge(a, b):
                problems.append(f"node {v!r} claims non-edge {(a, b)!r}")
    return problems


def stock_validator(kind: str, graph: Graph, root: Optional[Vertex] = None) -> Validator:
    """The safety validator for one stock-program kind.

    ``kind`` is one of ``coloring`` (proper coloring), ``mis``
    (independence), ``mis-maximal`` (independence plus maximality over
    fully committed neighborhoods -- the stabilization invariant),
    ``bfs`` (needs ``root``), ``leader``, ``echo``, ``gather``.
    Validators check *safety* only -- what a partial or degraded output
    must never violate -- so an incomplete answer under faults is
    degraded, not unsafe.
    """
    if kind == "coloring":
        return proper_coloring_validator
    if kind == "mis":
        return independent_set_validator
    if kind == "mis-maximal":
        return maximal_independent_set_validator
    if kind == "bfs":
        if root is None:
            raise ValueError("bfs validator needs the root vertex")
        return _bfs_validator(root)
    if kind == "leader":
        return _leader_validator
    if kind == "echo":
        return _echo_validator
    if kind == "gather":
        return _gather_validator
    raise ValueError(
        f"unknown validator kind {kind!r}; expected coloring/mis/"
        "mis-maximal/bfs/leader/echo/gather"
    )


# ---------------------------------------------------------------------------
# round-level invariant monitoring
# ---------------------------------------------------------------------------

class ValidityMonitor(TraceSink):
    """Re-checks a safety invariant over tentative outputs every round.

    Attach *after* constructing the network (it needs to read program
    state): ``monitor = ValidityMonitor(net, validator); net.add_sink
    (monitor)``.  After each round it validates the current per-node
    ``output`` attributes and records the rounds at which violations
    were present; :attr:`first_violation_round` is ``None`` for a run
    that never went invalid, which is the fact the resilience
    classification consumes.

    Under state corruption (:class:`~repro.localmodel.faults
    .CorruptSpec`) the monitor additionally reports the stabilization
    profile: :attr:`corruption_round` (when the first corruption
    actually mutated state), :attr:`detection_latency` (rounds from that
    corruption until the monitor first observed a violation), and
    :attr:`recovery_rounds` (length of the observed invalid window when
    the run re-legalized; ``None`` while still invalid).  All three are
    ``None``/0 in the obvious degenerate cases -- no corruption, no
    observed violation -- so a fault-free run reads as closure: legal
    configurations stay legal.
    """

    def __init__(self, network: SyncNetwork, validator: Validator):
        """Watch ``network``, re-running ``validator`` after every round."""
        self.network = network
        self.validator = validator
        self.violations: List[Tuple[int, List[str]]] = []
        self.last_round: Optional[int] = None

    @property
    def first_violation_round(self) -> Optional[int]:
        """The earliest round with an invariant violation, if any."""
        return self.violations[0][0] if self.violations else None

    @property
    def corruption_round(self) -> Optional[int]:
        """The round after which state corruption first struck, if any."""
        runtime = self.network._fault_runtime
        if runtime is None or not runtime.corruption_rounds:
            return None
        return runtime.corruption_rounds[0]

    @property
    def detection_latency(self) -> Optional[int]:
        """Rounds from the first corruption to the first observed violation.

        ``None`` when no corruption struck or no violation was ever
        observed (an ineffective corruption, or one repaired within the
        same round it landed).
        """
        corrupted = self.corruption_round
        first = self.first_violation_round
        if corrupted is None or first is None or first < corrupted:
            return None
        return first - corrupted

    @property
    def recovered(self) -> bool:
        """True when the final observed round satisfied the invariant."""
        if self.last_round is None:
            return not self.violations
        return not self.violations or self.violations[-1][0] < self.last_round

    @property
    def recovery_rounds(self) -> Optional[int]:
        """Length of the observed invalid window, once re-legalized.

        0 when the run never went invalid (closure); ``None`` when the
        last observed round was still invalid (no convergence).
        """
        if not self.violations:
            return 0
        if not self.recovered:
            return None
        return self.violations[-1][0] - self.violations[0][0] + 1

    def stabilization(self) -> Dict[str, Any]:
        """The stabilization profile as a JSON-plain dict."""
        return {
            "corruption_round": self.corruption_round,
            "first_violation_round": self.first_violation_round,
            "detection_latency": self.detection_latency,
            "recovery_rounds": self.recovery_rounds,
            "recovered": self.recovered,
        }

    def on_round(
        self,
        round_no: int,
        messages: List[MessageRecord],
        completed: List[Vertex],
        active_count: int,
    ) -> None:
        """Validate the tentative outputs as they stand after this round."""
        self.last_round = round_no
        tentative = {
            v: p.output for v, p in self.network.programs.items()
        }
        problems = self.validator(self.network.graph, tentative)
        if problems:
            self.violations.append((round_no, problems))


# ---------------------------------------------------------------------------
# the retry/ack wrapper
# ---------------------------------------------------------------------------

@dataclass
class _Outstanding:
    """One unacknowledged data message awaiting resend or ack."""

    payload: Any
    resends: int
    next_resend: int


class ReliableProgram(NodeProgram):
    """Wraps a node program in an ack/retry envelope protocol.

    Every inner message travels as a sequence-numbered ``("data", seq,
    payload)`` entry inside a per-edge envelope ``("env", acks, data)``;
    the receiver acknowledges each sequence number in its next round's
    envelope and delivers each number to the inner program exactly once
    (network duplicates and redundant resends are filtered).  A message
    unacknowledged after ``timeout`` rounds is re-sent, each retry
    doubling its wait (exponential backoff), up to ``max_resends``
    times.  Rounds spent waiting are ordinary rounds -- the inner
    program sees the true round number, so reliability is *paid for* in
    round complexity, exactly as the issue demands of a fair comparison.

    The wrapper steps the inner program under the scheduler's own
    contract: at round 0, when data arrived, when the inner program
    requested a wakeup, or when it declares ``always_active``.  If the
    inner program emits several messages to the same neighbor before the
    link recovers, they are queued and delivered one per round in order.
    """

    always_active = True

    def __init__(
        self,
        node: Vertex,
        neighbors: List[Vertex],
        inner_factory: Callable[[Vertex, List[Vertex]], NodeProgram],
        timeout: int = 2,
        max_resends: int = 3,
    ):
        """Wrap ``inner_factory(node, neighbors)`` in the ack envelope.

        ``timeout`` is the rounds to wait before the first resend (then
        exponential backoff); ``max_resends`` bounds the retries per
        message before the envelope gives up (counted in ``gave_up``).
        """
        super().__init__(node, neighbors)
        if timeout < 1:
            raise ValueError(f"timeout must be >= 1 round, got {timeout}")
        if max_resends < 0:
            raise ValueError(f"max_resends must be >= 0, got {max_resends}")
        self.inner = inner_factory(node, list(neighbors))
        self.timeout = timeout
        self.max_resends = max_resends
        self.gave_up = 0
        self._next_seq = 0
        #: neighbor -> {seq: outstanding message}
        self._outstanding: Dict[Vertex, Dict[int, _Outstanding]] = {}
        #: neighbor -> seqs already delivered to the inner program
        self._seen: Dict[Vertex, set] = {}
        #: neighbor -> payloads waiting to enter the inner inbox in order
        self._inbound: Dict[Vertex, List[Any]] = {}
        #: neighbor -> seqs to acknowledge in the next envelope
        self._ack_due: Dict[Vertex, List[int]] = {}

    def _receive(self, ctx: NodeContext) -> None:
        """Unwrap envelopes: collect acks owed and de-duplicated data."""
        for u, envelope in ctx.inbox.items():
            tag, acks, data = envelope
            if tag != "env":  # pragma: no cover - foreign traffic guard
                raise ValueError(f"non-envelope message from {u!r}: {envelope!r}")
            mine = self._outstanding.get(u)
            if mine:
                for seq in acks:
                    mine.pop(seq, None)
            seen = self._seen.setdefault(u, set())
            for seq, payload in data:
                self._ack_due.setdefault(u, []).append(seq)
                if seq not in seen:
                    seen.add(seq)
                    self._inbound.setdefault(u, []).append(payload)

    def _should_step_inner(self, inner_inbox: Mapping[Vertex, Any], round_no: int) -> bool:
        if self.inner.done:
            return False
        if round_no == 0 or inner_inbox or self.inner.always_active:
            return True
        if self.inner._wake_requested:
            self.inner._wake_requested = False
            return True
        return False

    def step(self, ctx: NodeContext) -> Mapping[Vertex, Any]:
        """One synchronous round: unwrap, step the inner program, resend."""
        self._receive(ctx)

        inner_inbox: Dict[Vertex, Any] = {}
        for u, queue in self._inbound.items():
            if queue:
                inner_inbox[u] = queue.pop(0)

        fresh: Mapping[Vertex, Any] = {}
        if self._should_step_inner(inner_inbox, ctx.round_number):
            inner_ctx = NodeContext(
                node=self.node,
                neighbors=list(self.neighbors),
                round_number=ctx.round_number,
                inbox=inner_inbox,
            )
            fresh = self.inner.step(inner_ctx) or {}

        data_out: Dict[Vertex, List[Tuple[int, Any]]] = {}
        for u, payload in fresh.items():
            seq = self._next_seq
            self._next_seq += 1
            self._outstanding.setdefault(u, {})[seq] = _Outstanding(
                payload=payload,
                resends=0,
                next_resend=ctx.round_number + self.timeout,
            )
            data_out.setdefault(u, []).append((seq, payload))

        # timed-out messages: resend with backoff, or give up
        for u, entries in self._outstanding.items():
            for seq in list(entries):
                entry = entries[seq]
                if ctx.round_number < entry.next_resend:
                    continue
                if entry.resends >= self.max_resends:
                    del entries[seq]
                    self.gave_up += 1
                    continue
                entry.resends += 1
                entry.next_resend = ctx.round_number + self.timeout * (
                    2 ** entry.resends
                )
                data_out.setdefault(u, []).append((seq, entry.payload))

        outbox: Dict[Vertex, Any] = {}
        targets = set(data_out) | set(self._ack_due)
        for u in targets:
            acks = tuple(self._ack_due.pop(u, ()))
            data = tuple(data_out.get(u, ()))
            outbox[u] = ("env", acks, data)

        still_waiting = any(self._outstanding.get(u) for u in self._outstanding)
        if self.inner.done and not still_waiting and not outbox:
            self.done = True
            self.output = self.inner.output
        elif self.inner.done:
            self.output = self.inner.output
        return outbox


def with_retries(
    inner_factory: Callable[[Vertex, List[Vertex]], NodeProgram],
    timeout: int = 2,
    max_resends: int = 3,
) -> Callable[[Vertex, List[Vertex]], ReliableProgram]:
    """A program factory wrapping ``inner_factory`` in :class:`ReliableProgram`."""

    def factory(node: Vertex, neighbors: List[Vertex]) -> ReliableProgram:
        return ReliableProgram(
            node, neighbors, inner_factory, timeout=timeout, max_resends=max_resends
        )

    return factory


# ---------------------------------------------------------------------------
# the classification sweep
# ---------------------------------------------------------------------------

def fault_grid(
    drop_rates: Sequence[float] = (0.05, 0.15, 0.3),
    seeds: Sequence[int] = (1, 2),
    burst: Optional[Tuple[int, int]] = (2, 4),
    extra: Sequence[FaultPlan] = (),
) -> Tuple[FaultPlan, ...]:
    """The default sweep grid: Bernoulli drops crossed with seeds + a burst.

    ``extra`` appends arbitrary additional plans -- the pluggability hook
    that lets corruption plans (:func:`corruption_grid`) or any
    hand-built :class:`~repro.localmodel.faults.FaultPlan` join the same
    classifier loop without copy-pasting it.
    """
    plans = [
        FaultPlan(seed=seed, drop=rate) for rate in drop_rates for seed in seeds
    ]
    if burst is not None:
        plans.append(FaultPlan(bursts=(burst,)))
    plans.extend(extra)
    return tuple(plans)


def corruption_grid(
    victims: Sequence[Vertex],
    rounds: Sequence[int],
    kinds: Sequence[str] = ("color", "mis", "ball", "scramble"),
    seed: int = 1,
) -> Tuple[FaultPlan, ...]:
    """Single-corruption plans: one per (victim, round, kind) combination.

    Each plan injects exactly one transient :class:`~repro.localmodel
    .faults.CorruptSpec`, which is the granularity the stabilization
    table classifies at (one corrupted node, measured recovery).  Feed
    the result to :func:`resilience_check` directly, or through
    ``fault_grid(..., extra=...)`` to mix corruption into a channel
    sweep.
    """
    from .faults import CorruptSpec

    return tuple(
        FaultPlan(seed=seed, corrupts=(CorruptSpec(v, r, kind),))
        for v in victims
        for r in rounds
        for kind in kinds
    )


#: The grid ``repro faults --sweep`` and the F7 experiment run by default.
DEFAULT_FAULT_GRID: Tuple[FaultPlan, ...] = fault_grid()


@dataclass(frozen=True)
class FaultOutcome:
    """What one program did under one fault plan."""

    plan: str
    complete: bool
    valid: bool
    matches_baseline: bool
    rounds: int
    extra_rounds: int
    injected: Dict[str, int]
    problems: Tuple[str, ...] = ()
    error: Optional[str] = None


@dataclass
class ResilienceReport:
    """Outcome of :func:`resilience_check`: grid results + classification."""

    baseline_rounds: int
    outcomes: List[FaultOutcome] = field(default_factory=list)

    @property
    def classification(self) -> str:
        """``self-healing`` / ``degraded-but-valid`` / ``unsafe`` (see module doc)."""
        if any(not o.valid for o in self.outcomes):
            return "unsafe"
        if all(o.complete and o.matches_baseline for o in self.outcomes):
            return "self-healing"
        return "degraded-but-valid"

    @property
    def rounds_to_recover(self) -> Optional[int]:
        """Worst extra rounds over completed runs (None if none completed)."""
        completed = [o.extra_rounds for o in self.outcomes if o.complete]
        return max(completed) if completed else None


def _run_once(
    graph: Graph,
    factory: Callable[[Vertex, List[Vertex]], NodeProgram],
    faults: Optional[FaultPlan],
    max_rounds: int,
    recovery: str = "intact",
    checkpoint_every: Optional[int] = None,
) -> Tuple[SyncNetwork, Optional[Dict[Vertex, Any]], Optional[str]]:
    net = SyncNetwork(
        graph,
        factory,
        faults=faults,
        recovery=recovery,
        checkpoint_every=checkpoint_every,
    )
    try:
        outputs = net.run(max_rounds=max_rounds)
    except RuntimeError as exc:
        # starvation or budget exhaustion: a *loud* failure, not a
        # silently wrong answer -- the partial outputs still get validated
        return net, None, str(exc).splitlines()[0]
    return net, outputs, None


def resilience_check(
    graph: Graph,
    program_factory: Callable[[Vertex, List[Vertex]], NodeProgram],
    validator: Validator,
    grid: Sequence[FaultPlan] = DEFAULT_FAULT_GRID,
    max_rounds: int = 10_000,
    recovery: str = "intact",
    checkpoint_every: Optional[int] = None,
) -> ResilienceReport:
    """Run one program across a grid of fault plans and classify it.

    The baseline (fault-free) run supplies the reference outputs and
    round count; each grid plan then runs the same factory on the same
    graph.  A run that starves or exhausts ``max_rounds`` counts as
    incomplete (degraded) and its partial outputs are still validated --
    the one unforgivable outcome is an *invalid* output, which makes the
    whole program ``unsafe``.  Analogous to
    :func:`~repro.localmodel.shadow.shadow_check`, and like it requires
    a re-constructible program factory.

    ``grid`` is fully pluggable: any sequence of plans works, including
    corruption plans from :func:`corruption_grid` or a mixed grid from
    ``fault_grid(..., extra=...)``.  ``recovery``/``checkpoint_every``
    pass through to every faulty :class:`~repro.localmodel.network
    .SyncNetwork` (the baseline always runs fault-free with defaults).
    """
    base_net, baseline, error = _run_once(graph, program_factory, None, max_rounds)
    if error is not None or baseline is None:
        raise RuntimeError(
            f"baseline (fault-free) run did not complete: {error}"
        )
    baseline_rounds = base_net.stats.rounds

    report = ResilienceReport(baseline_rounds=baseline_rounds)
    for plan in grid:
        net, outputs, error = _run_once(
            graph,
            program_factory,
            plan,
            max_rounds,
            recovery=recovery,
            checkpoint_every=checkpoint_every,
        )
        tentative = {v: p.output for v, p in net.programs.items()}
        problems = validator(graph, tentative)
        complete = outputs is not None
        report.outcomes.append(
            FaultOutcome(
                plan=plan.spec(),
                complete=complete,
                valid=not problems,
                matches_baseline=complete and outputs == baseline,
                rounds=net.stats.rounds,
                extra_rounds=net.stats.rounds - baseline_rounds,
                injected=net.fault_summary() or {},
                problems=tuple(problems),
                error=error,
            )
        )
    return report
