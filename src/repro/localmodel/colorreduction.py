"""Deterministic O(log* n) coloring of paths (Cole-Vishkin / Linial).

The interval subroutines of the paper ([21]'s ColIntGraph, [31]'s
MISUnitInterval) hide an O(log* n) symmetry-breaking step.  This module
implements the classic one: Linial's color reduction via polynomial
set systems, specialized to maximum degree 2 (the clique paths and vertex
paths the library runs it on).

One reduction round: given a proper c-coloring, interpret each color as a
polynomial f of degree <= d over F_q (base-q digits as coefficients), with
q prime, q >= 2d + 1 and q^{d+1} >= c.  Each node picks the smallest
i in F_q with f_v(i) != f_u(i) for both neighbors u -- at most
Delta * d = 2d < q points are bad, so i exists -- and adopts the pair
(i, f_v(i)) as its new color in [q^2].  Properness is guaranteed no matter
what the neighbors pick.  Iterating shrinks the palette to 25 in log* c
rounds; a final sweep retires colors 25..4 one round each, reaching 3.

Two executions are provided:

* :func:`three_color_path` -- fast lock-step simulation on an explicit
  path, returning colors and the exact number of communication rounds;
* :class:`LinialPathProgram` -- the same algorithm as a genuine
  message-passing :class:`~repro.localmodel.network.NodeProgram`, used by
  the equivalence tests.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..graphs.index import GraphIndex
from .executor import BatchKernel, KernelIneligible
from .network import NodeContext, NodeProgram, SyncNetwork

__all__ = [
    "linial_parameters",
    "linial_new_color",
    "three_color_path",
    "LinialPathProgram",
    "LinialPathKernel",
    "LINIAL_FIXPOINT",
]

#: The palette size Linial reduction cannot improve on for Delta = 2.
LINIAL_FIXPOINT = 25


def _is_prime(x: int) -> bool:
    if x < 2:
        return False
    f = 2
    while f * f <= x:
        if x % f == 0:
            return False
        f += 1
    return True


def _next_prime(x: int) -> int:
    while not _is_prime(x):
        x += 1
    return x


def linial_parameters(c: int) -> Optional[Tuple[int, int]]:
    """Best (q, d) for one reduction round from palette size ``c``.

    Returns the pair minimizing the new palette size q^2, subject to
    q prime, q >= 2d + 1 and q^{d+1} >= c; ``None`` when no choice makes
    progress (q^2 < c), which happens exactly at c <= LINIAL_FIXPOINT.
    """
    best: Optional[Tuple[int, int]] = None
    d = 1
    while True:
        floor_q_sq = (2 * d + 1) ** 2
        if best is not None and floor_q_sq >= best[0] ** 2:
            break  # larger d cannot beat the current best
        if floor_q_sq >= c:
            break  # larger d cannot even make progress
        lower = max(2 * d + 1, _ceil_root(c, d + 1))
        q = _next_prime(lower)
        if q * q < c:  # q^{d+1} >= c holds by the choice of `lower`
            if best is None or q * q < best[0] ** 2:
                best = (q, d)
        d += 1
    return best


def _ceil_root(c: int, k: int) -> int:
    """Smallest integer r with r^k >= c (exact, float used only as a hint)."""
    r = max(1, int(c ** (1.0 / k)))
    while r**k < c:
        r += 1
    while r > 1 and (r - 1) ** k >= c:
        r -= 1
    return r


def _poly_eval(color: int, q: int, d: int, i: int) -> int:
    """Evaluate the degree-<=d polynomial encoded by ``color`` at i in F_q."""
    value = 0
    power = 1
    rest = color
    for _ in range(d + 1):
        coeff = rest % q
        rest //= q
        value = (value + coeff * power) % q
        power = (power * i) % q
    return value


def linial_new_color(color: int, neighbor_colors: Sequence[int], q: int, d: int) -> int:
    """One node's reduction step: the pair (i, f(i)) encoded as i*q + f(i)."""
    for i in range(q):
        mine = _poly_eval(color, q, d, i)
        if all(_poly_eval(nc, q, d, i) != mine for nc in neighbor_colors):
            return i * q + mine
    raise AssertionError(
        "no evaluation point available; parameters violate q > Delta*d"
    )


def _reduction_schedule(id_bound: int) -> List[Tuple[int, int]]:
    """The deterministic (q, d) sequence all nodes agree on from the ID bound."""
    schedule = []
    c = id_bound
    while True:
        params = linial_parameters(c)
        if params is None:
            return schedule
        schedule.append(params)
        c = params[0] ** 2


def three_color_path(
    ids: Sequence[int],
) -> Tuple[Dict[int, int], int]:
    """3-color a path of distinct non-negative IDs; returns (colors, rounds).

    ``ids`` lists the path vertices end to end.  The simulation is
    lock-step: every round consists of all nodes exchanging colors with
    their path neighbors and recomputing.  Rounds counted:

    * 1 round to learn neighbors' initial colors (IDs are known to
      neighbors in the LOCAL model, so this round is free and not counted),
    * 1 round per Linial reduction step,
    * 1 round per retired color in the final 25 -> 3 sweep.
    """
    n = len(ids)
    if len(set(ids)) != n:
        raise ValueError("path IDs must be distinct")
    if any(i < 0 for i in ids):
        raise ValueError("path IDs must be non-negative")
    if n == 0:
        return {}, 0
    colors: Dict[int, int] = {v: v for v in ids}
    rounds = 0
    id_bound = max(ids) + 1

    def neighbor_colors(idx: int) -> List[int]:
        out = []
        if idx > 0:
            out.append(colors[ids[idx - 1]])
        if idx < n - 1:
            out.append(colors[ids[idx + 1]])
        return out

    for q, d in _reduction_schedule(id_bound):
        new = {
            v: linial_new_color(colors[v], neighbor_colors(idx), q, d)
            for idx, v in enumerate(ids)
        }
        colors = new
        rounds += 1

    # Final sweep: palette is now <= LINIAL_FIXPOINT, colors in [0, 24];
    # shift to 1..25 then retire 25..4 one per round.
    colors = {v: c + 1 for v, c in colors.items()}
    palette = min(LINIAL_FIXPOINT, id_bound)
    for retire in range(palette, 3, -1):
        new = dict(colors)
        for idx, v in enumerate(ids):
            if colors[v] == retire:
                used = set(neighbor_colors(idx))
                new[v] = min(c for c in (1, 2, 3) if c not in used)
        colors = new
        rounds += 1
    return colors, rounds


class LinialPathProgram(NodeProgram):
    """Message-passing version of :func:`three_color_path`.

    Every node must be told the global ID bound (standard in the LOCAL
    model: IDs come from a known polynomial range).  The node's final color
    lands in :attr:`output`.

    Acts on silence: path endpoints have one neighbor, and a degenerate
    one-vertex path has none, yet every node must advance its reduction
    schedule each round regardless of what arrives.
    """

    always_active = True

    def __init__(self, node: int, neighbors: List[int], id_bound: int):
        """``id_bound`` bounds the initial color space (colors start as IDs)."""
        super().__init__(node, neighbors)
        if len(neighbors) > 2:
            raise ValueError("LinialPathProgram requires maximum degree 2")
        self.color = node
        self.schedule = _reduction_schedule(id_bound)
        self.stage = 0
        self.retire = min(LINIAL_FIXPOINT, id_bound)
        self.shifted = False

    def step(self, ctx: NodeContext) -> Mapping[int, int]:
        """Advance one stage of the reduction schedule and announce the color."""
        nbr_colors = list(ctx.inbox.values())
        if ctx.round_number == 0:
            # First round: announce initial color (the ID).
            return self.broadcast(self.color)
        if self.stage < len(self.schedule):
            q, d = self.schedule[self.stage]
            self.color = linial_new_color(self.color, nbr_colors, q, d)
            self.stage += 1
            return self.broadcast(self.color)
        if not self.shifted:
            # Palette <= 25; shift into 1..25.  Neighbors' inbox values are
            # also unshifted at this instant, so shift them locally too.
            self.color += 1
            nbr_colors = [c + 1 for c in nbr_colors]
            self.shifted = True
        if self.retire > 3:
            if self.color == self.retire:
                self.color = min(c for c in (1, 2, 3) if c not in nbr_colors)
            self.retire -= 1
            return self.broadcast(self.color)
        self.done = True
        self.output = self.color
        return {}


class LinialPathKernel(BatchKernel):
    """Whole-round compilation of :class:`LinialPathProgram`.

    The program is already lock-step -- every node broadcasts every
    non-final round and advances the same globally agreed schedule -- so
    the compiled form is the obvious synchronous simulation over id
    arrays: round 0 announces IDs, rounds ``1..S`` apply the Linial
    reduction to the *previous* round's colors (exactly what the inbox
    holds), round ``S + 1`` shifts the palette into ``1..25``, the next
    ``K = max(0, min(25, id_bound) - 3)`` rounds retire one color each,
    and the final round terminates silently.  Message accounting is
    uniform by construction: every non-final round costs the total
    degree sum, the final round costs nothing.

    Eligibility requires the network to be homogeneous (one shared
    ``id_bound``, hence one schedule and retire start) and unstarted;
    anything else raises :class:`KernelIneligible`.
    """

    def __init__(self, net: SyncNetwork, index: GraphIndex):
        """Validate homogeneity and snapshot the initial colors."""
        super().__init__(net, index)
        programs = list(net.programs.values())
        first = programs[0]
        schedule = first.schedule
        retire = first.retire
        n = index.n
        self._programs: List[LinialPathProgram] = [first] * n
        self._colors: List[int] = [0] * n
        vid = index.vid
        for p in programs:
            if p.schedule != schedule or p.retire != retire:
                raise KernelIneligible(
                    "LinialPathProgram instances disagree on the id bound"
                )
            if p.done or p.shifted or p.stage != 0:
                raise KernelIneligible("a program instance is already mid-run")
            i = vid[p.node]
            self._programs[i] = p
            self._colors[i] = p.color
        self._schedule = schedule
        self._retire_start = retire
        #: rounds 0 .. S + K inclusive broadcast; round S + K + 1 is final
        self._last_round = len(schedule) + max(0, retire - 3) + 1
        indptr, indices = index.indptr, index.indices
        self._nbrs: List[List[int]] = [
            indices[indptr[i]:indptr[i + 1]] for i in range(n)
        ]
        self._total_deg = indptr[n]
        self._round_no = 0

    @property
    def done(self) -> bool:
        """All programs terminate together, in round ``S + K + 1``."""
        return self._round_no > self._last_round

    def round(self) -> Tuple[int, int]:
        """Advance all nodes one lock-step stage of the shared schedule."""
        t = self._round_no
        self._round_no = t + 1
        schedule = self._schedule
        stages = len(schedule)
        colors = self._colors
        nbrs = self._nbrs
        if 1 <= t <= stages:
            q, d = schedule[t - 1]
            self._colors = [
                linial_new_color(colors[i], [colors[u] for u in nbrs[i]], q, d)
                for i in range(len(colors))
            ]
        elif t == stages + 1:
            # shift the palette into 1..25; neighbors shift in the same
            # instant, so comparisons stay consistent (the program shifts
            # its unshifted inbox values the same way)
            colors = self._colors = [c + 1 for c in colors]
        if t == self._last_round:
            return 0, 0
        if stages + 1 <= t <= self._last_round - 1:
            retire = self._retire_start - (t - stages - 1)
            self._colors = [
                min(
                    c
                    for c in (1, 2, 3)
                    if all(colors[u] != c for u in nbrs[i])
                )
                if colors[i] == retire
                else colors[i]
                for i in range(len(colors))
            ]
        sent = self._total_deg
        return sent, sent

    def finalize(self) -> None:
        """Leave the state the per-node path would: colors, flags, outputs."""
        retire_end = 3 if self._retire_start > 3 else self._retire_start
        stages = len(self._schedule)
        for i, p in enumerate(self._programs):
            color = self._colors[i]
            p.color = color
            p.stage = stages
            p.retire = retire_end
            p.shifted = True
            p.done = True
            p.output = color


LinialPathProgram.batch_kernel = LinialPathKernel
