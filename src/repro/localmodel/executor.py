"""Bulk-synchronous batch execution: whole-round kernels over the CSR index.

The LOCAL model is bulk-synchronous: a round is "everyone computes, then
everyone exchanges".  :class:`~repro.localmodel.network.SyncNetwork`
realizes a round as N per-node :meth:`NodeProgram.step` calls, each with
its own context object, inbox dict, and outbox validation -- faithful,
observable, and (at n >= 10^4) dominated by Python dispatch rather than
by the algorithm's own payload work.

:class:`BatchExecutor` removes that dispatch for the homogeneous program
families the library actually runs at scale.  A program class may declare
a :class:`BatchKernel` (class attribute
:attr:`~repro.localmodel.network.NodeProgram.batch_kernel`): a compiled
form of its ``step`` that advances *the whole network* one round at a
time as flat loops over the :class:`~repro.graphs.index.GraphIndex`
(dense int ids, CSR adjacency) instead of per-node calls.  Programs
without a kernel fall back to the per-node scheduler transparently.

Equivalence contract (pinned by ``tests/localmodel/test_executor.py``):

* **outputs** -- byte-identical per-node outputs, in the same
  vertex-insertion order as :meth:`SyncNetwork.outputs`;
* **round counts and stats** -- the kernel reports per-round
  ``(sent, delivered)`` pairs folded through the same
  :meth:`RunStats.record_round`, so ``rounds``, ``messages_sent``,
  ``messages_delivered`` and ``max_messages_per_round`` all match the
  per-node path exactly;
* **matrix-invariant** -- the guarantee holds across
  scheduler{active,dense} x sealed{True,False}: both knobs are
  behavior-preserving for conforming programs (the per-node equivalence
  suites assert that), so the kernel can ignore them.

What batch mode refuses (and why):

* a **non-empty** :class:`~repro.localmodel.faults.FaultPlan` -- fault
  decisions are per-(round, sender, receiver) and interleave with
  delivery; that is exactly the per-message machinery the kernel
  compiles away.  ``mode="batch"`` raises :class:`ValueError`;
  ``mode="auto"`` routes fault runs to the per-node path.  An *empty*
  plan is inert by the fault layer's own contract and does not block.
* attached **trace sinks** -- sinks observe per-message
  :class:`~repro.localmodel.network.MessageRecord` lists; building them
  would reintroduce the per-message cost batch mode exists to remove.
* an **inbox_order** seed -- the determinism sanitizer permutes real
  inbox dicts, which the kernel never materializes.
* a **heterogeneous** network -- mixed program classes, or one class
  constructed with mismatched parameters (kernels raise
  :class:`KernelIneligible` while validating).

``mode`` selects the dispatch: ``"node"`` always runs the per-node
scheduler, ``"batch"`` demands the kernel (raising ``ValueError`` with
the blocking reason otherwise), and ``"auto"`` -- the default everywhere
a caller does not care -- picks the kernel exactly when every condition
above holds.  :meth:`BatchExecutor.plan` answers which path a run would
take, and why, without running it.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..graphs.adjacency import Graph, Vertex
from ..graphs.index import GraphIndex, graph_index
from .network import NodeProgram, RunStats, SyncNetwork, TraceSink

__all__ = [
    "EXECUTORS",
    "BatchExecutor",
    "BatchKernel",
    "KernelIneligible",
]

#: The executor modes accepted by :class:`BatchExecutor` and every
#: ``executor=`` parameter threaded through the library.
EXECUTORS = ("node", "batch", "auto")


class KernelIneligible(Exception):
    """A kernel declined this network (mixed parameters, odd initial state).

    Raised by :class:`BatchKernel` constructors while validating the
    program instances; :class:`BatchExecutor` turns it into a silent
    per-node fallback under ``mode="auto"`` and a :class:`ValueError`
    under ``mode="batch"``.
    """


class BatchKernel:
    """Whole-round kernel contract: one object advancing all nodes at once.

    A kernel is constructed with the (unstarted) network and the cached
    :class:`~repro.graphs.index.GraphIndex` of its graph; the constructor
    must validate that every program instance carries the configuration
    the kernel compiled for, raising :class:`KernelIneligible` otherwise.
    The executor then alternates:

    * :meth:`round` -- execute one whole synchronous round; returns the
      round's ``(sent, delivered)`` message counts under the library's
      send-vs-deliver contract (on the reliable networks batch mode
      accepts, the two are equal and counted in the sending round,
      matching :meth:`SyncNetwork.step_round`);
    * :attr:`done` -- True once every node's program would have set
      ``done`` on the per-node path; checked *before* each round, so a
      kernel needing ``r`` rounds completes within ``max_rounds=r``;
    * :meth:`finalize` -- called once after completion: write each
      program's ``output`` and flip its ``done`` flag, so
      :meth:`SyncNetwork.outputs` and downstream introspection see
      exactly what the per-node path would have left behind.
    """

    def __init__(self, net: SyncNetwork, index: GraphIndex):
        """Bind the network; subclasses validate and build their arrays."""
        self.net = net
        self.index = index

    @property
    def done(self) -> bool:
        """Whether every program would be ``done`` on the per-node path."""
        raise NotImplementedError

    def round(self) -> Tuple[int, int]:
        """Execute one whole round; return its ``(sent, delivered)`` counts."""
        raise NotImplementedError

    def finalize(self) -> None:
        """Write ``output``/``done`` onto the program instances."""
        raise NotImplementedError


class BatchExecutor:
    """Run a homogeneous node-program network as whole-round kernels.

    Drop-in front-end over :class:`SyncNetwork`: same constructor
    surface (graph, factory, ``sealed``, ``scheduler``, ``sinks``,
    ``inbox_order``, ``faults``) plus ``mode`` in :data:`EXECUTORS`.
    :meth:`run` returns the same outputs dict, :attr:`stats` the same
    :class:`RunStats`, and :meth:`outputs` the same snapshot as the
    underlying network -- whichever path executed.
    """

    def __init__(
        self,
        graph: Graph,
        program_factory: Callable[[Vertex, List[Vertex]], NodeProgram],
        sealed: bool = False,
        scheduler: str = "active",
        sinks: Optional[List[TraceSink]] = None,
        inbox_order: Optional[int] = None,
        faults: Optional[Any] = None,
        mode: str = "auto",
    ):
        """Build the underlying network; ``mode`` picks the dispatch."""
        if mode not in EXECUTORS:
            raise ValueError(
                f"unknown executor mode {mode!r}; expected one of {EXECUTORS}"
            )
        self.mode = mode
        self.network = SyncNetwork(
            graph,
            program_factory,
            sealed=sealed,
            scheduler=scheduler,
            sinks=sinks,
            inbox_order=inbox_order,
            faults=faults,
        )
        #: which path :meth:`run` actually took: "batch", "node", or None
        #: before any run.
        self.executed: Optional[str] = None
        #: why :meth:`run` fell back to the per-node path: the joined
        #: blocker list (auto-mode plan fallback), the kernel's own
        #: ineligibility message (:class:`KernelIneligible` at run
        #: time), or None when the batch path ran or ``mode`` forced the
        #: outcome without a fallback.
        self.fallback_reason: Optional[str] = None

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    @property
    def stats(self) -> RunStats:
        """The underlying network's round/message accounting."""
        return self.network.stats

    def outputs(self) -> Dict[Vertex, Any]:
        """Snapshot of ``{node: program.output}`` (same order as the network)."""
        return self.network.outputs()

    def _batch_blockers(self) -> List[str]:
        """Why batch mode cannot run this network ([] when it can)."""
        net = self.network
        blockers: List[str] = []
        faults = net.faults
        if faults is not None and not faults.is_empty():
            blockers.append(
                "fault plan is non-empty: fault injection is per-message "
                "and requires the per-node path"
            )
        if net.sinks:
            blockers.append(
                "trace sinks are attached: per-message records require "
                "the per-node path"
            )
        if net.inbox_order is not None:
            blockers.append(
                "inbox_order is set: the determinism sanitizer permutes "
                "real inboxes, which batch mode never materializes"
            )
        if net.stats.rounds:
            blockers.append("the network has already executed rounds")
        classes = {type(p) for p in net.programs.values()}
        if len(classes) > 1:
            names = ", ".join(sorted(c.__name__ for c in classes))
            blockers.append(f"mixed program classes ({names})")
        elif classes:
            cls = classes.pop()
            if cls.batch_kernel is None:
                blockers.append(
                    f"{cls.__name__} declares no batch kernel"
                )
        return blockers

    def plan(self) -> Tuple[str, List[str]]:
        """Which path a run would take: ``("batch" | "node", blockers)``.

        ``mode="node"`` always plans ``"node"``; ``mode="auto"`` plans
        ``"batch"`` exactly when there are no blockers.  ``mode="batch"``
        plans ``"batch"`` unconditionally -- :meth:`run` raises on the
        returned blockers instead of falling back.  Kernel-side
        validation (:class:`KernelIneligible`) happens at run time and
        is not visible here.
        """
        if self.mode == "node":
            return "node", []
        blockers = self._batch_blockers()
        if self.mode == "batch":
            return "batch", blockers
        return ("node" if blockers else "batch"), blockers

    def run(self, max_rounds: int = 10_000) -> Dict[Vertex, Any]:
        """Run to completion; same contract as :meth:`SyncNetwork.run`.

        Returns the per-node outputs; raises ``RuntimeError`` when the
        round budget is exhausted with programs still running (the
        budget is exact on both paths: a run needing ``r`` rounds
        succeeds with ``max_rounds=r``).  Under ``mode="batch"`` an
        ineligible network raises :class:`ValueError` up front.
        """
        path, blockers = self.plan()
        if path == "node":
            self.executed = "node"
            self.fallback_reason = "; ".join(blockers) or None
            return self.network.run(max_rounds=max_rounds)
        if blockers:  # mode == "batch" with unmet requirements
            raise ValueError(
                "batch executor cannot run this network: " + "; ".join(blockers)
            )
        net = self.network
        if not net.programs:
            # an empty graph completes in zero rounds on both paths
            self.executed = "batch"
            self.fallback_reason = None
            return net.outputs()
        kernel_cls = next(iter(net.programs.values())).batch_kernel
        assert kernel_cls is not None  # plan() checked
        try:
            kernel: BatchKernel = kernel_cls(net, graph_index(net.graph))
        except KernelIneligible as exc:
            if self.mode == "batch":
                raise ValueError(
                    f"batch executor cannot run this network: {exc}"
                ) from exc
            self.executed = "node"
            self.fallback_reason = str(exc)
            return self.network.run(max_rounds=max_rounds)
        self.executed = "batch"
        self.fallback_reason = None
        stats = net.stats
        for _round in range(max_rounds):
            if kernel.done:
                break
            sent, delivered = kernel.round()
            stats.record_round(sent, delivered)
        if not kernel.done:
            raise RuntimeError(
                f"network did not terminate within {max_rounds} rounds; "
                f"{len(net.programs)} nodes still running"
            )
        kernel.finalize()
        return net.outputs()
