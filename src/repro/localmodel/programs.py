"""Stock message-passing programs for the synchronous simulator.

Small self-contained :class:`NodeProgram` implementations that exercise
the engine and serve as building blocks:

* :class:`BFSLayerProgram` -- distance from a root via flooding (the
  textbook BFS tree; distance output doubles as a termination witness);
* :class:`LeaderElectionProgram` -- minimum-ID leader election by
  flooding, terminating after a given round budget (diameter bound);
* :class:`EchoCountProgram` -- convergecast on a rooted tree: the root
  learns the number of nodes (the "echo" half of propagation of
  information with feedback).

These run on arbitrary graphs and are used in tests both for their own
behavior and as evidence the engine delivers/synchronizes correctly.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Set

from ..graphs.adjacency import Graph, Vertex
from .network import NodeContext, NodeProgram, SyncNetwork

__all__ = [
    "BFSLayerProgram",
    "LeaderElectionProgram",
    "EchoCountProgram",
    "bfs_layers",
    "elect_leader",
    "tree_count",
]


class BFSLayerProgram(NodeProgram):
    """Distance-from-root by flooding; output = the distance (or None).

    Acts on silence: termination is a round-count check, so the node must
    be stepped even in rounds where nothing arrives.
    """

    always_active = True

    def __init__(self, node: Vertex, neighbors: List[Vertex], root: Vertex, budget: int):
        """Flood distances from ``root``; give up after ``budget`` rounds."""
        super().__init__(node, neighbors)
        self.distance: Optional[int] = 0 if node == root else None
        self.budget = budget
        self.announced = False

    def step(self, ctx: NodeContext) -> Mapping[Vertex, Any]:
        """Adopt the smallest announced distance + 1; flood improvements."""
        for _, dist in ctx.inbox.items():
            candidate = dist + 1
            if self.distance is None or candidate < self.distance:
                self.distance = candidate
        if ctx.round_number >= self.budget:
            self.done = True
            self.output = self.distance
            return {}
        if self.distance is not None and not self.announced:
            self.announced = True
            return self.broadcast(self.distance)
        return {}


def bfs_layers(
    graph: Graph,
    root: Vertex,
    budget: Optional[int] = None,
    sealed: bool = False,
    scheduler: str = "active",
) -> Dict[Vertex, Optional[int]]:
    """Distances from ``root`` computed by message passing."""
    budget = budget if budget is not None else len(graph) + 1
    net = SyncNetwork(
        graph,
        lambda v, nbrs: BFSLayerProgram(v, nbrs, root, budget),
        sealed=sealed,
        scheduler=scheduler,
    )
    return net.run(max_rounds=budget + 2)


class LeaderElectionProgram(NodeProgram):
    """Minimum-ID flooding election; output = the elected leader's ID.

    Acts on silence: the diameter-budget countdown runs whether or not a
    better candidate arrives.
    """

    always_active = True

    def __init__(self, node: Vertex, neighbors: List[Vertex], budget: int):
        """Start with self as candidate; decide after ``budget`` rounds."""
        super().__init__(node, neighbors)
        self.best = node
        self.budget = budget

    def step(self, ctx: NodeContext) -> Mapping[Vertex, Any]:
        """Adopt and re-flood any smaller candidate ID seen this round."""
        improved = False
        for candidate in ctx.inbox.values():
            if candidate < self.best:
                self.best = candidate
                improved = True
        if ctx.round_number >= self.budget:
            self.done = True
            self.output = self.best
            return {}
        if ctx.round_number == 0 or improved:
            return self.broadcast(self.best)
        return {}


def elect_leader(
    graph: Graph,
    budget: Optional[int] = None,
    sealed: bool = False,
    scheduler: str = "active",
) -> Dict[Vertex, Vertex]:
    """Every node's view of the leader after ``budget`` rounds."""
    budget = budget if budget is not None else len(graph) + 1
    net = SyncNetwork(
        graph,
        lambda v, nbrs: LeaderElectionProgram(v, nbrs, budget),
        sealed=sealed,
        scheduler=scheduler,
    )
    return net.run(max_rounds=budget + 2)


class EchoCountProgram(NodeProgram):
    """Convergecast subtree sizes toward a root of a tree.

    Leaves report 1; internal nodes wait for all children then report
    1 + sum.  The root's output is n; other nodes output their subtree
    size.  Requires the communication graph to be a tree.

    Purely event-driven: after the round-0 step a node changes state only
    upon receiving a child's report, so the active-set scheduler may
    legitimately skip it while its subtree is still counting -- the
    declaration below asserts exactly that.
    """

    always_active = False

    def __init__(self, node: Vertex, neighbors: List[Vertex], root: Vertex):
        """Convergecast subtree sizes toward ``root`` (graph must be a tree)."""
        super().__init__(node, neighbors)
        self.root = root
        self.reported: Dict[Vertex, int] = {}
        self.sent = False

    def step(self, ctx: NodeContext) -> Mapping[Vertex, Any]:
        """Leaves report 1; internal nodes sum children, then report up."""
        self.reported.update(ctx.inbox)
        pending = [u for u in self.neighbors if u not in self.reported]
        subtree = 1 + sum(self.reported.values())
        if self.node == self.root:
            if not pending:
                self.done = True
                self.output = subtree
            return {}
        if len(pending) == 1 and not self.sent:
            # every child reported; the remaining neighbor is the parent,
            # and sending upward completes this node's role
            self.sent = True
            self.done = True
            self.output = subtree
            return {pending[0]: subtree}
        return {}


def tree_count(
    tree: Graph, root: Vertex, sealed: bool = False, scheduler: str = "active"
) -> int:
    """The number of tree nodes, learned by the root via convergecast."""
    if len(tree) == 1:
        return 1
    net = SyncNetwork(
        tree,
        lambda v, nbrs: EchoCountProgram(v, nbrs, root),
        sealed=sealed,
        scheduler=scheduler,
    )
    outputs = net.run(max_rounds=4 * len(tree) + 8)
    return outputs[root]
