"""Stock message-passing programs for the synchronous simulator.

Small self-contained :class:`NodeProgram` implementations that exercise
the engine and serve as building blocks:

* :class:`BFSLayerProgram` -- distance from a root via flooding (the
  textbook BFS tree; distance output doubles as a termination witness);
* :class:`LeaderElectionProgram` -- minimum-ID leader election by
  flooding, terminating after a given round budget (diameter bound);
* :class:`EchoCountProgram` -- convergecast on a rooted tree: the root
  learns the number of nodes (the "echo" half of propagation of
  information with feedback).

These run on arbitrary graphs and are used in tests both for their own
behavior and as evidence the engine delivers/synchronizes correctly.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Set, Tuple

from ..graphs.adjacency import Graph, Vertex
from ..graphs.index import GraphIndex
from .executor import EXECUTORS, BatchExecutor, BatchKernel, KernelIneligible
from .network import NodeContext, NodeProgram, SyncNetwork

__all__ = [
    "BFSLayerProgram",
    "BFSLayerKernel",
    "LeaderElectionProgram",
    "EchoCountProgram",
    "bfs_layers",
    "elect_leader",
    "tree_count",
]


class BFSLayerProgram(NodeProgram):
    """Distance-from-root by flooding; output = the distance (or None).

    Acts on silence: termination is a round-count check, so the node must
    be stepped even in rounds where nothing arrives.
    """

    always_active = True

    def __init__(self, node: Vertex, neighbors: List[Vertex], root: Vertex, budget: int):
        """Flood distances from ``root``; give up after ``budget`` rounds."""
        super().__init__(node, neighbors)
        self.distance: Optional[int] = 0 if node == root else None
        self.budget = budget
        self.announced = False

    def step(self, ctx: NodeContext) -> Mapping[Vertex, Any]:
        """Adopt the smallest announced distance + 1; flood improvements."""
        for _, dist in ctx.inbox.items():
            candidate = dist + 1
            if self.distance is None or candidate < self.distance:
                self.distance = candidate
        if ctx.round_number >= self.budget:
            self.done = True
            self.output = self.distance
            return {}
        if self.distance is not None and not self.announced:
            self.announced = True
            return self.broadcast(self.distance)
        return {}


class BFSLayerKernel(BatchKernel):
    """Whole-round compilation of :class:`BFSLayerProgram`.

    The per-node program is BFS flooding in disguise, so the compiled
    form is literal BFS: :meth:`GraphIndex.bfs_frontiers` computes every
    layer up front, and each :meth:`round` merely charges the messages
    the per-node path would exchange -- a node at distance ``d``
    announces exactly once, in round ``d``, at a cost of its degree,
    provided ``d <= budget - 1`` (in round ``d >= budget`` the
    countdown fires before the announcement).  A node's distance becomes
    known in the round it merges an announcement, so the final output is
    ``d`` when ``d <= budget`` and ``None`` beyond (or unreached).

    Multi-source instances (several programs constructed with
    ``distance == 0``) compile fine -- the frontier helper takes a source
    *set* -- but any program already mid-run raises
    :class:`KernelIneligible`.
    """

    def __init__(self, net: SyncNetwork, index: GraphIndex):
        """Validate homogeneity, then run the BFS once."""
        super().__init__(net, index)
        programs = list(net.programs.values())
        budget = programs[0].budget
        vid = index.vid
        sources: List[int] = []
        self._programs: Dict[int, BFSLayerProgram] = {}
        if budget < 0:
            # the per-node countdown still steps one round before firing;
            # the compiled form has no such round, so decline
            raise KernelIneligible("negative budget requires the per-node path")
        for p in programs:
            if p.budget != budget:
                raise KernelIneligible(
                    "BFSLayerProgram instances disagree on budget"
                )
            if p.done or p.announced or p.distance not in (0, None):
                raise KernelIneligible("a program instance is already mid-run")
            i = vid[p.node]
            self._programs[i] = p
            if p.distance == 0:
                sources.append(i)
        self.budget = budget
        #: layers[d] = sorted ids at distance d, up to the budget cutoff
        self._layers = index.bfs_frontiers(sources, cutoff=budget)
        self._round_no = 0

    @property
    def done(self) -> bool:
        """All programs terminate together, right after round ``budget``."""
        return self._round_no > self.budget

    def round(self) -> Tuple[int, int]:
        """Charge the round's announcements: degree sum over one layer."""
        t = self._round_no
        self._round_no = t + 1
        if t > self.budget - 1 or t >= len(self._layers):
            return 0, 0
        degrees = self.index.degrees
        sent = sum(degrees[i] for i in self._layers[t])
        return sent, sent

    def finalize(self) -> None:
        """Write distances (and the announced flags) the flood would leave."""
        announce_cap = self.budget - 1
        dist: Dict[int, int] = {}
        for d, layer in enumerate(self._layers):
            for i in layer:
                dist[i] = d
        for i, p in self._programs.items():
            d = dist.get(i)
            p.done = True
            p.distance = d
            p.output = d
            p.announced = d is not None and d <= announce_cap


BFSLayerProgram.batch_kernel = BFSLayerKernel


def bfs_layers(
    graph: Graph,
    root: Vertex,
    budget: Optional[int] = None,
    sealed: bool = False,
    scheduler: str = "active",
    executor: str = "auto",
) -> Dict[Vertex, Optional[int]]:
    """Distances from ``root`` computed by message passing.

    ``executor`` picks the dispatch
    (:data:`~repro.localmodel.executor.EXECUTORS`): under the default
    ``"auto"`` the run compiles to :class:`BFSLayerKernel`; outputs and
    round/message accounting are identical on both paths.
    """
    if executor not in EXECUTORS:
        raise ValueError(
            f"unknown executor {executor!r}; expected one of {EXECUTORS}"
        )
    budget = budget if budget is not None else len(graph) + 1
    net = BatchExecutor(
        graph,
        lambda v, nbrs: BFSLayerProgram(v, nbrs, root, budget),
        sealed=sealed,
        scheduler=scheduler,
        mode=executor,
    )
    return net.run(max_rounds=budget + 2)


class LeaderElectionProgram(NodeProgram):
    """Minimum-ID flooding election; output = the elected leader's ID.

    Acts on silence: the diameter-budget countdown runs whether or not a
    better candidate arrives.
    """

    always_active = True

    def __init__(self, node: Vertex, neighbors: List[Vertex], budget: int):
        """Start with self as candidate; decide after ``budget`` rounds."""
        super().__init__(node, neighbors)
        self.best = node
        self.budget = budget

    def step(self, ctx: NodeContext) -> Mapping[Vertex, Any]:
        """Adopt and re-flood any smaller candidate ID seen this round."""
        improved = False
        for candidate in ctx.inbox.values():
            if candidate < self.best:
                self.best = candidate
                improved = True
        if ctx.round_number >= self.budget:
            self.done = True
            self.output = self.best
            return {}
        if ctx.round_number == 0 or improved:
            return self.broadcast(self.best)
        return {}


def elect_leader(
    graph: Graph,
    budget: Optional[int] = None,
    sealed: bool = False,
    scheduler: str = "active",
) -> Dict[Vertex, Vertex]:
    """Every node's view of the leader after ``budget`` rounds."""
    budget = budget if budget is not None else len(graph) + 1
    net = SyncNetwork(
        graph,
        lambda v, nbrs: LeaderElectionProgram(v, nbrs, budget),
        sealed=sealed,
        scheduler=scheduler,
    )
    return net.run(max_rounds=budget + 2)


class EchoCountProgram(NodeProgram):
    """Convergecast subtree sizes toward a root of a tree.

    Leaves report 1; internal nodes wait for all children then report
    1 + sum.  The root's output is n; other nodes output their subtree
    size.  Requires the communication graph to be a tree.

    Purely event-driven: after the round-0 step a node changes state only
    upon receiving a child's report, so the active-set scheduler may
    legitimately skip it while its subtree is still counting -- the
    declaration below asserts exactly that.
    """

    always_active = False

    def __init__(self, node: Vertex, neighbors: List[Vertex], root: Vertex):
        """Convergecast subtree sizes toward ``root`` (graph must be a tree)."""
        super().__init__(node, neighbors)
        self.root = root
        self.reported: Dict[Vertex, int] = {}
        self.sent = False

    def step(self, ctx: NodeContext) -> Mapping[Vertex, Any]:
        """Leaves report 1; internal nodes sum children, then report up."""
        self.reported.update(ctx.inbox)
        pending = [u for u in self.neighbors if u not in self.reported]
        subtree = 1 + sum(self.reported.values())
        if self.node == self.root:
            if not pending:
                self.done = True
                self.output = subtree
            return {}
        if len(pending) == 1 and not self.sent:
            # every child reported; the remaining neighbor is the parent,
            # and sending upward completes this node's role
            self.sent = True
            self.done = True
            self.output = subtree
            return {pending[0]: subtree}
        return {}


def tree_count(
    tree: Graph, root: Vertex, sealed: bool = False, scheduler: str = "active"
) -> int:
    """The number of tree nodes, learned by the root via convergecast."""
    if len(tree) == 1:
        return 1
    net = SyncNetwork(
        tree,
        lambda v, nbrs: EchoCountProgram(v, nbrs, root),
        sealed=sealed,
        scheduler=scheduler,
    )
    outputs = net.run(max_rounds=4 * len(tree) + 8)
    return outputs[root]
