"""Round-by-round tracing of synchronous network runs.

Debugging a distributed algorithm means asking "who sent what, when, and
what did each node believe at that moment".  :class:`TracedNetwork` wraps
:class:`~repro.localmodel.network.SyncNetwork`, recording every round's
messages and completions, and renders a textual timeline
(:meth:`TracedNetwork.timeline`) like::

    round 0: 4 msgs | sent: 0->1, 1->0, 1->2, 2->1
    round 1: 2 msgs | done: 0, 2 | sent: 1->0, 1->2
    round 2: 0 msgs | done: 1

Traces are plain data (:class:`RoundTrace`), so tests can assert on exact
communication patterns -- e.g. that the paper's ball-gathering really
floods only for ``radius`` rounds, or that Luby's algorithm goes quiet
exactly when every node decides.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..graphs.adjacency import Graph, Vertex
from .network import NodeProgram, SyncNetwork

__all__ = ["MessageRecord", "RoundTrace", "TracedNetwork"]


@dataclass(frozen=True)
class MessageRecord:
    sender: Vertex
    receiver: Vertex
    payload: Any


@dataclass
class RoundTrace:
    round_number: int
    messages: List[MessageRecord] = field(default_factory=list)
    completed: List[Vertex] = field(default_factory=list)

    @property
    def message_count(self) -> int:
        return len(self.messages)


class TracedNetwork:
    """A SyncNetwork that records per-round message and completion logs."""

    def __init__(
        self,
        graph: Graph,
        program_factory: Callable[[Vertex, List[Vertex]], NodeProgram],
        sealed: bool = False,
    ):
        self.network = SyncNetwork(graph, program_factory, sealed=sealed)
        self.rounds: List[RoundTrace] = []

    def run(self, max_rounds: int = 10_000) -> Dict[Vertex, Any]:
        for _ in range(max_rounds):
            if all(p.done for p in self.network.programs.values()):
                return self.network.outputs()
            self.step_round()
        raise RuntimeError(f"traced network did not finish in {max_rounds} rounds")

    def step_round(self) -> None:
        before_done = {
            v for v, p in self.network.programs.items() if p.done
        }
        self.network.step_round()
        trace = RoundTrace(round_number=len(self.rounds))
        for receiver, inbox in self.network._pending.items():
            for sender, payload in inbox.items():
                trace.messages.append(MessageRecord(sender, receiver, payload))
        trace.messages.sort(key=lambda m: (str(m.sender), str(m.receiver)))
        trace.completed = sorted(
            (
                v
                for v, p in self.network.programs.items()
                if p.done and v not in before_done
            ),
            key=str,
        )
        self.rounds.append(trace)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def total_messages(self) -> int:
        return sum(r.message_count for r in self.rounds)

    def quiet_rounds(self) -> List[int]:
        """Rounds in which nothing was sent."""
        return [r.round_number for r in self.rounds if r.message_count == 0]

    def timeline(self, max_messages_per_round: int = 8) -> str:
        lines = []
        for r in self.rounds:
            parts = [f"round {r.round_number}: {r.message_count} msgs"]
            if r.completed:
                parts.append("done: " + ", ".join(str(v) for v in r.completed))
            if r.messages:
                shown = r.messages[:max_messages_per_round]
                rendered = ", ".join(
                    f"{m.sender}->{m.receiver}" for m in shown
                )
                if len(r.messages) > len(shown):
                    rendered += f", ... (+{len(r.messages) - len(shown)})"
                parts.append("sent: " + rendered)
            lines.append(" | ".join(parts))
        return "\n".join(lines)
