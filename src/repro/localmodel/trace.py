"""Round-by-round tracing of synchronous network runs, as trace sinks.

Debugging a distributed algorithm means asking "who sent what, when, and
what did each node believe at that moment".  Observability attaches to
:class:`~repro.localmodel.network.SyncNetwork` through the
:class:`~repro.localmodel.network.TraceSink` protocol -- the network
calls ``on_round(round_no, messages, completed, active_count)`` after
every executed round, with messages and completions already in canonical
natural-vertex order (``0, 1, 2, ..., 10, 11`` for integer ids).  This
module provides the stock sinks:

* :class:`RecordingSink` -- keeps every round as a :class:`RoundTrace`;
* :class:`MetricsSink` -- per-round message/active-node histograms and
  per-round wall time, without retaining payloads;
* :class:`JSONLTraceSink` -- streams one JSON object per round (the
  ``repro trace --jsonl`` export; schema in ``docs/tracing.md``).

:class:`TracedNetwork` remains the one-line convenience wrapper: a
:class:`SyncNetwork` with a :class:`RecordingSink` attached, rendering a
textual timeline (:meth:`TracedNetwork.timeline`) like::

    round 0: 4 msgs | sent: 0->1, 1->0, 1->2, 2->1
    round 1: 2 msgs | done: 0, 2 | sent: 1->0, 1->2
    round 2: 0 msgs | done: 1

Traces are plain data (:class:`RoundTrace`), so tests can assert on exact
communication patterns -- e.g. that the paper's ball-gathering really
floods only for ``radius`` rounds, or that Luby's algorithm goes quiet
exactly when every node decides.  Because sinks fire from inside the
network, traces stay complete and correctly numbered even when a caller
interleaves direct ``network.step_round()`` calls with the wrapper's:
``RoundTrace.round_number`` is the network's own round counter, never a
separately maintained count.
"""

from __future__ import annotations

import dataclasses
import json
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, IO, List, Optional, Tuple, Union

from ..graphs.adjacency import Graph, Vertex
from .network import MessageRecord, NodeProgram, SyncNetwork, TraceSink, vertex_key
from .sealed import FrozenMessageDict

if TYPE_CHECKING:  # pragma: no cover - types only
    from .faults import FaultPlan

__all__ = [
    "MessageRecord",
    "RoundTrace",
    "RecordingSink",
    "MetricsSink",
    "JSONLTraceSink",
    "TracedNetwork",
    "jsonable_payload",
]


@dataclass
class RoundTrace:
    """Everything one round did: messages, completions, active count."""
    round_number: int
    messages: List[MessageRecord] = field(default_factory=list)
    completed: List[Vertex] = field(default_factory=list)
    active_count: int = 0

    @property
    def message_count(self) -> int:
        """Number of message records this round."""
        return len(self.messages)


class RecordingSink(TraceSink):
    """Keeps every round as a :class:`RoundTrace` (what TracedNetwork uses)."""

    def __init__(self) -> None:
        """Start with an empty round log."""
        self.rounds: List[RoundTrace] = []

    def on_round(self, round_no, messages, completed, active_count) -> None:
        """Append the round, asserting the round numbers stay gap-free."""
        # round_no is the network's own counter; a fresh sink sees rounds
        # 0, 1, 2, ... with no gaps, so recording position and network
        # round number must agree -- drift here means the engine skipped
        # a notification (the bug this assertion guards against).
        if self.rounds and round_no != self.rounds[-1].round_number + 1:
            raise AssertionError(
                f"trace drift: round {round_no} followed "
                f"{self.rounds[-1].round_number}"
            )
        self.rounds.append(
            RoundTrace(round_no, list(messages), list(completed), active_count)
        )


class MetricsSink(TraceSink):
    """Per-round metrics without payload retention.

    Records, per round: message count, active (stepped) node count,
    completion count, and wall-clock time (measured between successive
    ``on_round`` calls, so a round's figure includes its delivery and
    bookkeeping).  Histograms aggregate the per-round series for quick
    "how quiet was this run" answers.
    """

    def __init__(self) -> None:
        """Start all per-round series empty; the wall clock starts now."""
        self.message_counts: List[int] = []
        self.active_counts: List[int] = []
        self.completed_counts: List[int] = []
        self.wall_times: List[float] = []
        self._last = time.perf_counter()

    def on_round(self, round_no, messages, completed, active_count) -> None:
        """Append this round's counts and the wall time since the last."""
        now = time.perf_counter()
        self.wall_times.append(now - self._last)
        self._last = now
        self.message_counts.append(len(messages))
        self.active_counts.append(active_count)
        self.completed_counts.append(len(completed))

    @staticmethod
    def _histogram(series: List[int]) -> Dict[int, int]:
        out: Dict[int, int] = {}
        for value in series:
            out[value] = out.get(value, 0) + 1
        return dict(sorted(out.items()))

    def message_histogram(self) -> Dict[int, int]:
        """messages-per-round -> number of rounds with that count."""
        return self._histogram(self.message_counts)

    def active_histogram(self) -> Dict[int, int]:
        """active-nodes-per-round -> number of rounds with that count."""
        return self._histogram(self.active_counts)

    def summary(self) -> Dict[str, Any]:
        """Aggregates: rounds, totals, maxima, quiet rounds, wall time."""
        rounds = len(self.message_counts)
        return {
            "rounds": rounds,
            "messages": sum(self.message_counts),
            "max_messages_per_round": max(self.message_counts, default=0),
            "max_active": max(self.active_counts, default=0),
            "total_steps": sum(self.active_counts),
            "quiet_rounds": sum(1 for m in self.message_counts if m == 0),
            "wall_seconds": sum(self.wall_times),
        }


def jsonable_payload(payload: Any) -> Any:
    """Message payloads as JSON-encodable data (tuples/sets/frozen -> lists).

    Payload containers become lists/objects recursively; dataclass
    instances render as ``{"<ClassName>": {field: value, ...}}`` so their
    *contents* are compared rather than a ``repr`` that leaks dict/set
    insertion order (which would make the shadow-execution determinism
    check flag semantically equal values); anything else non-encodable
    falls back to ``str``.  Lossy but deterministic, which is the right
    trade for a trace meant to be diffed and grepped.
    """
    if isinstance(payload, FrozenMessageDict):
        payload = dict(payload)
    if dataclasses.is_dataclass(payload) and not isinstance(payload, type):
        return {
            type(payload).__name__: {
                f.name: jsonable_payload(getattr(payload, f.name))
                for f in dataclasses.fields(payload)
            }
        }
    if isinstance(payload, dict):
        return {str(k): jsonable_payload(v) for k, v in payload.items()}
    if isinstance(payload, (list, tuple)):
        return [jsonable_payload(v) for v in payload]
    if isinstance(payload, (set, frozenset)):
        return sorted((jsonable_payload(v) for v in payload), key=repr)
    if payload is None or isinstance(payload, (bool, int, float, str)):
        return payload
    return str(payload)


class JSONLTraceSink(TraceSink):
    """Streams one JSON object per round (schema: ``docs/tracing.md``).

    Accepts an open text stream or a path; pass ``payloads=False`` to
    drop message payloads (sender/receiver pairs only), which keeps
    traces of payload-heavy protocols like ball gathering small.
    """

    def __init__(self, target: Union[str, IO[str]], payloads: bool = True):
        """Write to ``target`` (path or open stream); ``payloads=False`` slims records."""
        if hasattr(target, "write"):
            self._stream: IO[str] = target  # type: ignore[assignment]
            self._owns = False
        else:
            self._stream = open(target, "w")
            self._owns = True
        self.payloads = payloads
        self.rounds_written = 0

    def on_round(self, round_no, messages, completed, active_count) -> None:
        """Serialize the round as one JSON line (sorted keys, no gaps)."""
        record: Dict[str, Any] = {
            "round": round_no,
            "active": active_count,
            "message_count": len(messages),
            "messages": [
                {"from": jsonable_payload(m.sender), "to": jsonable_payload(m.receiver)}
                | ({"payload": jsonable_payload(m.payload)} if self.payloads else {})
                | ({"status": m.status} if m.status != "delivered" else {})
                for m in messages
            ],
            "completed": [jsonable_payload(v) for v in completed],
        }
        self._stream.write(json.dumps(record, sort_keys=True) + "\n")
        self.rounds_written += 1

    def close(self) -> None:
        """Flush, and close the stream iff this sink opened it."""
        self._stream.flush()
        if self._owns:
            self._stream.close()

    def __enter__(self) -> "JSONLTraceSink":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class TracedNetwork:
    """A SyncNetwork with a recording sink: per-round message/completion logs."""

    def __init__(
        self,
        graph: Graph,
        program_factory: Callable[[Vertex, List[Vertex]], NodeProgram],
        sealed: bool = False,
        scheduler: str = "active",
        sinks: Optional[List[TraceSink]] = None,
        faults: Optional["FaultPlan"] = None,
        recovery: str = "intact",
        checkpoint_every: Optional[int] = None,
    ):
        """Build the network with a :class:`RecordingSink` ahead of ``sinks``.

        ``recovery``/``checkpoint_every`` pass straight through to
        :class:`~repro.localmodel.network.SyncNetwork` (crash-recover
        state policy and checkpoint cadence; see docs/faults.md).
        """
        self._sink = RecordingSink()
        self.network = SyncNetwork(
            graph,
            program_factory,
            sealed=sealed,
            scheduler=scheduler,
            sinks=[self._sink, *(sinks or [])],
            faults=faults,
            recovery=recovery,
            checkpoint_every=checkpoint_every,
        )

    @property
    def rounds(self) -> List[RoundTrace]:
        """The recorded :class:`RoundTrace` log so far."""
        return self._sink.rounds

    def run(self, max_rounds: int = 10_000) -> Dict[Vertex, Any]:
        """Run the wrapped network to completion."""
        return self.network.run(max_rounds=max_rounds)

    def step_round(self) -> None:
        """Advance the wrapped network one round."""
        self.network.step_round()

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def total_messages(self) -> int:
        """Messages sent across all recorded rounds."""
        return sum(r.message_count for r in self.rounds)

    def quiet_rounds(self) -> List[int]:
        """Rounds in which nothing was sent."""
        return [r.round_number for r in self.rounds if r.message_count == 0]

    def timeline(self, max_messages_per_round: int = 8) -> str:
        """Human-readable per-round log, payloads elided beyond the cap."""
        lines = []
        for r in self.rounds:
            parts = [f"round {r.round_number}: {r.message_count} msgs"]
            if r.completed:
                parts.append("done: " + ", ".join(str(v) for v in r.completed))
            if r.messages:
                shown = r.messages[:max_messages_per_round]
                rendered = ", ".join(
                    f"{m.sender}->{m.receiver}" for m in shown
                )
                if len(r.messages) > len(shown):
                    rendered += f", ... (+{len(r.messages) - len(shown)})"
                parts.append("sent: " + rendered)
            lines.append(" | ".join(parts))
        return "\n".join(lines)
