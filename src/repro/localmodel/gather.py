"""Ball gathering: the fundamental LOCAL-model primitive.

In the LOCAL model with unbounded message sizes, ``r`` communication rounds
are exactly equivalent to every node learning its radius-``r`` ball -- the
induced topology plus all initial states within distance ``r``.  The paper
leans on this equivalence everywhere ("collect Gamma^{10k}(v)" in
Algorithm 3, "nodes can check locally whether ..." in Section 6.2).

Two node programs realize the primitive on
:class:`~repro.localmodel.network.SyncNetwork`:

* :class:`BallGatherProgram` is the faithful *full flood*: every round
  each node re-broadcasts everything it has learned so far.  Simple, but
  the volume is Theta(r * sum-of-ball-sizes-squared) facts -- the reason
  the message-level experiments were historically pinned at small n.
* :class:`DeltaGatherProgram` is the *output-sensitive* rewrite and the
  default of :func:`gather_balls`: each node forwards only facts (states,
  edges) first learned in the previous round, excluding per neighbor
  whatever that neighbor itself delivered, so no fact ever crosses the
  same edge twice in the same direction.  Total volume is O(sum over
  edges of the facts that actually cross them), and payloads intern
  vertex labels to the dense integer ids of
  :class:`~repro.graphs.index.GraphIndex` so the hot path hashes ints,
  not arbitrary labels.

Equivalence argument (tested exhaustively in
``tests/localmodel/test_gather_delta.py``): a fact first learned by a node
in round ``t`` is forwarded in round ``t + 1`` to every neighbor not
already known to hold it, so each fact spreads along exactly the BFS
frontier of its origin -- the same frontier the full flood drives.  The
per-neighbor exclusion only suppresses transmissions whose receiver
provably already holds the fact (it delivered the fact to us in the same
round we learned it), which are no-op merges at the receiver.
Termination is the same ``round_number >= radius`` countdown in both
programs, so outputs *and* round counts are identical.

:func:`gather_balls` packages a full run; the equivalence tests check its
output against direct BFS, which is what entitles the layered algorithms
to use the cheaper accounting of :mod:`repro.localmodel.rounds`.
:func:`_reference_gather` runs the retained full flood, for equivalence
tests and benchmarks.
"""

from __future__ import annotations

import gc
from bisect import bisect_left
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from ..graphs.adjacency import Graph, Vertex
from ..graphs.index import GraphIndex, graph_index
from .executor import EXECUTORS, BatchExecutor, BatchKernel, KernelIneligible
from .network import NodeContext, NodeProgram, SyncNetwork, TraceSink

__all__ = [
    "KnownBall",
    "BallGatherProgram",
    "DeltaGatherProgram",
    "DeltaGatherKernel",
    "gather_balls",
]

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .faults import FaultPlan


@dataclass
class KnownBall:
    """What a node knows after gathering: topology + states within radius.

    After an ``r``-round gather the center knows the state of every
    vertex in ``Gamma^r[v]`` (:attr:`states`) and every edge with at
    least one endpoint in ``Gamma^r[v]`` (:attr:`edges`) -- including a
    fringe of edges leading to vertices at distance ``r + 1``, whose IDs
    are visible but whose states are not.
    """

    center: Vertex
    radius: int
    #: vertex -> its initial state; the keys are exactly Gamma^r[center]
    states: Dict[Vertex, Any]
    #: every known edge (each a sorted tuple): at least one endpoint in
    #: Gamma^r[center], fringe edges to distance r + 1 included
    edges: Set[Tuple[Vertex, Vertex]]

    def as_graph(self) -> Graph:
        """The known ball as a graph: exactly ``G[Gamma^r[center]]``.

        Gathering also reveals a fringe of edges toward vertices just
        outside the ball (their IDs are visible but not their states);
        those are kept in :attr:`edges` but excluded here, so the result
        is precisely the subgraph induced by the known vertices.
        """
        inside = set(self.states)
        return Graph(
            vertices=inside,
            edges=[e for e in self.edges if e[0] in inside and e[1] in inside],
        )


class BallGatherProgram(NodeProgram):
    """Flood local knowledge for ``radius`` rounds (the full-flood reference).

    Initial knowledge: own state and own incident edges (a node knows its
    neighbors' IDs in the LOCAL model).  Every round, send all accumulated
    knowledge to all neighbors.  After r rounds the node knows the states
    of Gamma^r[v] and every edge with at least one endpoint in
    Gamma^r[v] -- in particular the full induced subgraph on Gamma^r[v]
    plus its fringe edges, exactly what the local-view construction of
    Section 3 consumes.

    Acts on silence: termination is the ``round_number >= radius`` check,
    which must fire even for an isolated vertex that never receives.
    """

    always_active = True

    def __init__(self, node: Vertex, neighbors: List[Vertex], radius: int, state: Any):
        """Gather to ``radius``; ``state`` is this node's own contribution."""
        super().__init__(node, neighbors)
        self.radius = radius
        self._states: Dict[Vertex, Any] = {node: state}
        self._edges: Set[Tuple[Vertex, Vertex]] = {
            tuple(sorted((node, u))) for u in neighbors
        }

    def step(self, ctx: NodeContext) -> Mapping[Vertex, Any]:
        """Merge received (states, edges), flood the union, stop at ``radius``."""
        for payload in ctx.inbox.values():
            states, edges = payload
            self._states.update(states)
            self._edges.update(edges)
        if ctx.round_number >= self.radius:
            self.done = True
            self.output = KnownBall(
                center=self.node,
                radius=self.radius,
                states=dict(self._states),
                edges=set(self._edges),
            )
            return {}
        return self.broadcast((dict(self._states), set(self._edges)))


class DeltaGatherProgram(NodeProgram):
    """Output-sensitive ball gathering: forward only freshly learned facts.

    Same knowledge contract and round count as :class:`BallGatherProgram`
    (see the module docstring for the equivalence argument), but each
    round a node sends only the facts it first learned in that round's
    merge, minus -- per neighbor -- the facts that neighbor itself
    delivered this round (the only part of the fresh set a neighbor can
    already hold).  A fact therefore crosses each edge at most once per
    direction, making total message volume output-sensitive instead of
    Theta(r * sum |ball|^2).

    Payloads speak :class:`~repro.graphs.index.GraphIndex` integer ids
    rather than vertex labels; ids are order-isomorphic to the label
    order, so the final translation back to labels reproduces the
    reference's sorted edge tuples exactly.

    Acts on silence: termination is the ``round_number >= radius`` check,
    which must fire even for an isolated vertex that never receives.
    """

    always_active = True

    def __init__(
        self,
        node: Vertex,
        neighbors: List[Vertex],
        radius: int,
        state: Any,
        index: GraphIndex,
    ):
        """Gather to ``radius``; ``index`` interns labels to dense ints.

        The shared snapshot is used purely as a naming palette (label <->
        id bijection); the program reads no topology from it beyond what
        the LOCAL model already grants a node (its own neighbor list).
        """
        super().__init__(node, neighbors)
        self.radius = radius
        self._index = index
        me = index.vid[node]
        self._me = me
        self._nbrs: List[Tuple[int, Vertex]] = [(index.vid[u], u) for u in neighbors]
        self._uid_of: Dict[Vertex, int] = {u: uid for uid, u in self._nbrs}
        self._states: Dict[int, Any] = {me: state}
        self._edges: Set[Tuple[int, int]] = set()
        for uid, _u in self._nbrs:
            self._edges.add((me, uid) if me < uid else (uid, me))

    def step(self, ctx: NodeContext) -> Mapping[Vertex, Any]:
        """Merge deltas, forward what is new, stop at ``radius``.

        The per-neighbor filter collapses to one bulk difference because
        a fact is fresh for exactly one round: of this round's fresh set,
        the facts neighbor ``u`` already holds are precisely the facts
        ``u`` delivered to us this round (anything we exchanged with
        ``u`` earlier was fresh then, hence knowledge -- not fresh --
        now).  So the payload for ``u`` is ``fresh - received_from_u``,
        computed with C-speed set algebra on the raw inbox payloads; no
        per-fact Python loops survive on the hot path.
        """
        states = self._states
        edges = self._edges
        fresh_states: Dict[int, Any] = {}
        fresh_edges: Set[Tuple[int, int]] = set()
        #: sender uid -> its raw (states, edges) payload this round
        got: Dict[int, Tuple[Any, Any]] = {}
        round0 = ctx.round_number == 0
        if round0:
            # initial knowledge is this round's delta: own state, own edges
            fresh_states.update(states)
            fresh_edges.update(edges)
        for sender, payload in ctx.inbox.items():
            d_states, d_edges = payload
            # bulk set algebra: the fresh part is payload minus knowledge
            for vid in d_states.keys() - states.keys():
                st = d_states[vid]
                states[vid] = st
                fresh_states[vid] = st
            ce = d_edges - edges
            if ce:
                edges.update(ce)
                fresh_edges.update(ce)
            got[self._uid_of[sender]] = (d_states, d_edges)
        if ctx.round_number >= self.radius:
            self.done = True
            verts = self._index.verts
            edge_labels = self._index.edge_labels
            self.output = KnownBall(
                center=self.node,
                radius=self.radius,
                states={verts[vid]: states[vid] for vid in sorted(states)},
                edges={edge_labels[e] for e in edges},
            )
            return {}
        if not fresh_states and not fresh_edges:
            return {}
        full = (fresh_states, fresh_edges)
        outbox: Dict[Vertex, Any] = {}
        me = self._me
        for uid, u in self._nbrs:
            held = got.get(uid)
            if held is None:
                if round0:
                    # the shared edge is mutual knowledge from round 0
                    # (the neighbor sees my ID); my own state is not
                    shared = (me, uid) if me < uid else (uid, me)
                    outbox[u] = (dict(fresh_states), fresh_edges - {shared})
                else:
                    # nothing to subtract: share one payload object so
                    # sealed mode freezes it once per outbox
                    outbox[u] = full
                continue
            d_states, d_edges = held
            out_states = {
                vid: fresh_states[vid]
                for vid in fresh_states.keys() - d_states.keys()
            }
            # copy-then-subtract: a set copy is near-memcpy, so this is
            # O(|delivered|) probes instead of O(|fresh|) rebuild
            out_edges = set(fresh_edges)
            out_edges.difference_update(d_edges)
            if out_states or out_edges:
                outbox[u] = (out_states, out_edges)
        return outbox


class DeltaGatherKernel(BatchKernel):
    """Whole-round compilation of :class:`DeltaGatherProgram`.

    One :meth:`round` call performs what ``n`` ``step`` calls would:
    merge every node's inbox deltas, then emit next round's per-edge
    payloads -- the same set algebra, in the same id space, on the very
    ``_states``/``_edges`` dicts the program instances own (the kernel
    *is* their execution, so :meth:`finalize` reads the final knowledge
    straight back out of them).  What it skips is pure dispatch: the
    scheduler sort, context construction, ``has_edge`` validation, and
    inbox-dict churn of :meth:`SyncNetwork.step_round`.

    Counting is identical by construction: a "send" is one non-empty
    directed payload (round 0 always sends on every edge direction, like
    the program), deliveries equal sends and are counted in the sending
    round, and the final round merges without sending -- so
    :class:`~repro.localmodel.network.RunStats` matches the per-node
    path field for field.  Only nodes that actually received are
    visited after round 0, which is where saturated instances (delta
    gone quiet before ``radius``) win an extra factor.
    """

    def __init__(self, net: SyncNetwork, index: GraphIndex):
        """Validate homogeneity and compile knowledge into fact-id sets.

        The compiled representation is a single dense *fact-id* space:
        the state of vertex ``i`` is fact ``i``, and the ``k``-th edge of
        :attr:`GraphIndex.edge_labels` (id-sorted order) is fact
        ``n + k``.  A node's knowledge, a round's fresh set, and every
        payload are then plain ``set[int]`` objects and the whole step
        algebra (merge, delta, per-neighbor exclusion) collapses to bulk
        set operations; state *values* live in one per-vid list and are
        only consulted at :meth:`finalize`.
        """
        super().__init__(net, index)
        programs = list(net.programs.values())
        radius = programs[0].radius
        n = index.n
        edge_pairs = list(index.edge_labels)
        fid_of_edge: Dict[Tuple[int, int], int] = {
            e: n + k for k, e in enumerate(edge_pairs)
        }
        self._programs: List[DeltaGatherProgram] = [programs[0]] * n
        #: per-vid initial state value (the only non-int payload content)
        self._values: List[Any] = [None] * n
        #: per-vid accumulated knowledge as a fact-id set
        self._known: List[Set[int]] = [set()] * n
        if radius < 0:
            # the per-node countdown still steps one round before firing;
            # the compiled form has no such round, so decline
            raise KernelIneligible("negative radius requires the per-node path")
        for p in programs:
            if p.radius != radius:
                raise KernelIneligible(
                    "DeltaGatherProgram instances disagree on radius"
                )
            if p._index is not index:
                raise KernelIneligible(
                    "DeltaGatherProgram instances were built against a "
                    "different GraphIndex snapshot"
                )
            if p.done or len(p._states) != 1:
                raise KernelIneligible(
                    "a program instance has already accumulated knowledge"
                )
            i = p._me
            self._programs[i] = p
            self._values[i] = p._states[i]
            known = {i}
            for e in p._edges:
                known.add(fid_of_edge[e])
            self._known[i] = known
        self.radius = radius
        self._edge_pairs = edge_pairs
        self._fid_of_edge = fid_of_edge
        indptr, indices = index.indptr, index.indices
        self._nbrs: List[List[int]] = [
            indices[indptr[i]:indptr[i + 1]] for i in range(n)
        ]
        #: receiver id -> {sender id: fact-id payload}; doubles as the
        #: per-node "what did each neighbor deliver" exclusion map
        self._inbox: Dict[int, Dict[int, Set[int]]] = {}
        self._round_no = 0

    @property
    def done(self) -> bool:
        """All programs terminate together, right after round ``radius``."""
        return self._round_no > self.radius

    def round(self) -> Tuple[int, int]:
        """One whole synchronous round of delta forwarding."""
        t = self._round_no
        self._round_no = t + 1
        known_all = self._known
        nbrs = self._nbrs
        nxt: Dict[int, Dict[int, Set[int]]] = {}
        sent = 0
        if t == 0:
            if self.radius == 0:
                return 0, 0
            # Round 0: the fresh set is a node's initial knowledge (own
            # state + own edges); the shared edge is mutual knowledge,
            # everything else goes to every neighbor -- unconditionally,
            # exactly like the program's round-0 branch.
            fid_of_edge = self._fid_of_edge
            for i in range(len(nbrs)):
                known = known_all[i]
                for u in nbrs[i]:
                    shared = fid_of_edge[(i, u) if i < u else (u, i)]
                    inbox = nxt.get(u)
                    if inbox is None:
                        inbox = nxt[u] = {}
                    inbox[i] = known - {shared}
                    sent += 1
            self._inbox = nxt
            return sent, sent
        last = t >= self.radius
        for i, got in self._inbox.items():
            known = known_all[i]
            if len(got) == 1:
                fresh = next(iter(got.values())) - known
            else:
                payloads = iter(got.values())
                fresh = next(payloads) - known
                for payload in payloads:
                    fresh |= payload - known
            if not fresh:
                continue
            known |= fresh
            if last:
                continue
            for u in nbrs[i]:
                held = got.get(u)
                if held is None:
                    # nothing to subtract: share the fresh set itself
                    # (receivers only read payloads, never mutate them)
                    out = fresh
                else:
                    out = fresh - held
                    if not out:
                        continue
                inbox = nxt.get(u)
                if inbox is None:
                    inbox = nxt[u] = {}
                inbox[i] = out
                sent += 1
        self._inbox = nxt
        return sent, sent

    def finalize(self) -> None:
        """Produce each node's :class:`KnownBall` from its fact-id set."""
        verts = self.index.verts
        edge_labels = self.index.edge_labels
        edge_pairs = self._edge_pairs
        values = self._values
        radius = self.radius
        n = self.index.n
        for i, p in enumerate(self._programs):
            # one sort, split at the state/edge boundary: fact ids below
            # n are states (ascending, as KnownBall's dict order pins),
            # the rest are edges
            facts = sorted(self._known[i])
            cut = bisect_left(facts, n)
            p.done = True
            p.output = KnownBall(
                center=p.node,
                radius=radius,
                states={verts[f]: values[f] for f in facts[:cut]},
                edges={edge_labels[edge_pairs[f - n]] for f in facts[cut:]},
            )


DeltaGatherProgram.batch_kernel = DeltaGatherKernel


#: The gather program families :func:`gather_balls` can run.
GATHER_PROGRAMS = ("delta", "reference")


def _run_gather(
    graph: Graph,
    radius: int,
    factory: Callable[[Vertex, List[Vertex]], NodeProgram],
    sealed: bool,
    scheduler: str,
    sinks: Optional[List[TraceSink]],
    faults: Optional["FaultPlan"],
    executor: str = "auto",
    info: Optional[Dict[str, Any]] = None,
) -> Tuple[Dict[Vertex, KnownBall], int]:
    net = BatchExecutor(
        graph,
        factory,
        sealed=sealed,
        scheduler=scheduler,
        sinks=sinks,
        faults=faults,
        mode=executor,
    )
    # The bound is exact: rounds 0..radius inclusive (satellite of the
    # termination contract -- slack here would mask off-by-ones in the
    # programs' cutoff logic).
    #
    # A gather run allocates payload containers at a rate that makes the
    # cyclic GC's generation scans a measurable fraction of wall-clock
    # (the payload graphs are acyclic, so the scans never free anything);
    # pause collection for the run and let the deferred gen-0 pass run
    # once at the end.
    was_enabled = gc.isenabled()
    if was_enabled:
        gc.disable()
    try:
        outputs = net.run(max_rounds=radius + 1)
    finally:
        if was_enabled:
            gc.enable()
    if info is not None:
        info["executed"] = net.executed
        info["fallback_reason"] = net.fallback_reason
    return outputs, net.stats.rounds


def gather_balls(
    graph: Graph,
    radius: int,
    states: Optional[Dict[Vertex, Any]] = None,
    sealed: bool = False,
    scheduler: str = "active",
    program: str = "delta",
    sinks: Optional[List[TraceSink]] = None,
    faults: Optional["FaultPlan"] = None,
    executor: str = "auto",
    info: Optional[Dict[str, Any]] = None,
) -> Tuple[Dict[Vertex, KnownBall], int]:
    """Run the gathering protocol; returns per-node balls and rounds used.

    ``program`` selects the node program: ``"delta"`` (default) is the
    output-sensitive :class:`DeltaGatherProgram`, ``"reference"`` the
    full-flood :class:`BallGatherProgram`; their outputs and round counts
    are identical (the equivalence suite asserts the full matrix).
    ``sinks`` and ``faults`` pass through to the network unchanged.
    ``executor`` picks the dispatch (:data:`~repro.localmodel.executor.EXECUTORS`):
    under the default ``"auto"``, delta runs on
    :class:`~repro.localmodel.executor.DeltaGatherKernel` whenever the
    run is batch-eligible (no faults, no sinks) and on the per-node
    scheduler otherwise -- outputs and stats are identical either way.
    A caller-supplied ``info`` dict is populated with the dispatch
    diagnostics (``executed``, ``fallback_reason``) after the run.
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    if program not in GATHER_PROGRAMS:
        raise ValueError(
            f"unknown gather program {program!r}; expected one of {GATHER_PROGRAMS}"
        )
    if executor not in EXECUTORS:
        raise ValueError(
            f"unknown executor {executor!r}; expected one of {EXECUTORS}"
        )
    state_of = states or {}
    if program == "reference":

        def factory(v: Vertex, nbrs: List[Vertex]) -> NodeProgram:
            return BallGatherProgram(v, nbrs, radius, state_of.get(v))

    else:
        index = graph_index(graph)

        def factory(v: Vertex, nbrs: List[Vertex]) -> NodeProgram:
            return DeltaGatherProgram(v, nbrs, radius, state_of.get(v), index)

    return _run_gather(
        graph, radius, factory, sealed, scheduler, sinks, faults, executor, info
    )


def _reference_gather(
    graph: Graph,
    radius: int,
    states: Optional[Dict[Vertex, Any]] = None,
    sealed: bool = False,
    scheduler: str = "active",
    sinks: Optional[List[TraceSink]] = None,
    faults: Optional["FaultPlan"] = None,
) -> Tuple[Dict[Vertex, KnownBall], int]:
    """The retained full-flood gather (equivalence tests, benchmarks)."""
    return gather_balls(
        graph,
        radius,
        states,
        sealed=sealed,
        scheduler=scheduler,
        program="reference",
        sinks=sinks,
        faults=faults,
    )
