"""Ball gathering: the fundamental LOCAL-model primitive.

In the LOCAL model with unbounded message sizes, ``r`` communication rounds
are exactly equivalent to every node learning its radius-``r`` ball -- the
induced topology plus all initial states within distance ``r``.  The paper
leans on this equivalence everywhere ("collect Gamma^{10k}(v)" in
Algorithm 3, "nodes can check locally whether ..." in Section 6.2).

:class:`BallGatherProgram` realizes the primitive with genuine flooding on
:class:`~repro.localmodel.network.SyncNetwork`: in every round each node
forwards everything it has learned so far; after r rounds it knows each
vertex at distance <= r together with that vertex's edges to other known
vertices.  :func:`gather_balls` packages a full run; the equivalence tests
check its output against direct BFS, which is what entitles the layered
algorithms to use the cheaper accounting of :mod:`repro.localmodel.rounds`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from ..graphs.adjacency import Graph, Vertex
from .network import NodeContext, NodeProgram, SyncNetwork

__all__ = ["KnownBall", "BallGatherProgram", "gather_balls"]


@dataclass
class KnownBall:
    """What a node knows after gathering: topology + states within radius."""

    center: Vertex
    radius: int
    #: vertex -> its initial state
    states: Dict[Vertex, Any]
    #: edges among known vertices (each a sorted tuple)
    edges: Set[Tuple[Vertex, Vertex]]

    def as_graph(self) -> Graph:
        """The known ball as a graph: known vertices, edges among them.

        Flooding also reveals a fringe of edges toward vertices just
        outside the ball (their IDs are visible but not their states);
        those are kept in :attr:`edges` but excluded here.
        """
        inside = set(self.states)
        return Graph(
            vertices=inside,
            edges=[e for e in self.edges if e[0] in inside and e[1] in inside],
        )


class BallGatherProgram(NodeProgram):
    """Flood local knowledge for ``radius`` rounds.

    Initial knowledge: own state and own incident edges (a node knows its
    neighbors' IDs in the LOCAL model).  Every round, send all accumulated
    knowledge to all neighbors.  After r rounds the node knows the states
    of Gamma^r[v] and every edge with at least one endpoint in
    Gamma^{r-1}[v] -- in particular the full induced subgraph on
    Gamma^{r-1}[v] plus its boundary edges, exactly what the local-view
    construction of Section 3 consumes.

    Acts on silence: termination is the ``round_number >= radius`` check,
    which must fire even for an isolated vertex that never receives.
    """

    always_active = True

    def __init__(self, node: Vertex, neighbors: List[Vertex], radius: int, state: Any):
        """Gather to ``radius``; ``state`` is this node's own contribution."""
        super().__init__(node, neighbors)
        self.radius = radius
        self._states: Dict[Vertex, Any] = {node: state}
        self._edges: Set[Tuple[Vertex, Vertex]] = {
            tuple(sorted((node, u))) for u in neighbors
        }

    def step(self, ctx: NodeContext) -> Mapping[Vertex, Any]:
        """Merge received (states, edges), flood the union, stop at ``radius``."""
        for payload in ctx.inbox.values():
            states, edges = payload
            self._states.update(states)
            self._edges.update(edges)
        if ctx.round_number >= self.radius:
            self.done = True
            self.output = KnownBall(
                center=self.node,
                radius=self.radius,
                states=dict(self._states),
                edges=set(self._edges),
            )
            return {}
        return self.broadcast((dict(self._states), set(self._edges)))


def gather_balls(
    graph: Graph,
    radius: int,
    states: Optional[Dict[Vertex, Any]] = None,
    sealed: bool = False,
    scheduler: str = "active",
) -> Tuple[Dict[Vertex, KnownBall], int]:
    """Run the flooding protocol; returns per-node balls and rounds used."""
    if radius < 0:
        raise ValueError("radius must be non-negative")
    state_of = states or {}
    net = SyncNetwork(
        graph,
        lambda v, nbrs: BallGatherProgram(v, nbrs, radius, state_of.get(v)),
        sealed=sealed,
        scheduler=scheduler,
    )
    outputs = net.run(max_rounds=radius + 2)
    return outputs, net.stats.rounds
