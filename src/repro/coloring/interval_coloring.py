"""ColIntGraph: distributed (1 + 1/k)-approximate interval coloring [21].

Halldorsson & Konrad's algorithm colors an interval graph with at most
floor((1 + 1/k) chi) + 1 colors in O(k log* n) rounds.  The re-derivation
here (see DESIGN.md):

1. **Separators.**  Along each component's clique path, walk the maximal
   chain of consecutive pairwise-disjoint bags (two chain bags t apart are
   at graph distance >= (t - 1)/2, so chain steps lower-bound distance) and
   pick every B-th chain bag as a *separator*, B sized so consecutive
   separators exceed the morph distance.  Distributively this is the
   distance-Theta(k) ruling set of [21]; rounds are charged per the cost
   model of :func:`repro.localmodel.rulingset.charged_rounds_distance_k`.

2. **Separator coloring.**  Every separator bag is a clique; its vertices
   take colors 1..|bag|.  Separator bags are pairwise non-adjacent, so this
   is proper, and it takes one round.

3. **Segment gluing.**  Vertices not in any separator bag live strictly
   inside one segment (a vertex alive at a separator position belongs to
   that bag).  Each segment, together with its one or two boundary
   separator bags, is an interval graph on a sub-decomposition whose
   boundary cliques are exactly the fixed ends the extension morph
   (:mod:`repro.coloring.extension`) consumes.  All segments run in
   parallel in O(k) rounds.

Components whose clique path is shorter than two separator blocks are
colored greedily by a single coordinator in O(diameter) = O(k) rounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..graphs.adjacency import Graph, Vertex
from ..localmodel.rulingset import charged_rounds_distance_k, log_star
from .decomposition import PathBags
from .extension import extend_path_coloring
from .greedy import preference_greedy
from .parameters import morph_cut_budget, required_morph_distance

Color = int

__all__ = ["IntervalColoringResult", "color_interval_component", "col_int_graph"]


@dataclass
class IntervalColoringResult:
    """Coloring plus LOCAL-model round accounting."""

    coloring: Dict[Vertex, Color]
    rounds: int

    def num_colors(self) -> int:
        return len(set(self.coloring.values()))


def _segment_block(chi: int, spares: int) -> int:
    """Chain-bag spacing between separators.

    required_morph_distance is a graph distance; chain steps advance
    distance at rate >= 1/2, and we add slack so the cut region between a
    separator and the next segment's reach always holds enough cuts.
    """
    return 2 * required_morph_distance(chi, spares) + 8


def color_interval_component(
    graph: Graph,
    bags: PathBags,
    k: int,
    palette: Optional[Sequence[Color]] = None,
) -> IntervalColoringResult:
    """Color one connected interval piece given its path decomposition.

    ``graph`` must be the induced graph on the decomposition's vertices.
    The default palette is [1 .. chi + floor(chi/k) + 1] for the piece's
    own chi; the peeling layers pass the global palette instead.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if len(bags) == 0:
        return IntervalColoringResult({}, 0)
    chi = bags.max_bag_size()
    if palette is None:
        palette = list(range(1, chi + chi // k + 2))
    spares = max(1, len(palette) - chi)

    chain = bags.disjoint_cut_positions(0, len(bags) - 1)
    block = _segment_block(chi, spares)
    n = len(bags.vertices())

    if len(chain) < 2 * block:
        # Small component: one coordinator sees everything and colors
        # greedily; O(diameter) rounds, and the chain length bounds the
        # diameter from above (consecutive chain bags are <= 3 apart).
        coloring = preference_greedy(graph, bags, palette)
        return IntervalColoringResult(coloring, rounds=3 * len(chain) + 2)

    separators = chain[block::block]
    # Leave a full block after the last separator too.
    while separators and len(chain) - chain.index(separators[-1]) < 1:
        separators.pop()

    # Phase A: color separator bags.
    coloring: Dict[Vertex, Color] = {}
    sorted_palette = sorted(palette)
    for pos in separators:
        for i, v in enumerate(sorted(bags.bags[pos])):
            coloring[v] = sorted_palette[i]

    # Phase B: glue the segments.
    boundaries = [None] + list(separators) + [None]
    for left, right in zip(boundaries, boundaries[1:]):
        lo = 0 if left is None else left
        hi = len(bags) - 1 if right is None else right
        left_bag = set() if left is None else set(bags.bags[left])
        right_bag = set() if right is None else set(bags.bags[right])
        interior = {
            v
            for v in bags.vertices()
            if bags.first(v) > (lo if left is not None else -1)
            and bags.last(v) < (hi if right is not None else len(bags))
            and v not in left_bag
            and v not in right_bag
        }
        members = interior | left_bag | right_bag
        if not interior:
            continue
        sub = bags.subrange(lo, hi).restricted_to(members)
        sub_graph = graph.induced_subgraph(members)
        fixed_left = {v: coloring[v] for v in left_bag}
        fixed_right = {v: coloring[v] for v in right_bag}
        segment_coloring = extend_path_coloring(
            sub_graph,
            sub,
            palette,
            fixed_left=fixed_left,
            fixed_right=fixed_right,
        )
        for v in interior:
            coloring[v] = segment_coloring[v]

    rounds = (
        charged_rounds_distance_k(n, required_morph_distance(chi, spares))
        + 1  # separator bags announce their colors
        + 4 * block  # all segments glue in parallel, O(block) locality
    )
    return IntervalColoringResult(coloring, rounds=rounds)


def col_int_graph(
    graph: Graph,
    k: int,
    components: Optional[List[Tuple[Graph, PathBags]]] = None,
    palette: Optional[Sequence[Color]] = None,
) -> IntervalColoringResult:
    """ColIntGraph(1/k) on a (possibly disconnected) interval graph.

    When ``components`` is not supplied, clique paths are derived with the
    arrangement search of :mod:`repro.cliquetree.cliquepath`.  All
    components run in parallel, so the round count is their maximum.
    Guarantee: at most floor((1 + 1/k) chi(G)) + 1 colors.
    """
    if components is None:
        from ..cliquetree.cliquepath import clique_paths_of_interval_graph

        components = []
        for path in clique_paths_of_interval_graph(graph):
            bag_obj = PathBags(path)
            components.append(
                (graph.induced_subgraph(bag_obj.vertices()), bag_obj)
            )
    coloring: Dict[Vertex, Color] = {}
    rounds = 0
    for sub_graph, bag_obj in components:
        result = color_interval_component(sub_graph, bag_obj, k, palette=palette)
        coloring.update(result.coloring)
        rounds = max(rounds, result.rounds)
    return IntervalColoringResult(coloring, rounds)
