"""Clique path decompositions: the coordinate system of the interval phase.

Everything in the coloring pipeline -- greedy coloring by left endpoints,
boundary morphing, segment gluing -- works on a :class:`PathBags`: a
sequence of bags arranged on a path such that

* every bag is a clique of the graph,
* every edge of the (induced) graph lies in some bag,
* the bags containing any fixed vertex are consecutive.

Maximal cliques are *not* required: the peeling process hands the interval
phase paths of cliques of the *parent* graph restricted to the surviving
vertices (Lemma 7 / Lemma 8), which are exactly such decompositions.  The
index of a bag serves as a position on the line; a vertex occupies the
positions of the bags containing it.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..graphs.adjacency import Graph, Vertex

Bag = FrozenSet[Vertex]

__all__ = ["PathBags", "path_bags_from_cliques"]


class PathBags:
    """A clique path decomposition with position queries."""

    def __init__(self, bags: Iterable[Iterable[Vertex]]):
        self.bags: List[Bag] = [frozenset(b) for b in bags if b]
        self._first: Dict[Vertex, int] = {}
        self._last: Dict[Vertex, int] = {}
        for i, bag in enumerate(self.bags):
            for v in bag:
                self._first.setdefault(v, i)
                self._last[v] = i

    # ------------------------------------------------------------------
    # positions
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.bags)

    def vertices(self) -> List[Vertex]:
        return sorted(self._first)

    def __contains__(self, v: Vertex) -> bool:
        return v in self._first

    def first(self, v: Vertex) -> int:
        return self._first[v]

    def last(self, v: Vertex) -> int:
        return self._last[v]

    def vertex_order(self) -> List[Vertex]:
        """Vertices by (left endpoint, right endpoint, id): the greedy order."""
        return sorted(self._first, key=lambda v: (self._first[v], self._last[v], v))

    def alive_at_or_after(self, index: int) -> List[Vertex]:
        """Vertices whose run touches position >= index."""
        return [v for v in self._first if self._last[v] >= index]

    def strictly_right_of(self, index: int) -> List[Vertex]:
        """Vertices whose whole run lies right of position index."""
        return [v for v in self._first if self._first[v] > index]

    # ------------------------------------------------------------------
    # validation / derivation
    # ------------------------------------------------------------------
    def validate(self, graph: Graph) -> None:
        """Check the three decomposition conditions against ``graph``.

        ``graph`` must be exactly the induced graph on the decomposition's
        vertices.  Raises ``ValueError`` with a description on failure.
        """
        if set(self._first) != set(graph.vertices()):
            raise ValueError("decomposition does not cover the graph's vertices")
        for v in self._first:
            run = [i for i, bag in enumerate(self.bags) if v in bag]
            if run != list(range(run[0], run[-1] + 1)):
                raise ValueError(f"bags of vertex {v!r} are not consecutive")
        for i, bag in enumerate(self.bags):
            if not graph.is_clique(bag):
                raise ValueError(f"bag {i} is not a clique")
        for u, w in graph.edges():
            lo = max(self._first[u], self._first[w])
            hi = min(self._last[u], self._last[w])
            if lo > hi:
                raise ValueError(f"edge ({u!r}, {w!r}) is in no bag")

    def max_bag_size(self) -> int:
        """omega of the covered interval graph (= its chromatic number)."""
        return max((len(b) for b in self.bags), default=0)

    def restricted_to(self, keep: Iterable[Vertex]) -> "PathBags":
        """The decomposition of the induced subgraph on ``keep``.

        Empty bags are dropped; a vertex present on both sides of a
        dropped bag would have been in it, so runs stay consecutive.
        """
        keep_set = set(keep)
        return PathBags(bag & keep_set for bag in self.bags)

    def subrange(self, lo: int, hi: int) -> "PathBags":
        """Bags lo..hi inclusive, as a decomposition of their union."""
        return PathBags(self.bags[lo: hi + 1])

    def reversed_(self) -> "PathBags":
        return PathBags(reversed(self.bags))

    def extended(
        self, left: Optional[Iterable[Vertex]] = None, right: Optional[Iterable[Vertex]] = None
    ) -> "PathBags":
        """Prepend/append boundary bags (the C_s / C_e bags of Lemma 8)."""
        bags: List[Iterable[Vertex]] = []
        if left:
            bags.append(left)
        bags.extend(self.bags)
        if right:
            bags.append(right)
        return PathBags(bags)

    # ------------------------------------------------------------------
    # geometry helpers for the morph
    # ------------------------------------------------------------------
    def disjoint_cut_positions(
        self, lo: int, hi: int, avoid: Optional[Iterable[Vertex]] = None
    ) -> List[int]:
        """A maximal left-packed sequence of pairwise-disjoint bags in [lo, hi].

        Consecutive cuts share no vertex, which is what makes the relay
        moves of the morph cover each other (no vertex spans two cuts).
        ``avoid``: an extra bag (the left boundary) the first cut must be
        disjoint from, so boundary vertices are never alive at a cut.
        """
        cuts: List[int] = []
        previous: Optional[Set[Vertex]] = set(avoid) if avoid is not None else None
        i = max(lo, 0)
        hi = min(hi, len(self.bags) - 1)
        while i <= hi:
            if previous is None or not (previous & self.bags[i]):
                cuts.append(i)
                previous = set(self.bags[i])
            i += 1
        return cuts


def path_bags_from_cliques(cliques: Sequence[Iterable[Vertex]]) -> PathBags:
    """Wrap an ordered clique sequence (e.g. a ForestPath) as a PathBags."""
    return PathBags(cliques)
