"""The peeling process (pruning phase of Algorithms 1, 3 and 6).

Starting from the canonical clique forest T_1 of the input chordal graph,
iteration i removes every maximal pendant path of T_i plus every maximal
internal path accepted by an *internal rule* (diameter >= 3k for coloring,
diameter >= 2d + 3 or -- in the last MIS iteration -- independence number
>= d).  The nodes whose subtrees lie inside removed paths form layer V_i;
by Lemmas 3-5, simply deleting the removed paths from T_i yields the clique
forest T_{i+1} of the remaining graph, and by Lemma 6 (the pruning lemma)
at most ceil(log2 n) iterations empty the forest when every internal path
of large diameter is taken.

Each removed path is recorded as a :class:`PeeledPath`, carrying everything
the later phases need: the ordered cliques, the attachment cliques C_s/C_e
(Lemma 8's boundary cliques), the removed node set W_P, and the layer
index.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..cliquetree.forest import CliqueForest, build_clique_forest
from ..cliquetree.paths import (
    ForestPath,
    maximal_binary_paths,
    nodes_with_subtree_in,
    path_diameter_at_least,
)
from ..graphs import kernels
from ..graphs.adjacency import Graph, Vertex
from ..graphs.chordal import _not_chordal
from ..graphs.index import graph_index
from .decomposition import PathBags

__all__ = [
    "PeeledPath",
    "Peeling",
    "PeelingLayers",
    "peel_chordal_graph",
    "peeling_layers",
    "diameter_rule",
]

#: Decides whether a maximal *internal* path is peeled this iteration.
InternalRule = Callable[[Graph, ForestPath], bool]


def diameter_rule(threshold: int) -> InternalRule:
    """The coloring rule: internal paths of diameter >= threshold (3k).

    The returned rule decides the comparison without computing the exact
    diameter (:func:`~repro.cliquetree.paths.path_diameter_at_least`), and
    carries the threshold as a ``threshold`` attribute so layer-only
    callers can recognize it and take the :func:`peeling_layers` fast path.
    """

    def rule(graph: Graph, path: ForestPath) -> bool:
        return path_diameter_at_least(graph, path.cliques, threshold)

    rule.threshold = threshold  # type: ignore[attr-defined]
    return rule


@dataclass(frozen=True)
class PeeledPath:
    """One maximal binary path removed during peeling."""

    layer: int
    path: ForestPath
    nodes: FrozenSet[Vertex]

    @property
    def cliques(self) -> Tuple[FrozenSet[Vertex], ...]:
        return self.path.cliques

    @property
    def attachments(self) -> Tuple[FrozenSet[Vertex], ...]:
        return self.path.attachments

    def layer_bags(self) -> PathBags:
        """The clique path decomposition of G[W_P] (Lemma 7, restricted)."""
        return PathBags(c & self.nodes for c in self.path.cliques)


@dataclass
class Peeling:
    """The full output of the pruning phase."""

    layers: List[List[PeeledPath]]
    layer_of: Dict[Vertex, int]
    #: T_1, T_2, ...: forest before each iteration (T_{i+1} after removing
    #: layer i); kept for the structural tests of Lemmas 5 and 6.
    forests: List[CliqueForest]
    #: True when the peeling ran to an empty forest (False when stopped
    #: early by max_iterations, as Algorithm 6 does).
    exhausted: bool

    def num_layers(self) -> int:
        return len(self.layers)

    def nodes_of_layer(self, i: int) -> Set[Vertex]:
        """All nodes of layer i (1-based, like the paper)."""
        out: Set[Vertex] = set()
        for peeled in self.layers[i - 1]:
            out |= peeled.nodes
        return out

    def remaining_nodes(self) -> Set[Vertex]:
        """U_{k+1}: nodes never peeled (empty when exhausted)."""
        assigned = set(self.layer_of)
        return {v for v in self._all_nodes if v not in assigned}

    _all_nodes: Set[Vertex] = field(default_factory=set)


@dataclass(frozen=True)
class PeelingLayers:
    """The layer map of the peeling process (kernel fast path).

    The lightweight answer to "which vertex lands in which layer": exactly
    what Lemma 6's round/locality accounting needs, without materializing
    per-path boundary cliques, forests, or induced subgraphs.  For every
    chordal graph and diameter threshold,
    ``peeling_layers(g, t).layers[i]`` equals
    ``sorted(peel_chordal_graph(g, diameter_rule(t)).nodes_of_layer(i + 1))``
    and the ``exhausted`` flags agree — pinned by the equivalence suite.
    """

    #: layer i (0-based here; the paper's V_{i+1}) as a sorted vertex list
    layers: Tuple[Tuple[Vertex, ...], ...]
    #: True when the peeling ran the forest to empty (see :class:`Peeling`)
    exhausted: bool

    def num_layers(self) -> int:
        return len(self.layers)

    def nodes_of_layer(self, i: int) -> Set[Vertex]:
        """All nodes of layer i (1-based, like the paper and :class:`Peeling`)."""
        return set(self.layers[i - 1])

    def layer_of(self) -> Dict[Vertex, int]:
        """vertex -> 1-based layer index, for every peeled vertex."""
        out: Dict[Vertex, int] = {}
        for i, layer in enumerate(self.layers, start=1):
            for v in layer:
                out[v] = i
        return out


def peeling_layers(
    graph: Graph,
    threshold: int,
    max_iterations: Optional[int] = None,
    last_threshold: Optional[int] = None,
) -> PeelingLayers:
    """Layer map of ``peel_chordal_graph(graph, diameter_rule(threshold))``.

    Runs entirely in the integer kernels
    (:func:`repro.graphs.kernels.peeling_layers`): canonical clique forest
    via the Blair-Peyton clique kernel and incidence-counted W_G edges,
    per-iteration path decisions with early-exit diameter bounds.  When
    ``max_iterations`` is given the process stops after that many layers,
    optionally switching to ``last_threshold`` for the final iteration
    (the Algorithm 6 shape).  Raises
    :class:`~repro.graphs.chordal.NotChordalError` on non-chordal input.
    """
    index = graph_index(graph)
    order, bad = kernels.peo_and_violation(index)
    if bad is not None:
        raise _not_chordal(index.verts[bad])
    id_layers, exhausted = kernels.peeling_layers(
        index,
        threshold,
        max_iterations=max_iterations,
        last_threshold=last_threshold,
        order=order,
    )
    return PeelingLayers(
        layers=tuple(tuple(index.labels_of(layer)) for layer in id_layers),
        exhausted=exhausted,
    )


def peel_chordal_graph(
    graph: Graph,
    internal_rule: InternalRule,
    max_iterations: Optional[int] = None,
    last_iteration_rule: Optional[InternalRule] = None,
) -> Peeling:
    """Run the peeling process on a chordal graph.

    ``internal_rule`` accepts or rejects each maximal internal path;
    pendant paths are always removed.  When ``max_iterations`` is given the
    process stops after that many layers (Algorithm 6), optionally applying
    ``last_iteration_rule`` instead of ``internal_rule`` in the final one;
    otherwise it runs until the forest is empty, which Lemma 6 bounds by
    ceil(log2 n) iterations.
    """
    forest = build_clique_forest(graph)
    current = graph.copy()
    layers: List[List[PeeledPath]] = []
    layer_of: Dict[Vertex, int] = {}
    forests: List[CliqueForest] = [forest]

    iteration = 0
    while len(forest) > 0:
        iteration += 1
        if max_iterations is not None and iteration > max_iterations:
            return Peeling(
                layers=layers,
                layer_of=layer_of,
                forests=forests,
                exhausted=False,
                _all_nodes=set(graph.vertices()),
            )
        rule = internal_rule
        if (
            last_iteration_rule is not None
            and max_iterations is not None
            and iteration == max_iterations
        ):
            rule = last_iteration_rule

        peeled_here: List[PeeledPath] = []
        removed_cliques: List[FrozenSet[Vertex]] = []
        removed_nodes: Set[Vertex] = set()
        for path in maximal_binary_paths(forest):
            if not (path.is_pendant or rule(current, path)):
                continue
            nodes = frozenset(nodes_with_subtree_in(forest, path.cliques))
            peeled_here.append(
                PeeledPath(layer=iteration, path=path, nodes=nodes)
            )
            removed_cliques.extend(path.cliques)
            removed_nodes |= nodes
        if not peeled_here:
            raise AssertionError(
                "peeling stalled: a nonempty forest always has pendant paths"
            )
        for peeled in peeled_here:
            for v in peeled.nodes:
                layer_of[v] = iteration
        layers.append(peeled_here)
        forest = forest.without_cliques(removed_cliques)
        current.remove_vertices(removed_nodes)
        forests.append(forest)

    return Peeling(
        layers=layers,
        layer_of=layer_of,
        forests=forests,
        exhausted=True,
        _all_nodes=set(graph.vertices()),
    )
