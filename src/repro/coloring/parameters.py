"""All distance/palette constants of the coloring pipeline in one place.

The paper uses the literal constants 3k (internal path diameter threshold),
k + 3 (recoloring distance) and 10k (collection radius), relying on the
recoloring lemma of [21] (its Lemma 9).  Our constructive recoloring
(:mod:`repro.coloring.extension`) achieves the same
floor((1 + 1/k) chi) + 1 color bound but needs a larger constant times k of
distance: with s spare colors the morph performs ceil((2 chi + 2)/s) + 1
sequential relay steps, each consuming O(1) of path distance, and
s >= max(1, floor(chi/k)) spares are always available inside the global
palette (see the extension module's docstring for the argument).  Since
every threshold remains Theta(k) = Theta(1/eps), the asymptotic round
complexities and the (1 + eps) guarantees of Theorems 3 and 4 are
unchanged; only the constants differ, as recorded in DESIGN.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["ColoringParameters", "morph_cut_budget", "required_morph_distance"]


def morph_cut_budget(chi: int, spares: int) -> int:
    """Number of relay cuts the boundary morph may need.

    The permutation sigma moving the greedy coloring onto the fixed
    boundary touches at most chi + 1 color classes; each class costs at
    most two elementary moves (park on a relay, then land), and ``spares``
    moves run in parallel per cut.
    """
    if spares < 1:
        raise ValueError("the morph needs at least one spare color")
    moves = 2 * max(chi, 1) + 2
    return math.ceil(moves / spares) + 1


def required_morph_distance(chi: int, spares: int) -> int:
    """Graph distance between fixed boundaries sufficient for one morph.

    Consecutive cut cliques must be vertex-disjoint, which consumes at most
    two units of graph distance per cut, plus slack to stay clear of both
    boundary cliques.
    """
    return 2 * morph_cut_budget(chi, spares) + 6


@dataclass(frozen=True)
class ColoringParameters:
    """Derived constants for a target approximation (1 + eps) = (1 + 2/k).

    ``k``                    the paper's k = ceil(2/eps);
    ``recolor_distance``     how far from a conflicting boundary clique
                             nodes may be recolored (paper: k + 3);
    ``internal_threshold``   minimum diameter for an internal path to be
                             peeled (paper: 3k);
    ``collect_radius``       per-iteration neighborhood collection radius
                             in PruneTree (paper: 10k).
    """

    k: int
    recolor_distance: int
    internal_threshold: int
    collect_radius: int

    @classmethod
    def from_epsilon(cls, epsilon: float) -> "ColoringParameters":
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        return cls.from_k(math.ceil(2.0 / epsilon))

    @classmethod
    def from_k(cls, k: int) -> "ColoringParameters":
        """Constants sized for our constructive recoloring lemma.

        With the global palette floor((1+1/k) chi) + 1 the morph always has
        s >= max(1, floor(chi/k)) spares, so ceil((2 chi + 2)/s) <= 4k + 4
        relay moves suffice for every chi; the distances below are sized
        for that worst case.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        recolor = 2 * (4 * k + 5) + 6  # = required_morph_distance worst case
        threshold = 2 * recolor + 4  # both ends of an internal path morph
        return cls(
            k=k,
            recolor_distance=recolor,
            internal_threshold=threshold,
            collect_radius=3 * threshold,
        )

    @classmethod
    def paper_constants(cls, k: int) -> "ColoringParameters":
        """The literal constants of Algorithms 1-3 (3k / k+3 / 10k).

        Structural code paths (peeling, layer properties) are exercised
        with these in tests; the recoloring phase needs the larger
        :meth:`from_k` distances.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        return cls(
            k=k,
            recolor_distance=k + 3,
            internal_threshold=3 * k,
            collect_radius=10 * k,
        )

    @property
    def epsilon(self) -> float:
        return 2.0 / self.k

    def palette_size(self, chi: int) -> int:
        """floor((1 + 1/k) chi) + 1: the global color budget of Theorem 3."""
        return chi + chi // self.k + 1

    def minimum_spares(self, chi: int) -> int:
        """Spare colors guaranteed inside the global palette: q - chi."""
        return self.palette_size(chi) - chi
