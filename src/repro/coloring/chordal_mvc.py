"""Algorithm 1: (1 + eps)-approximate Minimum Vertex Coloring of chordal graphs.

The three phases of Section 4, on top of the shared building blocks:

1. **Pruning** (:mod:`repro.coloring.prune`): peel pendant paths and long
   internal paths until the clique forest is empty; at most ceil(log2 n)
   layers, each inducing an interval graph (Lemma 7).

2. **Coloring**: every peeled path's interval graph G[W_P] is colored
   independently with ColIntGraph (paths of one layer are pairwise
   non-adjacent by Lemma 11, and so are paths of different layers'
   *interiors* -- conflicts are confined to the boundaries handled next).
   The global palette [1 .. floor((1+1/k) chi(G)) + 1] of Theorem 3 is used
   throughout.

3. **Color correction** (Lemma 10): processing layers from the last to the
   first, each path's conflict zones -- the nodes within the recoloring
   distance of its attachment cliques C_s/C_e -- are recolored with the
   extension morph so that they agree with the (already final) colors of
   the higher-layer neighbors W', while nodes deeper inside the path keep
   their phase-2 colors.

Theorem 3: for eps > 2/chi(G) the result uses at most (1 + eps) chi(G)
colors; in general it uses at most floor((1 + 1/k) chi(G)) + 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..graphs.adjacency import Graph, Vertex
from ..graphs.chordal import clique_number, is_chordal, NotChordalError
from .decomposition import PathBags
from .extension import extend_path_coloring
from .interval_coloring import color_interval_component
from .parameters import ColoringParameters, morph_cut_budget
from .prune import PeeledPath, Peeling, diameter_rule, peel_chordal_graph

Color = int

__all__ = ["ChordalColoringResult", "color_chordal_graph", "correct_path_colors"]


@dataclass
class ChordalColoringResult:
    """Output of Algorithm 1 (and the payload of Algorithm 2)."""

    coloring: Dict[Vertex, Color]
    peeling: Peeling
    parameters: ColoringParameters
    palette_size: int
    chi: int
    #: per-layer ColIntGraph round counts (used by the distributed driver)
    layer_color_rounds: List[int]

    def num_colors(self) -> int:
        return len(set(self.coloring.values()))

    def approximation_ratio(self) -> float:
        if self.chi == 0:
            return 1.0
        return self.num_colors() / self.chi


def color_chordal_graph(
    graph: Graph,
    epsilon: Optional[float] = None,
    k: Optional[int] = None,
) -> ChordalColoringResult:
    """Run Algorithm 1.  Provide either ``epsilon`` or ``k`` = ceil(2/eps).

    Raises :class:`~repro.graphs.chordal.NotChordalError` on non-chordal
    input (the clique forest machinery would produce garbage otherwise).
    """
    if (epsilon is None) == (k is None):
        raise ValueError("provide exactly one of epsilon and k")
    params = (
        ColoringParameters.from_epsilon(epsilon)
        if epsilon is not None
        else ColoringParameters.from_k(k)
    )
    if not is_chordal(graph):
        raise NotChordalError("input graph is not chordal")
    if len(graph) == 0:
        return ChordalColoringResult({}, Peeling([], {}, [], True), params, 1, 0, [])

    chi = clique_number(graph)
    palette_size = params.palette_size(chi)
    palette = list(range(1, palette_size + 1))

    # Phase 1: pruning.
    peeling = peel_chordal_graph(
        graph, internal_rule=diameter_rule(params.internal_threshold)
    )

    # Phase 2: color every peeled path independently.
    coloring: Dict[Vertex, Color] = {}
    layer_rounds: List[int] = []
    for layer_paths in peeling.layers:
        rounds_here = 0
        for peeled in layer_paths:
            bags = peeled.layer_bags()
            sub = graph.induced_subgraph(peeled.nodes)
            result = color_interval_component(sub, bags, params.k, palette=palette)
            coloring.update(result.coloring)
            rounds_here = max(rounds_here, result.rounds)
        layer_rounds.append(rounds_here)

    # Phase 3: correction, from the top layer down.
    for layer_index in range(peeling.num_layers() - 1, 0, -1):
        for peeled in peeling.layers[layer_index - 1]:
            correct_path_colors(graph, peeling, peeled, coloring, palette, params)

    return ChordalColoringResult(
        coloring=coloring,
        peeling=peeling,
        parameters=params,
        palette_size=palette_size,
        chi=chi,
        layer_color_rounds=layer_rounds,
    )


def conflict_boundary(
    graph: Graph, peeling: Peeling, peeled: PeeledPath
) -> Set[Vertex]:
    """W': higher-layer neighbors of the path's node set (Lemma 11)."""
    w_prime: Set[Vertex] = set()
    for v in peeled.nodes:
        for u in graph.neighbors_view(v):
            if peeling.layer_of.get(u, math.inf) > peeled.layer:
                w_prime.add(u)
    return w_prime


def correct_path_colors(
    graph: Graph,
    peeling: Peeling,
    peeled: PeeledPath,
    coloring: Dict[Vertex, Color],
    palette: Sequence[Color],
    params: ColoringParameters,
) -> None:
    """Resolve the conflicts of one peeled path against higher layers.

    Mutates ``coloring`` in place: only nodes of W = peeled.nodes change,
    and only those within the recoloring zone near the attachments.
    Implements Lemma 10 via the extension morph on G[W + W'].
    """
    w_prime = conflict_boundary(graph, peeling, peeled)
    if not w_prime:
        return  # whole-component path: phase-2 colors are final
    members = set(peeled.nodes) | w_prime

    # Build the Lemma 8 decomposition: [C_s cap X] + restricted path + [C_e cap X].
    path = peeled.path.oriented()
    left_att, right_att = path.left_attachment, path.right_attachment
    inner = [c & members for c in path.cliques]
    bags = PathBags(
        ([left_att & members] if left_att else [])
        + inner
        + ([right_att & members] if right_att else [])
    )
    sub = graph.induced_subgraph(bags.vertices())

    chi_local = bags.max_bag_size()
    spares = max(1, len(palette) - chi_local)
    block = morph_cut_budget(chi_local, spares) + 4

    fixed_prime = {u: coloring[u] for u in w_prime if u in bags}

    # One recoloring zone per attachment: the first `block` steps of the
    # disjoint-bag chain from that end.  Splitting into zones preserves the
    # paper's locality (only nodes near W' are recolored); it needs each
    # zone to fit, and the two zones to be vertex-disjoint.
    sides = []
    for oriented, att in ((bags, left_att), (bags.reversed_(), right_att)):
        if att is not None:
            chain = oriented.disjoint_cut_positions(0, len(bags) - 1)
            sides.append((oriented, chain, att))
    zones_fit = all(len(chain) > block + 2 for _, chain, _ in sides)
    if zones_fit and len(sides) == 2:
        zone_a = set().union(*sides[0][0].subrange(0, sides[0][1][block]).bags)
        zone_b = set().union(*sides[1][0].subrange(0, sides[1][1][block]).bags)
        zones_fit = not (zone_a & zone_b)

    if not zones_fit:
        # Too short to split: one morph over the whole instance.  Internal
        # paths are peeled only at diameter >= 2*recolor_distance + 4, so
        # this branch almost always sees a single attachment.
        fixed_left = {u: fixed_prime[u] for u in (left_att or set()) if u in fixed_prime}
        fixed_right = {u: fixed_prime[u] for u in (right_att or set()) if u in fixed_prime}
        new_colors = extend_path_coloring(
            sub,
            bags,
            palette,
            fixed_left=fixed_left or None,
            fixed_right=fixed_right or None,
        )
    else:
        # Recolor only the boundary zones; the interior keeps its phase-2
        # colors (the paper's distance-(k+3) locality of Lemma 10).
        new_colors = dict(coloring)
        for oriented, chain, att in sides:
            zone = oriented.subrange(0, chain[block])
            zone_members = set(zone.vertices())
            zone_graph = sub.induced_subgraph(zone_members)
            fixed_left = {
                u: fixed_prime[u] for u in (att & zone_members) if u in fixed_prime
            }
            far_bag = set(zone.bags[-1])
            fixed_right = {u: new_colors[u] for u in far_bag}
            zone_colors = extend_path_coloring(
                zone_graph,
                zone,
                palette,
                fixed_left=fixed_left or None,
                fixed_right=fixed_right,
            )
            for v in zone_members - far_bag:
                if v in peeled.nodes:
                    new_colors[v] = zone_colors[v]

    for v in peeled.nodes:
        coloring[v] = new_colors[v]
