"""Boundary-respecting recoloring of interval graphs (constructive Lemma 9).

Problem (Lemma 9 of the paper, proved in [21]): an interval graph H comes
with a clique path C_1, ..., C_m whose end cliques are already legally
colored; extend that precoloring to all of H without exceeding
max{floor((1 + 1/k) chi(H)) + 1, c} colors, provided the ends are far
enough apart.  The paper's Lemma 10 then recolors each peeled path's
conflict zone with it.

Our construction (see DESIGN.md for the deviation note):

1. **Greedy with preference.**  Color H by the left-endpoint greedy,
   honoring the *left* fixed boundary and preferring the *right* boundary's
   color values.  Every non-fixed vertex receives one of the first
   chi(H) preference colors (its colored-before neighbors share its
   leftmost bag), so right of the leftmost cut the coloring alpha uses at
   most chi(H) distinct values -- leaving s = |palette| - chi(H) >= 1
   values completely unused there: the *relay* colors.

2. **Permutation.**  On the right boundary, alpha disagrees with the
   required colors only up to a partial injection pi (alpha's colors on the
   boundary clique -> required colors); complete pi into a permutation
   sigma of the palette with as many fixed points as possible.

3. **Relay morph.**  Transform alpha into sigma(alpha) gradually along the
   path.  An *elementary move* (c -> c') at cut position t recolors every
   alpha-class-c vertex lying strictly right of bag t to c'; it is legal
   whenever c' is unused among vertices alive at or after t.  Each cycle
   (c_1 ... c_j) of sigma costs j + 1 moves using one relay: park c_j on
   the relay, shift c_{j-1} -> c_j, ..., c_1 -> c_2, then land the relay on
   c_1.  With s relays, s cycles advance in parallel, one move per lane per
   cut.  Consecutive cuts are vertex-disjoint bags, so each move's class is
   fully covered by the previous cut's move, keeping every move legal.

Vertices left of the first cut keep alpha (in particular the fixed left
boundary); vertices right of the last cut get exactly sigma(alpha), which
equals the required coloring on the right boundary.  The number of cuts is
ceil(moves / s) <= ceil((2 chi + 2) / s), so boundary distance Theta(chi/s)
suffices -- with the global palette of Theorem 3 that is Theta(k), the same
shape as the paper's k + 3 (see repro.coloring.parameters).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..graphs.adjacency import Graph, Vertex
from .decomposition import PathBags
from .greedy import preference_greedy

Color = int

__all__ = ["MorphError", "extend_path_coloring", "complete_permutation", "cycle_moves"]


class MorphError(RuntimeError):
    """The morph could not be carried out (insufficient distance/palette).

    Under the hypotheses of Lemma 9 (as re-quantified in
    repro.coloring.parameters) this is never raised; it guards against
    callers violating them.
    """


def complete_permutation(
    pi: Mapping[Color, Color], palette: Sequence[Color]
) -> Dict[Color, Color]:
    """Extend a partial injection on the palette to a full permutation.

    Colors outside dom(pi) map to themselves when possible; the remaining
    sources and targets are matched in sorted order.  Maximizing fixed
    points minimizes the number of relay moves later.
    """
    palette_set = set(palette)
    for a, b in pi.items():
        if a not in palette_set or b not in palette_set:
            raise ValueError("pi maps outside the palette")
    if len(set(pi.values())) != len(pi):
        raise ValueError("pi is not injective")
    sigma = dict(pi)
    taken = set(pi.values())
    leftover_sources = [c for c in sorted(palette_set) if c not in sigma]
    for c in list(leftover_sources):
        if c not in taken:
            sigma[c] = c
            taken.add(c)
            leftover_sources.remove(c)
    leftover_targets = [c for c in sorted(palette_set) if c not in taken]
    for c, t in zip(leftover_sources, leftover_targets):
        sigma[c] = t
    return sigma


def cycle_moves(sigma: Mapping[Color, Color], relay: Color) -> List[List[Tuple[Color, Color]]]:
    """Decompose sigma's non-fixed part into per-cycle move sequences.

    Each cycle (c_1 -> c_2 -> ... -> c_j -> c_1) becomes the move list
    [(c_j, relay), (c_{j-1}, c_j), ..., (c_1, c_2), (relay, c_1)].
    The relay placeholder is substituted by the caller per lane.
    """
    seen: Set[Color] = set()
    out: List[List[Tuple[Color, Color]]] = []
    for start in sorted(sigma):
        if start in seen or sigma[start] == start:
            continue
        cycle = [start]
        cur = sigma[start]
        while cur != start:
            cycle.append(cur)
            cur = sigma[cur]
        seen.update(cycle)
        # cycle[i] must become sigma(cycle[i]) = cycle[i+1 mod j]
        moves = [(cycle[-1], relay)]
        for i in range(len(cycle) - 2, -1, -1):
            moves.append((cycle[i], cycle[i + 1]))
        moves.append((relay, cycle[0]))
        out.append(moves)
    return out


_RELAY = -1  # placeholder inside cycle_moves


def extend_path_coloring(
    graph: Graph,
    bags: PathBags,
    palette: Sequence[Color],
    fixed_left: Optional[Mapping[Vertex, Color]] = None,
    fixed_right: Optional[Mapping[Vertex, Color]] = None,
) -> Dict[Vertex, Color]:
    """Color ``graph`` on the decomposition ``bags`` honoring both boundaries.

    ``fixed_left`` vertices must lie in the leftmost bag's side (their runs
    must start at bag 0); ``fixed_right`` vertices in the rightmost bag.
    Either may be empty.  Raises :class:`MorphError` when the decomposition
    is too short or the palette too tight for the relay morph.
    """
    fixed_left = dict(fixed_left or {})
    fixed_right = dict(fixed_right or {})
    for boundary in (fixed_left, fixed_right):
        for v, c in boundary.items():
            for u in graph.neighbors_view(v):
                if boundary.get(u) == c:
                    raise ValueError(
                        f"fixed boundary is improper: {u!r} and {v!r} share {c!r}"
                    )
    if not fixed_right:
        return preference_greedy(graph, bags, palette, fixed=fixed_left)
    if not fixed_left:
        # Mirror the instance so the single boundary is on the left.
        mirrored = extend_path_coloring(
            graph, bags.reversed_(), palette, fixed_left=fixed_right
        )
        return mirrored

    for v in fixed_left:
        if bags.first(v) != 0:
            raise ValueError(f"fixed-left vertex {v!r} does not start at bag 0")
    last_index = len(bags) - 1
    for v in fixed_right:
        if bags.last(v) != last_index:
            raise ValueError(f"fixed-right vertex {v!r} does not end at the last bag")

    # Step 1: greedy honoring the left boundary, preferring right values.
    alpha = preference_greedy(
        graph,
        bags,
        palette,
        fixed=fixed_left,
        preferred=sorted(set(fixed_right.values())),
    )

    # Step 2: the permutation required on the right boundary.
    pi: Dict[Color, Color] = {}
    for v, target in fixed_right.items():
        source = alpha[v]
        if source in pi and pi[source] != target:
            raise AssertionError("alpha is improper on the right boundary clique")
        pi[source] = target
    sigma = complete_permutation(pi, palette)
    if all(sigma[c] == c for c in sigma):
        return alpha

    # Step 3: relay lanes.
    min_first_right = min(bags.first(v) for v in fixed_right)
    cut_candidates = bags.disjoint_cut_positions(
        1, min_first_right - 1, avoid=bags.bags[0]
    )
    if not cut_candidates:
        raise MorphError("no cut positions between the fixed boundaries")
    suffix_used = {
        alpha[v] for v in bags.alive_at_or_after(cut_candidates[0])
    } | set(fixed_right.values())
    relays = [c for c in sorted(palette) if c not in suffix_used]
    if not relays:
        raise MorphError(
            "no relay colors available: palette too small for the morph"
        )

    # Assign cycles to relay lanes, balancing total move counts.
    cycles = cycle_moves(sigma, _RELAY)
    lanes: List[List[Tuple[Color, Color]]] = [[] for _ in relays]
    for cyc in sorted(cycles, key=len, reverse=True):
        lane_idx = min(range(len(lanes)), key=lambda i: len(lanes[i]))
        relay = relays[lane_idx]
        lanes[lane_idx].extend(
            (relay if a is _RELAY else a, relay if b is _RELAY else b)
            for a, b in cyc
        )
    rounds_needed = max(len(lane) for lane in lanes)
    if rounds_needed > len(cut_candidates):
        raise MorphError(
            f"morph needs {rounds_needed} cuts but only "
            f"{len(cut_candidates)} disjoint cut bags are available"
        )
    cuts = cut_candidates[:rounds_needed]

    # Execute the moves cut by cut.
    current = dict(alpha)
    for step, cut in enumerate(cuts):
        alive = bags.alive_at_or_after(cut)
        right = set(bags.strictly_right_of(cut))
        for lane in lanes:
            if step >= len(lane):
                continue
            c_from, c_to = lane[step]
            # legality: target unused among vertices alive at/after the cut
            if any(current[v] == c_to for v in alive):
                raise MorphError(
                    f"move {c_from}->{c_to} at cut {cut} is illegal: "
                    f"{c_to} still in use in the suffix"
                )
            for v in right:
                if current[v] == c_from:
                    current[v] = c_to
    # Vertices right of every cut now carry sigma(alpha); in particular the
    # right boundary matches its fixed colors.
    for v, target in fixed_right.items():
        if current[v] != target:
            raise MorphError(
                f"morph failed to deliver fixed color for {v!r}: "
                f"{current[v]} != {target}"
            )
    return current
