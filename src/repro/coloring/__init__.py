"""The paper's coloring pipeline (Sections 4 and 5).

* :mod:`repro.coloring.parameters` -- every distance/palette constant;
* :mod:`repro.coloring.decomposition` -- clique path decompositions;
* :mod:`repro.coloring.greedy` -- PEO greedy and boundary-aware greedy;
* :mod:`repro.coloring.extension` -- the constructive recoloring lemma;
* :mod:`repro.coloring.interval_coloring` -- ColIntGraph [21];
* :mod:`repro.coloring.prune` -- the peeling process (shared with MIS);
* :mod:`repro.coloring.chordal_mvc` -- Algorithm 1 (centralized);
* :mod:`repro.coloring.distributed_mvc` -- Algorithms 2-4 (distributed).
"""

from .chordal_mvc import (
    ChordalColoringResult,
    color_chordal_graph,
    conflict_boundary,
    correct_path_colors,
)
from .decomposition import PathBags, path_bags_from_cliques
from .distributed_mvc import (
    DistributedColoringReport,
    compute_parent,
    distributed_color_chordal,
    local_layer_decision,
    local_layer_decision_from_ball,
    message_level_layer_decisions,
)
from .extension import MorphError, extend_path_coloring
from .greedy import PaletteExhaustedError, peo_greedy_coloring, preference_greedy
from .interval_coloring import (
    IntervalColoringResult,
    col_int_graph,
    color_interval_component,
)
from .parameters import (
    ColoringParameters,
    morph_cut_budget,
    required_morph_distance,
)
from .prune import (
    PeeledPath,
    Peeling,
    PeelingLayers,
    diameter_rule,
    peel_chordal_graph,
    peeling_layers,
)

__all__ = [
    "ChordalColoringResult",
    "color_chordal_graph",
    "conflict_boundary",
    "correct_path_colors",
    "PathBags",
    "path_bags_from_cliques",
    "DistributedColoringReport",
    "compute_parent",
    "distributed_color_chordal",
    "local_layer_decision",
    "local_layer_decision_from_ball",
    "message_level_layer_decisions",
    "MorphError",
    "extend_path_coloring",
    "PaletteExhaustedError",
    "peo_greedy_coloring",
    "preference_greedy",
    "IntervalColoringResult",
    "col_int_graph",
    "color_interval_component",
    "ColoringParameters",
    "morph_cut_budget",
    "required_morph_distance",
    "PeeledPath",
    "Peeling",
    "PeelingLayers",
    "diameter_rule",
    "peel_chordal_graph",
    "peeling_layers",
]
