"""Greedy colorings: optimal for chordal graphs, boundary-aware on paths.

Two greedy colorings are used throughout:

* :func:`peo_greedy_coloring` -- the classic sequential baseline: coloring
  a chordal graph along the reverse of a perfect elimination ordering uses
  exactly omega(G) = chi(G) colors (chordal graphs are perfect).

* :func:`preference_greedy` -- the left-endpoint greedy on a clique path
  decomposition, extended with the two features the distributed pipeline
  needs: already-fixed vertices (a precolored boundary clique), and a
  *preference order* on colors.  Each vertex's colored-before neighbors
  sit with it in its leftmost bag, so at most max_bag - 1 colors are
  forbidden and the vertex always receives one of the first max_bag
  colors of the preference list.  Consequently the whole coloring (apart
  from the untouchable fixed vertices) uses only the first
  chi = max_bag_size colors of the preference list -- the fact that
  guarantees the boundary morph its spare relay colors.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set

from ..graphs import kernels
from ..graphs.adjacency import Graph, Vertex
from ..graphs.chordal import _not_chordal, perfect_elimination_ordering
from ..graphs.index import graph_index
from .decomposition import PathBags

Color = int

__all__ = ["PaletteExhaustedError", "peo_greedy_coloring", "preference_greedy"]


class PaletteExhaustedError(RuntimeError):
    """A greedy step found no available color -- the palette was too small."""


def peo_greedy_coloring(graph: Graph) -> Dict[Vertex, Color]:
    """An optimal (chi(G)-color) coloring of a chordal graph.

    Processes vertices in reverse perfect elimination order; every vertex's
    earlier-colored neighbors form a clique with it, so the smallest free
    color never exceeds omega(G).  Colors are 1-based.  Dispatches to the
    stamp-array kernel (:func:`repro.graphs.kernels.greedy_coloring`).
    """
    index = graph_index(graph)
    order, bad = kernels.peo_and_violation(index)
    if bad is not None:
        raise _not_chordal(index.verts[bad])
    order.reverse()  # color along the reverse PEO
    colors = kernels.greedy_coloring(index, order)
    verts = index.verts
    return {verts[i]: colors[i] for i in order}


def _reference_peo_greedy_coloring(graph: Graph) -> Dict[Vertex, Color]:
    """Label-space reference for :func:`peo_greedy_coloring`."""
    coloring: Dict[Vertex, Color] = {}
    for v in reversed(perfect_elimination_ordering(graph)):
        used = {coloring[u] for u in graph.neighbors_view(v) if u in coloring}
        color = 1
        while color in used:
            color += 1
        coloring[v] = color
    return coloring


def preference_greedy(
    graph: Graph,
    bags: PathBags,
    palette: Sequence[Color],
    fixed: Optional[Mapping[Vertex, Color]] = None,
    preferred: Sequence[Color] = (),
) -> Dict[Vertex, Color]:
    """Left-endpoint greedy over a clique path decomposition.

    ``fixed`` vertices keep their colors and constrain their neighbors;
    the remaining vertices are processed by (first bag, last bag, id) and
    receive the first available color in the order: ``preferred`` first
    (deduplicated, in the given order), then the rest of ``palette`` in
    ascending order.

    Raises :class:`PaletteExhaustedError` if some vertex finds every
    palette color forbidden, which cannot happen when
    len(palette) >= max_bag_size and the fixed vertices all lie in bags
    together with their fixed-colored neighbors.
    """
    fixed = dict(fixed or {})
    order: List[Color] = []
    seen: Set[Color] = set()
    for c in list(preferred) + sorted(palette):
        if c not in seen:
            seen.add(c)
            order.append(c)
    palette_set = set(palette)
    for v, c in fixed.items():
        if c not in palette_set:
            raise ValueError(f"fixed color {c!r} of {v!r} is outside the palette")

    coloring: Dict[Vertex, Color] = dict(fixed)
    for v in bags.vertex_order():
        if v in coloring:
            continue
        forbidden = {coloring[u] for u in graph.neighbors_view(v) if u in coloring}
        for c in order:
            if c not in forbidden:
                coloring[v] = c
                break
        else:
            raise PaletteExhaustedError(
                f"no color available for {v!r}: palette {len(order)}, "
                f"forbidden {len(forbidden)}"
            )
    return coloring
