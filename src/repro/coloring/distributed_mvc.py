"""Algorithms 2-4: the distributed implementation of the coloring pipeline.

The global behavior of the distributed algorithm is *identical* to
Algorithm 1 (Lemma 12) -- same layers, same colorings, same corrections --
so this driver reuses the centralized phases and adds the two things that
are genuinely distributed:

* **Round accounting** under the ball equivalence: each peeling iteration
  costs one collection of the radius-``collect_radius`` neighborhood; layer
  i therefore leaves PruneTree at round i * collect_radius.  All nodes of a
  layer then run ColIntGraph together (its rounds come from
  :mod:`repro.coloring.interval_coloring`), and the color correction phase
  follows the wait-for-parent recurrence of Lemma 12's induction: a path's
  correction starts when its own layer coloring is done and every
  higher-layer neighbor carries its final color, and takes O(k) rounds.
  The number of rounds of the whole algorithm is the largest node finish
  time, which Theorem 4 bounds by O(k log n).

* **Local decisions** (Algorithm 3): a node can decide its own layer
  membership purely from its collected ball, by reconstructing the local
  view of the clique forest (Section 3) and inspecting the maximal binary
  path around its subtree.  :func:`local_layer_decision` implements the
  per-node rule; tests verify it agrees with the centralized peeling,
  which is exactly the coherence claim of Section 3.

* **Parents and children** (Definition 1): each peeled node's parent is
  the maximum-ID node of the nearest attachment clique, provided it is
  within the recoloring distance; Corollary 2 (parents live in higher
  layers) is verified in tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..cliquetree.forest import CliqueForest
from ..cliquetree.local_view import (
    LocalView,
    compute_local_view,
    local_view_from_ball,
)
from ..cliquetree.paths import path_diameter
from ..graphs.adjacency import Graph, Vertex
from ..localmodel.gather import KnownBall, gather_balls
from ..localmodel.rounds import NodeClocks, RoundLedger
from .chordal_mvc import ChordalColoringResult, color_chordal_graph, conflict_boundary
from .parameters import ColoringParameters
from .prune import PeeledPath, Peeling

__all__ = [
    "DistributedColoringReport",
    "distributed_color_chordal",
    "local_layer_decision",
    "local_layer_decision_from_ball",
    "message_level_layer_decisions",
    "compute_parent",
]


@dataclass
class DistributedColoringReport:
    """Coloring plus the LOCAL-model cost profile of Algorithm 2."""

    result: ChordalColoringResult
    total_rounds: int
    pruning_rounds: int
    coloring_finish: List[int]  # per layer, absolute round of completion
    finish_time: Dict[Vertex, int]
    parents: Dict[Vertex, Optional[Vertex]]

    @property
    def coloring(self) -> Dict[Vertex, int]:
        return self.result.coloring

    def num_colors(self) -> int:
        return self.result.num_colors()


def distributed_color_chordal(
    graph: Graph,
    epsilon: Optional[float] = None,
    k: Optional[int] = None,
) -> DistributedColoringReport:
    """Run Algorithm 2 and account its rounds (Theorem 4)."""
    result = color_chordal_graph(graph, epsilon=epsilon, k=k)
    params = result.parameters
    peeling = result.peeling
    num_layers = peeling.num_layers()

    # Pruning: layer i exits PruneTree after i ball collections.
    iteration_cost = params.collect_radius
    prune_exit = {i: i * iteration_cost for i in range(1, num_layers + 1)}
    pruning_rounds = num_layers * iteration_cost

    # Coloring: each layer starts as soon as it leaves PruneTree.
    coloring_finish = [
        prune_exit[i] + result.layer_color_rounds[i - 1]
        for i in range(1, num_layers + 1)
    ]

    # Correction: Lemma 12's induction, evaluated exactly on the real
    # dependency structure.
    correction_cost = 2 * params.recolor_distance + 4
    clocks = NodeClocks()
    parents: Dict[Vertex, Optional[Vertex]] = {}
    for i in range(num_layers, 0, -1):
        for peeled in peeling.layers[i - 1]:
            w_prime = conflict_boundary(graph, peeling, peeled)
            for v in peeled.nodes:
                parents[v] = compute_parent(graph, peeled, v, params)
            if not w_prime or i == num_layers:
                finish = coloring_finish[i - 1]
            else:
                ready = max(
                    coloring_finish[i - 1],
                    max(clocks.at(u) for u in w_prime),
                )
                finish = ready + correction_cost
            for v in peeled.nodes:
                clocks.set_at(v, finish)

    return DistributedColoringReport(
        result=result,
        total_rounds=clocks.makespan(),
        pruning_rounds=pruning_rounds,
        coloring_finish=coloring_finish,
        finish_time=clocks.as_dict(),
        parents=parents,
    )


def compute_parent(
    graph: Graph,
    peeled: PeeledPath,
    v: Vertex,
    params: ColoringParameters,
) -> Optional[Vertex]:
    """Definition 1: v's parent, or None.

    The parent is the maximum-ID node of the attachment clique C nearest
    to v (ties toward the left attachment), provided dist_G(v, C) is at
    most the recoloring distance.
    """
    candidates: List[Tuple[int, Vertex]] = []
    dist = graph.bfs_distances(v, cutoff=params.recolor_distance)
    for att in (peeled.path.left_attachment, peeled.path.right_attachment):
        if att is None:
            continue
        reachable = [dist[u] for u in att if u in dist]
        if reachable:
            candidates.append((min(reachable), max(att)))
    if not candidates:
        return None
    candidates.sort(key=lambda t: t[0])
    return candidates[0][1]


def local_layer_decision(
    current_graph: Graph, v: Vertex, params: ColoringParameters
) -> bool:
    """Algorithm 3, step 3: should v join the current layer?

    Decides purely from v's radius-``collect_radius`` ball of the current
    (not yet peeled) graph: reconstruct the local view of the clique
    forest, walk the maximal binary path around T(v), and join if the path
    is pendant, long enough, or provably extends beyond the horizon.
    """
    view = compute_local_view(current_graph, v, params.collect_radius)
    ball_graph = current_graph.induced_subgraph(set(view.interior))
    return _decide_from_view(view, ball_graph, params)


def local_layer_decision_from_ball(
    ball: KnownBall, params: ColoringParameters
) -> bool:
    """Algorithm 3's layer decision, consuming only a gathered ball.

    Message-level twin of :func:`local_layer_decision`: the node's
    knowledge is a :class:`~repro.localmodel.gather.KnownBall` obtained
    by actually running the gather program, not a slice of the global
    graph.  Identical decisions by the gather contract
    (``ball.as_graph()`` equals the induced radius ball).
    """
    if ball.radius != params.collect_radius:
        raise ValueError(
            f"ball radius {ball.radius} != collect_radius "
            f"{params.collect_radius}"
        )
    view = local_view_from_ball(ball)
    ball_graph = ball.as_graph().induced_subgraph(set(view.interior))
    return _decide_from_view(view, ball_graph, params)


def message_level_layer_decisions(
    current_graph: Graph,
    params: ColoringParameters,
    sealed: bool = False,
    scheduler: str = "active",
    program: str = "delta",
    executor: str = "auto",
) -> Tuple[Dict[Vertex, bool], int]:
    """Per-node layer decisions via real message-passing ball gathering.

    Floods for ``params.collect_radius`` rounds on the synchronous
    simulator (delta gathering by default), then each node decides from
    its own ball alone.  Returns ``(decisions, rounds)`` where
    ``rounds`` is the simulator's round count
    (``collect_radius + 1``, one final round to detect quiescence).
    ``executor`` passes through to :func:`gather_balls`: under the
    default ``"auto"`` the gather compiles to the whole-round batch
    kernel when eligible, with identical decisions and round counts.
    """
    balls, rounds = gather_balls(
        current_graph,
        params.collect_radius,
        sealed=sealed,
        scheduler=scheduler,
        program=program,
        executor=executor,
    )
    decisions = {
        v: local_layer_decision_from_ball(ball, params)
        for v, ball in balls.items()
    }
    return decisions, rounds


def _decide_from_view(
    view: LocalView, ball_graph: Graph, params: ColoringParameters
) -> bool:
    """The decision rule, given the reconstructed view and interior graph."""
    frag = view.forest
    phi_v = frag.phi(view.center)

    # T(v) must lie on a binary path: every clique containing v needs
    # (certified) degree <= 2.  Cliques containing v sit inside Gamma[v],
    # deep within the view, so their degrees are always certified.
    for c in phi_v:
        if frag.degree(c) > 2 or not view.degree_is_exact(c):
            return False

    # Walk outwards from T(v)'s subpath in both directions.
    path = _order_subpath(frag, phi_v)
    if len(path) == 1:
        outward = sorted(frag.neighbors(path[0]), key=lambda c: tuple(sorted(c)))
        targets = [
            (path[0], outward[0] if outward else None),
            (path[0], outward[1] if len(outward) > 1 else None),
        ]
    else:
        left_out = frag.neighbors(path[0]) - {path[1]}
        right_out = frag.neighbors(path[-1]) - {path[-2]}
        targets = [
            (path[0], next(iter(left_out), None)),
            (path[-1], next(iter(right_out), None)),
        ]

    statuses: List[str] = []
    extensions: List[List] = []
    for boundary, first_next in targets:
        ext, status = _walk_binary(frag, view, boundary, first_next)
        statuses.append(status)
        extensions.append(ext)
    full_path = list(reversed(extensions[0])) + path + extensions[1]

    if "pendant" in statuses:
        # The true maximal binary path around T(v) has a free end, so it
        # is pendant and always peeled.
        return True
    # Internal (or horizon-truncated, in which case the true path is at
    # least as long as what we see): join iff the visible diameter clears
    # the threshold.
    visible_diameter = _path_diameter_within(ball_graph, full_path)
    return visible_diameter >= params.internal_threshold


def _walk_binary(
    frag: CliqueForest, view: LocalView, boundary, first_next
) -> Tuple[List, str]:
    """Follow a binary path from ``boundary`` through ``first_next``.

    Returns the cliques appended (nearest first) and the end status:
    'pendant' (free end certified), 'attached' (a degree->=3 clique
    blocks), or 'truncated' (the view's horizon cut the walk short).
    """
    if first_next is None:
        return [], "pendant"
    ext: List = []
    before, cur = boundary, first_next
    while True:
        if frag.degree(cur) > 2:
            # fragment degree lower-bounds the true degree
            return ext, "attached"
        if not view.degree_is_exact(cur):
            return ext, "truncated"
        ext.append(cur)
        nbrs = frag.neighbors(cur) - {before}
        if not nbrs:
            return ext, "pendant"
        before, cur = cur, next(iter(nbrs))


def _order_subpath(frag: CliqueForest, cliques: Set) -> List:
    members = set(cliques)
    if len(members) == 1:
        return list(members)
    ends = [c for c in members if len(frag.neighbors(c) & members) <= 1]
    start = min(ends, key=lambda c: tuple(sorted(c)))
    ordered = [start]
    prev = None
    cur = start
    while len(ordered) < len(members):
        nxt = [d for d in frag.neighbors(cur) if d in members and d != prev]
        prev, cur = cur, nxt[0]
        ordered.append(cur)
    return ordered


def _path_diameter_within(ball_graph: Graph, path: List) -> int:
    verts = set()
    for c in path:
        verts |= c
    verts &= set(ball_graph.vertices())
    best = 0
    for s in verts:
        dist = ball_graph.bfs_distances(s)
        for t in verts:
            if t in dist:
                best = max(best, dist[t])
    return best
