"""repro: distributed (1 + eps)-approximate MVC and MIS on chordal graphs.

A full reproduction of Konrad & Zamaraev, "Distributed Minimum Vertex
Coloring and Maximum Independent Set in Chordal Graphs" (PODC 2018 brief
announcement / arXiv:1805.04544), as a standalone Python library:

* :mod:`repro.graphs` -- graph substrate (chordal/interval machinery,
  generators, validators, brute-force oracles);
* :mod:`repro.cliquetree` -- clique forests, the canonical maximum-weight
  spanning forest, binary paths, local views (Section 3);
* :mod:`repro.localmodel` -- LOCAL-model simulation (message passing,
  ball gathering, Linial coloring, ruling sets, round accounting);
* :mod:`repro.coloring` -- Algorithms 1-4: the (1 + eps)-approximate
  Minimum Vertex Coloring pipeline (Sections 4-5);
* :mod:`repro.mis` -- Algorithms 5-6: the (1 + eps)-approximate Maximum
  Independent Set algorithms (Sections 6-7);
* :mod:`repro.baselines` -- Luby's MIS and (Delta + 1) colorings;
* :mod:`repro.lowerbounds` -- the Theorem 9 experiment (Section 8);
* :mod:`repro.analysis` -- experiment runners behind EXPERIMENTS.md.

Quickstart::

    from repro.graphs import random_chordal_graph
    from repro.coloring import color_chordal_graph
    from repro.mis import chordal_mis

    g = random_chordal_graph(200, seed=1)
    coloring = color_chordal_graph(g, epsilon=0.5)
    independent = chordal_mis(g, epsilon=0.4)
"""

__version__ = "1.0.0"

from . import analysis, baselines, cliquetree, coloring, extensions, graphs, localmodel, lowerbounds, mis
from .verify import VerificationReport, verify_coloring_run, verify_mis_run

__all__ = [
    "analysis",
    "baselines",
    "cliquetree",
    "coloring",
    "extensions",
    "graphs",
    "localmodel",
    "lowerbounds",
    "mis",
    "VerificationReport",
    "verify_coloring_run",
    "verify_mis_run",
    "__version__",
]
