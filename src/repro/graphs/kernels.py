"""O(n + m) kernels for the hot chordal machinery, in integer id space.

Every function here runs on a :class:`~repro.graphs.index.GraphIndex`
snapshot (dense ids, CSR adjacency, big-int bitsets) and is the drop-in
fast path behind the public label-space API:

====================================  =======================  ==================
kernel                                replaces                 cost
====================================  =======================  ==================
:func:`lexbfs`                        ``chordal.lex_bfs``      O(n + m)
:func:`mcs`                           ``chordal.maximum_-      O((n + m) log n)
                                      cardinality_search``
:func:`check_peo` / :func:`is_peo`    ``chordal.check_peo``    O(n + m)
:func:`peo_and_violation`             ``chordal.perfect_-      O(n + m)
                                      elimination_ordering``
:func:`maximal_cliques_from_peo`      ``chordal.maximal_-      O(n + m)
                                      cliques``
:func:`simplicial_vertex_ids`         ``chordal.simplicial_-   O(m · n / 64)
                                      vertices``               (bitsets, early exit)
:func:`greedy_coloring`               ``coloring.greedy.peo_-  O(n + m)
                                      greedy_coloring``
:func:`clique_intersection_edges`     ``cliquetree.wcig``      output-sensitive
:func:`peeling_layers`                layer map of             forest O(n + m) +
                                      ``coloring.prune``       diameter BFSes
====================================  =======================  ==================

The kernels are **tie-break exact**: ids are assigned in sorted label
order (see :mod:`repro.graphs.index`), so comparing ints reproduces every
label comparison the reference implementations make, and each kernel's
output — translated back to labels — is byte-identical to the retained
``_reference_*`` path.  The equivalence suite in
``tests/graphs/test_kernels.py`` pins this across all generator families,
adversarial non-chordal inputs, and the paper's 23-node example.

LexBFS uses the stable partition-refinement of Habib–McConnell–Paul–
Viennot: classes are doubly-linked vertex lists, a pivot's unvisited
neighbors move (in rank order) into a twin class inserted just before
their old class, so within-class order stays the initial-rank order — the
same tie-break the reference's stable block filtering produces.  MCS uses
a bucket queue with lazy-deletion min-heaps per weight.  The PEO check is
Golumbic's deferred "parent accumulation" test; on failure a bitset rescan
recovers the reference's *first* violating vertex.  Maximal cliques use
the Blair–Peyton criterion (``C(v)`` is non-maximal iff some vertex whose
parent is ``v`` has a later-neighborhood one larger), which is equivalent
to — and replaces — the reference's quadratic subset filter.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

from .index import GraphIndex

__all__ = [
    "lexbfs",
    "mcs",
    "is_peo",
    "check_peo",
    "peo_and_violation",
    "maximal_cliques_from_peo",
    "is_simplicial_id",
    "simplicial_vertex_ids",
    "greedy_coloring",
    "clique_intersection_edges",
    "maximum_weight_spanning_forest_ids",
    "peeling_layers",
]


# ---------------------------------------------------------------------------
# LexBFS / LBFS+
# ---------------------------------------------------------------------------

def lexbfs(
    index: GraphIndex,
    start: Optional[int] = None,
    plus: Optional[Sequence[int]] = None,
) -> List[int]:
    """Lexicographic BFS visit order over ids (see module docstring).

    ``start`` pins the first visited id.  ``plus`` (a previous visit order
    as ids) switches to the LBFS+ tie-break: ties go to the id appearing
    latest in it, and the start defaults to its last element.  Callers
    validate that ``plus`` enumerates every id exactly once.
    """
    n = index.n
    if n == 0:
        return []
    if plus is not None:
        init = list(reversed(plus))
        if start is None:
            start = init[0]
    else:
        init = list(range(n))
    if start is not None and init[0] != start:
        init = [start] + [v for v in init if v != start]
    return _lexbfs_core(index, init)


def _lexbfs_core(index: GraphIndex, init: List[int]) -> List[int]:
    n = index.n
    indptr, indices = index.indptr, index.indices

    # Neighbors of each vertex in increasing *rank* (initial position)
    # order: append v to each neighbor's list while scanning init.
    nbr_by_rank: List[List[int]] = [[] for _ in range(n)]
    for v in init:
        for k in range(indptr[v], indptr[v + 1]):
            nbr_by_rank[indices[k]].append(v)

    # Vertices doubly linked inside their class; classes doubly linked.
    nxt = [-1] * n
    prv = [-1] * n
    prev = -1
    for v in init:
        prv[v] = prev
        if prev >= 0:
            nxt[prev] = v
        prev = v
    chead = [init[0]]
    ctail = [init[-1]]
    cnext = [-1]
    cprev = [-1]
    cls_of = [0] * n
    first_class = 0

    visited = bytearray(n)
    order: List[int] = []
    append_order = order.append

    while first_class != -1:
        # pop the head of the first class
        v = chead[first_class]
        h = nxt[v]
        if h == -1:
            nc = cnext[first_class]
            if nc != -1:
                cprev[nc] = -1
            first_class = nc
        else:
            prv[h] = -1
            chead[first_class] = h
        visited[v] = 1
        append_order(v)

        # split every class touched by v's unvisited neighbors: each
        # neighbor moves (in rank order) to a twin inserted before its
        # old class.
        twins: Dict[int, int] = {}
        for u in nbr_by_rank[v]:
            if visited[u]:
                continue
            c = cls_of[u]
            t = twins.get(c)
            if t is None:
                t = len(chead)
                chead.append(-1)
                ctail.append(-1)
                pc = cprev[c]
                cnext.append(c)
                cprev.append(pc)
                cprev[c] = t
                if pc == -1:
                    first_class = t
                else:
                    cnext[pc] = t
                twins[c] = t
            # unlink u from c
            pu, nu = prv[u], nxt[u]
            if pu != -1:
                nxt[pu] = nu
            else:
                chead[c] = nu
            if nu != -1:
                prv[nu] = pu
            else:
                ctail[c] = pu
            if chead[c] == -1:  # c drained: drop it from the class list
                pc2, nc2 = cprev[c], cnext[c]
                if pc2 != -1:
                    cnext[pc2] = nc2
                else:
                    first_class = nc2
                if nc2 != -1:
                    cprev[nc2] = pc2
            # append u at the tail of the twin
            tl = ctail[t]
            prv[u] = tl
            nxt[u] = -1
            if tl == -1:
                chead[t] = u
            else:
                nxt[tl] = u
            ctail[t] = u
            cls_of[u] = t
    return order


# ---------------------------------------------------------------------------
# Maximum cardinality search
# ---------------------------------------------------------------------------

def mcs(index: GraphIndex) -> List[int]:
    """MCS visit order: max visited-neighbor count, ties to the lowest id."""
    n = index.n
    if n == 0:
        return []
    indptr, indices = index.indptr, index.indices
    weight = [0] * n
    visited = bytearray(n)
    # buckets[w] is a lazy min-heap of ids currently believed at weight w;
    # range(n) is already heap-ordered.
    buckets: List[List[int]] = [[] for _ in range(n + 1)]
    buckets[0] = list(range(n))
    max_w = 0
    order: List[int] = []
    for _ in range(n):
        while True:
            b = buckets[max_w]
            while b and (visited[b[0]] or weight[b[0]] != max_w):
                heapq.heappop(b)
            if b:
                break
            max_w -= 1
        v = heapq.heappop(buckets[max_w])
        visited[v] = 1
        order.append(v)
        for k in range(indptr[v], indptr[v + 1]):
            u = indices[k]
            if not visited[u]:
                w = weight[u] + 1
                weight[u] = w
                heapq.heappush(buckets[w], u)
                if w > max_w:
                    max_w = w
    return order


# ---------------------------------------------------------------------------
# PEO checking
# ---------------------------------------------------------------------------

def _accumulated_peo_test(index: GraphIndex, order: Sequence[int]) -> bool:
    """Golumbic's linear PEO test (True iff ``order`` is a PEO)."""
    n = index.n
    indptr, indices = index.indptr, index.indices
    pos = [0] * n
    for i, v in enumerate(order):
        pos[v] = i
    pending: List[List[int]] = [[] for _ in range(n)]
    mark = [-1] * n
    for step, v in enumerate(order):
        owed = pending[v]
        if owed:
            for k in range(indptr[v], indptr[v + 1]):
                mark[indices[k]] = step
            for u in owed:
                if mark[u] != step:
                    return False
        pv = pos[v]
        parent = -1
        best = n + 1
        later: List[int] = []
        for k in range(indptr[v], indptr[v + 1]):
            u = indices[k]
            pu = pos[u]
            if pu > pv:
                later.append(u)
                if pu < best:
                    best = pu
                    parent = u
        if parent != -1:
            owe = pending[parent]
            for u in later:
                if u != parent:
                    owe.append(u)
    return True


def _first_peo_violation(index: GraphIndex, order: Sequence[int]) -> Optional[int]:
    """The first id in ``order`` whose later neighborhood is not a clique.

    Per-vertex rescan used only on the failure path, where it reproduces
    the reference's answer (the *earliest* violating vertex, not the one
    the accumulation test happens to trip over first).
    """
    n = index.n
    indptr, indices = index.indptr, index.indices
    pos = [0] * n
    for i, v in enumerate(order):
        pos[v] = i
    mark = [-1] * n
    for step, v in enumerate(order):
        pv = pos[v]
        later: List[int] = []
        parent = -1
        best = n + 1
        for k in range(indptr[v], indptr[v + 1]):
            u = indices[k]
            pu = pos[u]
            if pu > pv:
                later.append(u)
                if pu < best:
                    best = pu
                    parent = u
        if parent == -1:
            continue
        for k in range(indptr[parent], indptr[parent + 1]):
            mark[indices[k]] = step
        mark[parent] = step
        for u in later:
            if mark[u] != step:
                return v
    return None


def is_peo(index: GraphIndex, order: Sequence[int]) -> bool:
    """Whether ``order`` (a permutation of the ids) is a PEO."""
    return _accumulated_peo_test(index, order)


def check_peo(index: GraphIndex, order: Sequence[int]) -> Optional[int]:
    """``None`` if ``order`` is a PEO, else the first violating id."""
    if _accumulated_peo_test(index, order):
        return None
    bad = _first_peo_violation(index, order)
    if bad is None:  # pragma: no cover - the two tests agree by construction
        raise AssertionError("PEO test disagreement")
    return bad


def peo_and_violation(index: GraphIndex) -> Tuple[List[int], Optional[int]]:
    """Reverse-LexBFS order plus its first PEO violation (None iff chordal)."""
    order = lexbfs(index)
    order.reverse()
    return order, check_peo(index, order)


# ---------------------------------------------------------------------------
# Maximal cliques (Blair–Peyton) and simplicial vertices
# ---------------------------------------------------------------------------

def maximal_cliques_from_peo(
    index: GraphIndex, order: Sequence[int]
) -> List[Tuple[int, ...]]:
    """The maximal cliques of a chordal graph from a verified PEO.

    Returns sorted id-tuples ordered by (size, members) — the reference's
    determinism contract.  ``C(v) = {v} + later-neighbors(v)`` is maximal
    iff no vertex ``w`` with parent ``v`` has ``|madj(w)| = |madj(v)| + 1``
    (Blair & Peyton); candidates are pairwise distinct because ``v`` is
    the earliest member of ``C(v)``.
    """
    n = index.n
    indptr, indices = index.indptr, index.indices
    pos = [0] * n
    for i, v in enumerate(order):
        pos[v] = i
    later_of: List[List[int]] = [[] for _ in range(n)]
    parent = [-1] * n
    msize = [0] * n
    for v in range(n):
        pv = pos[v]
        best = n + 1
        par = -1
        later = later_of[v]
        for k in range(indptr[v], indptr[v + 1]):
            u = indices[k]
            pu = pos[u]
            if pu > pv:
                later.append(u)
                if pu < best:
                    best = pu
                    par = u
        parent[v] = par
        msize[v] = len(later)
    non_maximal = bytearray(n)
    for w in range(n):
        p = parent[w]
        if p != -1 and msize[w] == msize[p] + 1:
            non_maximal[p] = 1
    cliques: List[Tuple[int, ...]] = []
    for v in range(n):
        if not non_maximal[v]:
            members = later_of[v] + [v]
            members.sort()
            cliques.append(tuple(members))
    cliques.sort(key=lambda c: (len(c), c))
    return cliques


#: Above this vertex count the bitset neighborhood table (O(n^2 / 8) bytes,
#: O(n * m / 64) build) loses to sorted-row merges; the simplicial kernel
#: switches strategy here.  See docs/kernels.md for the crossover argument.
_BITSET_N_LIMIT = 4096


def _is_simplicial_bits(index: GraphIndex, v: int) -> bool:
    """Bitset subset tests: one ``& ~`` word sweep per neighbor."""
    nbr_bits = index.nbr_bits
    nb = nbr_bits[v]
    indptr, indices = index.indptr, index.indices
    for k in range(indptr[v], indptr[v + 1]):
        u = indices[k]
        # every neighbor with a larger id must be adjacent to u
        if (nb & ~nbr_bits[u]) >> (u + 1):
            return False
    return True


def _is_simplicial_merge(index: GraphIndex, v: int) -> bool:
    """Sorted-row two-pointer subset tests (no bitset table needed)."""
    indptr, indices = index.indptr, index.indices
    row_v = indices[indptr[v]:indptr[v + 1]]
    dv = len(row_v)
    for a in range(dv - 1):
        u = row_v[a]
        # row_v[a + 1:] (the neighbors above u) must all be adjacent to u
        i = a + 1
        j = indptr[u]
        end = indptr[u + 1]
        while i < dv:
            target = row_v[i]
            while j < end and indices[j] < target:
                j += 1
            if j >= end or indices[j] != target:
                return False
            i += 1
            j += 1
    return True


def is_simplicial_id(index: GraphIndex, v: int) -> bool:
    """Whether N(v) is a clique.

    Uses the bitset table below :data:`_BITSET_N_LIMIT` vertices (or when
    it is already built), sorted-row merges above it.
    """
    if index.n <= _BITSET_N_LIMIT or index._nbr_bits is not None:
        return _is_simplicial_bits(index, v)
    return _is_simplicial_merge(index, v)


def simplicial_vertex_ids(index: GraphIndex) -> List[int]:
    """All simplicial ids, ascending."""
    return [v for v in range(index.n) if is_simplicial_id(index, v)]


# ---------------------------------------------------------------------------
# Greedy coloring along an order
# ---------------------------------------------------------------------------

def greedy_coloring(index: GraphIndex, order: Sequence[int]) -> List[int]:
    """First-fit colors (1-based, indexed by id) processing ``order``.

    Stamp-array smallest-free-color: O(n + m) total, no per-vertex set of
    used colors.  Vertices not in ``order`` keep color 0.
    """
    n = index.n
    indptr, indices = index.indptr, index.indices
    color = [0] * n
    used = [0] * (n + 2)
    stamp = 0
    for v in order:
        stamp += 1
        for k in range(indptr[v], indptr[v + 1]):
            c = color[indices[k]]
            if c:
                used[c] = stamp
        c = 1
        while used[c] == stamp:
            c += 1
        color[v] = c
    return color


# ---------------------------------------------------------------------------
# Weighted clique intersection graph + canonical spanning forest (id space)
# ---------------------------------------------------------------------------

def clique_intersection_edges(
    cliques: Sequence[Tuple[int, ...]]
) -> List[Tuple[int, int, int]]:
    """W_G edges among ``cliques`` as ``(i, j, weight)`` with ``i < j``.

    Output-sensitive: instead of intersecting all O(q²) pairs, walk each
    vertex's clique-incidence list and count shared members per pair, so
    the cost is the total intersection weight.  The result is sorted by
    (i, j) — exactly the reference's nested-loop enumeration order.
    """
    incidence: Dict[int, List[int]] = {}
    weights: Dict[Tuple[int, int], int] = {}
    for ci, members in enumerate(cliques):
        for v in members:
            lst = incidence.get(v)
            if lst is None:
                incidence[v] = [ci]
            else:
                for cj in lst:
                    key = (cj, ci)
                    weights[key] = weights.get(key, 0) + 1
                lst.append(ci)
    return [(i, j, w) for (i, j), w in sorted(weights.items())]


def maximum_weight_spanning_forest_ids(
    cliques: Sequence[Tuple[int, ...]],
    edges: Sequence[Tuple[int, int, int]],
) -> List[Tuple[int, int]]:
    """Kruskal under the paper's canonical order ``<``, over clique indices.

    The key of edge (i, j) is ``(w, sigma_lo, sigma_hi)`` with the sigma
    words compared as id tuples — order-isomorphic to the label-space
    reference, hence the same unique forest.
    """
    def key(e: Tuple[int, int, int]):
        i, j, w = e
        si, sj = cliques[i], cliques[j]
        return (w, si, sj) if si <= sj else (w, sj, si)

    parent = list(range(len(cliques)))

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    chosen: List[Tuple[int, int]] = []
    size = [1] * len(cliques)
    for i, j, _w in sorted(edges, key=key, reverse=True):
        ri, rj = find(i), find(j)
        if ri == rj:
            continue
        if size[ri] < size[rj]:
            ri, rj = rj, ri
        parent[rj] = ri
        size[ri] += size[rj]
        chosen.append((i, j))
    return chosen


# ---------------------------------------------------------------------------
# Peeling layers (Lemma 6), layers only
# ---------------------------------------------------------------------------

class _RestrictedBFS:
    """BFS over the CSR arrays restricted to alive vertices, with stamped
    distance arrays so repeated calls allocate nothing."""

    def __init__(self, index: GraphIndex, alive: bytearray):
        self._indptr = index.indptr
        self._indices = index.indices
        self._alive = alive
        self._dist = [0] * index.n
        self._seen = [0] * index.n
        self._stamp = 0

    def eccentricity_capped(self, source: int, targets: Sequence[int], cap: int) -> int:
        """max distance from ``source`` to ``targets``, depth-capped.

        The BFS stops at depth ``cap``; a target not reached by then has
        distance > cap, reported as ``cap + 1``.  The cap is what keeps
        peeling linear-ish: a decision "diam >= t" never needs distances
        beyond t, so each BFS explores only the radius-t ball of its
        source instead of the whole alive component.
        """
        self._stamp += 1
        stamp = self._stamp
        dist, seen = self._dist, self._seen
        indptr, indices, alive = self._indptr, self._indices, self._alive
        seen[source] = stamp
        dist[source] = 0
        frontier = [source]
        d = 0
        while frontier and d < cap:
            d += 1
            nxt: List[int] = []
            for u in frontier:
                for k in range(indptr[u], indptr[u + 1]):
                    w = indices[k]
                    if alive[w] and seen[w] != stamp:
                        seen[w] = stamp
                        dist[w] = d
                        nxt.append(w)
            frontier = nxt
        best = 0
        for t in targets:
            if seen[t] != stamp:
                return cap + 1
            dt = dist[t]
            if dt > best:
                best = dt
        return best


def _path_diameter_at_least(
    bfs: _RestrictedBFS, verts: List[int], threshold: int
) -> bool:
    """Whether the diameter realized within ``verts`` is >= threshold.

    One eccentricity bounds the diameter within [ecc, 2*ecc]; only the
    gray zone pays for the all-sources scan, and every BFS is capped at
    the threshold depth.
    """
    if not verts:
        return 0 >= threshold
    ecc = bfs.eccentricity_capped(verts[0], verts, threshold)
    if ecc >= threshold:
        return True
    if 2 * ecc < threshold:
        return False
    for s in verts[1:]:
        if bfs.eccentricity_capped(s, verts, threshold) >= threshold:
            return True
    return False


def peeling_layers(
    index: GraphIndex,
    threshold: int,
    max_iterations: Optional[int] = None,
    last_threshold: Optional[int] = None,
    order: Optional[List[int]] = None,
) -> Tuple[List[List[int]], bool]:
    """The layer map of the peeling process, as sorted id lists.

    Mirrors ``peel_chordal_graph(g, diameter_rule(threshold), ...)`` —
    same canonical clique forest, same maximal-binary-path decisions, same
    per-iteration removals — but computes only what Lemma 6 talks about:
    which vertex lands in which layer, and whether the process exhausted
    the forest.  ``order`` is an optional pre-verified PEO; without one it
    is computed here, raising ``ValueError`` on non-chordal input (callers
    that want the richer :class:`~repro.coloring.prune.Peeling` keep using
    the reference path).
    """
    n = index.n
    if order is None:
        order, bad = peo_and_violation(index)
        if bad is not None:
            raise ValueError(f"graph is not chordal (violating id {bad})")
    cliques = maximal_cliques_from_peo(index, order)
    ncliq = len(cliques)
    edges = clique_intersection_edges(cliques)
    forest_edges = maximum_weight_spanning_forest_ids(cliques, edges)

    fadj: List[List[int]] = [[] for _ in range(ncliq)]
    for i, j in forest_edges:
        fadj[i].append(j)
        fadj[j].append(i)
    deg = [len(a) for a in fadj]
    alive_c = bytearray([1]) * ncliq if ncliq else bytearray()
    phi: List[List[int]] = [[] for _ in range(n)]
    for ci, members in enumerate(cliques):
        for v in members:
            phi[v].append(ci)
    phi_alive = [len(p) for p in phi]
    alive_v = bytearray([1]) * n if n else bytearray()
    bfs = _RestrictedBFS(index, alive_v)

    layers: List[List[int]] = []
    remaining = ncliq
    comp_seen = [0] * ncliq
    iteration = 0
    while remaining:
        iteration += 1
        if max_iterations is not None and iteration > max_iterations:
            return layers, False
        thr = threshold
        if (
            last_threshold is not None
            and max_iterations is not None
            and iteration == max_iterations
        ):
            thr = last_threshold

        removed: List[int] = []
        layer_set: List[int] = []
        for c0 in range(ncliq):
            if not alive_c[c0] or deg[c0] > 2 or comp_seen[c0] == iteration:
                continue
            # one maximal binary path: the component of c0 among alive
            # cliques of degree <= 2
            comp = [c0]
            comp_seen[c0] = iteration
            stack = [c0]
            while stack:
                x = stack.pop()
                for y in fadj[x]:
                    if alive_c[y] and deg[y] <= 2 and comp_seen[y] != iteration:
                        comp_seen[y] = iteration
                        comp.append(y)
                        stack.append(y)
            # pendant iff some end has no outside (alive) attachment
            if len(comp) == 1:
                pendant = deg[c0] <= 1
            else:
                pendant = False
                for c in comp:
                    inner = 0
                    for y in fadj[c]:
                        if alive_c[y] and deg[y] <= 2 and comp_seen[y] == iteration:
                            inner += 1
                    if inner == 1 and deg[c] - inner == 0:
                        pendant = True
                        break
            if not pendant:
                verts_set = set()
                for c in comp:
                    verts_set.update(cliques[c])
                if not _path_diameter_at_least(bfs, sorted(verts_set), thr):
                    continue
            removed.extend(comp)
            # a vertex is peeled by THIS path iff its whole alive subtree
            # lies on it (phi(v) inside the path), matching
            # ``nodes_with_subtree_in`` -- a vertex whose cliques span two
            # removed paths survives the iteration.
            count: Dict[int, int] = {}
            for c in comp:
                for v in cliques[c]:
                    count[v] = count.get(v, 0) + 1
            for v, k in count.items():
                if k == phi_alive[v]:
                    layer_set.append(v)

        if not removed:
            raise AssertionError(
                "peeling stalled: a nonempty forest always has pendant paths"
            )

        layer = sorted(layer_set)
        layers.append(layer)

        for c in removed:
            alive_c[c] = 0
        for c in removed:
            for d in fadj[c]:
                if alive_c[d]:
                    deg[d] -= 1
            for v in cliques[c]:
                phi_alive[v] -= 1
        for v in layer:
            alive_v[v] = 0
        remaining -= len(removed)
    return layers, True
