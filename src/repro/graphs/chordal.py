"""Chordal graph machinery: elimination orderings, recognition, cliques.

A graph is *chordal* if every cycle on at least four vertices has a chord
(Section 2 of the paper).  Equivalently, it admits a *perfect elimination
ordering* (PEO): an ordering v_1, ..., v_n such that each v_i is simplicial
in G[{v_i, ..., v_n}] -- its later neighbors form a clique.

This module provides:

* :func:`lex_bfs` -- lexicographic breadth-first search, which produces a
  PEO (in reverse visit order) exactly when the graph is chordal,
* :func:`maximum_cardinality_search` -- the MCS alternative,
* :func:`perfect_elimination_ordering` / :func:`is_chordal`,
* :func:`maximal_cliques` -- the (at most n) maximal cliques of a chordal
  graph, extracted from a PEO in the standard way,
* :func:`simplicial_vertices`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .adjacency import Graph, Vertex

__all__ = [
    "NotChordalError",
    "lex_bfs",
    "maximum_cardinality_search",
    "perfect_elimination_ordering",
    "is_chordal",
    "check_peo",
    "maximal_cliques",
    "simplicial_vertices",
    "is_simplicial",
    "clique_number",
]


class NotChordalError(ValueError):
    """Raised when an algorithm that requires a chordal input receives one
    that is not chordal.  Carries the violating vertex when known."""

    def __init__(self, message: str, vertex: Optional[Vertex] = None):
        super().__init__(message)
        self.vertex = vertex


def lex_bfs(
    graph: Graph,
    start: Optional[Vertex] = None,
    plus: Optional[List[Vertex]] = None,
) -> List[Vertex]:
    """Lexicographic BFS visit order.

    Implemented with the classic partition-refinement scheme.  Ties are
    broken by vertex order so the output is deterministic.  If ``start``
    is given, it is visited first.  If ``plus`` is given (a previous visit
    order), ties are instead broken by choosing the vertex appearing
    *latest* in it -- the LBFS+ rule of Corneil's multi-sweep recognition
    algorithms; the start defaults to the last vertex of ``plus``.

    The *reverse* of the returned order is a PEO iff the graph is chordal.
    """
    if len(graph) == 0:
        return []
    if plus is not None:
        if sorted(plus) != graph.vertices():
            raise ValueError("plus order must enumerate every vertex exactly once")
        verts = list(reversed(plus))
        if start is None:
            start = verts[0]
    else:
        verts = graph.vertices()
    if start is not None:
        if start not in graph:
            raise KeyError(f"start vertex {start!r} not in graph")
        verts = [start] + [v for v in verts if v != start]

    # Partition refinement: a list of "blocks" ordered by label priority.
    # Each visited vertex splits every block into (neighbors, rest), with
    # neighbors moving in front.
    blocks: List[List[Vertex]] = [list(verts)]
    order: List[Vertex] = []
    while blocks:
        head = blocks[0]
        v = head.pop(0)
        if not head:
            blocks.pop(0)
        order.append(v)
        nbrs = graph.neighbors(v)
        new_blocks: List[List[Vertex]] = []
        for block in blocks:
            inside = [u for u in block if u in nbrs]
            outside = [u for u in block if u not in nbrs]
            if inside:
                new_blocks.append(inside)
            if outside:
                new_blocks.append(outside)
        blocks = new_blocks
    return order


def maximum_cardinality_search(graph: Graph) -> List[Vertex]:
    """Maximum cardinality search visit order.

    Repeatedly visits the unvisited vertex with the most visited neighbors
    (ties by vertex order).  Like LexBFS, the reverse visit order is a PEO
    iff the graph is chordal.
    """
    weight: Dict[Vertex, int] = {v: 0 for v in graph.vertices()}
    order: List[Vertex] = []
    unvisited: Set[Vertex] = set(weight)
    while unvisited:
        v = max(sorted(unvisited), key=lambda u: weight[u])
        order.append(v)
        unvisited.remove(v)
        for u in graph.neighbors(v):
            if u in unvisited:
                weight[u] += 1
    return order


def check_peo(graph: Graph, order: List[Vertex]) -> Optional[Vertex]:
    """Check whether ``order`` is a perfect elimination ordering.

    Returns ``None`` if it is, otherwise the first vertex whose later
    neighborhood is not a clique.  Uses the standard "parent" test, which
    only needs O(m) adjacency checks.
    """
    pos = {v: i for i, v in enumerate(order)}
    if len(pos) != len(graph):
        raise ValueError("order must enumerate every vertex exactly once")
    for v in order:
        later = [u for u in graph.neighbors(v) if pos[u] > pos[v]]
        if not later:
            continue
        parent = min(later, key=lambda u: pos[u])
        rest = set(later) - {parent}
        if not rest <= graph.neighbors(parent):
            return v
    return None


def perfect_elimination_ordering(graph: Graph) -> List[Vertex]:
    """A PEO of a chordal graph; raises :class:`NotChordalError` otherwise."""
    order = list(reversed(lex_bfs(graph)))
    bad = check_peo(graph, order)
    if bad is not None:
        raise NotChordalError(
            f"graph is not chordal (vertex {bad!r} is not simplicial when eliminated)",
            vertex=bad,
        )
    return order


def is_chordal(graph: Graph) -> bool:
    """Whether the graph is chordal (LexBFS + PEO check, O(n + m))."""
    order = list(reversed(lex_bfs(graph)))
    return check_peo(graph, order) is None


def is_simplicial(graph: Graph, v: Vertex) -> bool:
    """Whether Gamma(v) is a clique in ``graph``."""
    return graph.is_clique(graph.neighbors(v))


def simplicial_vertices(graph: Graph) -> List[Vertex]:
    """All simplicial vertices, in sorted order."""
    return [v for v in graph.vertices() if is_simplicial(graph, v)]


def maximal_cliques(graph: Graph) -> List[FrozenSet[Vertex]]:
    """The maximal cliques of a chordal graph.

    A chordal graph on n vertices has at most n maximal cliques (Section 2),
    and they are exactly the distinct sets ``{v} + later-neighbors(v)`` over
    a PEO that are not contained in another such set.  Raises
    :class:`NotChordalError` on non-chordal inputs.

    The result is sorted by (size, sorted members) for determinism.
    """
    order = perfect_elimination_ordering(graph)
    pos = {v: i for i, v in enumerate(order)}
    candidates: List[Set[Vertex]] = []
    for v in order:
        cand = {u for u in graph.neighbors(v) if pos[u] > pos[v]}
        cand.add(v)
        candidates.append(cand)
    # A candidate C(v) is a maximal clique unless it is contained in C(u)
    # for some u.  The standard linear-time test: C(v) is non-maximal iff
    # its "parent" u (earliest later neighbor of v) satisfies
    # |C(v)| - 1 <= |C(u)| - 1 restricted appropriately; we use the simple
    # and robust subset filter instead (n is at most a few thousand in this
    # library's use cases).
    cliques: List[FrozenSet[Vertex]] = []
    candidates_fs = [frozenset(c) for c in candidates]
    for i, c in enumerate(candidates_fs):
        contained = False
        for j, d in enumerate(candidates_fs):
            if i != j and c <= d and (c != d or j < i):
                contained = True
                break
        if not contained:
            cliques.append(c)
    return sorted(cliques, key=lambda c: (len(c), sorted(c)))


def clique_number(graph: Graph) -> int:
    """omega(G) of a chordal graph; equals chi(G) since chordal graphs are perfect."""
    if len(graph) == 0:
        return 0
    return max(len(c) for c in maximal_cliques(graph))
