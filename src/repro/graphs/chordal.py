"""Chordal graph machinery: elimination orderings, recognition, cliques.

A graph is *chordal* if every cycle on at least four vertices has a chord
(Section 2 of the paper).  Equivalently, it admits a *perfect elimination
ordering* (PEO): an ordering v_1, ..., v_n such that each v_i is simplicial
in G[{v_i, ..., v_n}] -- its later neighbors form a clique.

This module provides:

* :func:`lex_bfs` -- lexicographic breadth-first search, which produces a
  PEO (in reverse visit order) exactly when the graph is chordal,
* :func:`maximum_cardinality_search` -- the MCS alternative,
* :func:`perfect_elimination_ordering` / :func:`is_chordal`,
* :func:`maximal_cliques` -- the (at most n) maximal cliques of a chordal
  graph, extracted from a PEO in the standard way,
* :func:`simplicial_vertices`.

The public functions dispatch to the O(n + m) integer kernels of
:mod:`repro.graphs.kernels` through the cached
:class:`~repro.graphs.index.GraphIndex` snapshot; ids are assigned in
sorted label order, so the kernel outputs (translated back to labels) are
byte-identical to the label-space paths retained here as ``_reference_*``
functions.  The references are the cross-validation targets of
``tests/graphs/test_kernels.py`` and the "legacy" timing baseline of
``benchmarks/bench_kernels.py``; they favor clarity but avoid gratuitous
quadratic behavior (the original ``lex_bfs`` rescanned every block per
visited vertex -- the retained reference now refines only touched blocks).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from . import kernels
from .adjacency import Graph, Vertex
from .index import graph_index

__all__ = [
    "NotChordalError",
    "lex_bfs",
    "maximum_cardinality_search",
    "perfect_elimination_ordering",
    "is_chordal",
    "check_peo",
    "maximal_cliques",
    "simplicial_vertices",
    "is_simplicial",
    "clique_number",
]


class NotChordalError(ValueError):
    """Raised when an algorithm that requires a chordal input receives one
    that is not chordal.  Carries the violating vertex when known."""

    def __init__(self, message: str, vertex: Optional[Vertex] = None):
        super().__init__(message)
        self.vertex = vertex


def _not_chordal(bad: Vertex) -> NotChordalError:
    return NotChordalError(
        f"graph is not chordal (vertex {bad!r} is not simplicial when eliminated)",
        vertex=bad,
    )


def lex_bfs(
    graph: Graph,
    start: Optional[Vertex] = None,
    plus: Optional[List[Vertex]] = None,
) -> List[Vertex]:
    """Lexicographic BFS visit order.

    Implemented with linear-time partition refinement (see
    :func:`repro.graphs.kernels.lexbfs`).  Ties are broken by vertex order
    so the output is deterministic.  If ``start`` is given, it is visited
    first.  If ``plus`` is given (a previous visit order), ties are instead
    broken by choosing the vertex appearing *latest* in it -- the LBFS+
    rule of Corneil's multi-sweep recognition algorithms; the start
    defaults to the last vertex of ``plus``.

    The *reverse* of the returned order is a PEO iff the graph is chordal.
    """
    if len(graph) == 0:
        return []
    index = graph_index(graph)
    plus_ids: Optional[List[int]] = None
    if plus is not None:
        if sorted(plus) != graph.vertices():
            raise ValueError("plus order must enumerate every vertex exactly once")
        plus_ids = index.ids_of(plus)
    start_id: Optional[int] = None
    if start is not None:
        if start not in graph:
            raise KeyError(f"start vertex {start!r} not in graph")
        start_id = index.vid[start]
    return index.labels_of(kernels.lexbfs(index, start=start_id, plus=plus_ids))


class _Block:
    """A block of the reference LexBFS partition (insertion-ordered)."""

    __slots__ = ("verts", "prev", "next")

    def __init__(self) -> None:
        self.verts: Dict[Vertex, None] = {}
        self.prev: Optional["_Block"] = None
        self.next: Optional["_Block"] = None


def _reference_lex_bfs(
    graph: Graph,
    start: Optional[Vertex] = None,
    plus: Optional[List[Vertex]] = None,
) -> List[Vertex]:
    """Label-space reference for :func:`lex_bfs` (same output, same rules).

    Partition refinement over a doubly-linked list of insertion-ordered
    blocks: a visited vertex moves each unvisited neighbor -- processed in
    initial-rank order -- into a twin block just before the neighbor's old
    block.  Because within-block order is always a subsequence of the
    initial order, the per-neighbor moves reproduce the stable
    (neighbors-first, order-preserving) split of the textbook formulation
    without rescanning untouched blocks, replacing the original
    O(n^2)-ish ``head.pop(0)`` + full-rescan loop.
    """
    if len(graph) == 0:
        return []
    if plus is not None:
        if sorted(plus) != graph.vertices():
            raise ValueError("plus order must enumerate every vertex exactly once")
        verts = list(reversed(plus))
        if start is None:
            start = verts[0]
    else:
        verts = graph.vertices()
    if start is not None:
        if start not in graph:
            raise KeyError(f"start vertex {start!r} not in graph")
        verts = [start] + [v for v in verts if v != start]

    rank = {v: i for i, v in enumerate(verts)}
    head: Optional[_Block] = _Block()
    head.verts = dict.fromkeys(verts)
    block_of: Dict[Vertex, _Block] = {v: head for v in verts}
    visited: Set[Vertex] = set()
    order: List[Vertex] = []
    while head is not None:
        v = next(iter(head.verts))
        del head.verts[v]
        if not head.verts:
            head = head.next
            if head is not None:
                head.prev = None
        visited.add(v)
        order.append(v)
        twins: Dict[int, _Block] = {}
        for u in sorted(graph.neighbors_view(v) - visited, key=rank.__getitem__):
            b = block_of[u]
            t = twins.get(id(b))
            if t is None:
                t = _Block()
                t.prev, t.next = b.prev, b
                if b.prev is None:
                    head = t
                else:
                    b.prev.next = t
                b.prev = t
                twins[id(b)] = t
            del b.verts[u]
            if not b.verts:  # drained: unlink (its twin keeps the position)
                t.next = b.next
                if b.next is not None:
                    b.next.prev = t
            t.verts[u] = None
            block_of[u] = t
    return order


def maximum_cardinality_search(graph: Graph) -> List[Vertex]:
    """Maximum cardinality search visit order.

    Repeatedly visits the unvisited vertex with the most visited neighbors
    (ties by vertex order).  Like LexBFS, the reverse visit order is a PEO
    iff the graph is chordal.  Dispatches to the bucket-queue kernel
    (:func:`repro.graphs.kernels.mcs`).
    """
    index = graph_index(graph)
    return index.labels_of(kernels.mcs(index))


def _reference_maximum_cardinality_search(graph: Graph) -> List[Vertex]:
    """Label-space reference for :func:`maximum_cardinality_search`."""
    weight: Dict[Vertex, int] = {v: 0 for v in graph.vertices()}
    order: List[Vertex] = []
    unvisited: Set[Vertex] = set(weight)
    while unvisited:
        v = max(sorted(unvisited), key=lambda u: weight[u])
        order.append(v)
        unvisited.remove(v)
        for u in graph.neighbors_view(v):
            if u in unvisited:
                weight[u] += 1
    return order


def check_peo(graph: Graph, order: List[Vertex]) -> Optional[Vertex]:
    """Check whether ``order`` is a perfect elimination ordering.

    Returns ``None`` if it is, otherwise the first vertex whose later
    neighborhood is not a clique.  Dispatches to the accumulated parent
    test of :func:`repro.graphs.kernels.check_peo` (O(n + m)).
    """
    pos = {v: i for i, v in enumerate(order)}
    if len(pos) != len(graph):
        raise ValueError("order must enumerate every vertex exactly once")
    index = graph_index(graph)
    bad = kernels.check_peo(index, index.ids_of(order))
    return None if bad is None else index.verts[bad]


def _reference_check_peo(graph: Graph, order: List[Vertex]) -> Optional[Vertex]:
    """Label-space reference for :func:`check_peo` (the per-vertex parent test)."""
    pos = {v: i for i, v in enumerate(order)}
    if len(pos) != len(graph):
        raise ValueError("order must enumerate every vertex exactly once")
    for v in order:
        later = [u for u in graph.neighbors_view(v) if pos[u] > pos[v]]
        if not later:
            continue
        parent = min(later, key=lambda u: pos[u])
        rest = set(later) - {parent}
        if not rest <= graph.neighbors_view(parent):
            return v
    return None


def perfect_elimination_ordering(graph: Graph) -> List[Vertex]:
    """A PEO of a chordal graph; raises :class:`NotChordalError` otherwise."""
    index = graph_index(graph)
    order, bad = kernels.peo_and_violation(index)
    if bad is not None:
        raise _not_chordal(index.verts[bad])
    return index.labels_of(order)


def is_chordal(graph: Graph) -> bool:
    """Whether the graph is chordal (LexBFS + PEO check, O(n + m))."""
    index = graph_index(graph)
    order = kernels.lexbfs(index)
    order.reverse()
    return kernels.is_peo(index, order)


def is_simplicial(graph: Graph, v: Vertex) -> bool:
    """Whether Gamma(v) is a clique in ``graph``.

    Point query: stays on the direct O(deg(v)^2) adjacency test, which is
    cheaper than building an index snapshot for callers that probe single
    vertices of a graph they are still mutating.
    """
    return graph.is_clique(graph.neighbors_view(v))


def simplicial_vertices(graph: Graph) -> List[Vertex]:
    """All simplicial vertices, in sorted order.

    Bulk query: dispatches to the bitset kernel
    (:func:`repro.graphs.kernels.simplicial_vertex_ids`).
    """
    index = graph_index(graph)
    return index.labels_of(kernels.simplicial_vertex_ids(index))


def _reference_simplicial_vertices(graph: Graph) -> List[Vertex]:
    """Label-space reference for :func:`simplicial_vertices`."""
    return [v for v in graph.vertices() if is_simplicial(graph, v)]


def maximal_cliques(graph: Graph) -> List[FrozenSet[Vertex]]:
    """The maximal cliques of a chordal graph.

    A chordal graph on n vertices has at most n maximal cliques (Section 2),
    and they are exactly the distinct sets ``{v} + later-neighbors(v)`` over
    a PEO that are not contained in another such set.  Raises
    :class:`NotChordalError` on non-chordal inputs.  Dispatches to the
    Blair-Peyton kernel (:func:`repro.graphs.kernels.maximal_cliques_from_peo`).

    The result is sorted by (size, sorted members) for determinism.
    """
    index = graph_index(graph)
    order, bad = kernels.peo_and_violation(index)
    if bad is not None:
        raise _not_chordal(index.verts[bad])
    return [
        frozenset(index.labels_of(c))
        for c in kernels.maximal_cliques_from_peo(index, order)
    ]


def _reference_maximal_cliques(graph: Graph) -> List[FrozenSet[Vertex]]:
    """Label-space reference for :func:`maximal_cliques` (subset filter).

    Uses the quadratic-but-obviously-correct containment filter over the
    PEO candidates; the kernel's parent-size criterion is validated against
    this in the equivalence suite.
    """
    order = perfect_elimination_ordering(graph)
    pos = {v: i for i, v in enumerate(order)}
    candidates: List[Set[Vertex]] = []
    for v in order:
        cand = {u for u in graph.neighbors_view(v) if pos[u] > pos[v]}
        cand.add(v)
        candidates.append(cand)
    cliques: List[FrozenSet[Vertex]] = []
    candidates_fs = [frozenset(c) for c in candidates]
    for i, c in enumerate(candidates_fs):
        contained = False
        for j, d in enumerate(candidates_fs):
            if i != j and c <= d and (c != d or j < i):
                contained = True
                break
        if not contained:
            cliques.append(c)
    return sorted(cliques, key=lambda c: (len(c), sorted(c)))


def clique_number(graph: Graph) -> int:
    """omega(G) of a chordal graph; equals chi(G) since chordal graphs are perfect."""
    if len(graph) == 0:
        return 0
    return max(len(c) for c in maximal_cliques(graph))
