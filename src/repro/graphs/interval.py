"""Interval graph models and orders.

An *interval graph* is the intersection graph of intervals on the line; a
*proper* interval graph is one with a representation where no interval
properly contains another, which coincides with the *unit* interval graphs
[Roberts 1969, cited as [30] in the paper].

Recognition by Theorem 1 (clique forest linearity) lives in
:mod:`repro.cliquetree`; this module provides the representation-side tools
used by Algorithm 5:

* building a graph from an explicit interval representation,
* removing *dominated* vertices (v with Gamma[v] a strict superset of some
  Gamma[u]) -- the first step of Algorithm 5, which leaves a proper
  interval graph,
* a *proper interval order* of a connected proper interval graph (an
  umbrella/consecutive ordering), computed with Corneil-style repeated
  LexBFS sweeps.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from .adjacency import Graph, Vertex
from .chordal import lex_bfs

__all__ = [
    "interval_graph_from_intervals",
    "dominated_vertices",
    "remove_dominated_vertices",
    "is_proper_interval_order",
    "proper_interval_order",
    "NotProperIntervalError",
]


class NotProperIntervalError(ValueError):
    """Raised when a proper-interval-only routine gets an unsuitable graph."""


def interval_graph_from_intervals(
    intervals: Dict[Vertex, Tuple[float, float]]
) -> Graph:
    """Intersection graph of closed intervals ``{v: (lo, hi)}``.

    Two vertices are adjacent iff their intervals intersect (endpoints
    touching counts, as usual for interval graphs).
    """
    for v, (lo, hi) in intervals.items():
        if lo > hi:
            raise ValueError(f"interval for {v!r} is reversed: ({lo}, {hi})")
    g = Graph(vertices=intervals)
    items = sorted(intervals.items(), key=lambda kv: (kv[1][0], kv[1][1]))
    for i, (u, (lo_u, hi_u)) in enumerate(items):
        for v, (lo_v, hi_v) in items[i + 1:]:
            if lo_v > hi_u:
                break
            g.add_edge(u, v)
    return g


def dominated_vertices(graph: Graph) -> Set[Vertex]:
    """Vertices v such that Gamma[v] strictly contains Gamma[u] for some u.

    Algorithm 5 removes these before computing independent sets: whenever a
    maximum independent set uses such a v, swapping v for the dominating u
    keeps it independent, so they can be ignored.  Ties (twins with equal
    closed neighborhoods) are broken by keeping the smaller vertex, so that
    exactly one member of each twin class survives when twins dominate each
    other only weakly (equal neighborhoods are *not* strict and are kept --
    strictness mirrors the paper's ``strict superset`` condition; among true
    twins neither dominates the other).
    """
    closed = {v: graph.closed_neighborhood(v) for v in graph.vertices()}
    out: Set[Vertex] = set()
    for v in graph.vertices():
        for u in graph.neighbors_view(v):
            if closed[v] > closed[u]:
                out.add(v)
                break
    return out


def remove_dominated_vertices(graph: Graph) -> Graph:
    """One-shot removal of all dominated vertices (Algorithm 5, step 1).

    Correctness of the single pass:

    * **alpha is preserved.**  Take a maximum independent set I maximizing
      its overlap with the survivors, and suppose v in I is dominated.
      Following strict containments downward ends at a vertex u with
      Gamma[u] strictly below Gamma[v] and u itself undominated (so u
      survives).  u lies in Gamma[v], hence outside I, and swapping v for
      u keeps I independent -- contradiction with the maximal overlap.

    * **the survivors induce a proper interval graph** (when the input is
      interval).  The middle leaf b of any claw satisfies
      interval(b) inside interval(c) in every representation, hence
      Gamma[b] strictly inside Gamma[c] *already in the input graph*, so
      b was removed; the surviving graph is claw-free and interval, i.e.
      proper interval [Roberts].
    """
    return graph.subgraph_without(dominated_vertices(graph))


def is_proper_interval_order(graph: Graph, order: Sequence[Vertex]) -> bool:
    """Check the umbrella property: neighborhoods are consecutive runs.

    ``order`` is a proper interval (umbrella) order iff for every edge uv
    with u before v, all vertices between u and v are adjacent to both u
    and v.  This characterizes proper interval graphs.
    """
    pos = {v: i for i, v in enumerate(order)}
    if len(pos) != len(graph):
        return False
    for u, v in graph.edges():
        if pos[u] > pos[v]:
            u, v = v, u
        for w in order[pos[u] + 1: pos[v]]:
            if not (graph.has_edge(u, w) and graph.has_edge(w, v)):
                return False
    return True


def proper_interval_order(graph: Graph) -> List[Vertex]:
    """An umbrella ordering of a connected proper interval graph.

    Uses Corneil's 3-sweep LBFS+ algorithm: an arbitrary LexBFS, then two
    LBFS+ sweeps each starting from the previous sweep's last vertex and
    breaking ties toward vertices visited late in it.  On a proper
    interval graph the final sweep is an umbrella order.  Raises
    :class:`NotProperIntervalError` if the result fails the umbrella check
    (i.e. the input was not proper interval).
    """
    if len(graph) == 0:
        return []
    if not graph.is_connected():
        raise NotProperIntervalError(
            "proper_interval_order requires a connected graph; "
            "order components separately"
        )
    sweep = lex_bfs(graph)
    sweep = lex_bfs(graph, plus=sweep)
    order = lex_bfs(graph, plus=sweep)
    if not is_proper_interval_order(graph, order):
        order = list(reversed(order))
        if not is_proper_interval_order(graph, order):
            raise NotProperIntervalError("graph is not a proper interval graph")
    return order
