"""Chordal completions (triangulations) of arbitrary graphs.

The paper's algorithms require chordal inputs; real inputs often are not.
The classic bridge -- also the reason chordal graphs matter for belief
propagation, which the paper cites as motivation -- is *triangulation*:
add fill-in edges along an elimination ordering until every cycle has a
chord.  The elimination ordering then *is* a perfect elimination ordering
of the completion, and the largest eliminated neighborhood bounds the
treewidth from above.

Two standard ordering heuristics are provided (minimum degree and minimum
fill-in), plus :func:`triangulate`, which returns the chordal supergraph
together with the fill edges and the width, and :func:`treewidth_chordal`
for already-chordal graphs (treewidth = omega - 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Literal, Optional, Set, Tuple

from .adjacency import Graph, Vertex
from .chordal import clique_number, is_chordal

__all__ = [
    "Triangulation",
    "triangulate",
    "elimination_ordering",
    "fill_in_count",
    "treewidth_chordal",
]

Heuristic = str  # "min_degree" | "min_fill"


def fill_in_count(graph: Graph, v: Vertex) -> int:
    """Edges that eliminating v now would add among its neighbors."""
    nbrs = sorted(graph.neighbors_view(v))
    missing = 0
    for i, a in enumerate(nbrs):
        for b in nbrs[i + 1:]:
            if not graph.has_edge(a, b):
                missing += 1
    return missing


def elimination_ordering(graph: Graph, heuristic: Heuristic = "min_fill") -> List[Vertex]:
    """A greedy elimination ordering under the chosen heuristic.

    ``min_fill`` eliminates the vertex adding the fewest fill edges (best
    completions in practice); ``min_degree`` the one with fewest remaining
    neighbors (faster).  Ties break by vertex order for determinism.
    """
    if heuristic not in ("min_fill", "min_degree"):
        raise ValueError(f"unknown heuristic {heuristic!r}")
    work = graph.copy()
    order: List[Vertex] = []
    while len(work) > 0:
        if heuristic == "min_degree":
            v = min(work.vertices(), key=lambda u: (work.degree(u), _key(u)))
        else:
            v = min(
                work.vertices(), key=lambda u: (fill_in_count(work, u), _key(u))
            )
        order.append(v)
        work.add_clique(work.neighbors(v))
        work.remove_vertex(v)
    return order


def _key(v):
    return (str(type(v)), str(v))


@dataclass
class Triangulation:
    """A chordal completion: the supergraph, its fill edges, and width."""

    chordal_graph: Graph
    fill_edges: List[Tuple[Vertex, Vertex]]
    elimination_order: List[Vertex]
    width: int  # max eliminated-neighborhood size = treewidth upper bound

    @property
    def treewidth_bound(self) -> int:
        return self.width


def triangulate(graph: Graph, heuristic: Heuristic = "min_fill") -> Triangulation:
    """Chordal completion along a greedy elimination ordering.

    The returned graph is chordal (the elimination order is a PEO of it by
    construction), contains the input as a subgraph, and its clique number
    is width + 1.  Triangulating an already-chordal graph with ``min_fill``
    adds no edges (zero-fill vertices, i.e. simplicial ones, always exist).
    """
    order = elimination_ordering(graph, heuristic)
    work = graph.copy()
    completed = graph.copy()
    fill: List[Tuple[Vertex, Vertex]] = []
    width = 0
    for v in order:
        nbrs = sorted(work.neighbors_view(v))
        width = max(width, len(nbrs))
        for i, a in enumerate(nbrs):
            for b in nbrs[i + 1:]:
                if not work.has_edge(a, b):
                    work.add_edge(a, b)
                    completed.add_edge(a, b)
                    fill.append((a, b))
        work.remove_vertex(v)
    result = Triangulation(
        chordal_graph=completed,
        fill_edges=fill,
        elimination_order=order,
        width=width,
    )
    if not is_chordal(completed):  # pragma: no cover - construction invariant
        raise AssertionError("triangulation produced a non-chordal graph")
    return result


def treewidth_chordal(graph: Graph) -> int:
    """Exact treewidth of a chordal graph: omega(G) - 1."""
    if not is_chordal(graph):
        raise ValueError("treewidth_chordal requires a chordal graph")
    if len(graph) == 0:
        return -1
    return clique_number(graph) - 1
