"""Structural graph properties used by the experiments and sanity checks.

Chordal graphs are perfect, which ties the paper's two problems together:
chi = omega (coloring meets the clique bound) and alpha = minimum clique
cover (Gavril's greedy yields both certificates at once).  This module
provides those dual certificates plus the degeneracy machinery that
underlies the sparse-graph baselines the paper cites ([5], [17]).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from .adjacency import Graph, Vertex
from .chordal import perfect_elimination_ordering

__all__ = [
    "degeneracy_ordering",
    "degeneracy",
    "minimum_clique_cover_chordal",
    "density",
    "is_clique_cover",
]


def degeneracy_ordering(graph: Graph) -> Tuple[List[Vertex], int]:
    """A smallest-last ordering and the degeneracy d(G).

    Repeatedly removes a minimum-degree vertex; the largest degree seen at
    removal time is the degeneracy.  Chordal graphs satisfy
    d(G) = omega(G) - 1 (every PEO is a witness).
    """
    work = graph.copy()
    order: List[Vertex] = []
    degeneracy_value = 0
    while len(work) > 0:
        v = min(work.vertices(), key=lambda u: (work.degree(u), str(u)))
        degeneracy_value = max(degeneracy_value, work.degree(v))
        order.append(v)
        work.remove_vertex(v)
    return order, degeneracy_value


def degeneracy(graph: Graph) -> int:
    return degeneracy_ordering(graph)[1]


def minimum_clique_cover_chordal(graph: Graph) -> List[Set[Vertex]]:
    """A minimum clique cover of a chordal graph (Gavril).

    Walks a PEO; each greedy independent-set member v opens the clique
    Gamma[v] restricted to still-uncovered vertices.  The cover size
    equals the greedy independent set's size, so by weak duality both are
    optimal: |cover| = alpha(G).
    """
    covered: Set[Vertex] = set()
    cover: List[Set[Vertex]] = []
    for v in perfect_elimination_ordering(graph):
        if v in covered:
            continue
        clique = (graph.closed_neighborhood(v)) - covered
        # v is simplicial among the uncovered suffix, so this is a clique.
        cover.append(clique)
        covered |= clique
    return cover


def is_clique_cover(graph: Graph, cover: List[Set[Vertex]]) -> bool:
    """Whether ``cover`` is a partition of V into cliques."""
    seen: Set[Vertex] = set()
    for part in cover:
        if not part or (part & seen):
            return False
        if not graph.is_clique(part):
            return False
        seen |= set(part)
    return seen == set(graph.vertices())


def density(graph: Graph) -> float:
    """|E| / C(n, 2); 0 for graphs with fewer than two vertices."""
    n = len(graph)
    if n < 2:
        return 0.0
    return graph.num_edges() / (n * (n - 1) / 2)
