"""Graph substrate: data structure, chordal/interval machinery, generators.

This package is self-contained (standard library only) and provides
everything the algorithm layers build on:

* :class:`~repro.graphs.adjacency.Graph` -- the core adjacency-set graph,
* chordality: LexBFS/MCS, perfect elimination orderings, recognition and
  the maximal cliques of chordal graphs (:mod:`repro.graphs.chordal`),
* interval representations, dominated-vertex removal and proper interval
  orders (:mod:`repro.graphs.interval`),
* the int-indexed snapshot + O(n + m) kernels behind the chordal machinery
  (:mod:`repro.graphs.index`, :mod:`repro.graphs.kernels`),
* deterministic and seeded-random generators (:mod:`repro.graphs.generators`),
* the 23-node worked example of the paper's Figures 1-6
  (:mod:`repro.graphs.examples`),
* output validators and brute-force oracles
  (:mod:`repro.graphs.validation`, :mod:`repro.graphs.exact`).
"""

from .adjacency import Graph, Vertex, Edge
from .chordal import (
    NotChordalError,
    check_peo,
    clique_number,
    is_chordal,
    is_simplicial,
    lex_bfs,
    maximal_cliques,
    maximum_cardinality_search,
    perfect_elimination_ordering,
    simplicial_vertices,
)
from .examples import (
    FIGURE3_CENTER,
    FIGURE5_PATH,
    PAPER_CLIQUES,
    paper_example_cliques,
    paper_example_graph,
)
from .exact import (
    brute_force_chromatic_number,
    brute_force_independence_number,
    brute_force_maximum_independent_set,
    brute_force_optimal_coloring,
)
from .generators import (
    binary_tree,
    caterpillar,
    complete_graph,
    cycle_graph,
    path_graph,
    power_law_tree,
    random_chordal_graph,
    random_connected_interval_graph,
    random_interval_graph,
    random_k_tree,
    random_proper_interval_graph,
    random_split_graph,
    random_tree,
    star_graph,
    unit_interval_chain,
)
from .index import GraphIndex, graph_index
from .io import (
    dump_json,
    from_dict,
    from_edge_list,
    intervals_from_text,
    intervals_to_text,
    load_json,
    to_dict,
    to_edge_list,
)
from .properties import (
    degeneracy,
    degeneracy_ordering,
    density,
    is_clique_cover,
    minimum_clique_cover_chordal,
)
from .triangulation import (
    Triangulation,
    elimination_ordering,
    fill_in_count,
    treewidth_chordal,
    triangulate,
)
from .interval import (
    NotProperIntervalError,
    dominated_vertices,
    interval_graph_from_intervals,
    is_proper_interval_order,
    proper_interval_order,
    remove_dominated_vertices,
)
from .validation import (
    assert_independent_set,
    assert_proper_coloring,
    coloring_violation,
    independent_set_violation,
    is_distance_k_independent_set,
    is_independent_set,
    is_maximal_distance_k_independent_set,
    is_maximal_independent_set,
    is_proper_coloring,
    num_colors,
)

__all__ = [
    "Graph",
    "Vertex",
    "Edge",
    # chordal
    "NotChordalError",
    "check_peo",
    "clique_number",
    "is_chordal",
    "is_simplicial",
    "lex_bfs",
    "maximal_cliques",
    "maximum_cardinality_search",
    "perfect_elimination_ordering",
    "simplicial_vertices",
    # examples
    "FIGURE3_CENTER",
    "FIGURE5_PATH",
    "PAPER_CLIQUES",
    "paper_example_cliques",
    "paper_example_graph",
    # exact oracles
    "brute_force_chromatic_number",
    "brute_force_independence_number",
    "brute_force_maximum_independent_set",
    "brute_force_optimal_coloring",
    # generators
    "binary_tree",
    "caterpillar",
    "complete_graph",
    "cycle_graph",
    "path_graph",
    "power_law_tree",
    "random_chordal_graph",
    "random_connected_interval_graph",
    "random_interval_graph",
    "random_k_tree",
    "random_proper_interval_graph",
    "random_split_graph",
    "random_tree",
    "star_graph",
    "unit_interval_chain",
    # index / kernels substrate
    "GraphIndex",
    "graph_index",
    # io
    "dump_json",
    "from_dict",
    "from_edge_list",
    "intervals_from_text",
    "intervals_to_text",
    "load_json",
    "to_dict",
    "to_edge_list",
    # properties
    "degeneracy",
    "degeneracy_ordering",
    "density",
    "is_clique_cover",
    "minimum_clique_cover_chordal",
    # triangulation
    "Triangulation",
    "elimination_ordering",
    "fill_in_count",
    "treewidth_chordal",
    "triangulate",
    # interval
    "NotProperIntervalError",
    "dominated_vertices",
    "interval_graph_from_intervals",
    "is_proper_interval_order",
    "proper_interval_order",
    "remove_dominated_vertices",
    # validation
    "assert_independent_set",
    "assert_proper_coloring",
    "coloring_violation",
    "independent_set_violation",
    "is_distance_k_independent_set",
    "is_independent_set",
    "is_maximal_distance_k_independent_set",
    "is_maximal_independent_set",
    "is_proper_coloring",
    "num_colors",
]
