"""Int-indexed immutable snapshots of a :class:`~repro.graphs.adjacency.Graph`.

The algorithm kernels (:mod:`repro.graphs.kernels`) do not want hashable
vertex labels, per-call set copies, or dict lookups in their inner loops —
they want dense integer ids, CSR adjacency arrays, and big-int bitset rows.
:class:`GraphIndex` is that snapshot:

* ``verts[i]`` is the vertex with id ``i``; ids are assigned in **sorted
  vertex order**, so the id order is order-isomorphic to the label order
  (``i < j  iff  verts[i] < verts[j]``).  Every deterministic tie-break in
  the library compares vertex labels, so kernels can compare plain ints
  and produce byte-identical answers.
* ``vid[v]`` maps a label back to its id.
* ``indptr`` / ``indices`` are the usual CSR pair: the neighbors of id
  ``i`` are ``indices[indptr[i]:indptr[i + 1]]``, sorted ascending.
* ``nbr_bits[i]`` is the open neighborhood as a Python big-int bitset
  (bit ``j`` set iff ``ij`` is an edge) — ``&``/``|``/``~`` run at C speed
  over 64-bit words, which is what makes clique and subset tests cheap.
  The bitset table is built **lazily** on first access: a row costs
  O(n / 64) words, so the whole table is O(n * m / 64) time and O(n^2 / 8)
  bytes — a clear win up to a few thousand vertices and a clear loss at
  n = 10^5, which is why the kernels consult it only below a size cutoff
  (see ``repro.graphs.kernels._BITSET_N_LIMIT``) and the CSR arrays carry
  everything else.

Snapshots are **immutable** and cached on the graph keyed by its mutation
:attr:`~repro.graphs.adjacency.Graph.version`: :func:`graph_index` returns
the same object until the graph mutates, after which the next call builds
a fresh snapshot.  Building costs O(n log n + m); every kernel that runs
on the snapshot afterwards is O(n + m)-ish, so amortization over even two
queries already wins.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .adjacency import Graph, Vertex

__all__ = ["GraphIndex", "graph_index"]


class GraphIndex:
    """An immutable CSR + bitset snapshot of a graph (see module docstring)."""

    __slots__ = (
        "verts", "vid", "indptr", "indices", "n", "m", "_nbr_bits",
        "_edge_labels", "_degrees",
    )

    def __init__(self, graph: Graph):
        verts: List[Vertex] = graph.vertices()
        n = len(verts)
        vid: Dict[Vertex, int] = {v: i for i, v in enumerate(verts)}
        indptr: List[int] = [0] * (n + 1)
        indices: List[int] = []
        extend = indices.extend
        for i, v in enumerate(verts):
            extend(sorted(vid[u] for u in graph.neighbors_view(v)))
            indptr[i + 1] = len(indices)
        self.verts: Tuple[Vertex, ...] = tuple(verts)
        self.vid = vid
        self.indptr = indptr
        self.indices = indices
        self.n = n
        self.m = len(indices) // 2
        self._nbr_bits: Optional[List[int]] = None
        self._edge_labels: Optional[Dict[Tuple[int, int], Tuple[Vertex, Vertex]]] = None
        self._degrees: Optional[List[int]] = None

    @property
    def edge_labels(self) -> Dict[Tuple[int, int], Tuple[Vertex, Vertex]]:
        """Sorted id-pair -> sorted label-pair, one entry per edge.

        Built lazily (O(m)) and cached; consumers translating many
        overlapping edge sets back to labels (e.g. per-node gathered
        balls, where each graph edge reappears in many balls) get a dict
        lookup per edge instead of two list indexings and a fresh tuple.
        Ids are order-isomorphic to labels, so the id-sorted pair maps to
        the label-sorted pair.
        """
        cached = self._edge_labels
        if cached is None:
            verts, indptr, indices = self.verts, self.indptr, self.indices
            cached = {}
            for i in range(self.n):
                li = verts[i]
                for k in range(indptr[i], indptr[i + 1]):
                    j = indices[k]
                    if j > i:
                        cached[(i, j)] = (li, verts[j])
            self._edge_labels = cached
        return cached

    @property
    def nbr_bits(self) -> List[int]:
        """Bitset rows, built on first access and cached (see module docstring)."""
        bits = self._nbr_bits
        if bits is None:
            indptr, indices = self.indptr, self.indices
            bits = [0] * self.n
            for i in range(self.n):
                b = 0
                for k in range(indptr[i], indptr[i + 1]):
                    b |= 1 << indices[k]
                bits[i] = b
            self._nbr_bits = bits
        return bits

    @property
    def degrees(self) -> List[int]:
        """Per-id degree list, built on first access and cached.

        The whole-round kernels (:mod:`repro.localmodel.executor`) charge
        a broadcasting frontier ``sum(degrees[i] for i in frontier)``
        messages per round; one flat list beats ``n`` ``indptr``
        subtractions per round.
        """
        degs = self._degrees
        if degs is None:
            indptr = self.indptr
            degs = [indptr[i + 1] - indptr[i] for i in range(self.n)]
            self._degrees = degs
        return degs

    # -- frontier / bitset helpers ---------------------------------------
    def bfs_frontiers(
        self, sources: Sequence[int], cutoff: Optional[int] = None
    ) -> List[List[int]]:
        """BFS layers from a source set, as sorted id lists per distance.

        ``result[d]`` holds every id at distance exactly ``d`` from the
        nearest source (``result[0]`` is the sorted source set itself);
        expansion stops after distance ``cutoff`` when given.  Unreached
        ids appear in no layer, and an empty source set yields ``[]``.
        Layers come out sorted because sources are sorted first and each
        expansion scans the previous layer in order through ascending
        CSR rows -- the order the whole-round BFS kernel relies on.
        """
        if not sources:
            return []
        indptr, indices = self.indptr, self.indices
        seen = bytearray(self.n)
        frontier = sorted(set(sources))
        for i in frontier:
            seen[i] = 1
        layers = [frontier]
        depth = 0
        while frontier and (cutoff is None or depth < cutoff):
            nxt: List[int] = []
            for i in frontier:
                for k in range(indptr[i], indptr[i + 1]):
                    j = indices[k]
                    if not seen[j]:
                        seen[j] = 1
                        nxt.append(j)
            if not nxt:
                break
            nxt.sort()
            layers.append(nxt)
            frontier = nxt
            depth += 1
        return layers

    @staticmethod
    def bits_of(ids: Sequence[int]) -> int:
        """The big-int bitset with exactly the given id bits set."""
        bits = 0
        for i in ids:
            bits |= 1 << i
        return bits

    @staticmethod
    def bits_to_ids(bits: int) -> List[int]:
        """The ascending id list encoded by a big-int bitset."""
        out: List[int] = []
        while bits:
            low = bits & -bits
            out.append(low.bit_length() - 1)
            bits ^= low
        return out

    # -- id-space queries ------------------------------------------------
    def neighbors_of(self, i: int) -> List[int]:
        """The sorted neighbor ids of id ``i`` (a fresh list)."""
        return self.indices[self.indptr[i]:self.indptr[i + 1]]

    def iter_neighbors(self, i: int) -> Iterator[int]:
        indices = self.indices
        for k in range(self.indptr[i], self.indptr[i + 1]):
            yield indices[k]

    def degree_of(self, i: int) -> int:
        return self.indptr[i + 1] - self.indptr[i]

    def has_edge_ids(self, i: int, j: int) -> bool:
        """Whether ``ij`` is an edge (binary search in the CSR row of i)."""
        lo, hi = self.indptr[i], self.indptr[i + 1]
        k = bisect_left(self.indices, j, lo, hi)
        return k < hi and self.indices[k] == j

    # -- label translation ----------------------------------------------
    def ids_of(self, vs: Sequence[Vertex]) -> List[int]:
        """Translate labels to ids; unknown labels raise ``KeyError``."""
        vid = self.vid
        return [vid[v] for v in vs]

    def labels_of(self, ids: Sequence[int]) -> List[Vertex]:
        verts = self.verts
        return [verts[i] for i in ids]

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GraphIndex(n={self.n}, m={self.m})"


def graph_index(graph: Graph) -> GraphIndex:
    """The cached :class:`GraphIndex` snapshot of ``graph``.

    Returns the same object for the same graph version; a mutation
    (``add_edge``, ``remove_vertex``, …) invalidates the cache and the
    next call rebuilds.  The snapshot itself never changes — holding one
    across mutations is safe, it just describes the older graph.
    """
    cached = graph._index_cache
    if cached is not None and cached[0] == graph.version:
        return cached[1]  # type: ignore[return-value]
    index = GraphIndex(graph)
    graph._index_cache = (graph.version, index)
    return index
