"""The worked example of the paper (Figures 1-6).

Figure 1 of the paper shows a 23-node chordal graph G whose maximal cliques
are listed in Figure 2:

    C1  = {1, 2, 3}      C6  = {8, 9, 10}     C11 = {15, 16, 19}
    C2  = {2, 3, 4}      C7  = {9, 10, 11}    C12 = {16, 17, 18}
    C3  = {4, 5, 6}      C8  = {11, 12, 13}   C13 = {19, 20, 21}
    C4  = {5, 6, 7}      C9  = {12, 13, 14}   C14 = {21, 22}
    C5  = {2, 4, 8}      C10 = {14, 15, 16}   C15 = {21, 23}

The graph is the union of these cliques.  The remaining figures derive
structures from it: Figure 2 its weighted clique intersection graph and
clique forest, Figures 3-4 the local view from node 10, and Figures 5-6 the
removal of the internal path P = C6, ..., C10.

These constants are used by the figure-reproduction tests and benchmarks
(`benchmarks/bench_figures.py`) and by the quickstart example.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from .adjacency import Graph

__all__ = [
    "PAPER_CLIQUES",
    "paper_example_graph",
    "paper_example_cliques",
    "FIGURE5_PATH",
    "FIGURE3_CENTER",
]

#: The maximal cliques of Figure 2, keyed by their paper label.
PAPER_CLIQUES: Dict[str, FrozenSet[int]] = {
    "C1": frozenset({1, 2, 3}),
    "C2": frozenset({2, 3, 4}),
    "C3": frozenset({4, 5, 6}),
    "C4": frozenset({5, 6, 7}),
    "C5": frozenset({2, 4, 8}),
    "C6": frozenset({8, 9, 10}),
    "C7": frozenset({9, 10, 11}),
    "C8": frozenset({11, 12, 13}),
    "C9": frozenset({12, 13, 14}),
    "C10": frozenset({14, 15, 16}),
    "C11": frozenset({15, 16, 19}),
    "C12": frozenset({16, 17, 18}),
    "C13": frozenset({19, 20, 21}),
    "C14": frozenset({21, 22}),
    "C15": frozenset({21, 23}),
}

#: The internal path peeled in Figures 5-6.
FIGURE5_PATH: Tuple[str, ...] = ("C6", "C7", "C8", "C9", "C10")

#: The node whose local view Figures 3-4 depict.
FIGURE3_CENTER: int = 10


def paper_example_graph() -> Graph:
    """The 23-node chordal graph of Figure 1."""
    g = Graph(vertices=range(1, 24))
    for clique in PAPER_CLIQUES.values():
        g.add_clique(clique)
    return g


def paper_example_cliques() -> List[FrozenSet[int]]:
    """The maximal cliques of Figure 2 in label order C1..C15."""
    return [PAPER_CLIQUES[f"C{i}"] for i in range(1, 16)]
