"""Exact (exponential-time) oracles for small graphs.

The LOCAL model allows unbounded local computation, and several steps of the
paper's algorithms genuinely perform exact optimization on small,
bounded-diameter pieces (e.g. Algorithm 5 computes a *maximum* independent
set on components of diameter <= 10k; Algorithm 6 computes maximum
independent sets of components with independence number < d).  On chordal
and interval pieces the library uses the polynomial routines from
:mod:`repro.mis.exact` instead; the brute-force functions here serve as

* reference oracles in tests (any-graph ground truth), and
* the "unbounded local computation" fallback for non-chordal scraps that
  can only appear through API misuse (they raise beyond a size guard
  rather than silently burning CPU).
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Optional, Set

from .adjacency import Graph, Vertex

__all__ = [
    "brute_force_maximum_independent_set",
    "brute_force_chromatic_number",
    "brute_force_optimal_coloring",
    "brute_force_independence_number",
]

_SIZE_GUARD = 40


def brute_force_maximum_independent_set(
    graph: Graph, size_guard: int = _SIZE_GUARD
) -> Set[Vertex]:
    """A maximum independent set by branch and bound.

    Deterministic (branches on the sorted vertex order).  ``size_guard``
    protects against accidentally calling this on large graphs.
    """
    if len(graph) > size_guard:
        raise ValueError(
            f"brute force MIS on {len(graph)} vertices exceeds guard {size_guard}"
        )

    best: Set[Vertex] = set()

    def search(remaining: List[Vertex], current: Set[Vertex]) -> None:
        nonlocal best
        if len(current) + len(remaining) <= len(best):
            return
        if not remaining:
            if len(current) > len(best):
                best = set(current)
            return
        v = remaining[0]
        nbrs = graph.neighbors_view(v)
        # Branch 1: take v.
        search([u for u in remaining[1:] if u not in nbrs], current | {v})
        # Branch 2: skip v (only useful if some neighbor could beat it).
        search(remaining[1:], current)

    search(graph.vertices(), set())
    return best


def brute_force_independence_number(graph: Graph, size_guard: int = _SIZE_GUARD) -> int:
    return len(brute_force_maximum_independent_set(graph, size_guard))


def brute_force_optimal_coloring(
    graph: Graph, size_guard: int = _SIZE_GUARD
) -> Dict[Vertex, int]:
    """An optimal coloring by iterative-deepening backtracking."""
    if len(graph) > size_guard:
        raise ValueError(
            f"brute force coloring on {len(graph)} vertices exceeds guard {size_guard}"
        )
    verts = sorted(graph.vertices(), key=lambda v: -graph.degree(v))
    if not verts:
        return {}

    def try_colors(c: int) -> Optional[Dict[Vertex, int]]:
        coloring: Dict[Vertex, int] = {}

        def assign(i: int) -> bool:
            if i == len(verts):
                return True
            v = verts[i]
            used = {coloring[u] for u in graph.neighbors_view(v) if u in coloring}
            # Symmetry breaking: never open more than one new color.
            opened = max(coloring.values(), default=0)
            for color in range(1, min(opened + 1, c) + 1):
                if color in used:
                    continue
                coloring[v] = color
                if assign(i + 1):
                    return True
                del coloring[v]
            return False

        return dict(coloring) if assign(0) else None

    for c in range(1, len(verts) + 1):
        result = try_colors(c)
        if result is not None:
            return result
    raise AssertionError("unreachable: n colors always suffice")


def brute_force_chromatic_number(graph: Graph, size_guard: int = _SIZE_GUARD) -> int:
    if len(graph) == 0:
        return 0
    return len(set(brute_force_optimal_coloring(graph, size_guard).values()))
