"""Core undirected graph data structure.

The library deliberately avoids depending on :mod:`networkx` at runtime;
``networkx`` is used only in the test-suite as an independent oracle.  The
:class:`Graph` here is a small adjacency-set graph with a stable, sorted
vertex order, which is all the algorithms of the paper need.

Vertices may be any hashable, orderable objects (the paper and all examples
use integers).  Orderability matters: several constructions in the paper --
most importantly the deterministic tie-breaking order ``<`` on the edges of
the weighted clique intersection graph (Section 3) -- rely on comparing
vertex identifiers.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]

__all__ = ["Graph", "Vertex", "Edge"]


class Graph:
    """A simple undirected graph backed by adjacency sets.

    The graph is mutable while being built (:meth:`add_vertex`,
    :meth:`add_edge`, :meth:`remove_vertex`), and hands out defensive copies
    or read-only views from all query methods, so algorithm code can never
    corrupt a caller's graph by accident.

    Every mutation bumps :attr:`version`, which is what lets derived
    snapshots — the cached sorted vertex list here and the int-indexed
    :class:`~repro.graphs.index.GraphIndex` — invalidate themselves
    instead of being recomputed per query.  Hot algorithm loops inside the
    library read adjacency through :meth:`neighbors_view` (a documented
    read-only alias of the internal set); external callers keep the
    defensively-copying :meth:`neighbors`.
    """

    def __init__(self, vertices: Iterable[Vertex] = (), edges: Iterable[Edge] = ()):
        self._adj: Dict[Vertex, Set[Vertex]] = {}
        #: monotonically increasing mutation counter (see class docstring)
        self.version: int = 0
        self._sorted_cache: Optional[Tuple[int, List[Vertex]]] = None
        self._index_cache: Optional[Tuple[int, object]] = None
        for v in vertices:
            self.add_vertex(v)
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_vertex(self, v: Vertex) -> None:
        """Add vertex ``v``; adding an existing vertex is a no-op."""
        if v not in self._adj:
            self._adj[v] = set()
            self.version += 1

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Add edge ``uv``, creating endpoints as needed.

        Self-loops are rejected: none of the graph classes in the paper
        (chordal, interval, proper interval) allow them.
        """
        if u == v:
            raise ValueError(f"self-loops are not allowed: {u!r}")
        self.add_vertex(u)
        self.add_vertex(v)
        self._adj[u].add(v)
        self._adj[v].add(u)
        self.version += 1

    def add_clique(self, members: Iterable[Vertex]) -> None:
        """Add all vertices in ``members`` and every edge between them."""
        members = list(members)
        for v in members:
            self.add_vertex(v)
        for i, u in enumerate(members):
            for v in members[i + 1:]:
                if u != v:
                    self.add_edge(u, v)

    def remove_vertex(self, v: Vertex) -> None:
        """Remove ``v`` and all incident edges; missing vertices raise ``KeyError``."""
        for u in self._adj.pop(v):
            self._adj[u].discard(v)
        self.version += 1

    def remove_vertices(self, vs: Iterable[Vertex]) -> None:
        for v in list(vs):
            self.remove_vertex(v)

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        self._adj[u].remove(v)
        self._adj[v].remove(u)
        self.version += 1

    def copy(self) -> "Graph":
        g = Graph()
        g._adj = {v: set(nbrs) for v, nbrs in self._adj.items()}
        g.version = 1
        return g

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    def __contains__(self, v: Vertex) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self.vertices())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adj == other._adj

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(n={self.num_vertices()}, m={self.num_edges()})"

    def num_vertices(self) -> int:
        return len(self._adj)

    def num_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def vertices(self) -> List[Vertex]:
        """All vertices in sorted order (stable across runs).

        The sorted list is cached against :attr:`version`; callers get a
        fresh copy each time, so mutating the returned list is safe.
        """
        cached = self._sorted_cache
        if cached is None or cached[0] != self.version:
            cached = (self.version, sorted(self._adj))
            self._sorted_cache = cached
        return list(cached[1])

    def edges(self) -> List[Edge]:
        """All edges, each as a sorted pair, in sorted order."""
        out = []
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if u < v:
                    out.append((u, v))
        return sorted(out)

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        return v in self._adj.get(u, ())

    def neighbors(self, v: Vertex) -> Set[Vertex]:
        """Open neighborhood Gamma_G(v) (a fresh set)."""
        return set(self._adj[v])

    def neighbors_view(self, v: Vertex) -> FrozenSet[Vertex]:
        """Open neighborhood Gamma_G(v) as a READ-ONLY view (no copy).

        This is the internal adjacency set itself, typed as frozen to make
        the contract explicit: callers must not mutate it, and must not
        hold it across mutations of the graph.  Hot loops (LexBFS, greedy
        colorings, brute-force oracles) use this to avoid the per-call set
        copy of :meth:`neighbors`.
        """
        return self._adj[v]  # type: ignore[return-value]

    def iter_neighbors(self, v: Vertex) -> Iterator[Vertex]:
        """Iterate Gamma_G(v) without allocating (unspecified order)."""
        return iter(self._adj[v])

    def closed_neighborhood(self, v: Vertex) -> Set[Vertex]:
        """Closed neighborhood Gamma_G[v] = Gamma_G(v) + {v}."""
        nbrs = set(self._adj[v])
        nbrs.add(v)
        return nbrs

    def degree(self, v: Vertex) -> int:
        return len(self._adj[v])

    def max_degree(self) -> int:
        """Delta(G); 0 on the empty graph."""
        if not self._adj:
            return 0
        return max(len(nbrs) for nbrs in self._adj.values())

    def set_neighborhood(self, vs: Iterable[Vertex]) -> Set[Vertex]:
        """Gamma_G(W): vertices outside W adjacent to some vertex of W."""
        ws = set(vs)
        out: Set[Vertex] = set()
        for w in ws:
            out |= self._adj[w]
        return out - ws

    def closed_set_neighborhood(self, vs: Iterable[Vertex]) -> Set[Vertex]:
        """Gamma_G[W] = Gamma_G(W) + W."""
        ws = set(vs)
        return self.set_neighborhood(ws) | ws

    # ------------------------------------------------------------------
    # structural predicates
    # ------------------------------------------------------------------
    def is_clique(self, vs: Iterable[Vertex]) -> bool:
        members = list(vs)
        for i, u in enumerate(members):
            for v in members[i + 1:]:
                if u != v and not self.has_edge(u, v):
                    return False
        return True

    def is_independent_set(self, vs: Iterable[Vertex]) -> bool:
        members = list(vs)
        for i, u in enumerate(members):
            for v in members[i + 1:]:
                if self.has_edge(u, v):
                    return False
        return True

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def induced_subgraph(self, vs: Iterable[Vertex]) -> "Graph":
        """G[U]: the subgraph induced by vertex set ``vs``.

        Unknown vertices in ``vs`` raise ``KeyError`` -- asking for an
        induced subgraph on vertices that do not exist is always a bug in
        the caller.
        """
        keep = set(vs)
        missing = keep - set(self._adj)
        if missing:
            raise KeyError(f"vertices not in graph: {sorted(missing)!r}")
        g = Graph()
        for v in keep:
            g.add_vertex(v)
        for v in keep:
            for u in self._adj[v] & keep:
                if v < u:
                    g.add_edge(v, u)
        return g

    def subgraph_without(self, vs: Iterable[Vertex]) -> "Graph":
        """G[V - vs]."""
        drop = set(vs)
        return self.induced_subgraph(set(self._adj) - drop)

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def bfs_distances(self, source: Vertex, cutoff: Optional[int] = None) -> Dict[Vertex, int]:
        """Distances from ``source``; ``cutoff`` bounds the search radius."""
        dist = {source: 0}
        frontier = [source]
        d = 0
        while frontier and (cutoff is None or d < cutoff):
            d += 1
            nxt = []
            for u in frontier:
                for v in self._adj[u]:
                    if v not in dist:
                        dist[v] = d
                        nxt.append(v)
            frontier = nxt
        return dist

    def ball(self, source: Vertex, radius: int) -> Set[Vertex]:
        """Gamma^radius_G[source]: all vertices within distance ``radius``."""
        return set(self.bfs_distances(source, cutoff=radius))

    def distance(self, u: Vertex, v: Vertex) -> Optional[int]:
        """dist_G(u, v), or ``None`` if disconnected."""
        return self.bfs_distances(u).get(v)

    def connected_components(self) -> List[Set[Vertex]]:
        """Connected components, sorted by their smallest vertex."""
        seen: Set[Vertex] = set()
        comps: List[Set[Vertex]] = []
        for v in self.vertices():
            if v in seen:
                continue
            comp = self.ball(v, radius=len(self._adj))
            seen |= comp
            comps.append(comp)
        return comps

    def is_connected(self) -> bool:
        if not self._adj:
            return True
        return len(self.connected_components()) == 1

    def diameter(self) -> int:
        """max_{u,v} dist(u, v); raises on a disconnected graph.

        The paper uses ``diam`` for sets of cliques (Section 2); this is
        the plain graph diameter used by Algorithm 5's small-component
        shortcut.
        """
        best = 0
        for v in self._adj:
            dist = self.bfs_distances(v)
            if len(dist) != len(self._adj):
                raise ValueError("diameter of a disconnected graph is undefined")
            if dist:
                best = max(best, max(dist.values()))
        return best

    def eccentricity_within(self, sources: Iterable[Vertex]) -> int:
        """max distance realized between any two of ``sources`` (must be connected through G)."""
        sources = list(sources)
        best = 0
        for s in sources:
            dist = self.bfs_distances(s)
            for t in sources:
                if t not in dist:
                    raise ValueError("vertices are not mutually reachable")
                best = max(best, dist[t])
        return best

    def power(self, k: int) -> "Graph":
        """G^k: same vertices, edges between vertices at distance <= k."""
        if k < 1:
            raise ValueError("power must be >= 1")
        g = Graph(vertices=self._adj)
        for v in self._adj:
            for u, d in self.bfs_distances(v, cutoff=k).items():
                if u != v and d <= k:
                    g.add_edge(u, v)
        return g

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def adjacency(self) -> Dict[Vertex, FrozenSet[Vertex]]:
        """A frozen snapshot of the adjacency structure."""
        return {v: frozenset(nbrs) for v, nbrs in self._adj.items()}
