"""Serialization: edge-list text, JSON dictionaries, interval files.

Small, dependency-free formats so experiments and downstream users can
persist instances:

* **edge-list text** -- one ``u v`` pair per line, ``#``-comments, and a
  leading ``vertices: ...`` line to preserve isolated vertices;
* **JSON-able dicts** -- ``{"vertices": [...], "edges": [[u, v], ...]}``;
* **interval files** -- ``v lo hi`` triples for interval representations.

Integer-looking tokens are parsed as integers (the paper's node IDs), and
everything else as strings; round-trips preserve both.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Tuple, Union

from .adjacency import Graph, Vertex

__all__ = [
    "to_edge_list",
    "from_edge_list",
    "to_dict",
    "from_dict",
    "dump_json",
    "load_json",
    "intervals_to_text",
    "intervals_from_text",
]


def _parse_token(token: str) -> Vertex:
    try:
        return int(token)
    except ValueError:
        return token


def to_edge_list(graph: Graph) -> str:
    """Render as edge-list text (round-trips through from_edge_list)."""
    lines = ["# repro graph: edge list"]
    lines.append("vertices: " + " ".join(str(v) for v in graph.vertices()))
    for u, v in graph.edges():
        lines.append(f"{u} {v}")
    return "\n".join(lines) + "\n"


def from_edge_list(text: str) -> Graph:
    """Parse edge-list text produced by :func:`to_edge_list` (or by hand)."""
    g = Graph()
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("vertices:"):
            for token in line[len("vertices:"):].split():
                g.add_vertex(_parse_token(token))
            continue
        parts = line.split()
        if len(parts) != 2:
            raise ValueError(f"malformed edge line: {raw!r}")
        g.add_edge(_parse_token(parts[0]), _parse_token(parts[1]))
    return g


def to_dict(graph: Graph) -> Dict[str, list]:
    return {
        "vertices": list(graph.vertices()),
        "edges": [list(e) for e in graph.edges()],
    }


def from_dict(data: Dict[str, list]) -> Graph:
    try:
        vertices = data["vertices"]
        edges = data["edges"]
    except (TypeError, KeyError) as exc:
        raise ValueError("graph dict needs 'vertices' and 'edges'") from exc
    return Graph(vertices=vertices, edges=[tuple(e) for e in edges])


def dump_json(graph: Graph) -> str:
    return json.dumps(to_dict(graph), sort_keys=True)


def load_json(text: str) -> Graph:
    return from_dict(json.loads(text))


def intervals_to_text(intervals: Dict[Vertex, Tuple[float, float]]) -> str:
    lines = ["# repro intervals: v lo hi"]
    for v in sorted(intervals, key=lambda u: (str(type(u)), str(u))):
        lo, hi = intervals[v]
        lines.append(f"{v} {lo!r} {hi!r}")
    return "\n".join(lines) + "\n"


def intervals_from_text(text: str) -> Dict[Vertex, Tuple[float, float]]:
    out: Dict[Vertex, Tuple[float, float]] = {}
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 3:
            raise ValueError(f"malformed interval line: {raw!r}")
        v = _parse_token(parts[0])
        out[v] = (float(parts[1]), float(parts[2]))
    return out
