"""Graph generators.

Deterministic generators for the structured families used throughout the
paper (paths, trees, caterpillars, complete graphs) and seeded random
generators for the three chordal models the experiments sweep over:

* **interval model** -- intersection graphs of random intervals,
* **k-tree model** -- random partial/full k-trees (chordal with
  chi = k + 1),
* **subtree model** -- intersection graphs of random subtrees of a random
  tree, which by the classic characterization generate *all* chordal
  graphs.

Every random generator takes an explicit ``seed`` (or an already-seeded
:class:`random.Random`); nothing in the library touches global RNG state.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from .adjacency import Graph, Vertex
from .interval import interval_graph_from_intervals

__all__ = [
    "path_graph",
    "cycle_graph",
    "complete_graph",
    "star_graph",
    "caterpillar",
    "random_tree",
    "random_connected_interval_graph",
    "random_interval_graph",
    "random_proper_interval_graph",
    "random_k_tree",
    "random_chordal_graph",
    "binary_tree",
    "unit_interval_chain",
    "random_split_graph",
    "power_law_tree",
]

Rng = Union[int, random.Random, None]


def _rng(seed: Rng) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def path_graph(n: int) -> Graph:
    """The path P_n on vertices 0..n-1."""
    g = Graph(vertices=range(n))
    for i in range(n - 1):
        g.add_edge(i, i + 1)
    return g


def cycle_graph(n: int) -> Graph:
    """The cycle C_n (not chordal for n >= 4; used by negative tests)."""
    if n < 3:
        raise ValueError("cycles need at least 3 vertices")
    g = path_graph(n)
    g.add_edge(n - 1, 0)
    return g


def complete_graph(n: int) -> Graph:
    g = Graph(vertices=range(n))
    g.add_clique(range(n))
    return g


def star_graph(n_leaves: int) -> Graph:
    """K_{1,n}: center 0, leaves 1..n."""
    g = Graph(vertices=range(n_leaves + 1))
    for i in range(1, n_leaves + 1):
        g.add_edge(0, i)
    return g


def caterpillar(spine: int, legs_per_vertex: int) -> Graph:
    """A caterpillar tree: a spine path with pendant legs."""
    g = path_graph(spine)
    nxt = spine
    for s in range(spine):
        for _ in range(legs_per_vertex):
            g.add_edge(s, nxt)
            nxt += 1
    return g


def binary_tree(depth: int) -> Graph:
    """Complete binary tree of the given depth (depth 0 = single vertex)."""
    g = Graph(vertices=[0])
    frontier = [0]
    nxt = 1
    for _ in range(depth):
        new_frontier = []
        for v in frontier:
            for _ in range(2):
                g.add_edge(v, nxt)
                new_frontier.append(nxt)
                nxt += 1
        frontier = new_frontier
    return g


def random_tree(n: int, seed: Rng = None) -> Graph:
    """A uniformly seeded random tree via random attachment."""
    rng = _rng(seed)
    g = Graph(vertices=range(n))
    for v in range(1, n):
        g.add_edge(v, rng.randrange(v))
    return g


def random_interval_graph(
    n: int,
    seed: Rng = None,
    max_length: float = 0.1,
    span: float = 1.0,
) -> Graph:
    """Intersection graph of n random intervals in [0, span].

    ``max_length`` controls density: smaller values give sparser, more
    path-like graphs (the regime where the peeling process has many
    layers); values near ``span`` approach a complete graph.
    """
    rng = _rng(seed)
    intervals: Dict[Vertex, Tuple[float, float]] = {}
    for v in range(n):
        lo = rng.uniform(0, span)
        length = rng.uniform(0, max_length)
        intervals[v] = (lo, min(lo + length, span))
    return interval_graph_from_intervals(intervals)


def random_connected_interval_graph(
    n: int,
    seed: Rng = None,
    min_length: float = 1.0,
    max_length: float = 1.5,
    max_step: float = 0.9,
) -> Graph:
    """A connected, elongated random interval graph (large diameter).

    Intervals march rightward with steps shorter than the minimum interval
    length, so consecutive intervals always overlap: the graph is
    connected with diameter Theta(n).  This is the regime where the
    distance-k machinery of Algorithms 5 and ColIntGraph actually runs
    (compact graphs are solved exactly by one coordinator).
    """
    if min_length <= max_step:
        raise ValueError("min_length must exceed max_step for connectivity")
    rng = _rng(seed)
    intervals: Dict[Vertex, Tuple[float, float]] = {}
    x = 0.0
    for v in range(n):
        length = rng.uniform(min_length, max_length)
        intervals[v] = (x, x + length)
        x += rng.uniform(0.1, max_step)
    return interval_graph_from_intervals(intervals)


def unit_interval_chain(
    n: int,
    seed: Rng = None,
    max_step: float = 0.35,
) -> Graph:
    """A dense chain of unit intervals marching rightward.

    All intervals have length exactly 1 and start within ``max_step`` of
    the previous one, so the graph is a connected proper-interval chain of
    diameter Theta(n) with very few dominated vertices -- the hardest
    regime for Algorithm 5, where the distance-k independent set and the
    in-between exact solves genuinely matter.
    """
    if not 0 < max_step < 1:
        raise ValueError("max_step must lie in (0, 1) for connectivity")
    rng = _rng(seed)
    intervals: Dict[Vertex, Tuple[float, float]] = {}
    x = 0.0
    for v in range(n):
        intervals[v] = (x, x + 1.0)
        x += rng.uniform(0.05, max_step)
    return interval_graph_from_intervals(intervals)


def random_proper_interval_graph(
    n: int,
    seed: Rng = None,
    length: float = 0.05,
    span: float = 1.0,
) -> Graph:
    """Intersection graph of n random *unit* intervals (all same length)."""
    rng = _rng(seed)
    intervals = {}
    for v in range(n):
        lo = rng.uniform(0, span)
        intervals[v] = (lo, lo + length)
    return interval_graph_from_intervals(intervals)


def random_split_graph(
    n: int,
    seed: Rng = None,
    clique_fraction: float = 0.4,
    edge_probability: float = 0.3,
) -> Graph:
    """A random split graph: a clique plus an independent set.

    Split graphs are exactly the graphs that are chordal with chordal
    complement; they stress the pipeline's dense end (one huge bag whose
    forest neighbors are tiny pendant cliques).
    """
    if not 0 <= clique_fraction <= 1:
        raise ValueError("clique_fraction must lie in [0, 1]")
    rng = _rng(seed)
    clique_size = max(1, int(round(n * clique_fraction))) if n else 0
    g = Graph(vertices=range(n))
    g.add_clique(range(clique_size))
    for v in range(clique_size, n):
        for u in range(clique_size):
            if rng.random() < edge_probability:
                g.add_edge(u, v)
    return g


def power_law_tree(n: int, seed: Rng = None, bias: float = 1.0) -> Graph:
    """A preferential-attachment tree (hubby, small diameter).

    New vertices attach to an existing vertex with probability
    proportional to degree + bias; bias -> infinity recovers the uniform
    random tree.  Trees with hubs have many pendant paths per peeling
    iteration, the easy case for Lemma 6's bound.
    """
    if bias <= 0:
        raise ValueError("bias must be positive")
    rng = _rng(seed)
    g = Graph(vertices=range(n))
    weights: List[float] = [bias] * n
    for v in range(1, n):
        total = sum(weights[:v])
        pick = rng.uniform(0, total)
        acc = 0.0
        target = 0
        for u in range(v):
            acc += weights[u]
            if pick <= acc:
                target = u
                break
        g.add_edge(v, target)
        weights[v] += 1
        weights[target] += 1
    return g


def random_k_tree(n: int, k: int, seed: Rng = None) -> Graph:
    """A random k-tree on n vertices (n >= k + 1).

    Start from K_{k+1}; each new vertex is joined to a random k-clique of
    the current graph.  k-trees are chordal with clique number k + 1.
    """
    if n < k + 1:
        raise ValueError("a k-tree needs at least k + 1 vertices")
    rng = _rng(seed)
    g = Graph(vertices=range(n))
    g.add_clique(range(k + 1))
    k_cliques: List[Tuple[Vertex, ...]] = [
        tuple(sorted(set(range(k + 1)) - {i})) for i in range(k + 1)
    ]
    for v in range(k + 1, n):
        base = list(rng.choice(k_cliques))
        for u in base:
            g.add_edge(u, v)
        for i in range(k):
            new_clique = tuple(sorted(set(base) - {base[i]}) + [v])
            k_cliques.append(new_clique)
    return g


def random_chordal_graph(
    n: int,
    seed: Rng = None,
    subtree_radius: int = 2,
    tree_size: Optional[int] = None,
) -> Graph:
    """A random chordal graph via the subtree-intersection model.

    Builds a random host tree, assigns each of the n vertices a random
    subtree (a BFS ball of radius up to ``subtree_radius`` around a random
    tree node, randomly pruned), and returns the intersection graph of the
    subtrees.  Every chordal graph arises this way, and the model produces
    the tree-like global structure the peeling process of the paper is
    designed for.

    Isolated vertices are possible and retained (the paper treats an
    isolated vertex as a pendant path).
    """
    rng = _rng(seed)
    host_n = tree_size if tree_size is not None else max(2, n // 2)
    host = random_tree(host_n, seed=rng)
    subtrees: List[Set[int]] = []
    for _ in range(n):
        root = rng.randrange(host_n)
        radius = rng.randint(0, subtree_radius)
        ball = sorted(host.bfs_distances(root, cutoff=radius))
        # Randomly prune the ball while keeping it connected (drop leaves).
        keep = set(ball)
        for node in sorted(keep, reverse=True):
            if node == root or not keep or rng.random() >= 0.5:
                continue
            sub = keep - {node}
            if sub and _is_connected_in(host, sub):
                keep = sub
        subtrees.append(keep)
    g = Graph(vertices=range(n))
    for i in range(n):
        for j in range(i + 1, n):
            if subtrees[i] & subtrees[j]:
                g.add_edge(i, j)
    return g


def _is_connected_in(tree: Graph, nodes: Set[int]) -> bool:
    start = next(iter(nodes))
    seen = {start}
    stack = [start]
    while stack:
        u = stack.pop()
        for v in tree.neighbors_view(u):
            if v in nodes and v not in seen:
                seen.add(v)
                stack.append(v)
    return seen == nodes
