"""Validators for the two distributed outputs the paper studies.

For vertex colorings: every vertex has a color, and adjacent vertices have
different colors.  For independent sets: no two members are adjacent.
Validators return the first violation instead of just ``False`` so that
failing tests and assertions print actionable diagnostics.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Optional, Set, Tuple

from .adjacency import Graph, Vertex

Color = int

__all__ = [
    "coloring_violation",
    "is_proper_coloring",
    "assert_proper_coloring",
    "num_colors",
    "independent_set_violation",
    "is_independent_set",
    "assert_independent_set",
    "is_maximal_independent_set",
    "is_distance_k_independent_set",
    "is_maximal_distance_k_independent_set",
]


def coloring_violation(
    graph: Graph, coloring: Dict[Vertex, Color]
) -> Optional[Tuple[Vertex, Vertex]]:
    """First problem with ``coloring`` on ``graph``, or ``None`` if proper.

    Returns ``(v, v)`` for an uncolored vertex and ``(u, v)`` for a
    monochromatic edge.
    """
    for v in graph.vertices():
        if v not in coloring:
            return (v, v)
    for u, v in graph.edges():
        if coloring[u] == coloring[v]:
            return (u, v)
    return None


def is_proper_coloring(graph: Graph, coloring: Dict[Vertex, Color]) -> bool:
    return coloring_violation(graph, coloring) is None


def assert_proper_coloring(graph: Graph, coloring: Dict[Vertex, Color]) -> None:
    bad = coloring_violation(graph, coloring)
    if bad is None:
        return
    u, v = bad
    if u == v:
        raise AssertionError(f"vertex {u!r} is uncolored")
    raise AssertionError(
        f"edge ({u!r}, {v!r}) is monochromatic with color {coloring[u]!r}"
    )


def num_colors(coloring: Dict[Vertex, Color]) -> int:
    """Number of distinct colors actually used."""
    return len(set(coloring.values()))


def independent_set_violation(
    graph: Graph, independent: Iterable[Vertex]
) -> Optional[Tuple[Vertex, Vertex]]:
    """An edge inside the candidate set, or a member missing from the graph."""
    members = list(independent)
    member_set = set(members)
    if len(member_set) != len(members):
        dupes = sorted(v for v in member_set if members.count(v) > 1)
        return (dupes[0], dupes[0])
    for v in member_set:
        if v not in graph:
            return (v, v)
    for i, u in enumerate(members):
        for v in members[i + 1:]:
            if graph.has_edge(u, v):
                return (u, v)
    return None


def is_independent_set(graph: Graph, independent: Iterable[Vertex]) -> bool:
    return independent_set_violation(graph, independent) is None


def assert_independent_set(graph: Graph, independent: Iterable[Vertex]) -> None:
    bad = independent_set_violation(graph, independent)
    if bad is None:
        return
    u, v = bad
    if u == v:
        raise AssertionError(f"vertex {u!r} is duplicated or not in the graph")
    raise AssertionError(f"members {u!r} and {v!r} are adjacent")


def is_maximal_independent_set(graph: Graph, independent: Iterable[Vertex]) -> bool:
    """Independent and not extendable by any vertex outside it."""
    member_set = set(independent)
    if not is_independent_set(graph, member_set):
        return False
    for v in graph.vertices():
        if v in member_set:
            continue
        if not (graph.neighbors_view(v) & member_set):
            return False
    return True


def is_distance_k_independent_set(
    graph: Graph, independent: Iterable[Vertex], k: int
) -> bool:
    """Members pairwise at distance >= k.

    This is the convention of Algorithm 5: a distance-2 independent set is
    an ordinary independent set, and maximality of a distance-k set makes
    consecutive members at most 2k - 1 apart (the pair set P of the
    algorithm).
    """
    members = sorted(set(independent))
    for i, u in enumerate(members):
        dist = graph.bfs_distances(u, cutoff=k - 1)
        for v in members[i + 1:]:
            if v in dist:
                return False
    return True


def is_maximal_distance_k_independent_set(
    graph: Graph, independent: Iterable[Vertex], k: int
) -> bool:
    """Distance-k independent (pairwise >= k) and maximal for that property."""
    member_set = set(independent)
    if not is_distance_k_independent_set(graph, member_set, k):
        return False
    for v in graph.vertices():
        if v in member_set:
            continue
        ball = graph.bfs_distances(v, cutoff=k - 1)
        if not (set(ball) & member_set):
            return False
    return True
