"""Baselines: Luby's MIS and (Delta + 1) colorings."""

import math

import pytest

from repro.baselines import (
    distributed_delta_plus_one,
    luby_mis,
    sequential_greedy_coloring,
)
from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    is_maximal_independent_set,
    is_proper_coloring,
    num_colors,
    path_graph,
    random_chordal_graph,
    star_graph,
)


class TestLuby:
    def test_produces_maximal_independent_set(self):
        for seed in range(5):
            g = random_chordal_graph(40, seed=seed)
            mis, rounds = luby_mis(g, seed=seed)
            assert is_maximal_independent_set(g, mis)
            assert rounds >= 1

    def test_works_on_non_chordal_graphs_too(self):
        g = cycle_graph(20)
        mis, _ = luby_mis(g, seed=3)
        assert is_maximal_independent_set(g, mis)

    def test_complete_graph_selects_one(self):
        mis, _ = luby_mis(complete_graph(10), seed=1)
        assert len(mis) == 1

    def test_logarithmic_rounds(self):
        g = path_graph(400)
        _, rounds = luby_mis(g, seed=0)
        # whp O(log n) phases, each 2-3 rounds; generous cap
        assert rounds <= 20 * math.ceil(math.log2(400))

    def test_deterministic_given_seed(self):
        g = random_chordal_graph(30, seed=2)
        assert luby_mis(g, seed=5)[0] == luby_mis(g, seed=5)[0]

    def test_suboptimal_on_paths(self):
        """The gap the paper closes: maximal != maximum on paths."""
        g = path_graph(1001)
        sizes = [len(luby_mis(g, seed=s)[0]) for s in range(3)]
        assert all(size < 501 for size in sizes)


class TestSequentialGreedy:
    def test_proper_and_within_delta_plus_one(self):
        for seed in range(5):
            g = random_chordal_graph(35, seed=seed)
            coloring = sequential_greedy_coloring(g)
            assert is_proper_coloring(g, coloring)
            assert num_colors(coloring) <= g.max_degree() + 1

    def test_respects_order(self):
        g = path_graph(3)
        coloring = sequential_greedy_coloring(g, order=[1, 0, 2])
        assert coloring[1] == 1


class TestDistributedDeltaPlusOne:
    def test_proper_coloring(self):
        for seed in range(4):
            g = random_chordal_graph(35, seed=seed)
            coloring, rounds = distributed_delta_plus_one(g, seed=seed)
            assert is_proper_coloring(g, coloring)
            assert num_colors(coloring) <= g.max_degree() + 1
            assert rounds >= 1

    def test_star_uses_many_fewer_colors_than_palette(self):
        """On stars Delta + 1 = n but only 2 colors are ever needed --
        the chi-vs-Delta gap motivating the paper."""
        g = star_graph(30)
        coloring, _ = distributed_delta_plus_one(g, seed=0)
        assert is_proper_coloring(g, coloring)

    def test_empty_graph(self):
        coloring, rounds = distributed_delta_plus_one(Graph(), seed=0)
        assert coloring == {}
