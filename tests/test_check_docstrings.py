"""The public-API docstring checker (the stdlib D1 equivalent)."""

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "check_docstrings", REPO_ROOT / "tools" / "check_docstrings.py"
)
check_docstrings = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_docstrings)


def _problems_for(tmp_path, source):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "mod.py").write_text(source)
    return check_docstrings.check(tmp_path, ["pkg"])


class TestMissingDocstrings:
    def test_flags_module_class_function_and_init(self, tmp_path):
        problems = _problems_for(
            tmp_path,
            "class Widget:\n"
            "    def __init__(self):\n"
            "        pass\n"
            "    def spin(self):\n"
            "        pass\n"
            "def helper():\n"
            "    pass\n",
        )
        text = "\n".join(problems)
        assert "missing docstring on (module)" in text
        assert "missing docstring on Widget" in text
        assert "missing docstring on Widget.__init__" in text
        assert "missing docstring on Widget.spin" in text
        assert "missing docstring on helper" in text

    def test_private_names_and_nested_defs_exempt(self, tmp_path):
        problems = _problems_for(
            tmp_path,
            '"""Module doc."""\n'
            "def _internal():\n"
            "    pass\n"
            "class _Hidden:\n"
            "    def visible_in_private_scope(self):\n"
            "        pass\n"
            "def documented():\n"
            '    """Doc."""\n'
            "    def nested():\n"
            "        pass\n",
        )
        assert problems == []

    def test_overload_stubs_exempt(self, tmp_path):
        problems = _problems_for(
            tmp_path,
            '"""Module doc."""\n'
            "from typing import overload\n"
            "@overload\n"
            "def f(x: int) -> int: ...\n"
            "@overload\n"
            "def f(x: str) -> str: ...\n"
            "def f(x):\n"
            '    """Doc."""\n'
            "    return x\n",
        )
        assert problems == []

    def test_missing_package_is_a_problem(self, tmp_path):
        problems = check_docstrings.check(tmp_path, ["nope"])
        assert problems == ["nope: not a directory"]


class TestRepository:
    def test_default_scope_is_fully_documented(self):
        assert check_docstrings.check(
            REPO_ROOT, list(check_docstrings.DEFAULT_SCOPE)
        ) == []

    def test_main_exit_status(self, capsys):
        assert check_docstrings.main(["--root", str(REPO_ROOT)]) == 0
        assert "fully documented" in capsys.readouterr().out
