"""Binary path machinery and the peeling lemmas (Lemmas 3, 4, 7; Figures 5-6)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cliquetree import (
    build_clique_forest,
    greedy_path_mis,
    is_interval_graph,
    maximal_binary_paths,
    nodes_with_subtree_in,
    path_diameter,
    path_independence_number,
    path_vertices,
)
from repro.graphs import (
    FIGURE5_PATH,
    PAPER_CLIQUES,
    Graph,
    brute_force_maximum_independent_set,
    complete_graph,
    paper_example_graph,
    path_graph,
    random_chordal_graph,
    star_graph,
)


def paper_forest():
    return build_clique_forest(paper_example_graph())


class TestMaximalBinaryPaths:
    def test_single_clique_graph(self):
        forest = build_clique_forest(complete_graph(4))
        paths = maximal_binary_paths(forest)
        assert len(paths) == 1
        assert paths[0].is_pendant  # isolated clique counts as pendant
        assert not paths[0].is_internal

    def test_path_graph_one_pendant_path(self):
        forest = build_clique_forest(path_graph(8))
        paths = maximal_binary_paths(forest)
        assert len(paths) == 1
        assert paths[0].is_pendant
        assert len(paths[0]) == forest.num_cliques()
        assert paths[0].attachments == ()

    def test_every_maximal_binary_path_is_pendant_or_internal(self):
        for seed in range(10):
            g = random_chordal_graph(35, seed=seed)
            forest = build_clique_forest(g)
            for p in maximal_binary_paths(forest):
                assert p.is_pendant != p.is_internal or p.attachments == ()
                # pendant and internal are mutually exclusive
                assert not (p.is_pendant and p.is_internal)

    def test_path_cliques_have_degree_at_most_two(self):
        g = paper_example_graph()
        forest = paper_forest()
        for p in maximal_binary_paths(forest):
            for c in p.cliques:
                assert forest.degree(c) <= 2

    def test_maximality(self):
        """No neighbor of a path end (outside the path) has degree <= 2."""
        for seed in range(10):
            g = random_chordal_graph(35, seed=seed)
            forest = build_clique_forest(g)
            for p in maximal_binary_paths(forest):
                for att in p.attachments:
                    assert forest.degree(att) >= 3

    def test_paper_paths(self):
        forest = paper_forest()
        paths = maximal_binary_paths(forest)
        C = PAPER_CLIQUES
        by_first = {p.cliques[0] for p in paths}
        # C5 and C11 are the only cliques of degree >= 3; everything else
        # falls into binary paths.
        assert forest.degree(C["C5"]) == 3
        assert forest.degree(C["C11"]) == 3
        covered = set()
        for p in paths:
            covered |= p.clique_set()
        assert covered == set(forest.cliques()) - {C["C5"], C["C11"]}

    def test_paper_internal_path(self):
        """C6..C10 form an internal path between C5 and C11 (Figure 5)."""
        forest = paper_forest()
        C = PAPER_CLIQUES
        paths = maximal_binary_paths(forest)
        target = [p for p in paths if C["C6"] in p.clique_set()]
        assert len(target) == 1
        p = target[0]
        assert p.is_internal
        assert set(p.attachments) == {C["C5"], C["C11"]}
        expected = [C[name] for name in FIGURE5_PATH]
        assert list(p.cliques) == expected or list(p.cliques) == expected[::-1]


class TestPathNodeSets:
    def test_path_vertices_figure5(self):
        C = PAPER_CLIQUES
        path = [C[name] for name in FIGURE5_PATH]
        assert path_vertices(path) == {8, 9, 10, 11, 12, 13, 14, 15, 16}

    def test_nodes_with_subtree_in_figure5(self):
        """U of Figure 5: nodes whose subtrees are subpaths of C6..C10."""
        forest = paper_forest()
        C = PAPER_CLIQUES
        path = [C[name] for name in FIGURE5_PATH]
        u = nodes_with_subtree_in(forest, path)
        # 8 is also in C5, and 15, 16 are also in C11/C12, so they stay.
        assert u == {9, 10, 11, 12, 13, 14}

    def test_figure56_removal_matches_reduced_graph(self):
        """Lemma 3 on Figure 5-6: T - P is the clique forest of G[V - U]."""
        g = paper_example_graph()
        forest = paper_forest()
        C = PAPER_CLIQUES
        path = [C[name] for name in FIGURE5_PATH]
        u = nodes_with_subtree_in(forest, path)
        reduced = g.subgraph_without(u)
        expected = build_clique_forest(reduced)
        actual = forest.without_cliques(path)
        assert actual == expected
        assert actual.is_valid_decomposition(reduced)

    def test_pendant_removal_matches_reduced_graph(self):
        """Lemma 4 on the paper graph: removing a pendant path."""
        g = paper_example_graph()
        forest = paper_forest()
        C = PAPER_CLIQUES
        # C1 - C2 is a pendant path attached to C5 via C2.
        paths = maximal_binary_paths(forest)
        pendant = [p for p in paths if C["C1"] in p.clique_set()]
        assert len(pendant) == 1 and pendant[0].is_pendant
        path = list(pendant[0].cliques)
        u = nodes_with_subtree_in(forest, path)
        assert u == {1, 3}  # 2 and 4 also live in C5
        reduced = g.subgraph_without(u)
        assert forest.without_cliques(path) == build_clique_forest(reduced)


class TestPathMetrics:
    def test_diameter_figure5_path(self):
        g = paper_example_graph()
        C = PAPER_CLIQUES
        path = [C[name] for name in FIGURE5_PATH]
        # dist(8, 15) = 4 via 8-10-11-13(?) compute: the exact value is
        # checked against brute-force BFS.
        expected = g.eccentricity_within(sorted(path_vertices(path)))
        assert path_diameter(g, path) == expected

    def test_diameter_single_clique(self):
        g = complete_graph(5)
        path = [frozenset(range(5))]
        assert path_diameter(g, path) == 1

    def test_path_mis_is_maximum(self):
        """greedy_path_mis matches brute force on Lemma 7 subgraphs."""
        g = paper_example_graph()
        forest = paper_forest()
        for p in maximal_binary_paths(forest):
            path = list(p.cliques)
            mis = greedy_path_mis(path)
            sub = g.induced_subgraph(path_vertices(path))
            assert sub.is_independent_set(mis)
            assert len(mis) == len(brute_force_maximum_independent_set(sub))

    def test_path_independence_number_matches(self):
        g = paper_example_graph()
        C = PAPER_CLIQUES
        path = [C[name] for name in FIGURE5_PATH]
        sub = g.induced_subgraph(path_vertices(path))
        expected = len(brute_force_maximum_independent_set(sub))
        assert path_independence_number(path) == expected


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(2, 30))
def test_lemma7_paths_induce_interval_graphs(seed, n):
    """Lemma 7: nodes of any binary path's cliques induce an interval graph."""
    g = random_chordal_graph(n, seed=seed)
    forest = build_clique_forest(g)
    for p in maximal_binary_paths(forest):
        sub = g.induced_subgraph(path_vertices(p.cliques))
        assert is_interval_graph(sub)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(2, 28))
def test_peeling_step_preserves_clique_forest(seed, n):
    """Lemmas 3-5: removing all pendant + long internal paths at once keeps
    T - P the clique forest of the reduced graph."""
    g = random_chordal_graph(n, seed=seed)
    forest = build_clique_forest(g)
    removed_cliques = []
    removed_nodes = set()
    for p in maximal_binary_paths(forest):
        # Pendant paths always removable; internal ones need diameter >= 4
        # for Lemma 3 (we use the paper's weakest precondition here).
        if p.is_pendant or path_diameter(g, p.cliques) >= 4:
            removed_cliques.extend(p.cliques)
            removed_nodes |= nodes_with_subtree_in(forest, p.cliques)
    if not removed_nodes and not removed_cliques:
        return
    reduced = g.subgraph_without(removed_nodes)
    if len(reduced) == 0:
        assert len(forest.without_cliques(removed_cliques)) == 0
        return
    assert forest.without_cliques(removed_cliques) == build_clique_forest(reduced)
