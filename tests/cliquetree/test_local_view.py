"""Local views of the clique forest (Section 3, Lemma 2, Figures 3-4)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cliquetree import (
    build_clique_forest,
    compute_local_view,
    local_cliques_of,
)
from repro.graphs import (
    FIGURE3_CENTER,
    PAPER_CLIQUES,
    paper_example_graph,
    path_graph,
    random_chordal_graph,
)


class TestLocalCliques:
    def test_phi_of_node_10(self):
        g = paper_example_graph()
        ball = g.induced_subgraph(g.ball(10, 3))
        phi = set(local_cliques_of(ball, 10))
        assert phi == {PAPER_CLIQUES["C6"], PAPER_CLIQUES["C7"]}

    def test_matches_global_phi(self):
        g = paper_example_graph()
        forest = build_clique_forest(g)
        for v in g.vertices():
            ball = g.induced_subgraph(g.ball(v, 2))
            assert set(local_cliques_of(ball, v)) == forest.phi(v)


class TestFigure34:
    """Node 10's distance-3 view reproduces the fragment of Figure 4."""

    def test_visible_cliques(self):
        g = paper_example_graph()
        view = compute_local_view(g, FIGURE3_CENTER, radius=3)
        names = {"C1", "C2", "C3", "C5", "C6", "C7", "C8", "C9"}
        expected = {PAPER_CLIQUES[n] for n in names}
        assert set(view.forest.cliques()) == expected

    def test_fragment_edges_agree_with_global_forest(self):
        g = paper_example_graph()
        forest = build_clique_forest(g)
        view = compute_local_view(g, FIGURE3_CENTER, radius=3)
        global_edges = {frozenset(e) for e in forest.edges()}
        local_edges = {frozenset(e) for e in view.forest.edges()}
        assert local_edges <= global_edges

    def test_fragment_is_induced_restriction(self):
        """Figure 4: the local forest equals the subtree of T induced by
        the visible cliques."""
        g = paper_example_graph()
        forest = build_clique_forest(g)
        view = compute_local_view(g, FIGURE3_CENTER, radius=3)
        visible = set(view.forest.cliques())
        induced = {
            frozenset(e)
            for e in forest.edges()
            if e[0] in visible and e[1] in visible
        }
        assert {frozenset(e) for e in view.forest.edges()} == induced

    def test_interior_is_distance_two_ball(self):
        g = paper_example_graph()
        view = compute_local_view(g, FIGURE3_CENTER, radius=3)
        assert view.interior == g.ball(FIGURE3_CENTER, 2)

    def test_confirmed_degrees_match_global(self):
        g = paper_example_graph()
        forest = build_clique_forest(g)
        view = compute_local_view(g, FIGURE3_CENTER, radius=3)
        for c in view.confirmed:
            assert view.forest.degree(c) == forest.degree(c)
            assert view.degree_is_exact(c)

    def test_radius_validation(self):
        with pytest.raises(ValueError):
            compute_local_view(paper_example_graph(), 10, radius=0)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 5_000), n=st.integers(2, 25), radius=st.integers(2, 5))
def test_local_view_edges_always_subset_of_global(seed, n, radius):
    """Lemma 2: every edge a node reconstructs is a global forest edge, and
    every global edge between confirmed cliques is reconstructed."""
    g = random_chordal_graph(n, seed=seed)
    forest = build_clique_forest(g)
    global_edges = {frozenset(e) for e in forest.edges()}
    for v in list(g.vertices())[:5]:
        view = compute_local_view(g, v, radius=radius)
        local_edges = {frozenset(e) for e in view.forest.edges()}
        assert local_edges <= global_edges
        for c in view.confirmed:
            for d in forest.neighbors(c):
                assert frozenset((c, d)) in local_edges


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 5_000), n=st.integers(2, 22))
def test_full_radius_view_recovers_whole_forest_component(seed, n):
    g = random_chordal_graph(n, seed=seed)
    forest = build_clique_forest(g)
    v = g.vertices()[0]
    comp = [c for c in g.connected_components() if v in c][0]
    view = compute_local_view(g, v, radius=n + 2)
    comp_cliques = {c for c in forest.cliques() if c <= comp}
    assert set(view.forest.cliques()) == comp_cliques
