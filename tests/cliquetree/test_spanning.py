"""Union-find and maximum-weight spanning forests, against networkx."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.cliquetree import (
    UnionFind,
    maximum_weight_spanning_forest,
    wcig_edges_among,
    weighted_clique_intersection_edges,
)
from repro.graphs import random_chordal_graph


class TestUnionFind:
    def test_basic_merging(self):
        uf = UnionFind([1, 2, 3, 4])
        assert uf.union(1, 2)
        assert not uf.union(2, 1)
        assert uf.find(1) == uf.find(2)
        assert uf.find(3) != uf.find(1)

    def test_transitive(self):
        uf = UnionFind("abcd")
        uf.union("a", "b")
        uf.union("c", "d")
        uf.union("b", "c")
        assert len({uf.find(x) for x in "abcd"}) == 1

    def test_add_idempotent(self):
        uf = UnionFind()
        uf.add(5)
        uf.add(5)
        assert uf.find(5) == 5


class TestSpanningForest:
    def _total_weight(self, edges):
        return sum(len(a & b) for a, b in edges)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(2, 30))
    def test_weight_matches_networkx_mst(self, seed, n):
        """Our canonical forest achieves the maximum spanning weight."""
        g = random_chordal_graph(n, seed=seed)
        cliques, edges = weighted_clique_intersection_edges(g)
        chosen = maximum_weight_spanning_forest(cliques, edges)

        wg = nx.Graph()
        wg.add_nodes_from(range(len(cliques)))
        pos = {c: i for i, c in enumerate(cliques)}
        for c1, c2, w in edges:
            wg.add_edge(pos[c1], pos[c2], weight=w)
        nx_weight = 0
        for comp in nx.connected_components(wg):
            mst = nx.maximum_spanning_tree(wg.subgraph(comp), weight="weight")
            nx_weight += sum(d["weight"] for _, _, d in mst.edges(data=True))
        assert self._total_weight(chosen) == nx_weight

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(2, 25))
    def test_forest_size(self, seed, n):
        """A spanning forest has (cliques - components) edges."""
        g = random_chordal_graph(n, seed=seed)
        cliques, edges = weighted_clique_intersection_edges(g)
        chosen = maximum_weight_spanning_forest(cliques, edges)
        components = len(g.connected_components())
        assert len(chosen) == len(cliques) - components

    def test_deterministic(self):
        g = random_chordal_graph(25, seed=3)
        cliques, edges = weighted_clique_intersection_edges(g)
        a = maximum_weight_spanning_forest(cliques, edges)
        b = maximum_weight_spanning_forest(cliques, list(reversed(edges)))
        assert set(map(frozenset, a)) == set(map(frozenset, b))
