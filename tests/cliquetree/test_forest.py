"""Clique forest construction: validity, uniqueness, paper's Figure 2."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cliquetree import (
    CliqueForest,
    build_clique_forest,
    edge_key,
    is_interval_graph,
    sigma,
    weighted_clique_intersection_edges,
)
from repro.graphs import (
    PAPER_CLIQUES,
    complete_graph,
    cycle_graph,
    paper_example_graph,
    path_graph,
    random_chordal_graph,
    random_interval_graph,
    random_k_tree,
    random_tree,
    star_graph,
)


class TestWCIG:
    def test_sigma_sorts_members(self):
        assert sigma(frozenset({3, 1, 2})) == (1, 2, 3)

    def test_edge_key_weight_first(self):
        a, b = frozenset({1, 2, 3}), frozenset({2, 3, 4})
        c, d = frozenset({4, 5}), frozenset({5, 6})
        assert edge_key(a, b)[0] == 2
        assert edge_key(c, d)[0] == 1
        assert edge_key(a, b) > edge_key(c, d)

    def test_edge_key_symmetric(self):
        a, b = frozenset({1, 2}), frozenset({2, 3})
        assert edge_key(a, b) == edge_key(b, a)

    def test_paper_wcig_weights(self):
        g = paper_example_graph()
        cliques, edges = weighted_clique_intersection_edges(g)
        weights = {
            (frozenset(c1), frozenset(c2)): w for c1, c2, w in edges
        }

        def w(l1, l2):
            key = (PAPER_CLIQUES[l1], PAPER_CLIQUES[l2])
            return weights.get(key, weights.get((key[1], key[0])))

        # Weights read off Figure 2.
        assert w("C1", "C2") == 2
        assert w("C2", "C5") == 2
        assert w("C3", "C4") == 2
        assert w("C2", "C3") == 1
        assert w("C5", "C6") == 1
        assert w("C13", "C14") == 1
        assert w("C14", "C15") == 1
        assert w("C10", "C11") == 2
        assert w("C1", "C5") == 1
        # Non-intersecting cliques have no WCIG edge.
        assert w("C1", "C6") is None


class TestCliqueForestStructure:
    def test_forest_rejects_cycles(self):
        a, b, c = frozenset({1}), frozenset({2}), frozenset({3})
        with pytest.raises(ValueError):
            CliqueForest([a, b, c], [(a, b), (b, c), (c, a)])

    def test_forest_rejects_unknown_edges(self):
        a, b = frozenset({1}), frozenset({2})
        with pytest.raises(ValueError):
            CliqueForest([a], [(a, b)])

    def test_forest_rejects_self_edge(self):
        a = frozenset({1})
        with pytest.raises(ValueError):
            CliqueForest([a], [(a, a)])

    def test_phi_unknown_vertex(self):
        forest = build_clique_forest(path_graph(3))
        with pytest.raises(KeyError):
            forest.phi(99)

    def test_path_graph_forest_is_path_of_edges(self):
        g = path_graph(5)
        forest = build_clique_forest(g)
        assert forest.num_cliques() == 4  # the 4 edges
        assert forest.is_linear_forest()
        assert len(forest.leaves()) == 2

    def test_complete_graph_single_bag(self):
        forest = build_clique_forest(complete_graph(6))
        assert forest.num_cliques() == 1
        assert forest.leaves() == forest.cliques()

    def test_star_graph(self):
        forest = build_clique_forest(star_graph(5))
        assert forest.num_cliques() == 5
        # Every bag is an edge through the center; forest is a tree.
        assert len(forest.components()) == 1

    def test_disconnected_graph_gives_forest(self):
        from repro.graphs import Graph

        g = Graph(edges=[(1, 2), (3, 4)])
        forest = build_clique_forest(g)
        assert len(forest.components()) == 2

    def test_isolated_vertex_bag(self):
        from repro.graphs import Graph

        g = Graph(vertices=[7])
        forest = build_clique_forest(g)
        assert forest.cliques() == [frozenset({7})]


class TestFigure2:
    """The bold edges of Figure 2: the canonical clique forest."""

    def test_forest_edges_match_canonical_order(self):
        """The unique MWSF under the paper's order ``<``.

        Weight-2 edges are forced (they never close a cycle here); among
        the weight-1 ties the order ``<`` forces, e.g., C3-C5 over C2-C3
        (le (2,4,8) > (2,3,4)) and C14-C15 + C13-C15 over C13-C14
        (le (21,22) beats (19,20,21); he (21,23) beats (21,22)).
        """
        g = paper_example_graph()
        forest = build_clique_forest(g)
        C = PAPER_CLIQUES
        expected = {
            frozenset((C["C1"], C["C2"])),
            frozenset((C["C2"], C["C5"])),
            frozenset((C["C3"], C["C5"])),
            frozenset((C["C3"], C["C4"])),
            frozenset((C["C5"], C["C6"])),
            frozenset((C["C6"], C["C7"])),
            frozenset((C["C7"], C["C8"])),
            frozenset((C["C8"], C["C9"])),
            frozenset((C["C9"], C["C10"])),
            frozenset((C["C10"], C["C11"])),
            frozenset((C["C11"], C["C12"])),
            frozenset((C["C11"], C["C13"])),
            frozenset((C["C13"], C["C15"])),
            frozenset((C["C14"], C["C15"])),
        }
        ours = {frozenset(e) for e in forest.edges()}
        # The forest is a spanning tree on 15 cliques: 14 edges.
        assert len(ours) == 14
        assert ours == expected

    def test_forest_is_valid_decomposition(self):
        g = paper_example_graph()
        forest = build_clique_forest(g)
        assert forest.is_valid_decomposition(g)


class TestValidityProperties:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(1, 35))
    def test_random_chordal_forest_is_valid(self, seed, n):
        g = random_chordal_graph(n, seed=seed)
        forest = build_clique_forest(g)
        assert forest.is_valid_decomposition(g)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(5, 30), k=st.integers(1, 3))
    def test_k_tree_forest_is_valid(self, seed, n, k):
        g = random_k_tree(n, k, seed=seed)
        forest = build_clique_forest(g)
        assert forest.is_valid_decomposition(g)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(1, 30))
    def test_deterministic_rebuild(self, seed, n):
        g = random_chordal_graph(n, seed=seed)
        assert build_clique_forest(g) == build_clique_forest(g)


class TestIntervalRecognition:
    def test_paths_are_interval(self):
        assert is_interval_graph(path_graph(10))

    def test_interval_generator_recognized(self):
        for seed in range(6):
            g = random_interval_graph(25, seed=seed, max_length=0.2)
            assert is_interval_graph(g)

    def test_star_is_interval_but_spider_is_not(self):
        assert is_interval_graph(star_graph(4))
        # Subdivided star (spider with legs of length 2) is not interval.
        from repro.graphs import Graph

        g = Graph(edges=[(0, 1), (1, 2), (0, 3), (3, 4), (0, 5), (5, 6)])
        assert not is_interval_graph(g)

    def test_cycle_not_interval(self):
        assert not is_interval_graph(cycle_graph(5))

    def test_paper_graph_not_interval(self):
        # Its clique forest has branching cliques (e.g. C2), so not linear.
        assert not is_interval_graph(paper_example_graph())
