"""local_view_from_ball: gathered balls reconstruct the same local view.

``compute_local_view`` slices the global graph; ``local_view_from_ball``
consumes only a :class:`KnownBall` from a real message-passing gather.
Because ``ball.as_graph()`` is exactly ``G[Gamma^r[center]]`` and
shortest paths of length <= r stay inside the ball, the two must agree
on every component of the view.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cliquetree import compute_local_view, local_view_from_ball
from repro.graphs import paper_example_graph, random_chordal_graph
from repro.localmodel import gather_balls


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 5_000), n=st.integers(2, 22), radius=st.integers(1, 4))
def test_view_from_ball_matches_direct_computation(seed, n, radius):
    g = random_chordal_graph(n, seed=seed)
    balls, _ = gather_balls(g, radius)
    for v, ball in balls.items():
        direct = compute_local_view(g, v, radius)
        from_ball = local_view_from_ball(ball)
        assert from_ball.center == v and from_ball.radius == radius
        assert from_ball.forest == direct.forest
        assert from_ball.confirmed == direct.confirmed
        assert from_ball.interior == direct.interior


def test_paper_example_views_agree_for_every_center():
    g = paper_example_graph()
    balls, _ = gather_balls(g, 2)
    for v, ball in balls.items():
        assert local_view_from_ball(ball).forest == compute_local_view(
            g, v, 2
        ).forest


def test_radius_zero_ball_rejected():
    g = random_chordal_graph(8, seed=1)
    balls, _ = gather_balls(g, 0)
    with pytest.raises(ValueError, match="radius >= 1"):
        local_view_from_ball(balls[g.vertices()[0]])
