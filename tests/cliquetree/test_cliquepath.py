"""Consecutive clique arrangements (clique paths) and interval recognition."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cliquetree import (
    NotIntervalError,
    clique_paths_of_interval_graph,
    consecutive_clique_arrangement,
    is_interval_graph,
)
from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    interval_graph_from_intervals,
    maximal_cliques,
    path_graph,
    random_interval_graph,
    star_graph,
)


def is_consecutive(arrangement):
    """Every vertex occupies a consecutive run of cliques."""
    positions = {}
    for i, c in enumerate(arrangement):
        for v in c:
            positions.setdefault(v, []).append(i)
    return all(ps == list(range(ps[0], ps[-1] + 1)) for ps in positions.values())


class TestArrangement:
    def test_empty_and_single(self):
        assert consecutive_clique_arrangement([]) == []
        c = frozenset({1, 2})
        assert consecutive_clique_arrangement([c]) == [c]

    def test_path_graph(self):
        g = path_graph(6)
        arr = consecutive_clique_arrangement(maximal_cliques(g))
        assert arr is not None
        assert is_consecutive(arr)
        assert len(arr) == 5

    def test_star_graph_symmetric_cliques(self):
        """K_{1,m}: any order works; the symmetry pruning must not blow up."""
        g = star_graph(12)
        arr = consecutive_clique_arrangement(maximal_cliques(g))
        assert arr is not None
        assert is_consecutive(arr)

    def test_non_interval_cliques_rejected(self):
        # Subdivided star: chordal but not interval.
        g = Graph(edges=[(0, 1), (1, 2), (0, 3), (3, 4), (0, 5), (5, 6)])
        arr = consecutive_clique_arrangement(maximal_cliques(g))
        assert arr is None


class TestRecognition:
    def test_interval_families(self):
        assert is_interval_graph(path_graph(10))
        assert is_interval_graph(complete_graph(5))
        assert is_interval_graph(star_graph(7))
        assert is_interval_graph(Graph())

    def test_non_interval(self):
        assert not is_interval_graph(cycle_graph(4))  # not even chordal
        g = Graph(edges=[(0, 1), (1, 2), (0, 3), (3, 4), (0, 5), (5, 6)])
        assert not is_interval_graph(g)  # chordal, not interval

    def test_random_interval_graphs_recognized(self):
        for seed in range(8):
            g = random_interval_graph(30, seed=seed, max_length=0.25)
            assert is_interval_graph(g)

    def test_clique_paths_validity(self):
        for seed in range(5):
            g = random_interval_graph(25, seed=seed, max_length=0.3)
            for path in clique_paths_of_interval_graph(g):
                assert is_consecutive(path)

    def test_clique_paths_cover_graph(self):
        g = random_interval_graph(20, seed=3, max_length=0.3)
        covered = set()
        for path in clique_paths_of_interval_graph(g):
            for c in path:
                covered |= c
        assert covered == set(g.vertices())

    def test_raises_on_non_interval(self):
        with pytest.raises(NotIntervalError):
            clique_paths_of_interval_graph(cycle_graph(5))


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(1, 30))
def test_random_interval_graph_clique_paths(seed, n):
    g = random_interval_graph(n, seed=seed, max_length=0.2)
    paths = clique_paths_of_interval_graph(g)
    assert all(is_consecutive(p) for p in paths)
    assert len(paths) == len(g.connected_components())
