"""The Theorem 9 experiment: r-round MIS on labeled paths."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.lowerbounds import (
    anchor_parity_mis,
    anchor_radius,
    measure_r_round_mis,
)


class TestAnchorParityRule:
    def test_rejects_duplicate_labels(self):
        with pytest.raises(ValueError):
            anchor_parity_mis([1, 1, 2], 5)

    def test_empty(self):
        assert anchor_parity_mis([], 5) == set()

    def test_output_is_independent(self):
        rng = random.Random(0)
        for n in (5, 50, 300):
            for r in (2, 5, 12, 30):
                labels = rng.sample(range(10**6), n)
                chosen = anchor_parity_mis(labels, r)
                assert all(i + 1 not in chosen for i in chosen)
                assert all(0 <= i < n for i in chosen)

    def test_small_r_falls_back_to_local_minima(self):
        labels = [5, 1, 4, 2, 9, 0, 7]
        chosen = anchor_parity_mis(labels, 2)
        assert chosen == {1, 3, 5}

    def test_locality(self):
        """Decisions depend only on the radius-r window of labels."""
        rng = random.Random(7)
        n, r = 120, 10
        labels = rng.sample(range(1000, 10_000), n)
        base = anchor_parity_mis(labels, r)
        # Change labels far from position 60; its decision must not change.
        mutated = list(labels)
        for j in list(range(0, 60 - r - 1)) + list(range(60 + r + 1, n)):
            mutated[j] = labels[j] + 100_000
        changed = anchor_parity_mis(mutated, r)
        assert (60 in base) == (60 in changed)

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(1, 200),
        r=st.integers(2, 40),
    )
    def test_independence_property(self, seed, n, r):
        rng = random.Random(seed)
        labels = rng.sample(range(10**6), n)
        chosen = anchor_parity_mis(labels, r)
        assert all(i + 1 not in chosen for i in chosen)


class TestMeasurement:
    def test_sample_fields(self):
        sample = measure_r_round_mis(n=400, r=10, trials=5, seed=1)
        assert sample.optimum == 200
        assert 0 < sample.mean_size <= sample.optimum
        assert sample.density_gap >= 0

    def test_gap_shrinks_with_r(self):
        """The 1/r (up to log) decay of the density gap."""
        n, trials = 4000, 6
        gaps = [
            measure_r_round_mis(n, r, trials=trials, seed=3).density_gap
            for r in (4, 16, 64)
        ]
        assert gaps[0] > gaps[1] > gaps[2]
        # quadrupling r should cut the gap by at least half
        assert gaps[1] <= gaps[0] / 1.8
        assert gaps[2] <= gaps[1] / 1.8

    def test_ratio_approaches_one(self):
        sample = measure_r_round_mis(4000, 64, trials=4, seed=2)
        assert sample.approximation_ratio < 1.1
