"""The peeling process: layer structure, Lemma 6/7 properties."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.cliquetree import is_interval_graph
from repro.coloring.prune import diameter_rule, peel_chordal_graph
from repro.graphs import (
    Graph,
    caterpillar,
    complete_graph,
    paper_example_graph,
    path_graph,
    random_chordal_graph,
    random_k_tree,
    random_tree,
)


def full_peel(graph, threshold=4):
    return peel_chordal_graph(graph, internal_rule=diameter_rule(threshold))


class TestBasicPeeling:
    def test_path_graph_single_layer(self):
        peeling = full_peel(path_graph(20))
        assert peeling.num_layers() == 1
        assert peeling.exhausted
        assert peeling.nodes_of_layer(1) == set(range(20))

    def test_complete_graph_single_layer(self):
        peeling = full_peel(complete_graph(6))
        assert peeling.num_layers() == 1

    def test_empty_remaining_after_exhaustive_peel(self):
        g = random_chordal_graph(30, seed=2)
        peeling = full_peel(g)
        assert peeling.exhausted
        assert peeling.remaining_nodes() == set()
        assert set(peeling.layer_of) == set(g.vertices())

    def test_max_iterations_stops_early(self):
        g = caterpillar(spine=40, legs_per_vertex=2)
        peeling = peel_chordal_graph(
            g, internal_rule=diameter_rule(10_000), max_iterations=1
        )
        assert not peeling.exhausted or peeling.num_layers() <= 1
        assert peeling.num_layers() == 1
        # legs and spine-path remnants may remain
        assert peeling.remaining_nodes() | set(peeling.layer_of) == set(g.vertices())

    def test_paper_example_layers(self):
        g = paper_example_graph()
        peeling = full_peel(g, threshold=4)
        # The example peels completely within the log-bound.
        assert peeling.num_layers() <= math.ceil(math.log2(len(g))) + 1
        assert peeling.exhausted


class TestLayerStructure:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(2, 40))
    def test_layers_bounded_by_log_n(self, seed, n):
        """Lemma 6 / Corollary 1: at most ceil(log2 n) + 1 layers."""
        g = random_chordal_graph(n, seed=seed)
        peeling = full_peel(g)
        assert peeling.num_layers() <= math.ceil(math.log2(max(2, len(g)))) + 1

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(2, 35))
    def test_layers_induce_interval_graphs(self, seed, n):
        """Lemma 7: every layer induces an interval graph."""
        g = random_chordal_graph(n, seed=seed)
        peeling = full_peel(g)
        for i in range(1, peeling.num_layers() + 1):
            layer = peeling.nodes_of_layer(i)
            assert is_interval_graph(g.induced_subgraph(layer))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(2, 35))
    def test_neighbors_of_paths_live_higher(self, seed, n):
        """Lemma 11: neighbors of W_P in the remaining graph G_i sit in
        strictly higher layers -- equivalently, no neighbor outside W_P
        shares W_P's layer."""
        g = random_chordal_graph(n, seed=seed)
        peeling = full_peel(g)
        for layer_paths in peeling.layers:
            for peeled in layer_paths:
                for u in g.set_neighborhood(peeled.nodes):
                    assert peeling.layer_of[u] != peeled.layer

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(2, 35))
    def test_same_layer_paths_are_non_adjacent(self, seed, n):
        g = random_chordal_graph(n, seed=seed)
        peeling = full_peel(g)
        for layer_paths in peeling.layers:
            for i, a in enumerate(layer_paths):
                for b in layer_paths[i + 1:]:
                    assert not (g.closed_set_neighborhood(a.nodes) & set(b.nodes))

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(5, 30))
    def test_layer_bags_are_valid_decompositions(self, seed, n):
        g = random_chordal_graph(n, seed=seed)
        peeling = full_peel(g)
        for layer_paths in peeling.layers:
            for peeled in layer_paths:
                bags = peeled.layer_bags()
                bags.validate(g.induced_subgraph(peeled.nodes))


class TestForestEvolution:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 5_000), n=st.integers(2, 28))
    def test_lemma5_intermediate_forests(self, seed, n):
        """T_{i+1} equals the clique forest of G[U_{i+1}] at every step."""
        from repro.cliquetree import build_clique_forest

        g = random_chordal_graph(n, seed=seed)
        peeling = full_peel(g)
        removed = set()
        for i, layer_paths in enumerate(peeling.layers):
            for peeled in layer_paths:
                removed |= peeled.nodes
            remaining = set(g.vertices()) - removed
            forest = peeling.forests[i + 1]
            if remaining:
                assert forest == build_clique_forest(g.induced_subgraph(remaining))
            else:
                assert len(forest) == 0

    def test_trees_peel_in_log_layers(self):
        for seed in range(5):
            g = random_tree(200, seed=seed)
            peeling = full_peel(g)
            assert peeling.num_layers() <= math.ceil(math.log2(200)) + 1
