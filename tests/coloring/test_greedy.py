"""Greedy colorings: PEO optimality and the preference-order guarantee."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.coloring import PaletteExhaustedError, PathBags, peo_greedy_coloring, preference_greedy
from repro.graphs import (
    clique_number,
    complete_graph,
    is_proper_coloring,
    num_colors,
    path_graph,
    random_chordal_graph,
)


class TestPEOGreedy:
    def test_path(self):
        g = path_graph(6)
        coloring = peo_greedy_coloring(g)
        assert is_proper_coloring(g, coloring)
        assert num_colors(coloring) == 2

    def test_complete(self):
        coloring = peo_greedy_coloring(complete_graph(5))
        assert num_colors(coloring) == 5

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(1, 40))
    def test_always_optimal_on_chordal(self, seed, n):
        g = random_chordal_graph(n, seed=seed)
        coloring = peo_greedy_coloring(g)
        assert is_proper_coloring(g, coloring)
        assert num_colors(coloring) == clique_number(g)


class TestPreferenceGreedy:
    def path_instance(self, n):
        g = path_graph(n)
        bags = PathBags([{i, i + 1} for i in range(n - 1)])
        return g, bags

    def test_basic(self):
        g, bags = self.path_instance(6)
        coloring = preference_greedy(g, bags, palette=[1, 2, 3])
        assert is_proper_coloring(g, coloring)
        assert set(coloring.values()) <= {1, 2}

    def test_preferred_colors_used_first(self):
        g, bags = self.path_instance(6)
        coloring = preference_greedy(g, bags, palette=[1, 2, 7, 9], preferred=[9, 7])
        assert is_proper_coloring(g, coloring)
        # chi = 2, so only the first two preference entries appear
        assert set(coloring.values()) <= {9, 7}

    def test_fixed_respected(self):
        g, bags = self.path_instance(5)
        coloring = preference_greedy(g, bags, [1, 2, 3], fixed={0: 3})
        assert coloring[0] == 3
        assert is_proper_coloring(g, coloring)

    def test_fixed_outside_palette_rejected(self):
        g, bags = self.path_instance(4)
        with pytest.raises(ValueError):
            preference_greedy(g, bags, [1, 2], fixed={0: 9})

    def test_palette_exhaustion(self):
        g = complete_graph(3)
        bags = PathBags([{0, 1, 2}])
        with pytest.raises(PaletteExhaustedError):
            preference_greedy(g, bags, palette=[1, 2])

    def test_uses_at_most_max_bag_colors(self):
        """The chi-prefix property the relay morph depends on."""
        import random

        from tests.coloring.test_extension import long_interval_graph, path_bags_of

        for seed in range(6):
            g = long_interval_graph(50, seed=seed)
            bags = path_bags_of(g)
            chi = bags.max_bag_size()
            palette = list(range(1, chi + 4))
            preferred = [chi + 3, chi + 2]
            coloring = preference_greedy(g, bags, palette, preferred=preferred)
            used = set(coloring.values())
            prefix = (preferred + [c for c in sorted(palette) if c not in preferred])[:chi]
            assert used <= set(prefix)
