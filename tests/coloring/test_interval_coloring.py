"""ColIntGraph: the (1 + 1/k)-approximation interval coloring."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.coloring import col_int_graph, color_interval_component
from repro.coloring.decomposition import PathBags
from repro.cliquetree import clique_paths_of_interval_graph
from repro.graphs import (
    Graph,
    is_proper_coloring,
    num_colors,
    path_graph,
    random_interval_graph,
)
from repro.localmodel import log_star
from tests.coloring.test_extension import long_interval_graph


def chi_of(bags_list):
    return max(PathBags(p).max_bag_size() for p in bags_list)


class TestColorComponent:
    def test_empty(self):
        from repro.coloring.interval_coloring import IntervalColoringResult

        res = color_interval_component(Graph(), PathBags([]), k=3)
        assert res.coloring == {}
        assert res.rounds == 0

    def test_small_path(self):
        g = path_graph(8)
        (path,) = clique_paths_of_interval_graph(g)
        res = color_interval_component(g, PathBags(path), k=3)
        assert is_proper_coloring(g, res.coloring)
        assert res.num_colors() <= 3  # chi=2, (1+1/3)*2+1 floor = 3

    def test_long_path_uses_morph(self):
        g = path_graph(600)
        (path,) = clique_paths_of_interval_graph(g)
        res = color_interval_component(g, PathBags(path), k=2)
        assert is_proper_coloring(g, res.coloring)
        assert res.num_colors() <= 2 + 2 // 2 + 1
        assert res.rounds > 0

    def test_invalid_k(self):
        g = path_graph(4)
        (path,) = clique_paths_of_interval_graph(g)
        with pytest.raises(ValueError):
            color_interval_component(g, PathBags(path), k=0)


class TestColIntGraph:
    def test_approximation_guarantee(self):
        for seed in range(8):
            g = long_interval_graph(150, seed=seed)
            for k in (1, 2, 4):
                res = col_int_graph(g, k)
                assert is_proper_coloring(g, res.coloring)
                chi = chi_of(clique_paths_of_interval_graph(g))
                assert res.num_colors() <= chi + chi // k + 1

    def test_disconnected(self):
        g = random_interval_graph(60, seed=1, max_length=0.05)
        res = col_int_graph(g, k=3)
        assert is_proper_coloring(g, res.coloring)
        assert set(res.coloring) == set(g.vertices())

    def test_round_scaling_in_k(self):
        """Rounds grow roughly linearly with k at fixed n (O(k log* n))."""
        g = long_interval_graph(400, seed=3)
        r2 = col_int_graph(g, 2).rounds
        r8 = col_int_graph(g, 8).rounds
        assert r2 <= r8 <= 12 * r2

    def test_round_scaling_in_n(self):
        """Rounds grow like log* n at fixed k: nearly flat."""
        small = col_int_graph(long_interval_graph(120, seed=5), 3).rounds
        large = col_int_graph(long_interval_graph(900, seed=5), 3).rounds
        assert large <= small * (log_star(900) + 2)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 5_000), n=st.integers(5, 120), k=st.integers(1, 5))
def test_col_int_graph_property(seed, n, k):
    g = random_interval_graph(n, seed=seed, max_length=0.15)
    res = col_int_graph(g, k)
    assert is_proper_coloring(g, res.coloring)
    chi = chi_of(clique_paths_of_interval_graph(g))
    assert res.num_colors() <= chi + chi // k + 1
