"""The extension morph on decompositions the peeling actually produces.

The other extension tests use clique paths of standalone interval graphs;
the algorithm's real inputs are *restricted* paths (bags = parent cliques
intersected with the surviving layer) extended by attachment bags.  This
suite replays that exact usage on random chordal graphs and checks the
Lemma 9/10 contract on every instance the peeling generates.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.coloring import (
    ColoringParameters,
    PathBags,
    color_chordal_graph,
    conflict_boundary,
    extend_path_coloring,
)
from repro.coloring.extension import MorphError
from repro.graphs import is_proper_coloring, random_chordal_graph


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 5_000), n=st.integers(8, 45))
def test_morph_on_lemma8_instances(seed, n):
    """For every peeled path with a boundary, rebuild the Lemma 8
    decomposition and run a fresh two-boundary extension with random
    (proper) boundary colorings -- the palette of Theorem 3 must always
    suffice."""
    rng = random.Random(seed)
    g = random_chordal_graph(n, seed=seed)
    result = color_chordal_graph(g, k=2)
    palette = list(range(1, result.palette_size + 1))
    peeling = result.peeling

    for layer_paths in peeling.layers:
        for peeled in layer_paths:
            w_prime = conflict_boundary(g, peeling, peeled)
            if not w_prime:
                continue
            members = set(peeled.nodes) | w_prime
            path = peeled.path.oriented()
            bags_list = []
            if path.left_attachment:
                bags_list.append(path.left_attachment & members)
            bags_list.extend(c & members for c in path.cliques)
            if path.right_attachment:
                bags_list.append(path.right_attachment & members)
            bags = PathBags(bags_list)
            sub = g.induced_subgraph(bags.vertices())
            bags.validate(sub)  # Lemma 8: a valid clique path decomposition

            def random_boundary(att):
                if att is None:
                    return None
                vertices = sorted((att & members))
                if not vertices:
                    return None
                colors = rng.sample(palette, len(vertices))
                return dict(zip(vertices, colors))

            fixed_left = random_boundary(path.left_attachment)
            fixed_right = random_boundary(path.right_attachment)
            try:
                coloring = extend_path_coloring(
                    sub, bags, palette,
                    fixed_left=fixed_left, fixed_right=fixed_right,
                )
            except MorphError:
                # permissible only when both boundaries are fixed and the
                # path is short -- the real algorithm never faces this
                # because internal paths are peeled at diameter >=
                # 2*recolor_distance + 4 under from_k(2) parameters;
                # random re-colorings here may demand more relay room.
                assert fixed_left and fixed_right
                continue
            assert is_proper_coloring(sub, coloring)
            for fixed in (fixed_left or {}), (fixed_right or {}):
                for v, c in fixed.items():
                    assert coloring[v] == c
            assert set(coloring.values()) <= set(palette)
