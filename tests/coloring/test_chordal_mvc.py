"""Algorithm 1: (1 + eps)-approximation MVC on chordal graphs (Theorem 3)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.coloring.chordal_mvc import color_chordal_graph
from repro.graphs import (
    Graph,
    NotChordalError,
    caterpillar,
    clique_number,
    complete_graph,
    cycle_graph,
    is_proper_coloring,
    paper_example_graph,
    path_graph,
    random_chordal_graph,
    random_interval_graph,
    random_k_tree,
    random_tree,
)


def check_result(graph, result):
    assert is_proper_coloring(graph, result.coloring)
    chi = clique_number(graph)
    assert result.chi == chi
    bound = chi + chi // result.parameters.k + 1
    assert result.num_colors() <= bound, (
        f"{result.num_colors()} colors > bound {bound} (chi={chi})"
    )


class TestBasics:
    def test_requires_exactly_one_parameter(self):
        g = path_graph(4)
        with pytest.raises(ValueError):
            color_chordal_graph(g)
        with pytest.raises(ValueError):
            color_chordal_graph(g, epsilon=0.5, k=4)

    def test_rejects_non_chordal(self):
        with pytest.raises(NotChordalError):
            color_chordal_graph(cycle_graph(6), k=2)

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            color_chordal_graph(path_graph(3), epsilon=0.0)

    def test_empty_graph(self):
        result = color_chordal_graph(Graph(), k=2)
        assert result.coloring == {}
        assert result.chi == 0

    def test_single_vertex(self):
        g = Graph(vertices=[7])
        result = color_chordal_graph(g, k=2)
        assert result.coloring.keys() == {7}


class TestFamilies:
    def test_paths(self):
        for n in (1, 2, 10, 200):
            g = path_graph(n)
            check_result(g, color_chordal_graph(g, k=3))

    def test_complete_graphs(self):
        for n in (2, 5, 12):
            g = complete_graph(n)
            result = color_chordal_graph(g, k=3)
            check_result(g, result)
            assert result.num_colors() == n  # optimal: one bag, greedy

    def test_trees(self):
        for seed in range(5):
            g = random_tree(120, seed=seed)
            check_result(g, color_chordal_graph(g, k=2))

    def test_caterpillar(self):
        g = caterpillar(spine=60, legs_per_vertex=3)
        check_result(g, color_chordal_graph(g, k=2))

    def test_paper_example(self):
        g = paper_example_graph()
        result = color_chordal_graph(g, k=2)
        check_result(g, result)

    def test_k_trees(self):
        for seed in range(4):
            g = random_k_tree(80, 4, seed=seed)
            check_result(g, color_chordal_graph(g, k=3))

    def test_interval_inputs(self):
        for seed in range(4):
            g = random_interval_graph(60, seed=seed, max_length=0.1)
            check_result(g, color_chordal_graph(g, k=2))

    def test_epsilon_interface(self):
        g = random_chordal_graph(50, seed=11)
        result = color_chordal_graph(g, epsilon=0.5)
        assert result.parameters.k == 4
        check_result(g, result)

    def test_theorem3_bound_with_large_chi(self):
        """For eps > 2/chi the bound (1+eps)chi of Theorem 3 holds."""
        g = random_k_tree(100, 9, seed=0)  # chi = 10
        chi = clique_number(g)
        k = 4  # eps = 1/2 > 2/10
        result = color_chordal_graph(g, k=k)
        check_result(g, result)
        assert result.num_colors() <= (1 + 2.0 / k) * chi


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(1, 45), k=st.integers(1, 5))
def test_algorithm1_property(seed, n, k):
    g = random_chordal_graph(n, seed=seed)
    result = color_chordal_graph(g, k=k)
    check_result(g, result)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 5_000), n=st.integers(50, 120))
def test_algorithm1_on_larger_sparse_graphs(seed, n):
    g = random_chordal_graph(n, seed=seed, tree_size=n)
    result = color_chordal_graph(g, k=2)
    check_result(g, result)
