"""Internals of the color correction phase (Lemma 10 / CorrectChildren)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.coloring import color_chordal_graph, conflict_boundary
from repro.graphs import (
    caterpillar,
    is_proper_coloring,
    paper_example_graph,
    random_chordal_graph,
)


class TestConflictBoundary:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 5_000), n=st.integers(5, 40))
    def test_w_prime_subset_of_attachments(self, seed, n):
        """Lemma 8: W' lives inside the attachment cliques C_s/C_e."""
        g = random_chordal_graph(n, seed=seed)
        result = color_chordal_graph(g, k=1)
        peeling = result.peeling
        for layer_paths in peeling.layers:
            for peeled in layer_paths:
                w_prime = conflict_boundary(g, peeling, peeled)
                allowed = set()
                for att in peeled.attachments:
                    allowed |= att
                assert w_prime <= allowed

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 5_000), n=st.integers(5, 40))
    def test_w_prime_in_higher_layers(self, seed, n):
        g = random_chordal_graph(n, seed=seed)
        result = color_chordal_graph(g, k=1)
        peeling = result.peeling
        for layer_paths in peeling.layers:
            for peeled in layer_paths:
                for u in conflict_boundary(g, peeling, peeled):
                    assert peeling.layer_of[u] > peeled.layer

    def test_whole_component_paths_have_empty_boundary(self):
        g = caterpillar(spine=10, legs_per_vertex=0)  # just a path
        result = color_chordal_graph(g, k=1)
        (layer,) = result.peeling.layers
        for peeled in layer:
            assert conflict_boundary(g, result.peeling, peeled) == set()


class TestCorrectionLocality:
    def test_deep_interior_keeps_phase2_colors(self):
        """On a long caterpillar, correction must not touch nodes far from
        every attachment clique (the paper's distance-(k+3) locality)."""
        from repro.coloring.chordal_mvc import correct_path_colors
        from repro.coloring.interval_coloring import color_interval_component

        g = caterpillar(spine=2000, legs_per_vertex=1)
        result = color_chordal_graph(g, k=1)
        assert is_proper_coloring(g, result.coloring)
        # rebuild phase-2 colors for the largest first-layer path and diff
        peeling = result.peeling
        big = max(peeling.layers[0], key=lambda p: len(p.nodes))
        sub = g.induced_subgraph(big.nodes)
        phase2 = color_interval_component(
            sub, big.layer_bags(), 1,
            palette=list(range(1, result.palette_size + 1)),
        ).coloring
        changed = [v for v in big.nodes if result.coloring[v] != phase2[v]]
        d = result.parameters.recolor_distance
        boundary = set()
        for att in big.attachments:
            boundary |= att
        if boundary:
            for v in changed:
                dist = min(
                    (g.distance(v, u) or 10**9) for u in boundary
                )
                # every recolored node sits within the recoloring zone
                # (zone width: one cut block past the recolor distance)
                assert dist <= 4 * d, f"node {v} recolored at distance {dist}"


class TestPaletteAdherence:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 5_000), n=st.integers(2, 45), k=st.integers(1, 4))
    def test_colors_stay_inside_global_palette(self, seed, n, k):
        g = random_chordal_graph(n, seed=seed)
        result = color_chordal_graph(g, k=k)
        assert set(result.coloring.values()) <= set(
            range(1, result.palette_size + 1)
        )

    def test_paper_example_palette(self):
        g = paper_example_graph()
        result = color_chordal_graph(g, k=2)
        assert set(result.coloring.values()) <= {1, 2, 3, 4, 5}
