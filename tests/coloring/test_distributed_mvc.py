"""Algorithm 2-4: distributed behavior -- local decisions, parents, rounds."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.coloring.chordal_mvc import color_chordal_graph
from repro.coloring.distributed_mvc import (
    distributed_color_chordal,
    local_layer_decision,
)
from repro.coloring.parameters import ColoringParameters
from repro.graphs import (
    clique_number,
    is_proper_coloring,
    paper_example_graph,
    path_graph,
    random_chordal_graph,
    random_tree,
)


class TestLocalDecisions:
    """Algorithm 3's per-node rule agrees with the centralized peeling
    (the coherence claim of Section 3)."""

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 3_000), n=st.integers(2, 26))
    def test_agreement_with_centralized(self, seed, n):
        g = random_chordal_graph(n, seed=seed)
        params = ColoringParameters.from_k(1)
        result = color_chordal_graph(g, k=1)
        peeling = result.peeling
        current = g.copy()
        for i in range(1, peeling.num_layers() + 1):
            layer = peeling.nodes_of_layer(i)
            for v in sorted(current.vertices()):
                assert local_layer_decision(current, v, params) == (v in layer), (
                    f"node {v} disagrees at iteration {i}"
                )
            current.remove_vertices(layer)

    def test_paper_example_first_layer(self):
        g = paper_example_graph()
        params = ColoringParameters.from_k(1)
        result = color_chordal_graph(g, k=1)
        layer1 = result.peeling.nodes_of_layer(1)
        for v in g.vertices():
            assert local_layer_decision(g, v, params) == (v in layer1)


class TestParents:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 3_000), n=st.integers(2, 30))
    def test_corollary2_parents_in_higher_layers(self, seed, n):
        g = random_chordal_graph(n, seed=seed)
        report = distributed_color_chordal(g, k=2)
        layer_of = report.result.peeling.layer_of
        for v, parent in report.parents.items():
            if parent is not None:
                assert layer_of[parent] > layer_of[v]

    def test_parent_within_recolor_distance(self):
        g = random_chordal_graph(40, seed=5)
        report = distributed_color_chordal(g, k=1)
        d = report.result.parameters.recolor_distance
        for v, parent in report.parents.items():
            if parent is not None:
                assert g.distance(v, parent) <= d


class TestRounds:
    def test_same_output_as_centralized(self):
        g = random_chordal_graph(60, seed=9)
        central = color_chordal_graph(g, k=2)
        report = distributed_color_chordal(g, k=2)
        assert report.coloring == central.coloring

    def test_round_structure(self):
        g = random_chordal_graph(80, seed=3, tree_size=80)
        report = distributed_color_chordal(g, k=2)
        assert is_proper_coloring(g, report.coloring)
        params = report.result.parameters
        layers = report.result.peeling.num_layers()
        assert report.pruning_rounds == layers * params.collect_radius
        assert report.total_rounds >= report.pruning_rounds
        # finish times respect the phase ordering
        for v, t in report.finish_time.items():
            layer = report.result.peeling.layer_of[v]
            assert t >= report.coloring_finish[layer - 1]

    def test_rounds_scale_with_log_n(self):
        """Theorem 4 shape: rounds ~ k * layers = O(k log n)."""
        import random as _random

        small = distributed_color_chordal(random_tree(60, seed=1), k=2)
        large = distributed_color_chordal(random_tree(2000, seed=1), k=2)
        layers_small = small.result.peeling.num_layers()
        layers_large = large.result.peeling.num_layers()
        assert layers_large <= math.ceil(math.log2(2000)) + 1
        # rounds grow with layers, not with n directly
        ratio_rounds = large.total_rounds / max(1, small.total_rounds)
        ratio_n = 2000 / 60
        assert ratio_rounds < ratio_n / 2

    def test_empty_graph(self):
        from repro.graphs import Graph

        report = distributed_color_chordal(Graph(), k=2)
        assert report.total_rounds == 0
