"""Parameter derivations: k, distances, palettes, morph budgets."""

import pytest

from repro.coloring import (
    ColoringParameters,
    morph_cut_budget,
    required_morph_distance,
)


class TestColoringParameters:
    def test_from_epsilon(self):
        params = ColoringParameters.from_epsilon(0.5)
        assert params.k == 4
        assert params.epsilon == 0.5

    def test_from_epsilon_rounding(self):
        assert ColoringParameters.from_epsilon(0.3).k == 7

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            ColoringParameters.from_epsilon(0)
        with pytest.raises(ValueError):
            ColoringParameters.from_epsilon(-1)
        with pytest.raises(ValueError):
            ColoringParameters.from_k(0)
        with pytest.raises(ValueError):
            ColoringParameters.paper_constants(0)

    def test_derived_distances_scale_linearly_in_k(self):
        p1 = ColoringParameters.from_k(1)
        p8 = ColoringParameters.from_k(8)
        assert p8.recolor_distance < 10 * p1.recolor_distance
        assert p8.internal_threshold == 2 * p8.recolor_distance + 4
        assert p8.collect_radius == 3 * p8.internal_threshold

    def test_paper_constants(self):
        p = ColoringParameters.paper_constants(5)
        assert p.recolor_distance == 8  # k + 3
        assert p.internal_threshold == 15  # 3k
        assert p.collect_radius == 50  # 10k

    def test_palette_size(self):
        p = ColoringParameters.from_k(4)
        # floor((1 + 1/4) chi) + 1
        assert p.palette_size(8) == 11
        assert p.palette_size(3) == 4
        assert p.palette_size(0) == 1

    def test_minimum_spares_at_least_one(self):
        for k in (1, 2, 8):
            p = ColoringParameters.from_k(k)
            for chi in (0, 1, 5, 100):
                assert p.minimum_spares(chi) >= 1


class TestMorphBudgets:
    def test_cut_budget_shrinks_with_spares(self):
        assert morph_cut_budget(20, 1) > morph_cut_budget(20, 5)

    def test_cut_budget_worst_case_bound(self):
        """With the global palette's spares, cuts stay <= 4k + 5."""
        for k in (1, 2, 4, 8):
            p = ColoringParameters.from_k(k)
            for chi in range(1, 200):
                cuts = morph_cut_budget(chi, p.minimum_spares(chi))
                assert cuts <= 4 * k + 5

    def test_required_distance_consistent(self):
        assert required_morph_distance(10, 2) == 2 * morph_cut_budget(10, 2) + 6

    def test_zero_spares_rejected(self):
        with pytest.raises(ValueError):
            morph_cut_budget(5, 0)
