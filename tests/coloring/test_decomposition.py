"""PathBags: positions, restriction, cut chains, validation."""

import pytest

from repro.coloring import PathBags
from repro.graphs import Graph, path_graph


def simple_bags():
    return PathBags([{1, 2}, {2, 3}, {3, 4}, {4, 5}])


class TestPositions:
    def test_first_last(self):
        bags = simple_bags()
        assert bags.first(2) == 0 and bags.last(2) == 1
        assert bags.first(4) == 2 and bags.last(4) == 3

    def test_vertex_order(self):
        bags = simple_bags()
        assert bags.vertex_order() == [1, 2, 3, 4, 5]

    def test_alive_and_right(self):
        bags = simple_bags()
        assert set(bags.alive_at_or_after(2)) == {3, 4, 5}
        assert set(bags.strictly_right_of(1)) == {4, 5}

    def test_contains(self):
        bags = simple_bags()
        assert 3 in bags
        assert 99 not in bags

    def test_empty_bags_dropped(self):
        bags = PathBags([{1}, set(), {2}])
        assert len(bags) == 2

    def test_max_bag_size(self):
        assert simple_bags().max_bag_size() == 2
        assert PathBags([]).max_bag_size() == 0


class TestValidation:
    def test_valid_path_decomposition(self):
        g = path_graph(5)
        bags = PathBags([{0, 1}, {1, 2}, {2, 3}, {3, 4}])
        bags.validate(g)

    def test_missing_edge_detected(self):
        g = path_graph(3)
        with pytest.raises(ValueError, match="no bag"):
            PathBags([{0, 1}, {2}]).validate(g)

    def test_non_clique_bag_detected(self):
        g = Graph(vertices=[0, 1, 2], edges=[(0, 1)])
        with pytest.raises(ValueError, match="not a clique"):
            PathBags([{0, 1, 2}]).validate(g)

    def test_broken_run_detected(self):
        g = Graph(vertices=[0, 1, 2], edges=[(0, 1), (1, 2)])
        with pytest.raises(ValueError, match="not consecutive"):
            PathBags([{0, 1}, {2, 1}, {0}]).validate(
                Graph(vertices=[0, 1, 2], edges=[(0, 1), (1, 2)])
            )

    def test_coverage_mismatch_detected(self):
        g = path_graph(3)
        with pytest.raises(ValueError, match="cover"):
            PathBags([{0, 1}]).validate(g)


class TestDerivation:
    def test_restriction(self):
        bags = simple_bags()
        sub = bags.restricted_to({2, 3, 4})
        # bags become [{2}, {2,3}, {3,4}, {4}]: all non-empty survive
        assert len(sub) == 4
        assert sub.vertices() == [2, 3, 4]

    def test_restriction_keeps_runs_consecutive(self):
        bags = PathBags([{1, 9}, {2, 9}, {3, 9}])
        sub = bags.restricted_to({1, 3, 9})
        # middle bag becomes {9}; 9's run must still be consecutive
        g = Graph(vertices=[1, 3, 9], edges=[(1, 9), (3, 9)])
        sub.validate(g)

    def test_subrange(self):
        bags = simple_bags()
        sub = bags.subrange(1, 2)
        assert sub.vertices() == [2, 3, 4]

    def test_reversed(self):
        bags = simple_bags()
        rev = bags.reversed_()
        assert rev.first(5) == 0
        assert rev.last(1) == 3

    def test_extended(self):
        bags = simple_bags()
        ext = bags.extended(left={0, 1}, right={5, 6})
        assert len(ext) == 6
        assert ext.first(0) == 0
        assert ext.last(6) == 5


class TestCutChains:
    def test_disjoint_chain_on_path(self):
        g = path_graph(10)
        bags = PathBags([{i, i + 1} for i in range(9)])
        cuts = bags.disjoint_cut_positions(0, 8)
        # consecutive cuts share no vertex
        for a, b in zip(cuts, cuts[1:]):
            assert not (bags.bags[a] & bags.bags[b])

    def test_avoid_seed(self):
        bags = PathBags([{1, 2}, {2, 3}, {3, 4}, {4, 5}])
        cuts = bags.disjoint_cut_positions(1, 3, avoid={1, 2})
        assert cuts  # some cut exists
        assert not (bags.bags[cuts[0]] & {1, 2})

    def test_empty_range(self):
        bags = simple_bags()
        assert bags.disjoint_cut_positions(3, 1) == []
