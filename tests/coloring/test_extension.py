"""The constructive recoloring lemma (extension morph) -- Lemma 9's stand-in."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.cliquetree import clique_paths_of_interval_graph
from repro.coloring.decomposition import PathBags
from repro.coloring.extension import (
    MorphError,
    complete_permutation,
    cycle_moves,
    extend_path_coloring,
)
from repro.coloring.greedy import preference_greedy
from repro.coloring.parameters import required_morph_distance
from repro.graphs import (
    Graph,
    is_proper_coloring,
    path_graph,
    random_interval_graph,
)


def path_bags_of(graph):
    """Clique path of a connected interval graph as PathBags."""
    (path,) = clique_paths_of_interval_graph(graph)
    return PathBags(path)


def long_interval_graph(n, seed, max_length=0.02):
    """A connected, elongated interval graph (large diameter)."""
    rng = random.Random(seed)
    intervals = {}
    x = 0.0
    for v in range(n):
        length = rng.uniform(1.0, 1.5)  # always longer than the next step
        intervals[v] = (x, x + length)
        x += rng.uniform(0.1, 0.9)
    from repro.graphs import interval_graph_from_intervals

    return interval_graph_from_intervals(intervals)


class TestPermutationHelpers:
    def test_complete_permutation_identity(self):
        sigma = complete_permutation({}, [1, 2, 3])
        assert sigma == {1: 1, 2: 2, 3: 3}

    def test_complete_permutation_extends(self):
        sigma = complete_permutation({1: 2}, [1, 2, 3])
        assert sigma[1] == 2
        assert sorted(sigma.values()) == [1, 2, 3]

    def test_rejects_non_injective(self):
        with pytest.raises(ValueError):
            complete_permutation({1: 3, 2: 3}, [1, 2, 3])

    def test_rejects_outside_palette(self):
        with pytest.raises(ValueError):
            complete_permutation({1: 9}, [1, 2, 3])

    def test_cycle_moves_transposition(self):
        moves = cycle_moves({1: 2, 2: 1, 3: 3}, relay=-1)
        assert len(moves) == 1
        assert moves[0] == [(2, -1), (1, 2), (-1, 1)]

    def test_cycle_moves_three_cycle(self):
        moves = cycle_moves({1: 2, 2: 3, 3: 1}, relay=-1)
        (seq,) = moves
        assert seq == [(3, -1), (2, 3), (1, 2), (-1, 1)]


class TestExtendOnPaths:
    def test_no_boundaries_is_greedy(self):
        g = path_graph(10)
        bags = path_bags_of(g)
        coloring = extend_path_coloring(g, bags, palette=[1, 2, 3])
        assert is_proper_coloring(g, coloring)
        assert set(coloring.values()) <= {1, 2}

    def test_left_boundary_respected(self):
        g = path_graph(10)
        bags = path_bags_of(g)
        fixed = {0: 3}
        coloring = extend_path_coloring(g, bags, [1, 2, 3], fixed_left=fixed)
        assert is_proper_coloring(g, coloring)
        assert coloring[0] == 3

    def test_right_boundary_respected(self):
        g = path_graph(10)
        bags = path_bags_of(g)
        fixed = {9: 3}
        coloring = extend_path_coloring(g, bags, [1, 2, 3], fixed_right=fixed)
        assert is_proper_coloring(g, coloring)
        assert coloring[9] == 3

    def test_both_boundaries_on_long_path(self):
        g = path_graph(30)
        bags = path_bags_of(g)
        coloring = extend_path_coloring(
            g,
            bags,
            [1, 2, 3],
            fixed_left={0: 2, 1: 3},
            fixed_right={28: 3, 29: 2},
        )
        assert is_proper_coloring(g, coloring)
        assert coloring[0] == 2 and coloring[1] == 3
        assert coloring[28] == 3 and coloring[29] == 2
        assert set(coloring.values()) <= {1, 2, 3}

    def test_improper_boundary_rejected(self):
        g = path_graph(10)
        bags = path_bags_of(g)
        with pytest.raises(ValueError):
            extend_path_coloring(
                g, bags, [1, 2, 3], fixed_left={0: 1, 1: 1}
            )

    def test_short_path_raises_morph_error(self):
        g = path_graph(3)
        bags = path_bags_of(g)
        with pytest.raises(MorphError):
            extend_path_coloring(
                g, bags, [1, 2], fixed_left={0: 1}, fixed_right={2: 2}
            )


class TestExtendOnIntervalGraphs:
    def _boundary_coloring(self, graph, bag, palette, rng):
        members = sorted(bag)
        colors = rng.sample(sorted(palette), len(members))
        return dict(zip(members, colors))

    def test_random_instances(self):
        rng = random.Random(42)
        for seed in range(12):
            g = long_interval_graph(60, seed=seed)
            bags = path_bags_of(g)
            chi = bags.max_bag_size()
            palette = list(range(1, chi + 2))  # one spare
            fixed_left = self._boundary_coloring(g, bags.bags[0], palette, rng)
            fixed_right = self._boundary_coloring(g, bags.bags[-1], palette, rng)
            coloring = extend_path_coloring(
                g, bags, palette, fixed_left=fixed_left, fixed_right=fixed_right
            )
            assert is_proper_coloring(g, coloring)
            for v, c in {**fixed_left, **fixed_right}.items():
                assert coloring[v] == c
            assert set(coloring.values()) <= set(palette)

    def test_adversarial_high_boundary_colors(self):
        """Boundary colors disjoint from [1..chi]: the preference trick."""
        g = path_graph(40)
        bags = path_bags_of(g)
        palette = [1, 2, 3, 90, 91]
        coloring = extend_path_coloring(
            g,
            bags,
            palette,
            fixed_left={0: 90, 1: 91},
            fixed_right={38: 91, 39: 90},
        )
        assert is_proper_coloring(g, coloring)
        assert coloring[0] == 90 and coloring[39] == 90

    def test_distance_bound_sufficient(self):
        """required_morph_distance bags always suffice on a path."""
        chi, spares = 2, 1
        n = required_morph_distance(chi, spares) + 2
        g = path_graph(n)
        bags = path_bags_of(g)
        coloring = extend_path_coloring(
            g,
            bags,
            [1, 2, 3],
            fixed_left={0: 3},
            fixed_right={n - 1: 3},
        )
        assert is_proper_coloring(g, coloring)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(40, 90), spare=st.integers(1, 3))
def test_extension_property(seed, n, spare):
    rng = random.Random(seed)
    g = long_interval_graph(n, seed=seed)
    bags = path_bags_of(g)
    chi = bags.max_bag_size()
    palette = list(range(1, chi + spare + 1))
    left = dict(zip(sorted(bags.bags[0]), rng.sample(palette, len(bags.bags[0]))))
    right = dict(zip(sorted(bags.bags[-1]), rng.sample(palette, len(bags.bags[-1]))))
    coloring = extend_path_coloring(
        g, bags, palette, fixed_left=left, fixed_right=right
    )
    assert is_proper_coloring(g, coloring)
    for v, c in {**left, **right}.items():
        assert coloring[v] == c
    assert set(coloring.values()) <= set(palette)
