"""Message-level fidelity of the pruning decision (Algorithm 3).

The per-node layer decision is elsewhere tested against the centralized
peeling using directly-computed local views.  Here the loop is closed at
the message level: the knowledge each node decides from is obtained by
actually *flooding* for collect_radius rounds on the synchronous
simulator, and the decision function consumes only the gathered ball.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.coloring import (
    ColoringParameters,
    color_chordal_graph,
    local_layer_decision,
    local_layer_decision_from_ball,
    message_level_layer_decisions,
)
from repro.graphs import paper_example_graph, random_chordal_graph
from repro.localmodel import gather_balls


def decisions_from_flooded_balls(current, params):
    """Per-node decisions computed from message-passing ball gathering."""
    balls, rounds = gather_balls(current, params.collect_radius)
    assert rounds == params.collect_radius + 1
    out = {}
    for v, ball in balls.items():
        out[v] = local_layer_decision(ball.as_graph(), v, params)
    return out


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 2_000), n=st.integers(2, 22))
def test_flooded_decisions_match_centralized_layers(seed, n):
    g = random_chordal_graph(n, seed=seed)
    params = ColoringParameters.from_k(1)
    peeling = color_chordal_graph(g, k=1).peeling
    current = g.copy()
    for i in range(1, peeling.num_layers() + 1):
        layer = peeling.nodes_of_layer(i)
        decisions = decisions_from_flooded_balls(current, params)
        for v, joined in decisions.items():
            assert joined == (v in layer), f"node {v} at iteration {i}"
        current.remove_vertices(layer)


def test_paper_example_message_level():
    g = paper_example_graph()
    params = ColoringParameters.from_k(1)
    layer1 = color_chordal_graph(g, k=1).peeling.nodes_of_layer(1)
    decisions = decisions_from_flooded_balls(g, params)
    assert {v for v, joined in decisions.items() if joined} == layer1


@pytest.mark.parametrize("program", ("delta", "reference"))
def test_message_level_helper_matches_flooded_decisions(program):
    """The packaged entry point equals the hand-rolled gather+decide loop."""
    g = random_chordal_graph(20, seed=23)
    params = ColoringParameters.paper_constants(1)
    expected = decisions_from_flooded_balls(g, params)
    decisions, rounds = message_level_layer_decisions(g, params, program=program)
    assert rounds == params.collect_radius + 1
    assert decisions == expected


def test_from_ball_decision_rejects_radius_mismatch():
    g = random_chordal_graph(10, seed=1)
    params = ColoringParameters.paper_constants(1)
    balls, _ = gather_balls(g, params.collect_radius + 1)
    with pytest.raises(ValueError, match="collect_radius"):
        local_layer_decision_from_ball(balls[g.vertices()[0]], params)


def test_from_ball_decision_matches_graph_slice_decision():
    """from-ball == from-global-graph, node by node (Algorithm 3 coherence)."""
    g = random_chordal_graph(18, seed=4)
    params = ColoringParameters.paper_constants(1)
    balls, _ = gather_balls(g, params.collect_radius)
    for v, ball in balls.items():
        assert local_layer_decision_from_ball(ball, params) == (
            local_layer_decision(g, v, params)
        )
