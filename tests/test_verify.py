"""The end-to-end verification module."""

import pytest

from repro.coloring import color_chordal_graph
from repro.graphs import cycle_graph, random_chordal_graph
from repro.mis import chordal_mis
from repro.verify import VerificationReport, verify_coloring_run, verify_mis_run


class TestReportMechanics:
    def test_ok_and_failures(self):
        report = VerificationReport()
        report.add("a", True)
        report.add("b", False, "boom")
        assert not report.ok
        assert [c.name for c in report.failures()] == ["b"]
        with pytest.raises(AssertionError, match="boom"):
            report.raise_if_failed()

    def test_summary_rendering(self):
        report = VerificationReport()
        report.add("something", True, "detail")
        assert "[ok ] something -- detail" in report.summary()


class TestColoringVerification:
    def test_passing_run(self):
        g = random_chordal_graph(60, seed=3)
        result = color_chordal_graph(g, k=2)
        report = verify_coloring_run(g, result)
        assert report.ok, report.summary()

    def test_detects_corrupted_coloring(self):
        g = random_chordal_graph(40, seed=1)
        result = color_chordal_graph(g, k=2)
        u, v = g.edges()[0]
        result.coloring[u] = result.coloring[v]
        report = verify_coloring_run(g, result)
        assert not report.ok
        names = {c.name for c in report.failures()}
        assert "coloring is proper and total" in names

    def test_non_chordal_short_circuits(self):
        g = random_chordal_graph(20, seed=2)
        result = color_chordal_graph(g, k=2)
        report = verify_coloring_run(cycle_graph(6), result)
        assert not report.ok
        assert len(report.checks) == 1


class TestMISVerification:
    def test_passing_run(self):
        g = random_chordal_graph(60, seed=5)
        result = chordal_mis(g, 0.4)
        report = verify_mis_run(g, result)
        assert report.ok, report.summary()

    def test_detects_corrupted_set(self):
        g = random_chordal_graph(40, seed=7)
        result = chordal_mis(g, 0.4)
        u, v = g.edges()[0]
        result.independent_set.update({u, v})
        report = verify_mis_run(g, result)
        assert not report.ok

    def test_detects_undersized_set(self):
        g = random_chordal_graph(40, seed=8)
        result = chordal_mis(g, 0.4)
        result.independent_set.clear()
        report = verify_mis_run(g, result)
        names = {c.name for c in report.failures()}
        assert "size within (1+eps) of alpha (Theorem 7)" in names
