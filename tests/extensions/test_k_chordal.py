"""The l-chordal exploration (Section 9's open question)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.extensions import (
    chordal_with_handles,
    handle_experiment_rows,
    is_l_chordal,
    longest_induced_cycle,
    triangulate_and_color,
)
from repro.graphs import (
    complete_graph,
    cycle_graph,
    is_chordal,
    path_graph,
    random_chordal_graph,
)


class TestInducedCycleSearch:
    def test_forests_have_none(self):
        assert longest_induced_cycle(path_graph(10)) == 0

    def test_cycles_detected_exactly(self):
        for n in (4, 5, 7, 9):
            assert longest_induced_cycle(cycle_graph(n)) == n

    def test_triangles_only_in_chordal(self):
        for seed in range(6):
            g = random_chordal_graph(16, seed=seed)
            assert longest_induced_cycle(g) in (0, 3)

    def test_complete_graph(self):
        assert longest_induced_cycle(complete_graph(5)) == 3

    def test_chords_break_long_cycles(self):
        g = cycle_graph(6)
        g.add_edge(0, 3)
        assert longest_induced_cycle(g) == 4  # two 4-cycles remain

    def test_cap_limits_search(self):
        g = cycle_graph(15)
        assert longest_induced_cycle(g, cap=8) == 0  # cycle longer than cap


class TestLChordality:
    def test_chordal_is_3_chordal(self):
        g = random_chordal_graph(15, seed=1)
        assert is_l_chordal(g, 3)

    def test_c5_is_5_but_not_4_chordal(self):
        g = cycle_graph(5)
        assert is_l_chordal(g, 5)
        assert not is_l_chordal(g, 4)

    def test_l_validation(self):
        with pytest.raises(ValueError):
            is_l_chordal(path_graph(3), 2)


class TestHandleGenerator:
    def test_handles_create_long_induced_cycles(self):
        g = chordal_with_handles(14, handles=2, handle_length=5, seed=0)
        assert not is_chordal(g)
        assert longest_induced_cycle(g, cap=12) >= 6

    def test_zero_handles_stays_chordal(self):
        g = chordal_with_handles(14, handles=0, handle_length=4, seed=1)
        assert is_chordal(g)

    def test_validation(self):
        with pytest.raises(ValueError):
            chordal_with_handles(10, handles=1, handle_length=2)


class TestTriangulateAndColor:
    def test_chordal_instance_has_unit_detour(self):
        g = random_chordal_graph(18, seed=4)
        outcome = triangulate_and_color(g)
        assert outcome.fill_edges == 0
        assert outcome.detour_ratio is not None
        assert outcome.detour_ratio <= 1.5 + 1e-9

    def test_handle_instance_detour_bounded(self):
        g = chordal_with_handles(16, handles=2, handle_length=4, seed=2)
        outcome = triangulate_and_color(g)
        assert outcome.colors >= outcome.chi_true
        # fill is nonzero because the handles are not chordal
        assert outcome.fill_edges >= 1

    def test_large_instance_skips_exact_chi(self):
        g = chordal_with_handles(40, handles=2, handle_length=4, seed=3)
        outcome = triangulate_and_color(g, exact_chi_guard=10)
        assert outcome.chi_true is None
        assert outcome.detour_ratio is None


def test_experiment_rows_shape():
    rows = handle_experiment_rows(handle_lengths=(3, 5), n=14, handles=2, seeds=(0,))
    assert len(rows) == 2
    for length, cycle, fill, worst in rows:
        assert worst is None or worst >= 1.0
