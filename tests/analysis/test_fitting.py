"""Scaling-law fits on synthetic data with known ground truth."""

import math

import pytest

from repro.analysis.fitting import linear_fit, power_law_exponent


class TestLinearFit:
    def test_exact_line_recovered(self):
        xs = [0.0, 1.0, 2.0, 3.0]
        ys = [5.0 + 2.5 * x for x in xs]
        slope, intercept = linear_fit(xs, ys)
        assert slope == pytest.approx(2.5)
        assert intercept == pytest.approx(5.0)

    def test_negative_slope(self):
        slope, intercept = linear_fit([1, 2, 3], [3, 1, -1])
        assert slope == pytest.approx(-2.0)
        assert intercept == pytest.approx(5.0)

    def test_least_squares_averages_noise(self):
        # symmetric perturbation around y = x leaves the fit unchanged
        slope, intercept = linear_fit([1, 2, 3, 4], [1.1, 1.9, 3.1, 3.9])
        assert slope == pytest.approx(0.98, abs=0.05)
        assert intercept == pytest.approx(0.0, abs=0.15)

    def test_two_points_define_the_line(self):
        slope, intercept = linear_fit([1, 3], [10, 20])
        assert slope == pytest.approx(5.0)
        assert intercept == pytest.approx(5.0)

    def test_rejects_mismatched_or_short_input(self):
        with pytest.raises(ValueError):
            linear_fit([1], [2])
        with pytest.raises(ValueError):
            linear_fit([1, 2], [1, 2, 3])

    def test_rejects_degenerate_x(self):
        with pytest.raises(ValueError):
            linear_fit([2, 2, 2], [1, 2, 3])


class TestPowerLawExponent:
    @pytest.mark.parametrize("b", [-1.0, -0.5, 1.0, 2.0])
    def test_recovers_known_exponent(self, b):
        xs = [2.0, 4.0, 8.0, 16.0, 32.0]
        ys = [3.7 * x**b for x in xs]
        assert power_law_exponent(xs, ys) == pytest.approx(b)

    def test_prefactor_does_not_bias_the_exponent(self):
        xs = [1.0, 10.0, 100.0]
        for c in (0.01, 1.0, 1e6):
            assert power_law_exponent(xs, [c * x for x in xs]) == pytest.approx(1.0)

    def test_lower_bound_shape_example(self):
        # the T9 use-case: density gap ~ 0.7 / r should fit exponent ~ -1
        rs = [4, 8, 16, 32, 64]
        gaps = [0.7 / r for r in rs]
        assert power_law_exponent(rs, gaps) == pytest.approx(-1.0)

    def test_log_star_like_series_fits_flat(self):
        # near-constant data fits an exponent near zero
        xs = [10.0, 100.0, 1000.0]
        ys = [5.0, 5.2, 5.3]
        assert abs(power_law_exponent(xs, ys)) < 0.05

    def test_rejects_nonpositive_data(self):
        with pytest.raises(ValueError):
            power_law_exponent([1, -2], [1, 2])
        with pytest.raises(ValueError):
            power_law_exponent([1, 2], [0, 2])

    def test_round_trip_through_log_space(self):
        xs = [3.0, 9.0, 27.0]
        ys = [x**1.5 for x in xs]
        slope, intercept = linear_fit(
            [math.log(x) for x in xs], [math.log(y) for y in ys]
        )
        assert slope == pytest.approx(power_law_exponent(xs, ys))
        assert intercept == pytest.approx(0.0, abs=1e-9)
