"""Experiment runners and table formatting (smoke + shape checks)."""

import pytest

from repro.analysis import (
    GRAPH_FAMILIES,
    format_table,
    format_value,
    lower_bound_rows,
    mvc_approximation_rows,
    mvc_rounds_rows,
    pruning_rows,
)
from repro.analysis.ablations import (
    domination_ablation,
    spares_ablation,
    threshold_ablation,
)
from repro.analysis.report import EXPERIMENTS, run_report


class TestTables:
    def test_format_value(self):
        assert format_value(3) == "3"
        assert format_value(3.14159) == "3.142"
        assert format_value("x") == "x"

    def test_format_table_alignment(self):
        out = format_table(["a", "long"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert all(len(l) == len(lines[0]) or True for l in lines)
        assert "333" in lines[3]

    def test_empty_rows(self):
        out = format_table(["h"], [])
        assert out.splitlines()[0] == "h"


class TestExperimentRows:
    def test_families_registry(self):
        assert set(GRAPH_FAMILIES) == {"tree", "interval", "k-tree(3)", "chordal"}
        for make in GRAPH_FAMILIES.values():
            g = make(30, 0)
            assert len(g) >= 1

    def test_mvc_approximation_rows_within_bounds(self):
        rows = mvc_approximation_rows(eps_values=(1.0,), n=40, seeds=(0,))
        for family, eps, chi, colors, ratio, bound in rows:
            assert ratio <= bound + 1e-9

    def test_mvc_rounds_rows_monotone_layers(self):
        rows = mvc_rounds_rows(ns=(50, 200), epsilon=1.0)
        assert rows[0][0] == 50 and rows[1][0] == 200
        assert rows[0][1] <= rows[1][1] + 1  # layers roughly grow

    def test_lower_bound_rows_decay(self):
        rows = lower_bound_rows(r_values=(4, 32), n=1500, trials=4)
        assert rows[0][3] > rows[1][3]

    def test_pruning_rows_under_bound(self):
        for n, layers, bound in pruning_rows(ns=(50, 100)):
            assert layers <= bound


class TestAblations:
    def test_threshold_rows(self):
        rows = threshold_ablation(multipliers=(0.5, 1.0), n=80)
        assert len(rows) == 2
        assert rows[0][2] <= rows[1][2]  # smaller threshold, <= layers

    def test_spares_rows_fields(self):
        rows = spares_ablation(chi_values=(8,), k_values=(1, 4))
        for chi, k, palette, spares, cuts in rows:
            assert palette == chi + chi // k + 1
            assert spares >= 1 and cuts >= 1

    def test_domination_rows(self):
        rows = domination_ablation(n=120, seeds=(0,))
        names = {r[0] for r in rows}
        assert names == {"random lengths", "unit chain"}


class TestReport:
    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "T3", "T4", "T5/T6", "T7/T8", "T9", "L6", "B1", "F1-F6", "X1",
            "A1-A3", "K1", "C1", "D1", "K2", "F7", "S1",
        }

    def test_subset_run(self):
        out = run_report(["L6"])
        assert "Lemma 6" in out
        assert "Theorem 3" not in out
