"""Table formatting: alignment, float policy, and round-trips."""

import re

from repro.analysis.tables import format_table, format_value


def parse_table(text):
    """Invert ``format_table``: split on the 2-space column gutter."""
    lines = text.splitlines()
    headers = re.split(r"\s{2,}", lines[0].strip())
    rows = [re.split(r"\s{2,}", line.strip()) for line in lines[2:]]
    return headers, rows


class TestFormatValue:
    def test_ints_and_strings_verbatim(self):
        assert format_value(42) == "42"
        assert format_value("k-tree(3)") == "k-tree(3)"
        assert format_value(None) == "None"

    def test_floats_use_four_significant_digits(self):
        assert format_value(3.14159) == "3.142"
        assert format_value(0.6591) == "0.6591"
        assert format_value(1.0) == "1"
        assert format_value(1234.5) == "1234"

    def test_bools_render_like_python(self):
        # bool is not float, so it takes the str() branch
        assert format_value(True) == "True"


class TestFormatTable:
    def test_round_trip_preserves_every_cell(self):
        headers = ["family", "eps", "worst ratio"]
        rows = [("tree", 0.5, 1.0), ("interval", 0.25, 1.196), ("chordal", 1, 2)]
        parsed_headers, parsed_rows = parse_table(format_table(headers, rows))
        assert parsed_headers == headers
        expected = [[format_value(c) for c in row] for row in rows]
        assert parsed_rows == expected

    def test_columns_are_aligned(self):
        out = format_table(["a", "bb"], [[1, 2], [333, 44444]])
        lines = out.splitlines()
        # the separator line spans each column's width exactly
        assert lines[1] == "---  -----"
        # every data line pads to the full column width
        widths = [len(part) for part in lines[1].split("  ")]
        for line in lines[2:]:
            cells = [line[0:widths[0]], line[widths[0] + 2:]]
            assert len(cells[0]) == widths[0]

    def test_wide_cells_stretch_their_column(self):
        out = format_table(["h"], [["wider-than-header"]])
        headers, rows = parse_table(out)
        assert rows == [["wider-than-header"]]
        assert out.splitlines()[1] == "-" * len("wider-than-header")

    def test_empty_rows_keep_header_and_rule(self):
        out = format_table(["x", "y"], [])
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("x")
        assert set(lines[1]) <= {"-", " "}

    def test_experiments_md_style_table_round_trips(self):
        # the shape EXPERIMENTS.md actually records (T9)
        headers = ["r", "E|I|", "optimum", "density gap", "r x gap"]
        rows = [
            (4, 1341.0, 2000, 0.1648, 0.6591),
            (64, 1953.0, 2000, 0.01184, 0.758),
        ]
        parsed_headers, parsed_rows = parse_table(format_table(headers, rows))
        assert parsed_headers == headers
        assert parsed_rows[0] == ["4", "1341", "2000", "0.1648", "0.6591"]
        assert parsed_rows[1] == ["64", "1953", "2000", "0.01184", "0.758"]
