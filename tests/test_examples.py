"""Smoke tests: every example script runs end to end and prints its report."""

import importlib.util
import io
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        module.main()
    return buffer.getvalue()


def test_quickstart():
    out = run_example("quickstart")
    assert "paper Fig.1" in out
    assert "All outputs validated" in out


def test_paper_walkthrough():
    out = run_example("paper_walkthrough")
    assert "Figure 2" in out
    assert "True" in out
    assert "layer" in out


def test_frequency_assignment():
    out = run_example("frequency_assignment")
    assert "frequencies" in out
    assert "interference-free" in out


def test_junction_tree_scheduling():
    out = run_example("junction_tree_scheduling")
    assert "Algorithm 1" in out
    assert "Algorithm 6" in out
    assert "Luby" in out


def test_lower_bound_experiment():
    out = run_example("lower_bound_experiment")
    assert "rounds r" in out
    assert "Omega(1/eps)" in out or "Theorem 9" in out


def test_arbitrary_graph_pipeline():
    out = run_example("arbitrary_graph_pipeline")
    assert "triangulation" in out
    assert "[ok ]" in out
    assert "FAIL" not in out
