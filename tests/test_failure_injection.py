"""Failure injection: every public entry point rejects bad inputs loudly.

A production library must fail with the documented exception and a usable
message, not with a deep internal traceback or -- worse -- silently wrong
output.  Each case here feeds a malformed input to a public API and pins
the exception type.
"""

import pytest

from repro.cliquetree import NotIntervalError, clique_paths_of_interval_graph
from repro.coloring import (
    ColoringParameters,
    PathBags,
    col_int_graph,
    color_chordal_graph,
    distributed_color_chordal,
    extend_path_coloring,
)
from repro.graphs import (
    Graph,
    NotChordalError,
    NotProperIntervalError,
    cycle_graph,
    path_graph,
    proper_interval_order,
)
from repro.mis import chordal_mis, distributed_chordal_mis, interval_mis
from repro.localmodel import path_spaced_selection, three_color_path


NON_CHORDAL = cycle_graph(6)


class TestNonChordalInputs:
    def test_coloring_entry_points(self):
        with pytest.raises(NotChordalError):
            color_chordal_graph(NON_CHORDAL, k=2)
        with pytest.raises(NotChordalError):
            distributed_color_chordal(NON_CHORDAL, k=2)

    def test_mis_entry_points(self):
        with pytest.raises(NotChordalError):
            chordal_mis(NON_CHORDAL, 0.3)
        with pytest.raises(NotChordalError):
            distributed_chordal_mis(NON_CHORDAL, 0.3)

    def test_interval_entry_points(self):
        with pytest.raises(NotIntervalError):
            clique_paths_of_interval_graph(NON_CHORDAL)
        with pytest.raises(NotIntervalError):
            col_int_graph(NON_CHORDAL, k=2)
        with pytest.raises(NotProperIntervalError):
            proper_interval_order(NON_CHORDAL)


class TestParameterRanges:
    @pytest.mark.parametrize("eps", [0.0, -0.2])
    def test_coloring_epsilon(self, eps):
        with pytest.raises(ValueError):
            color_chordal_graph(path_graph(4), epsilon=eps)

    @pytest.mark.parametrize("eps", [0.0, 0.5, 0.7, 1.0, -1.0])
    def test_chordal_mis_epsilon(self, eps):
        with pytest.raises(ValueError):
            chordal_mis(path_graph(4), eps)

    @pytest.mark.parametrize("eps", [0.0, 1.0, 2.0])
    def test_interval_mis_epsilon(self, eps):
        with pytest.raises(ValueError):
            interval_mis(path_graph(4), eps)

    def test_k_range(self):
        with pytest.raises(ValueError):
            ColoringParameters.from_k(-1)


class TestLocalModelInputs:
    def test_linial_duplicate_ids(self):
        with pytest.raises(ValueError):
            three_color_path([3, 3])

    def test_spacing_zero(self):
        with pytest.raises(ValueError):
            path_spaced_selection([1, 2, 3], 0)


class TestExtensionMisuse:
    def test_fixed_vertex_not_on_boundary(self):
        g = path_graph(10)
        bags = PathBags([{i, i + 1} for i in range(9)])
        with pytest.raises(ValueError, match="bag 0"):
            extend_path_coloring(
                g, bags, [1, 2, 3], fixed_left={5: 1}, fixed_right={9: 2}
            )

    def test_unknown_fixed_vertex(self):
        g = path_graph(4)
        bags = PathBags([{i, i + 1} for i in range(3)])
        with pytest.raises(KeyError):
            extend_path_coloring(
                g, bags, [1, 2], fixed_left={99: 1}, fixed_right={3: 2}
            )


class TestDegenerateGraphs:
    def test_everything_handles_empty(self):
        g = Graph()
        assert color_chordal_graph(g, k=2).coloring == {}
        assert chordal_mis(g, 0.3).independent_set == set()
        assert interval_mis(g, 0.5).independent_set == set()
        assert distributed_color_chordal(g, k=2).total_rounds == 0

    def test_everything_handles_singleton(self):
        g = Graph(vertices=["only"])
        assert color_chordal_graph(g, k=2).coloring == {"only": 1}
        assert chordal_mis(g, 0.3).independent_set == {"only"}
