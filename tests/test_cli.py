"""The command-line interface."""

import io
import json

import pytest

from repro.cli import main
from repro.graphs import cycle_graph, to_edge_list


def run_cli(argv):
    buffer = io.StringIO()
    code = main(argv, out=buffer)
    return code, buffer.getvalue()


@pytest.fixture
def tree_file(tmp_path):
    code, _ = run_cli(
        ["generate", "tree", "--n", "30", "--seed", "1",
         "--output", str(tmp_path / "g.edges")]
    )
    assert code == 0
    return str(tmp_path / "g.edges")


@pytest.fixture
def cycle_file(tmp_path):
    path = tmp_path / "cycle.edges"
    path.write_text(to_edge_list(cycle_graph(8)))
    return str(path)


class TestInfo:
    def test_summary_fields(self, tree_file):
        code, out = run_cli(["info", tree_file])
        assert code == 0
        assert "vertices: 30" in out
        assert "chordal:  True" in out
        assert "alpha:" in out

    def test_non_chordal_omits_certificates(self, cycle_file):
        _, out = run_cli(["info", cycle_file])
        assert "chordal:  False" in out
        assert "alpha" not in out


class TestColor:
    def test_colors_within_bound(self, tree_file):
        code, out = run_cli(["color", tree_file, "--epsilon", "0.5"])
        assert code == 0
        assert "colors used: 2" in out

    def test_distributed_rounds_reported(self, tree_file):
        _, out = run_cli(["color", tree_file, "--distributed"])
        assert "LOCAL rounds:" in out

    def test_output_file(self, tree_file, tmp_path):
        target = tmp_path / "coloring.json"
        run_cli(["color", tree_file, "--output", str(target)])
        coloring = json.loads(target.read_text())
        assert len(coloring) == 30

    def test_non_chordal_rejected_without_flag(self, cycle_file):
        with pytest.raises(SystemExit):
            run_cli(["color", cycle_file])

    def test_triangulate_flag(self, cycle_file):
        code, out = run_cli(["color", cycle_file, "--triangulate"])
        assert code == 0
        assert "triangulated:" in out
        assert "colors used:" in out


class TestMIS:
    def test_size_and_guarantee(self, tree_file):
        code, out = run_cli(["mis", tree_file, "--epsilon", "0.4"])
        assert code == 0
        assert "independent set size:" in out
        assert "guarantee" in out

    def test_output_file(self, tree_file, tmp_path):
        target = tmp_path / "mis.json"
        run_cli(["mis", tree_file, "--output", str(target)])
        members = json.loads(target.read_text())
        assert len(members) >= 10


class TestGenerate:
    def test_stdout_default(self):
        code, out = run_cli(["generate", "unit-chain", "--n", "15"])
        assert code == 0
        assert "vertices:" in out

    def test_all_families(self, tmp_path):
        for family in ("chordal", "tree", "interval", "interval-chain",
                       "unit-chain", "k-tree"):
            target = tmp_path / f"{family}.edges"
            code, _ = run_cli(
                ["generate", family, "--n", "25", "--output", str(target)]
            )
            assert code == 0
            assert target.exists()


class TestReport:
    def test_single_experiment(self):
        code, out = run_cli(["report", "L6"])
        assert code == 0
        assert "Lemma 6" in out

    def test_unknown_id_exits_nonzero(self, capsys):
        code, _ = run_cli(["report", "BOGUS"])
        assert code == 2
        assert "known ids are" in capsys.readouterr().err


class TestRun:
    def test_list_registered_experiments(self):
        code, out = run_cli(["run", "--list"])
        assert code == 0
        for experiment_id in ("T3", "T4", "T5/T6", "T7/T8", "T9", "L6", "B1",
                              "F1-F6", "X1"):
            assert experiment_id in out

    def test_tables_match_the_serial_report(self, tmp_path):
        code_run, out_run = run_cli(
            ["run", "--ids", "L6", "--jobs", "1",
             "--cache-dir", str(tmp_path / "cache")]
        )
        code_rep, out_rep = run_cli(["report", "L6"])
        assert code_run == code_rep == 0
        assert out_run == out_rep

    def test_second_invocation_hits_the_cache(self, tmp_path, capsys):
        argv = ["run", "--ids", "L6", "--jobs", "1",
                "--cache-dir", str(tmp_path / "cache")]
        run_cli(argv)
        capsys.readouterr()
        code, _ = run_cli(argv)
        assert code == 0
        assert "5 cached" in capsys.readouterr().err

    def test_no_cache_leaves_no_directory(self, tmp_path):
        cache_dir = tmp_path / "cache"
        code, _ = run_cli(["run", "--ids", "L6", "--no-cache",
                           "--cache-dir", str(cache_dir)])
        assert code == 0
        assert not cache_dir.exists()

    def test_clean_cache(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_cli(["run", "--ids", "L6", "--cache-dir", cache_dir])
        code, out = run_cli(["run", "--clean-cache", "--cache-dir", cache_dir])
        assert code == 0
        assert "removed 5 cached" in out

    def test_jsonl_log(self, tmp_path):
        log = tmp_path / "cells.jsonl"
        code, _ = run_cli(["run", "--ids", "L6", "--no-cache",
                           "--jsonl", str(log)])
        assert code == 0
        lines = [json.loads(l) for l in log.read_text().splitlines()]
        assert len(lines) == 5
        assert all(l["status"] == "ok" for l in lines)

    def test_unknown_id_exits_nonzero(self, capsys):
        code, _ = run_cli(["run", "--ids", "NOPE"])
        assert code == 2
        assert "known ids are" in capsys.readouterr().err

    def test_alias_ids_accepted(self, tmp_path):
        code, out = run_cli(["run", "--ids", "F3", "--no-cache"])
        assert code == 0
        assert "Figures 1-6" in out


class TestLint:
    def test_package_is_clean_via_cli_with_baseline(self):
        from tests.lint.conftest import BASELINE

        code, out = run_cli(["lint", "--baseline", str(BASELINE)])
        assert code == 0
        assert "0 findings" in out

    def test_package_needs_baseline(self):
        # Without the baseline the shipped LinialPathProgram L9 stays active.
        code, out = run_cli(["lint"])
        assert code == 1
        assert "L9" in out

    def test_violations_reported_with_locations(self):
        from tests.lint.conftest import CHEATERS

        code, out = run_cli(["lint", str(CHEATERS)])
        assert code == 1
        assert "cheating_programs.py:" in out
        for rule in ("L1", "L2", "L3", "L4", "L5", "L6"):
            assert rule in out

    def test_json_format(self):
        from tests.lint.conftest import CHEATERS

        code, out = run_cli(["lint", str(CHEATERS), "--format", "json"])
        assert code == 1
        report = json.loads(out)
        assert report["summary"]["total"] > 0


class TestTrace:
    def test_metrics_summary(self, tree_file):
        code, out = run_cli(["trace", tree_file, "--program", "echo"])
        assert code == 0
        assert "echo on 30 vertices (active scheduler)" in out
        assert "rounds:" in out and "node steps:" in out
        assert "echo count at root 0: 30" in out

    def test_timeline_flag(self, tree_file):
        code, out = run_cli(["trace", tree_file, "--program", "bfs", "--timeline"])
        assert code == 0
        assert "round 0:" in out and "msgs" in out

    def test_jsonl_export_schema(self, tree_file, tmp_path):
        path = tmp_path / "trace.jsonl"
        code, out = run_cli(
            ["trace", tree_file, "--program", "luby", "--jsonl", str(path)]
        )
        assert code == 0
        assert f"trace written to {path}" in out
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines and [l["round"] for l in lines] == list(range(len(lines)))
        for line in lines:
            assert set(line) == {
                "round", "active", "message_count", "messages", "completed",
            }
            assert line["message_count"] == len(line["messages"])

    def test_no_payloads_shrinks_the_trace(self, tree_file, tmp_path):
        path = tmp_path / "trace.jsonl"
        code, _ = run_cli(
            ["trace", tree_file, "--program", "gather", "--radius", "2",
             "--jsonl", str(path), "--no-payloads"]
        )
        assert code == 0
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        for line in lines:
            for message in line["messages"]:
                assert set(message) == {"from", "to"}

    def test_dense_scheduler_same_trace(self, tree_file, tmp_path):
        paths = {}
        for scheduler in ("active", "dense"):
            paths[scheduler] = tmp_path / f"{scheduler}.jsonl"
            code, out = run_cli(
                ["trace", tree_file, "--program", "luby",
                 "--scheduler", scheduler, "--jsonl", str(paths[scheduler])]
            )
            assert code == 0
            assert f"({scheduler} scheduler)" in out
        assert paths["active"].read_text() == paths["dense"].read_text()

    def test_sealed_flag(self, tree_file):
        code, out = run_cli(["trace", tree_file, "--program", "leader", "--sealed"])
        assert code == 0
        assert "sealed" in out and "leader: 0" in out

    def test_impossible_workload_aborts_cleanly(self, cycle_file):
        # echo is a tree convergecast; on a cycle it can never finish --
        # the starvation fast-fail must surface as a clean exit, not a
        # traceback (nor a spin to the round budget)
        with pytest.raises(SystemExit, match="trace aborted"):
            run_cli(["trace", cycle_file, "--program", "echo"])


class TestTraceFaultsFlag:
    def test_empty_spec_is_the_identity(self, tree_file):
        code_bare, out_bare = run_cli(["trace", tree_file, "--program", "bfs"])
        code_empty, out_empty = run_cli(
            ["trace", tree_file, "--program", "bfs", "--faults", ""]
        )
        assert code_bare == code_empty == 0
        assert out_bare == out_empty
        assert "faults injected" not in out_bare

    def test_plan_reported_and_counters_printed(self, tree_file):
        code, out = run_cli(
            ["trace", tree_file, "--program", "bfs",
             "--faults", "drop=0.2,seed=3"]
        )
        assert code == 0
        assert "faults injected" in out and "dropped:" in out

    def test_bad_spec_aborts_cleanly(self, tree_file):
        with pytest.raises(SystemExit, match="bad --faults spec"):
            run_cli(["trace", tree_file, "--program", "bfs",
                     "--faults", "wibble=1"])


class TestFaultsCommand:
    def test_requires_graph_or_sweep(self):
        with pytest.raises(SystemExit, match="GRAPH file or use --stock / --sweep"):
            run_cli(["faults"])

    def test_single_run_clean_plan(self, tree_file):
        code, out = run_cli(["faults", tree_file, "--program", "bfs"])
        assert code == 0
        assert "under plan 'none'" in out
        assert "output validity: OK" in out

    def test_single_run_with_drops_counts_injections(self, tree_file):
        code, out = run_cli(
            ["faults", tree_file, "--program", "bfs",
             "--plan", "drop=0.3,seed=2"]
        )
        assert code == 0  # BFS overestimates are still valid
        assert "under plan 'drop=0.3,seed=2'" in out
        assert "faults injected" in out
        assert "output validity: OK" in out

    def test_crash_stop_reported(self, tree_file):
        code, out = run_cli(
            ["faults", tree_file, "--program", "bfs", "--plan", "crash=5@1"]
        )
        assert code == 0
        assert "still crashed: 5" in out

    def test_unsafe_program_exits_nonzero(self, cycle_file):
        # coloring under loss produces an improper coloring somewhere in
        # the default sweep seeds; find one seed that trips the monitor
        outcomes = {}
        for seed in (1, 2, 3, 4):
            code, out = run_cli(
                ["faults", cycle_file, "--program", "coloring",
                 "--plan", f"drop=0.3,seed={seed}", "--max-rounds", "500"]
            )
            outcomes[seed] = (code, out)
        assert any(
            code == 1 and "output validity: VIOLATED" in out
            for code, out in outcomes.values()
        )

    def test_retries_flag_wraps_program(self, tree_file):
        code, out = run_cli(
            ["faults", tree_file, "--program", "echo",
             "--plan", "drop=0.3,seed=1", "--retries"]
        )
        assert code == 0
        assert "with retries" in out

    def test_bad_plan_aborts_cleanly(self, tree_file):
        with pytest.raises(SystemExit, match="bad --plan spec"):
            run_cli(["faults", tree_file, "--plan", "drop=nope"])

    def test_sweep_classifies_all_stock_programs(self):
        code, out = run_cli(
            ["faults", "--sweep", "--drops", "0.15", "--max-rounds", "2000"]
        )
        assert code == 0
        for name in ("bfs", "leader", "echo", "gather", "luby", "coloring",
                     "linial"):
            assert name in out
        for classification in ("degraded-but-valid", "unsafe"):
            assert classification in out

    def test_sweep_json_schema(self):
        code, out = run_cli(
            ["faults", "--sweep", "--drops", "0.15", "--format", "json",
             "--max-rounds", "2000"]
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["retries"] is False
        assert payload["grid"]
        by_name = {p["program"]: p for p in payload["programs"]}
        assert set(by_name) == {
            "bfs", "leader", "echo", "gather", "gather-delta", "luby",
            "coloring", "linial",
        }
        for entry in by_name.values():
            assert entry["classification"] in (
                "self-healing", "degraded-but-valid", "unsafe"
            )
            for outcome in entry["outcomes"]:
                assert set(outcome) >= {
                    "plan", "complete", "valid", "matches_baseline", "rounds",
                }

    def test_sweep_with_retries_upgrades_leader_and_echo(self):
        code, out = run_cli(
            ["faults", "--sweep", "--drops", "0.15", "--retries",
             "--format", "json", "--max-rounds", "4000"]
        )
        assert code == 0
        by_name = {
            p["program"]: p["classification"]
            for p in json.loads(out)["programs"]
        }
        assert by_name["leader"] == "self-healing"
        assert by_name["echo"] == "self-healing"
        assert by_name["coloring"] == "unsafe"

    def test_stock_replays_a_chaos_spec(self):
        # the environment every `repro chaos` repro line refers to: the
        # stock sweep graph + seeded factory, no GRAPH file needed
        code, out = run_cli(
            ["faults", "--stock", "--program", "coloring",
             "--plan", "corrupt=7@8:color,seed=2", "--max-rounds", "500"]
        )
        assert code == 1
        assert "output validity: VIOLATED" in out

    def test_stock_checkpoint_recovery_flags(self):
        code, out = run_cli(
            ["faults", "--stock", "--program", "bfs",
             "--plan", "crash=3@1-3,seed=1", "--recovery", "checkpoint",
             "--checkpoint-every", "1", "--max-rounds", "500"]
        )
        assert code == 0
        assert "output validity: OK" in out

    def test_checkpoint_recovery_requires_cadence(self, tree_file):
        with pytest.raises(SystemExit, match="checkpoint_every"):
            run_cli(["faults", tree_file, "--recovery", "checkpoint"])


class TestChaosCommand:
    def test_quick_soak_text_output(self):
        code, out = run_cli(["chaos", "--trials", "3", "--quick"])
        assert code == 0
        assert "chaos soak: 3 trials over 3 programs" in out
        for name in ("bfs", "coloring", "luby"):
            assert name in out
        assert "failures:" in out and "reproduced:" in out

    def test_failures_print_a_replay_line(self):
        code, out = run_cli(
            ["chaos", "--trials", "6", "--quick", "--programs", "coloring"]
        )
        assert code == 0
        if "failures: 0" not in out:
            assert "replay: repro faults --stock --program coloring" in out
            assert "minimized (reproduces):" in out

    def test_json_payload_schema(self):
        code, out = run_cli(
            ["chaos", "--trials", "4", "--quick", "--format", "json"]
        )
        assert code == 0
        payload = json.loads(out)
        assert set(payload) == {"summary", "executors", "trials"}
        assert payload["summary"]["trials"] == 4
        assert len(payload["trials"]) == 4
        for t in payload["trials"]:
            assert set(t) >= {"program", "trial", "plan", "kind", "minimized"}
        for diag in payload["executors"].values():
            assert diag["executed"] == "node"
            assert "fault plan is non-empty" in diag["fallback_reason"]

    def test_soak_replays_bit_for_bit(self):
        runs = [
            run_cli(["chaos", "--trials", "5", "--quick", "--format", "json"])
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_check_passes_when_failures_reproduce(self):
        code, out = run_cli(["chaos", "--trials", "6", "--quick", "--check"])
        assert code == 0
        assert "lack a reproducing minimized spec" not in out

    def test_no_minimize_skips_delta_debugging(self):
        code, out = run_cli(
            ["chaos", "--trials", "6", "--quick", "--no-minimize",
             "--format", "json"]
        )
        assert code == 0
        payload = json.loads(out)
        assert all(t["minimized"] is None for t in payload["trials"])

    def test_unknown_program_aborts_cleanly(self):
        with pytest.raises(SystemExit, match="unknown chaos programs"):
            run_cli(["chaos", "--programs", "wibble"])

    def test_trials_must_be_positive(self):
        with pytest.raises(SystemExit, match="--trials"):
            run_cli(["chaos", "--trials", "0"])
