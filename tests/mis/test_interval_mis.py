"""Algorithm 5: (1 + eps)-approximate MIS on interval graphs (Theorems 5-6)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import (
    Graph,
    complete_graph,
    is_independent_set,
    path_graph,
    random_interval_graph,
    random_proper_interval_graph,
)
from repro.localmodel import log_star
from repro.mis import (
    independence_number_chordal,
    interval_mis,
    mis_parameters,
)
from tests.coloring.test_extension import long_interval_graph


def check(graph, epsilon):
    result = interval_mis(graph, epsilon)
    assert is_independent_set(graph, result.independent_set)
    alpha = independence_number_chordal(graph)
    assert result.size() * (1 + epsilon) >= alpha, (
        f"|I| = {result.size()} too small vs alpha = {alpha} at eps = {epsilon}"
    )
    return result


class TestParameters:
    def test_k_values(self):
        assert mis_parameters(0.5) == 6
        assert mis_parameters(0.1) == 26

    def test_invalid_epsilon(self):
        for eps in (0, 1, -0.5, 2):
            with pytest.raises(ValueError):
                mis_parameters(eps)


class TestSmallComponents:
    def test_empty(self):
        result = interval_mis(Graph(), 0.5)
        assert result.independent_set == set()

    def test_single_vertex(self):
        g = Graph(vertices=[3])
        assert interval_mis(g, 0.5).independent_set == {3}

    def test_complete_graph(self):
        result = interval_mis(complete_graph(6), 0.5)
        assert result.size() == 1

    def test_short_paths_solved_exactly(self):
        for n in (2, 5, 10, 30):
            g = path_graph(n)
            result = check(g, 0.5)
            assert result.size() == (n + 1) // 2  # exact below 10k diameter


class TestLongComponents:
    def test_long_path(self):
        g = path_graph(500)
        result = check(g, 0.4)
        # optimum 250; the guarantee allows a small loss only
        assert result.size() >= 250 / 1.4

    def test_long_proper_interval(self):
        for seed in range(4):
            g = long_interval_graph(300, seed=seed)
            check(g, 0.4)

    def test_dominated_vertices_handled(self):
        # nested intervals: dominated removal must fire
        from repro.graphs import interval_graph_from_intervals

        intervals = {}
        x = 0.0
        for v in range(0, 300, 2):
            intervals[v] = (x, x + 1.0)
            intervals[v + 1] = (x + 0.2, x + 0.4)  # nested: dominates v
            x += 0.7
        g = interval_graph_from_intervals(intervals)
        check(g, 0.3)

    def test_round_accounting_log_star(self):
        small = interval_mis(path_graph(200), 0.2).rounds
        large = interval_mis(path_graph(1500), 0.2).rounds
        assert large <= small + 40 * (log_star(1500) - 0) and large >= small


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 5_000),
    n=st.integers(1, 90),
    eps=st.sampled_from([0.15, 0.3, 0.49, 0.8]),
)
def test_interval_mis_property(seed, n, eps):
    g = random_interval_graph(n, seed=seed, max_length=0.1)
    check(g, eps)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 5_000), n=st.integers(50, 200))
def test_interval_mis_on_long_thin_graphs(seed, n):
    g = long_interval_graph(n, seed=seed)
    check(g, 0.35)
