"""Message-level fidelity of the MIS peeling decision (Section 7.3).

The MIS pipeline peels with the diameter rule at threshold 2d + 3.
:func:`message_level_mis_decisions` closes the loop at the message
level: the knowledge each node decides from is a ball obtained by
actually running the (delta) gather on the synchronous simulator, and
the per-node decision must match the centralized peeling's layers for
every non-final iteration.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.coloring.prune import diameter_rule, peel_chordal_graph
from repro.graphs import paper_example_graph, random_chordal_graph
from repro.mis import message_level_mis_decisions, mis_local_parameters


class TestParameters:
    def test_threshold_matches_peeling_rule(self):
        for d in (1, 2, 5):
            params = mis_local_parameters(d)
            assert params.internal_threshold == 2 * d + 3
            assert params.collect_radius == 3 * (2 * d + 3)

    def test_d_must_be_positive(self):
        with pytest.raises(ValueError, match="d must be >= 1"):
            mis_local_parameters(0)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 2_000), n=st.integers(2, 22), d=st.integers(1, 2))
def test_message_level_decisions_match_centralized_peeling(seed, n, d):
    g = random_chordal_graph(n, seed=seed)
    peeling = peel_chordal_graph(
        g, internal_rule=diameter_rule(2 * d + 3), max_iterations=6
    )
    current = g.copy()
    expected_rounds = mis_local_parameters(d).collect_radius + 1
    for i in range(1, peeling.num_layers() + 1):
        layer = peeling.nodes_of_layer(i)
        decisions, rounds = message_level_mis_decisions(current, d)
        assert rounds == expected_rounds
        for v, joined in decisions.items():
            assert joined == (v in layer), f"node {v} at iteration {i}"
        current.remove_vertices(layer)


def test_paper_example_first_layer():
    g = paper_example_graph()
    d = 1
    peeling = peel_chordal_graph(
        g, internal_rule=diameter_rule(2 * d + 3), max_iterations=6
    )
    decisions, _ = message_level_mis_decisions(g, d)
    assert {v for v, joined in decisions.items() if joined} == (
        peeling.nodes_of_layer(1)
    )
