"""Gavril's exact MIS and the simplicial-greedy variant."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import (
    Graph,
    brute_force_maximum_independent_set,
    complete_graph,
    cycle_graph,
    paper_example_graph,
    path_graph,
    random_chordal_graph,
    random_k_tree,
)
from repro.mis import (
    greedy_simplicial_mis,
    independence_number_chordal,
    maximum_independent_set_chordal,
)


class TestGavril:
    def test_path(self):
        g = path_graph(7)
        mis = maximum_independent_set_chordal(g)
        assert g.is_independent_set(mis)
        assert len(mis) == 4

    def test_complete(self):
        assert len(maximum_independent_set_chordal(complete_graph(5))) == 1

    def test_empty(self):
        assert maximum_independent_set_chordal(Graph()) == set()

    def test_paper_example(self):
        g = paper_example_graph()
        mis = maximum_independent_set_chordal(g)
        assert g.is_independent_set(mis)
        assert len(mis) == len(brute_force_maximum_independent_set(g, size_guard=23))

    def test_rejects_non_chordal(self):
        from repro.graphs import NotChordalError

        with pytest.raises(NotChordalError):
            maximum_independent_set_chordal(cycle_graph(4))

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(1, 30))
    def test_matches_brute_force(self, seed, n):
        g = random_chordal_graph(n, seed=seed)
        mis = maximum_independent_set_chordal(g)
        assert g.is_independent_set(mis)
        assert len(mis) == len(brute_force_maximum_independent_set(g))

    def test_independence_number(self):
        assert independence_number_chordal(path_graph(6)) == 3


class TestSimplicialGreedy:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(1, 25))
    def test_always_maximum_regardless_of_priority(self, seed, n):
        import random

        rng = random.Random(seed)
        g = random_chordal_graph(n, seed=seed)
        priority = {v: rng.random() for v in g.vertices()}
        mis = greedy_simplicial_mis(g, priority=priority)
        assert g.is_independent_set(mis)
        assert len(mis) == independence_number_chordal(g)

    def test_rejects_non_chordal(self):
        with pytest.raises(ValueError):
            greedy_simplicial_mis(cycle_graph(5))
