"""Internals of Algorithm 5: the distance-k set, pair regions, fringes."""

import pytest

from repro.graphs import (
    Graph,
    is_distance_k_independent_set,
    is_independent_set,
    path_graph,
    proper_interval_order,
    remove_dominated_vertices,
    unit_interval_chain,
)
from repro.localmodel import greedy_distance_k_selection
from repro.mis import interval_mis, mis_parameters
from repro.mis.interval_mis import _component_mis, _long_component_mis


class TestComponentDispatch:
    def test_small_component_exact(self):
        g = path_graph(20)  # diameter 19 < 10k for k = 6 (eps=0.5)
        result = _component_mis(g, k=6)
        assert len(result.independent_set) == 10

    def test_long_component_approximate(self):
        g = path_graph(300)
        k = mis_parameters(0.4)
        chosen, rounds = _long_component_mis(g, k)
        assert is_independent_set(g, chosen)
        assert len(chosen) * 1.4 >= 150
        assert rounds > 0


class TestI1Structure:
    def test_selection_spacing_on_path(self):
        g = path_graph(200)
        order = list(range(200))
        for k in (3, 6, 11):
            i1 = greedy_distance_k_selection(g, order, k)
            assert is_distance_k_independent_set(g, i1, k)
            # maximality => consecutive members within 2k - 1
            positions = sorted(i1)
            for a, b in zip(positions, positions[1:]):
                assert b - a <= 2 * k - 1

    def test_pair_regions_large_enough(self):
        """|I_{u,v}| >= (k-3)/2: the counting step of Theorem 5's proof."""
        g = path_graph(500)
        k = mis_parameters(0.3)  # k = 9
        i1 = greedy_distance_k_selection(g, list(range(500)), k)
        positions = sorted(i1)
        for u, v in zip(positions, positions[1:]):
            d_uv = v - u
            between = [w for w in range(u + 2, v - 1)]
            # exact MIS of the strictly-between region on a path
            size = (len(between) + 1) // 2
            assert size >= (k - 3) / 2


class TestFringes:
    def test_right_fringe_covered(self):
        """Vertices beyond the last I1 member still contribute."""
        # a path long enough that the greedy's last member is far from
        # the right end only by < k; verify the total is near-optimal
        n = 401
        g = path_graph(n)
        result = interval_mis(g, 0.3)
        assert result.size() * 1.3 >= (n + 1) // 2

    def test_isolated_vertices_all_selected(self):
        g = Graph(vertices=range(10))
        result = interval_mis(g, 0.5)
        assert result.independent_set == set(range(10))


class TestDominationInterplay:
    def test_unit_chain_mostly_survives(self):
        g = unit_interval_chain(150, seed=3)
        h = remove_dominated_vertices(g)
        assert len(h) >= 0.5 * len(g)

    def test_survivors_have_umbrella_orders(self):
        g = unit_interval_chain(120, seed=5)
        h = remove_dominated_vertices(g)
        for comp in h.connected_components():
            sub = h.induced_subgraph(comp)
            proper_interval_order(sub)  # must not raise


class TestEndToEndRatios:
    @pytest.mark.parametrize("eps", [0.15, 0.3, 0.6, 0.9])
    def test_path_ratio_tracks_epsilon(self, eps):
        g = path_graph(600)
        result = interval_mis(g, eps)
        assert result.size() * (1 + eps) >= 300
