"""Theorem 8: the distributed MIS cost profile."""

import pytest

from repro.graphs import (
    is_independent_set,
    random_chordal_graph,
    random_tree,
    unit_interval_chain,
)
from repro.localmodel import log_star
from repro.mis import (
    chordal_mis,
    distributed_chordal_mis,
    independence_number_chordal,
    mis_peeling_parameters,
)


class TestDistributedMIS:
    def test_same_set_as_centralized(self):
        g = random_chordal_graph(60, seed=4)
        report = distributed_chordal_mis(g, 0.4)
        central = chordal_mis(g, 0.4)
        assert report.independent_set == central.independent_set

    def test_guarantee_preserved(self):
        g = random_tree(200, seed=6)
        report = distributed_chordal_mis(g, 0.45)
        assert is_independent_set(g, report.independent_set)
        alpha = independence_number_chordal(g)
        assert report.size() * 1.45 >= alpha

    def test_round_structure(self):
        g = random_tree(300, seed=2)
        eps = 0.45
        report = distributed_chordal_mis(g, eps)
        d, kappa = mis_peeling_parameters(eps)
        layers = report.result.peeling.num_layers()
        assert layers <= kappa
        assert len(report.iteration_finish) == layers
        assert len(report.layer_solve_rounds) == layers
        # collections are (2d + 3) each, monotone, and everything finishes
        # by total_rounds
        assert report.iteration_finish[0] >= 2 * d + 3
        assert all(
            a < b for a, b in zip(report.iteration_finish, report.iteration_finish[1:])
        )
        assert all(t <= report.total_rounds for t in report.finish_time.values())
        assert set(report.finish_time) == set(g.vertices())

    def test_rounds_scale_with_one_over_eps(self):
        g = random_tree(400, seed=9)
        fast = distributed_chordal_mis(g, 0.45)
        slow = distributed_chordal_mis(g, 0.15)
        assert fast.total_rounds < slow.total_rounds

    def test_log_star_dependence_on_long_chains(self):
        """Large-alpha paths trigger Algorithm 5's charged k log* n cost."""
        small = distributed_chordal_mis(unit_interval_chain(300, seed=1), 0.45)
        large = distributed_chordal_mis(unit_interval_chain(1500, seed=1), 0.45)
        # growing n five-fold moves rounds by at most the log* budget
        assert large.total_rounds <= small.total_rounds * (log_star(1500) + 2)
